//! Exhaustive-verification acceptance tests: every shipped protocol and
//! every protocol pair explores clean, and a deliberately corrupted table
//! yields a counterexample the concrete simulator reproduces.

use moesi::{BusEvent, BusReaction, CacheKind, LineState};
use verify::{
    class_compatible, explore, verify_class, verify_matrix, verify_pair, verify_protocol, Defect,
    Limits, Machine, ModuleSpec, Shape, MATRIX_PROTOCOLS,
};

fn small() -> Shape {
    Shape::default() // 1 line, 2 values
}

/// Every shipped protocol, homogeneous, 2 caches × 1 line × 2 values: the
/// whole reachable space is clean.
#[test]
fn every_shipped_protocol_is_self_compatible() {
    for name in MATRIX_PROTOCOLS {
        let report = verify_protocol(name, 2, &small()).expect("known name");
        assert!(report.verified(), "{name}: {report}");
        assert!(report.explored > 1, "{name}: degenerate space ({report})");
    }
}

/// The full pair-wise compatibility matrix (including the diagonal and the
/// `full-table` class-at-large row): every pair verifies clean except the
/// documented Write-Once × owner-capable clashes, which must fail — and fail
/// with exactly the stale-memory defect the §4.3 adaptation leaves open.
#[test]
fn the_full_pairwise_matrix_matches_the_compatibility_claims() {
    let rows = verify_matrix(&MATRIX_PROTOCOLS, &small());
    let n = MATRIX_PROTOCOLS.len();
    assert_eq!(rows.len(), n * (n + 1) / 2);
    for (a, b, report) in rows {
        if class_compatible(&a, &b) {
            assert!(report.verified(), "{a} + {b}: {report}");
        } else {
            let cx = report.counterexample.as_ref().unwrap_or_else(|| {
                panic!("{a} + {b}: expected the known incompatibility, got {report}")
            });
            assert!(
                matches!(cx.defect, Defect::StaleMemory),
                "{a} + {b}: {report}"
            );
        }
    }
}

/// The known Write-Once incompatibility is not an artifact of the abstract
/// machine: the minimal counterexample replays on the concrete simulator and
/// trips the concrete checker the same way.
#[test]
fn the_write_once_incompatibility_reproduces_on_the_concrete_machine() {
    let report = verify_pair("moesi", "write-once", &small()).expect("known names");
    let cx = report.counterexample.expect("known incompatibility");
    assert!(matches!(cx.defect, Defect::StaleMemory), "{}", cx.defect);
    assert_eq!(cx.trace.steps.len(), 3, "minimal schedule:\n{}", cx.trace);

    let outcome = mpsim::replay::replay(&cx.trace, false);
    let (step, violation) = outcome.violation.expect("concrete machine agrees");
    assert_eq!(step, 2, "violation at the last step:\n{}", cx.trace);
    assert!(
        matches!(violation, mpsim::Violation::StaleMemory { .. }),
        "{violation}"
    );
    assert_eq!(outcome.script_underflows, 0);
}

/// Three caches branching over the entire permitted sets — the §3.4
/// "extreme case" where every module may follow a different member protocol
/// on every single transaction.
#[test]
fn three_full_table_caches_verify_clean() {
    let report = verify_class(&[CacheKind::CopyBack; 3], &small());
    assert!(report.verified(), "{report}");
}

/// Mixed client kinds on one bus: copy-back, write-through and non-caching,
/// each over its full permitted set.
#[test]
fn mixed_kind_class_verifies_clean() {
    let report = verify_class(
        &[
            CacheKind::CopyBack,
            CacheKind::WriteThrough,
            CacheKind::NonCaching,
        ],
        &small(),
    );
    assert!(report.verified(), "{report}");
}

/// Two lines double the per-line space independently (lines never interact),
/// and the invariants hold on both.
#[test]
fn two_lines_verify_clean() {
    let shape = Shape {
        lines: 2,
        ..Shape::default()
    };
    let one = verify_class(&[CacheKind::CopyBack; 2], &Shape::default());
    let two = verify_class(&[CacheKind::CopyBack; 2], &shape);
    assert!(two.verified(), "{two}");
    assert!(
        two.explored > one.explored,
        "two lines must enlarge the space ({} vs {})",
        two.explored,
        one.explored
    );
}

/// The state cap truncates the search rather than hanging.
#[test]
fn the_state_cap_truncates_cleanly() {
    let shape = Shape {
        limits: Limits { max_states: 5 },
        ..Shape::default()
    };
    let report = verify_class(&[CacheKind::CopyBack; 2], &shape);
    assert!(report.truncated);
    assert!(!report.verified());
    assert_eq!(report.explored, 5);
    assert!(report.counterexample.is_none());
}

/// Corrupt Table 2 so a Shareable snooper *keeps its copy* through an
/// invalidating transaction. The explorer must find a minimal counterexample,
/// and the concrete simulator must reproduce the violation deterministically
/// when replaying it.
#[test]
fn corrupted_invalidation_row_yields_a_replayable_counterexample() {
    fn stubborn(state: LineState, event: BusEvent, raw: Vec<BusReaction>) -> Vec<BusReaction> {
        if state == LineState::Shareable && event == BusEvent::CacheReadInvalidate {
            vec![BusReaction::hit(LineState::Shareable)]
        } else {
            raw
        }
    }

    let specs = vec![
        ModuleSpec::full_table(CacheKind::CopyBack),
        ModuleSpec::full_table(CacheKind::CopyBack),
    ];
    let mut machine = Machine::new(specs, 1, 2);
    machine.bus_override = Some(stubborn);
    let report = explore(&mut machine, &Limits::default());

    let cx = report
        .counterexample
        .expect("the corruption must be caught");
    assert!(
        cx.trace.steps.len() <= 3,
        "BFS promises a minimal schedule, got {} steps:\n{}",
        cx.trace.steps.len(),
        cx.trace
    );

    // The concrete machine reproduces it, step for step, run after run.
    let first = mpsim::replay::replay(&cx.trace, true);
    assert!(
        first.reproduced(),
        "concrete replay missed: {}\n{}",
        cx.defect,
        cx.trace
    );
    assert_eq!(
        first.script_underflows, 0,
        "trace/machine decision mismatch"
    );
    let second = mpsim::replay::replay(&cx.trace, true);
    assert_eq!(
        first.violation.as_ref().map(|(s, _)| *s),
        second.violation.as_ref().map(|(s, _)| *s),
        "replay must be deterministic"
    );
}

/// A corrupted *local* row: silent writes from Shareable (skipping the
/// invalidate) leave stale copies elsewhere; the explorer catches it.
#[test]
fn corrupted_local_row_is_caught() {
    fn silent_shared_write(
        state: LineState,
        event: moesi::LocalEvent,
        _kind: CacheKind,
        raw: Vec<moesi::LocalAction>,
    ) -> Vec<moesi::LocalAction> {
        if state == LineState::Shareable && event == moesi::LocalEvent::Write {
            vec![moesi::LocalAction::silent(LineState::Modified)]
        } else {
            raw
        }
    }

    let specs = vec![
        ModuleSpec::full_table(CacheKind::CopyBack),
        ModuleSpec::full_table(CacheKind::CopyBack),
    ];
    let mut machine = Machine::new(specs, 1, 2);
    machine.local_override = Some(silent_shared_write);
    let report = explore(&mut machine, &Limits::default());
    let cx = report
        .counterexample
        .expect("silent shared write must be caught");
    let replayed = mpsim::replay::replay(&cx.trace, true);
    assert!(replayed.reproduced(), "{}\n{}", cx.defect, cx.trace);
}
