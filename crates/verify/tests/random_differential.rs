//! Differential test between the §3.4 random selector and the exhaustive
//! explorer: over a long run, every action `RandomPolicy` picks is a member
//! of the permitted set the explorer branches on for the same table cell.
//!
//! The explorer's `full-table` policy enumerates its branch sets through
//! `table::local_cells`/`table::bus_cells`; building the membership oracle
//! from those same iterators ties the two enumeration paths together — if
//! either side drifted (a cell the explorer skips, or a selector reaching
//! outside the tables), this test catches it.

use moesi::protocols::RandomPolicy;
use moesi::{table, BusEvent, CacheKind, LineState, LocalCtx, LocalEvent, Protocol, SnoopCtx};
use std::collections::HashMap;

#[test]
fn every_random_choice_is_in_the_explored_set() {
    for kind in [
        CacheKind::CopyBack,
        CacheKind::WriteThrough,
        CacheKind::NonCaching,
    ] {
        let local_sets: HashMap<(LineState, LocalEvent), Vec<moesi::LocalAction>> =
            table::local_cells(kind)
                .map(|(s, e, set)| ((s, e), set))
                .collect();
        let bus_sets: HashMap<(LineState, BusEvent), Vec<moesi::BusReaction>> = table::bus_cells()
            .map(|(s, e, set)| ((s, e), set))
            .collect();

        let mut policy = RandomPolicy::new(kind, 0xC0FFEE);
        for round in 0..500u32 {
            for state in LineState::ALL {
                for event in LocalEvent::ALL {
                    let set = &local_sets[&(state, event)];
                    if set.is_empty() {
                        continue; // error cell: the policy is never consulted
                    }
                    let ctx = LocalCtx {
                        recency_rank: Some(round % 4),
                        ways: 4,
                        line_addr: None,
                    };
                    let a = policy.on_local(state, event, &ctx);
                    assert!(
                        set.contains(&a),
                        "{kind}: ({state}, {event}) chose {a}, not in the explored set"
                    );
                }
                if kind == CacheKind::NonCaching {
                    continue; // never snoops; the controller filters it out
                }
                for event in BusEvent::ALL {
                    let set = &bus_sets[&(state, event)];
                    if set.is_empty() {
                        continue;
                    }
                    let ctx = SnoopCtx {
                        recency_rank: Some(round % 4),
                        ways: 4,
                        line_addr: None,
                    };
                    let r = policy.on_bus(state, event, &ctx);
                    assert!(
                        set.contains(&r),
                        "{kind}: ({state}, {event}) reacted {r}, not in the explored set"
                    );
                }
            }
        }
    }
}

/// The explorer folds `random` into `full-table` (a random selector can pick
/// any permitted entry, so the full branch is its exhaustive closure); this
/// pins that the fold is sound — the selector's support never exceeds the
/// fold's branch set, per the membership test above — and that the folded
/// configuration verifies clean.
#[test]
fn the_random_fold_verifies_clean() {
    let report = verify::verify_protocol("random", 2, &verify::Shape::default()).unwrap();
    assert!(report.verified(), "{report}");
}
