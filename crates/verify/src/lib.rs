//! Exhaustive model checking for the compatible cache-consistency class.
//!
//! This crate proves — by breadth-first enumeration of **every** reachable
//! global state — that small configurations of the protocol class from
//! Sweazey & Smith (ISCA '86) preserve the five shared-image invariants of
//! `mpsim::Checker`. It complements the randomized simulator tests: where
//! those sample schedules, the explorer branches on *every* permitted entry
//! of Tables 1 and 2 at every decision point, so a clean run is a proof over
//! the modelled configuration, not a statistical statement.
//!
//! Three front doors:
//!
//! - the library API ([`explore`], [`verify_protocol`], [`verify_pair`],
//!   [`verify_matrix`], [`verify_class`]);
//! - the `moesi-sim verify` CLI subcommand;
//! - the integration tests in `tests/`, which pin "zero violations" for
//!   every shipped protocol and every protocol pair.
//!
//! When a defect *is* found (e.g. via the test-only table-corruption hooks),
//! the explorer emits a minimal [`mpsim::replay::Trace`] that
//! [`mpsim::replay::replay`] re-executes step by step on the concrete
//! simulator, reproducing the violation deterministically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod explorer;
mod machine;

pub use explorer::{explore, Counterexample, Limits, Report};
pub use machine::{
    BusOverride, Defect, LineView, LocalOverride, MachState, Machine, ModLine, ModuleSpec, Policy,
};

use moesi::{
    protocols, BusEvent, BusReaction, CacheKind, LineState, LocalAction, LocalEvent, PolicyTable,
    TablePolicy,
};

/// Shape of the explored configuration (the per-module policies come
/// separately).
#[derive(Clone, Copy, Debug)]
pub struct Shape {
    /// Lines modelled (1–2 keeps the space small; lines are independent).
    pub lines: usize,
    /// Size of the write-value domain (2 suffices to distinguish copies).
    pub values: u8,
    /// Exploration limits.
    pub limits: Limits,
}

impl Default for Shape {
    fn default() -> Self {
        Shape {
            lines: 1,
            values: 2,
            limits: Limits::default(),
        }
    }
}

/// Every name accepted by [`verify_protocol`]/[`verify_matrix`]: the shipped
/// protocols plus `full-table` (the §3.4 class-at-large: branch over the
/// whole permitted set of a copy-back client).
pub const MATRIX_PROTOCOLS: [&str; 12] = [
    "moesi",
    "moesi-invalidating",
    "puzak",
    "write-through",
    "non-caching",
    "berkeley",
    "dragon",
    "write-once",
    "illinois",
    "firefly",
    "synapse",
    "full-table",
];

/// Builds the module spec for a protocol name.
///
/// `full-table`, `full-table-wt` and `full-table-nc` branch over the entire
/// permitted sets of the corresponding client kind; `random` is folded into
/// `full-table` (a random selector can pick any permitted entry, so the full
/// branch *is* its exhaustive closure). Every other name resolves through
/// [`moesi::protocols::by_name`].
#[must_use]
pub fn spec_for(name: &str) -> Option<ModuleSpec> {
    match name {
        "full-table" | "random" => Some(ModuleSpec::full_table(CacheKind::CopyBack)),
        "full-table-wt" => Some(ModuleSpec::full_table(CacheKind::WriteThrough)),
        "full-table-nc" => Some(ModuleSpec::full_table(CacheKind::NonCaching)),
        _ => protocols::by_name(name, 0).map(ModuleSpec::protocol),
    }
}

/// Whether invariant 5 (an E copy matches memory) must be relaxed for this
/// protocol mix. The adapted Write-Once protocol reaches its "Reserved" (E)
/// state with memory still stale when a foreign owner supplied the fill, so
/// mixed systems containing it drop the strict check — exactly as
/// `mpsim::Checker::check_exclusive_clean` documents.
#[must_use]
pub fn relaxed_exclusive_clean(names: &[&str]) -> bool {
    let mixed = names.windows(2).any(|w| w[0] != w[1]);
    mixed && names.contains(&"write-once")
}

/// Whether the pair `(a, b)` is expected to verify clean.
///
/// Every pair is, except the adapted Write-Once protocol next to an
/// owner-capable class member: Write-Once's eponymous first write is a
/// write-through (`E,CA,IM,W`), and a foreign M/O holder snooping that
/// transaction must capture it (`I,DI` is its only permitted reaction) —
/// which preempts memory and then discards the data with the invalidate.
/// The value survives only in Write-Once's unowned "Reserved" (E) line, so
/// invariant 4 (unowned lines live in memory) breaks in three steps. This is
/// precisely the gap §4.3's BS-based adaptation leaves open; the exhaustive
/// explorer rediscovers it mechanically, and the concrete simulator
/// reproduces the counterexample (see `tests/exhaustive.rs`).
#[must_use]
pub fn class_compatible(a: &str, b: &str) -> bool {
    const OWNER_CAPABLE: [&str; 7] = [
        "moesi",
        "moesi-invalidating",
        "puzak",
        "berkeley",
        "dragon",
        "full-table",
        "random",
    ];
    let clash = |x: &str, y: &str| x == "write-once" && OWNER_CAPABLE.contains(&y);
    !clash(a, b) && !clash(b, a)
}

/// Exhaustively verifies an arbitrary protocol mix, one module per name.
/// Returns `None` if any name is unknown. Invariant 5 is relaxed per
/// [`relaxed_exclusive_clean`].
#[must_use]
pub fn verify_mix(names: &[&str], shape: &Shape) -> Option<Report> {
    let mut specs = Vec::with_capacity(names.len());
    for name in names {
        specs.push(spec_for(name)?);
    }
    let mut machine = Machine::new(specs, shape.lines, shape.values);
    machine.check_exclusive_clean = !relaxed_exclusive_clean(names);
    Some(explore(&mut machine, &shape.limits))
}

/// Exhaustively verifies a homogeneous system of `caches` modules all
/// running `name`. Returns `None` for an unknown protocol name.
#[must_use]
pub fn verify_protocol(name: &str, caches: usize, shape: &Shape) -> Option<Report> {
    verify_mix(&vec![name; caches], shape)
}

/// Exhaustively verifies a two-module heterogeneous system: one module
/// running `a`, one running `b`. Returns `None` for unknown names.
#[must_use]
pub fn verify_pair(a: &str, b: &str, shape: &Shape) -> Option<Report> {
    verify_mix(&[a, b], shape)
}

/// Exhaustively verifies the class at large: every module branches over the
/// full permitted sets for its kind (Tables 1 and 2), so this covers every
/// member protocol — and every mix of member protocols — at once.
#[must_use]
pub fn verify_class(kinds: &[CacheKind], shape: &Shape) -> Report {
    let specs = kinds.iter().map(|&k| ModuleSpec::full_table(k)).collect();
    let mut machine = Machine::new(specs, shape.lines, shape.values);
    explore(&mut machine, &shape.limits)
}

/// One row of [`mutation_sweep`]: a single corrupted cell of the preferred
/// copy-back table and what each detection layer said about it.
#[derive(Clone, Debug)]
pub struct MutationRow {
    /// The corrupted cell, in the structural check's naming: `local (S,
    /// Write)` or `bus (S, col 6)`.
    pub cell: String,
    /// Whether the §3.4 structural check (`moesi::compat::check_table`)
    /// rejects the mutated table outright.
    pub structural: bool,
    /// The defect exhaustive exploration finds when the mutated policy shares
    /// a bus with a clean preferred-MOESI module, if any.
    pub defect: Option<Defect>,
    /// Global states explored for this mutation.
    pub explored: usize,
}

/// Enumerates single-cell corruptions of the preferred copy-back table and
/// checks each one twice: structurally (is the mutated table still inside
/// the permitted sets of Tables 1–2?) and dynamically (does the mutated
/// policy, sharing a bus with a clean preferred-MOESI module, break a
/// shared-image invariant somewhere in its reachable space?).
///
/// Each local cell is flipped to the canonical local bug — silently claiming
/// Modified without a bus transaction — and each bus cell to the canonical
/// snoop bug — ignoring the event and keeping the copy as-is. Cells whose
/// chosen entry already *is* the mutation are skipped. The §3.4 theorem shows
/// up as a property of the rows: a mutation the structural check accepts is
/// still a class member, so exploration must find no defect for it.
#[must_use]
pub fn mutation_sweep(shape: &Shape) -> Vec<MutationRow> {
    mutation_sweep_of(PolicyTable::preferred("mutant", CacheKind::CopyBack), shape)
}

/// [`mutation_sweep`] generalised to an arbitrary base table (`moesi-sim
/// verify --mutate --table FILE`): synthesized winners get the same
/// single-cell corruption audit as the built-in preferred table.
#[must_use]
pub fn mutation_sweep_of(base: PolicyTable, shape: &Shape) -> Vec<MutationRow> {
    let mut rows = Vec::new();
    for state in LineState::ALL {
        for event in LocalEvent::ALL {
            let mutation = LocalAction::silent(LineState::Modified);
            if base.local(state, event).is_none_or(|c| c == mutation) {
                continue;
            }
            let mut table = base;
            table.set_local_unchecked(state, event, mutation);
            rows.push(run_mutation(
                format!("local ({state}, {event})"),
                table,
                shape,
            ));
        }
        for event in BusEvent::ALL {
            let mutation = BusReaction::quiet(state);
            if base.bus(state, event).is_none_or(|c| c == mutation) {
                continue;
            }
            let mut table = base;
            table.set_bus_unchecked(state, event, mutation);
            rows.push(run_mutation(
                format!("bus ({state}, col {})", event.column()),
                table,
                shape,
            ));
        }
    }
    rows
}

fn run_mutation(cell: String, table: PolicyTable, shape: &Shape) -> MutationRow {
    let structural = !moesi::compat::check_table(&table).is_class_member();
    let report = verify_table(table, shape);
    MutationRow {
        cell,
        structural,
        defect: report.counterexample.map(|cx| cx.defect),
        explored: report.explored,
    }
}

/// Exhaustively explores one policy table sharing a bus with a clean
/// preferred-MOESI module — the synth subsystem's deep feasibility oracle,
/// callable without a CLI run. A clean [`Report`] (no counterexample) means
/// every schedule the table can produce against a known-good peer preserves
/// the five shared-image invariants in the modelled configuration.
#[must_use]
pub fn verify_table(table: PolicyTable, shape: &Shape) -> Report {
    let specs = vec![
        ModuleSpec::protocol(Box::new(TablePolicy::new(table))),
        spec_for("moesi").expect("moesi is a known protocol"),
    ];
    let mut machine = Machine::new(specs, shape.lines, shape.values);
    explore(&mut machine, &shape.limits)
}

/// Runs [`verify_pair`] over every unordered pair from `names` (including
/// the diagonal) and returns `(a, b, report)` rows.
#[must_use]
pub fn verify_matrix(names: &[&str], shape: &Shape) -> Vec<(String, String, Report)> {
    verify_matrix_jobs(names, shape, 1)
}

/// [`verify_matrix`] sharded over `jobs` worker threads. Every pair's state
/// exploration is independent, so the rows come back in the same (row-major,
/// upper-triangular) order for any worker count.
#[must_use]
pub fn verify_matrix_jobs(
    names: &[&str],
    shape: &Shape,
    jobs: usize,
) -> Vec<(String, String, Report)> {
    let mut pairs = Vec::new();
    for (i, a) in names.iter().enumerate() {
        for b in &names[i..] {
            pairs.push(((*a).to_string(), (*b).to_string()));
        }
    }
    mpsim::campaign::run_jobs(pairs, jobs, |(a, b)| {
        verify_pair(&a, &b, shape).map(|report| (a, b, report))
    })
    .into_iter()
    .flatten()
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sharded_matrix_matches_the_sequential_one() {
        let names = ["moesi", "write-through", "berkeley", "dragon"];
        let shape = Shape::default();
        let seq = verify_matrix(&names, &shape);
        let par = verify_matrix_jobs(&names, &shape, 3);
        assert_eq!(seq.len(), par.len());
        for ((a1, b1, r1), (a2, b2, r2)) in seq.iter().zip(&par) {
            assert_eq!((a1, b1), (a2, b2));
            assert_eq!(r1.explored, r2.explored);
            assert_eq!(r1.transitions, r2.transitions);
            assert_eq!(r1.depth, r2.depth);
            assert_eq!(r1.verified(), r2.verified());
        }
    }

    #[test]
    fn the_initial_state_round_trips_through_the_encoding() {
        let a = MachState::initial(3, 2);
        let b = MachState::initial(3, 2);
        assert_eq!(a.encode(), b.encode());
        assert_eq!(a.encode().len(), 2 * (2 + 2 * 3));
    }

    #[test]
    fn two_full_table_caches_one_line_verify_clean() {
        let report = verify_class(&[CacheKind::CopyBack; 2], &Shape::default());
        assert!(report.verified(), "{report}");
        assert!(report.explored > 10, "space too small: {report}");
    }

    #[test]
    fn unknown_protocol_names_are_rejected() {
        assert!(verify_protocol("no-such-protocol", 2, &Shape::default()).is_none());
        assert!(spec_for("also-missing").is_none());
    }

    #[test]
    fn exclusive_clean_is_relaxed_only_for_mixed_write_once() {
        assert!(relaxed_exclusive_clean(&["write-once", "moesi"]));
        assert!(!relaxed_exclusive_clean(&["write-once", "write-once"]));
        assert!(!relaxed_exclusive_clean(&["moesi", "dragon"]));
    }

    #[test]
    fn write_once_clashes_only_with_owner_capable_members() {
        assert!(!class_compatible("moesi", "write-once"));
        assert!(!class_compatible("write-once", "berkeley"));
        assert!(class_compatible("write-once", "write-once"));
        assert!(class_compatible("write-once", "write-through"));
        assert!(class_compatible("write-once", "illinois"));
        assert!(class_compatible("moesi", "dragon"));
    }

    #[test]
    fn single_cell_mutations_are_caught_or_provably_harmless() {
        let rows = mutation_sweep(&Shape::default());
        assert!(rows.len() >= 30, "only {} mutations", rows.len());
        // The §3.4 theorem, mechanically: a mutation the structural check
        // accepts is still a class member, so exploration finds no defect.
        for r in &rows {
            assert!(
                r.structural || r.defect.is_none(),
                "in-class mutation {} found {:?}",
                r.cell,
                r.defect
            );
            assert!(r.explored > 1, "{}: degenerate space", r.cell);
        }
        // Ignoring a snooped read-invalidate (col 6) leaves a stale copy that
        // the next local read returns: structural AND concrete.
        let ignored = rows
            .iter()
            .find(|r| r.cell == "bus (S, col 6)")
            .expect("the (S, col 6) cell is populated");
        assert!(ignored.structural);
        assert!(
            ignored.defect.is_some(),
            "ignoring an invalidate is silent?"
        );
        // Silently claiming M is likewise both rejected and reproduced.
        let claimed = rows
            .iter()
            .find(|r| r.cell == "local (S, Write)")
            .expect("the (S, Write) cell is populated");
        assert!(claimed.structural && claimed.defect.is_some());
    }

    #[test]
    fn verify_table_is_the_deep_oracle() {
        // The preferred table explores clean...
        let clean = verify_table(
            PolicyTable::preferred("candidate", CacheKind::CopyBack),
            &Shape::default(),
        );
        assert!(clean.verified(), "{clean}");
        // ...a corrupted one yields a counterexample.
        let mut broken = PolicyTable::preferred("broken", CacheKind::CopyBack);
        broken.set_local_unchecked(
            LineState::Shareable,
            LocalEvent::Write,
            LocalAction::silent(LineState::Modified),
        );
        let report = verify_table(broken, &Shape::default());
        assert!(report.counterexample.is_some(), "{report}");
    }

    #[test]
    fn mutation_sweep_of_accepts_arbitrary_bases() {
        // Berkeley's table is a different class member: its sweep covers its
        // own populated cells and upholds the same §3.4 invariant.
        let berkeley = *moesi::protocols::by_name("berkeley", 0)
            .expect("shipped")
            .policy_table()
            .expect("exact table");
        let rows = mutation_sweep_of(berkeley, &Shape::default());
        // Berkeley never uses E, so its sweep is smaller than the
        // preferred table's but still covers every populated cell.
        assert!(rows.len() >= 25, "only {} mutations", rows.len());
        for r in &rows {
            assert!(
                r.structural || r.defect.is_none(),
                "in-class mutation {} found {:?}",
                r.cell,
                r.defect
            );
        }
    }

    #[test]
    fn every_matrix_name_resolves_to_a_spec() {
        for name in MATRIX_PROTOCOLS {
            assert!(spec_for(name).is_some(), "unresolvable: {name}");
        }
    }
}
