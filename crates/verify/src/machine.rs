//! The abstract machine the explorer walks.
//!
//! This is a faithful state-and-data abstraction of the concrete stack
//! (`futurebus::Futurebus` + `mpsim::Fabric`/`CacheController`): each line
//! carries one symbolic value from a small domain instead of `line_size`
//! bytes, and time is collapsed to one processor operation per step. The
//! transaction semantics — who snoops, wired-OR `CH`, unique `DI`
//! intervention, `SL` broadcast connection, `BS` abort-push-retry, when
//! memory is updated or preempted — mirror `bus.rs::execute` and
//! `fabric.rs` clause by clause, so a counterexample found here replays on
//! the concrete machine (see `mpsim::replay`).

use moesi::table;
use moesi::{
    BusEvent, BusOp, BusReaction, CacheKind, LineState, LocalAction, LocalCtx, LocalEvent,
    Protocol, SnoopCtx,
};

/// How a module chooses among the permitted actions.
#[derive(Debug)]
pub enum Policy {
    /// Branch over the **entire** permitted Table 1/2 sets for the module's
    /// kind — the §3.4 class-at-large, covering every member protocol and
    /// every random/round-robin selector at once.
    FullTable,
    /// Follow one concrete protocol; the choice set per cell is whatever the
    /// protocol returns (sampled over several recency contexts, so
    /// context-sensitive refinements like Puzak's are covered).
    Protocol(Box<dyn Protocol + Send>),
}

/// One bus module in the explored configuration.
#[derive(Debug)]
pub struct ModuleSpec {
    /// The client kind (drives Table 1 column selection and snoop gating).
    pub kind: CacheKind,
    /// How this module picks among permitted actions.
    pub policy: Policy,
}

impl ModuleSpec {
    /// A module branching over the full permitted sets of its kind.
    #[must_use]
    pub fn full_table(kind: CacheKind) -> Self {
        ModuleSpec {
            kind,
            policy: Policy::FullTable,
        }
    }

    /// A module following a concrete protocol.
    #[must_use]
    pub fn protocol(p: Box<dyn Protocol + Send>) -> Self {
        ModuleSpec {
            kind: p.kind(),
            policy: Policy::Protocol(p),
        }
    }
}

/// Test-only corruption hooks: rewrite a permitted set before the explorer
/// branches over it. Used to prove the checker *would* catch a broken table.
pub type LocalOverride = fn(LineState, LocalEvent, CacheKind, Vec<LocalAction>) -> Vec<LocalAction>;
/// See [`LocalOverride`].
pub type BusOverride = fn(LineState, BusEvent, Vec<BusReaction>) -> Vec<BusReaction>;

/// Recency contexts sampled when querying a concrete protocol, so decisions
/// conditioned on `near_replacement()` (Puzak §5.2) contribute every variant
/// to the choice set.
const CTX_RANKS: [(Option<u32>, u32); 3] = [(None, 0), (Some(0), 2), (Some(1), 2)];

/// The per-module view of one line: protocol state plus the symbolic value.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ModLine {
    /// MOESI state.
    pub state: LineState,
    /// Value held (canonically 0 when the state is Invalid).
    pub val: u8,
}

impl ModLine {
    const EMPTY: ModLine = ModLine {
        state: LineState::Invalid,
        val: 0,
    };
}

/// One line of the global state: memory, the oracle's golden value, and every
/// module's copy.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct LineView {
    /// Main memory's value for the line.
    pub mem: u8,
    /// The golden value (last processor write, the serialisation order).
    pub golden: u8,
    /// Per-module copies.
    pub mods: Vec<ModLine>,
}

/// The global abstract state: every line.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct MachState {
    /// One entry per line.
    pub lines: Vec<LineView>,
}

impl MachState {
    /// The initial state: memory and golden agree on value 0, no copies.
    #[must_use]
    pub fn initial(modules: usize, lines: usize) -> Self {
        MachState {
            lines: vec![
                LineView {
                    mem: 0,
                    golden: 0,
                    mods: vec![ModLine::EMPTY; modules],
                };
                lines
            ],
        }
    }

    /// Canonical byte encoding, the deduplication key: per line `mem`,
    /// `golden`, then each module's `(state index, value)` with the value
    /// normalised to 0 for Invalid copies.
    #[must_use]
    pub fn encode(&self) -> Box<[u8]> {
        let mut out = Vec::with_capacity(self.lines.len() * (2 + 2 * self.lines[0].mods.len()));
        for line in &self.lines {
            out.push(line.mem);
            out.push(line.golden);
            for m in &line.mods {
                out.push(state_index(m.state));
                out.push(if m.state == LineState::Invalid {
                    0
                } else {
                    m.val
                });
            }
        }
        out.into_boxed_slice()
    }
}

fn state_index(s: LineState) -> u8 {
    LineState::ALL
        .iter()
        .position(|&x| x == s)
        .expect("state in ALL") as u8
}

/// A defect found during exploration: either one of the checker's five
/// invariants, or a structural error the concrete bus would reject.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Defect {
    /// Invariant 1: more than one cache owns the line.
    MultipleOwners(Vec<usize>),
    /// Invariant 2: an M/E holder coexists with another valid copy.
    ExclusivityViolated {
        /// The module holding M or E.
        holder: usize,
        /// Another module with a valid copy.
        other: usize,
    },
    /// Invariant 3: a valid copy differs from the golden value.
    StaleCopy {
        /// The module with the wrong data.
        holder: usize,
        /// Its state.
        state: LineState,
    },
    /// Invariant 4: no owner anywhere, but memory is not golden.
    StaleMemory,
    /// Invariant 5: an E copy differs from main memory.
    ExclusiveUnmodifiedDiffers {
        /// The module holding E.
        holder: usize,
    },
    /// A processor read returned a non-golden value.
    ReadMismatch {
        /// The reading module.
        module: usize,
        /// What it got.
        got: u8,
        /// The golden value.
        expected: u8,
    },
    /// A module left the state subset its kind may occupy.
    IllegalStateForKind {
        /// The module.
        module: usize,
        /// The out-of-subset state.
        state: LineState,
    },
    /// Two snoopers asserted DI in one transaction (`BusError` on the bus).
    MultipleInterveners(Vec<usize>),
    /// A snooper with a valid copy faced an empty permitted set (error cell).
    ErrorCell {
        /// The module.
        module: usize,
        /// Its state.
        state: LineState,
        /// The event it could not answer.
        event: BusEvent,
    },
    /// BS aborts exceeded the bus retry limit.
    TooManyRetries,
}

impl std::fmt::Display for Defect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Defect::MultipleOwners(owners) => write!(f, "multiple owners: {owners:?}"),
            Defect::ExclusivityViolated { holder, other } => {
                write!(f, "cpu{holder} exclusive but cpu{other} holds a copy")
            }
            Defect::StaleCopy { holder, state } => {
                write!(f, "cpu{holder} holds a stale {state} copy")
            }
            Defect::StaleMemory => f.write_str("unowned line with stale memory"),
            Defect::ExclusiveUnmodifiedDiffers { holder } => {
                write!(f, "cpu{holder} E copy differs from memory")
            }
            Defect::ReadMismatch {
                module,
                got,
                expected,
            } => {
                write!(f, "cpu{module} read {got}, expected {expected}")
            }
            Defect::IllegalStateForKind { module, state } => {
                write!(f, "cpu{module} reached {state}, outside its kind's subset")
            }
            Defect::MultipleInterveners(mods) => {
                write!(f, "multiple interveners: {mods:?}")
            }
            Defect::ErrorCell {
                module,
                state,
                event,
            } => {
                write!(
                    f,
                    "cpu{module} in {state} has no permitted reaction to {event}"
                )
            }
            Defect::TooManyRetries => f.write_str("BS aborts exceeded the retry limit"),
        }
    }
}

/// The machine: module specs plus exploration parameters.
pub struct Machine {
    specs: Vec<ModuleSpec>,
    /// Number of lines modelled.
    pub lines: usize,
    /// Size of the data domain; writes branch over values `0..values`.
    pub values: u8,
    /// Whether invariant 5 (E matches memory) is enforced.
    pub check_exclusive_clean: bool,
    /// Test-only Table 1 corruption hook.
    pub local_override: Option<LocalOverride>,
    /// Test-only Table 2 corruption hook.
    pub bus_override: Option<BusOverride>,
    max_retries: u32,
}

impl std::fmt::Debug for Machine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("modules", &self.specs.len())
            .field("lines", &self.lines)
            .field("values", &self.values)
            .finish_non_exhaustive()
    }
}

/// One candidate transition out of a state: the successor, the schedule
/// fragment that produced it, and the defect (if the step or the successor
/// breaks an invariant).
#[derive(Clone, Debug)]
pub struct Transition {
    /// The successor state (the pre-state of the defect, when one fired
    /// mid-transaction).
    pub next: MachState,
    /// Replayable record of the step.
    pub step: mpsim::replay::TraceStep,
    /// The defect, if this transition exposes one.
    pub defect: Option<Defect>,
}

/// Outcome of one abstract bus transaction branch.
struct TxnOutcome {
    line: LineView,
    ch_seen: bool,
    /// Value served by the data phase (reads only).
    data: Option<u8>,
    /// Every `on_bus` consultation, in bus order (incl. aborted rounds).
    log: Vec<(usize, BusReaction)>,
    error: Option<Defect>,
}

enum TxnKind {
    Read,
    Write(u8),
    AddressOnly,
}

impl Machine {
    /// Builds a machine over `specs` with the given line count and data
    /// domain. `values` must be at least 1 (value 0 is the initial content).
    #[must_use]
    pub fn new(specs: Vec<ModuleSpec>, lines: usize, values: u8) -> Self {
        assert!(values >= 1, "data domain must contain at least one value");
        assert!(lines >= 1, "at least one line");
        assert!(!specs.is_empty(), "at least one module");
        Machine {
            specs,
            lines,
            values,
            check_exclusive_clean: true,
            local_override: None,
            bus_override: None,
            max_retries: 4,
        }
    }

    /// The number of modules.
    #[must_use]
    pub fn modules(&self) -> usize {
        self.specs.len()
    }

    /// The module kinds, in bus order (for building a replayable trace).
    #[must_use]
    pub fn kinds(&self) -> Vec<CacheKind> {
        self.specs.iter().map(|s| s.kind).collect()
    }

    /// The permitted local choice set for module `m` at `(state, event)`.
    fn local_choices(&mut self, m: usize, state: LineState, event: LocalEvent) -> Vec<LocalAction> {
        let kind = self.specs[m].kind;
        let raw = match &mut self.specs[m].policy {
            Policy::FullTable => table::permitted_local(state, event, kind),
            Policy::Protocol(p) => {
                let mut out: Vec<LocalAction> = Vec::new();
                for (recency_rank, ways) in CTX_RANKS {
                    let ctx = LocalCtx {
                        recency_rank,
                        ways,
                        line_addr: None,
                    };
                    let a = p.on_local(state, event, &ctx);
                    if !out.contains(&a) {
                        out.push(a);
                    }
                }
                out
            }
        };
        match self.local_override {
            Some(f) => f(state, event, kind, raw),
            None => raw,
        }
    }

    /// The permitted snoop choice set for module `m` at `(state, event)`.
    fn bus_choices(&mut self, m: usize, state: LineState, event: BusEvent) -> Vec<BusReaction> {
        let raw = match &mut self.specs[m].policy {
            Policy::FullTable => table::permitted_bus(state, event),
            Policy::Protocol(p) => {
                let mut out: Vec<BusReaction> = Vec::new();
                for (recency_rank, ways) in CTX_RANKS {
                    let ctx = SnoopCtx {
                        recency_rank,
                        ways,
                        line_addr: None,
                    };
                    let r = p.on_bus(state, event, &ctx);
                    if !out.contains(&r) {
                        out.push(r);
                    }
                }
                out
            }
        };
        match self.bus_override {
            Some(f) => f(state, event, raw),
            None => raw,
        }
    }

    /// Checks the five shared-image invariants plus kind-subset compliance
    /// on one line. Mirrors `mpsim::Checker::verify` (same order, so the
    /// reported defect matches what a replay reports).
    #[must_use]
    pub fn check_line(&self, line: &LineView) -> Option<Defect> {
        let owners: Vec<usize> = line
            .mods
            .iter()
            .enumerate()
            .filter(|(_, m)| m.state.is_owned())
            .map(|(i, _)| i)
            .collect();
        // 1. Unique ownership.
        if owners.len() > 1 {
            return Some(Defect::MultipleOwners(owners));
        }
        // 2. Exclusivity.
        if let Some((i, _)) = line
            .mods
            .iter()
            .enumerate()
            .find(|(_, m)| m.state.is_exclusive())
        {
            if let Some((j, _)) = line
                .mods
                .iter()
                .enumerate()
                .find(|(j, m)| *j != i && m.state.is_valid())
            {
                return Some(Defect::ExclusivityViolated {
                    holder: i,
                    other: j,
                });
            }
        }
        // 3. Shared image: every valid copy is golden.
        for (i, m) in line.mods.iter().enumerate() {
            if m.state.is_valid() && m.val != line.golden {
                return Some(Defect::StaleCopy {
                    holder: i,
                    state: m.state,
                });
            }
        }
        // 5. Exclusive-clean (before 4, mirroring the checker's order).
        if self.check_exclusive_clean {
            for (i, m) in line.mods.iter().enumerate() {
                if m.state == LineState::Exclusive && line.mem != line.golden {
                    return Some(Defect::ExclusiveUnmodifiedDiffers { holder: i });
                }
            }
        }
        // 4. Default owner: unowned lines live in memory.
        if owners.is_empty() && line.mem != line.golden {
            return Some(Defect::StaleMemory);
        }
        // Kind subsets (write-through never owns, non-caching never holds).
        for (i, m) in line.mods.iter().enumerate() {
            if !self.specs[i].kind.reachable_states().contains(&m.state) {
                return Some(Defect::IllegalStateForKind {
                    module: i,
                    state: m.state,
                });
            }
        }
        None
    }

    /// Every transition out of `state`: for each module, line and local
    /// event, for each permitted local action, for each combination of
    /// permitted snooper reactions.
    #[must_use]
    pub fn transitions(&mut self, state: &MachState) -> Vec<Transition> {
        let mut out = Vec::new();
        for m in 0..self.specs.len() {
            for l in 0..self.lines {
                self.read_transitions(state, m, l, &mut out);
                self.write_transitions(state, m, l, &mut out);
                self.pass_flush_transitions(state, m, l, &mut out);
            }
        }
        out
    }

    /// Local Read (Table 1 note 1). A valid copy is a silent hit (the fabric
    /// bypasses the protocol entirely), so only misses branch.
    fn read_transitions(
        &mut self,
        state: &MachState,
        m: usize,
        l: usize,
        out: &mut Vec<Transition>,
    ) {
        let ml = state.lines[l].mods[m];
        if ml.state.is_valid() {
            return; // hit: no decision, no state change, value audited by inv. 3
        }
        for action in self.local_choices(m, LineState::Invalid, LocalEvent::Read) {
            if action.bus_op != BusOp::Read {
                continue; // the read path only issues bus reads
            }
            for txn in self.run_txn(&state.lines[l], m, &TxnKind::Read, action.signals, 0) {
                let mut line = txn.line;
                let mut defect = txn.error;
                if defect.is_none() {
                    let served = txn.data.expect("reads return data");
                    // Master side: fill if the resolved state is valid.
                    let result = action.result.resolve(txn.ch_seen);
                    if result.is_valid() {
                        line.mods[m] = ModLine {
                            state: result,
                            val: served,
                        };
                    }
                    if served != line.golden {
                        defect = Some(Defect::ReadMismatch {
                            module: m,
                            got: served,
                            expected: line.golden,
                        });
                    }
                }
                out.push(self.finish(
                    state,
                    l,
                    line,
                    m,
                    mpsim::replay::ReplayOp::Read,
                    vec![action],
                    txn.log,
                    defect,
                ));
            }
        }
    }

    /// Local Write (note 2), branching over the data domain. Mirrors
    /// `fabric::write_piece_inner` arm by arm.
    fn write_transitions(
        &mut self,
        state: &MachState,
        m: usize,
        l: usize,
        out: &mut Vec<Transition>,
    ) {
        let kind = self.specs[m].kind;
        for v in 0..self.values {
            let ml = state.lines[l].mods[m];
            if table::permitted_local(ml.state, LocalEvent::Write, kind).is_empty()
                && matches!(self.specs[m].policy, Policy::FullTable)
            {
                continue; // error cell for this kind (none exist today)
            }
            // Golden update happens at the serialisation point, before the
            // transaction (System::write's on_piece hook).
            let mut pre = state.lines[l].clone();
            pre.golden = v;
            self.write_from(
                state,
                &pre,
                m,
                l,
                ml.state,
                v,
                Vec::new(),
                Vec::new(),
                0,
                out,
            );
        }
    }

    /// One write decision from `cur_state`, recursing for `Read>Write`.
    #[allow(clippy::too_many_arguments)]
    fn write_from(
        &mut self,
        state: &MachState,
        line: &LineView,
        m: usize,
        l: usize,
        cur_state: LineState,
        v: u8,
        locals: Vec<LocalAction>,
        log: Vec<(usize, BusReaction)>,
        depth: u32,
        out: &mut Vec<Transition>,
    ) {
        if depth > 3 {
            return; // corrupted Read>Write loops; the real fabric would hang
        }
        for action in self.local_choices(m, cur_state, LocalEvent::Write) {
            let mut locals = locals.clone();
            locals.push(action);
            let op = mpsim::replay::ReplayOp::Write(v);
            match action.bus_op {
                BusOp::None => {
                    // Silent write: requires a resident line.
                    let mut line = line.clone();
                    let defect = if cur_state.is_valid() {
                        line.mods[m] = ModLine {
                            state: action.result.resolve(false),
                            val: v,
                        };
                        None
                    } else {
                        Some(Defect::StaleCopy {
                            holder: m,
                            state: cur_state,
                        })
                    };
                    out.push(self.finish(state, l, line, m, op, locals, log.clone(), defect));
                }
                BusOp::Write => {
                    for txn in self.run_txn(line, m, &TxnKind::Write(v), action.signals, 0) {
                        let mut line = txn.line;
                        let defect = txn.error;
                        if defect.is_none() {
                            let result = action.result.resolve(txn.ch_seen);
                            // write_cached succeeds only on a resident line
                            // (write-through hit or broadcast update); a
                            // write-past from Invalid changes nothing locally.
                            if line.mods[m].state.is_valid() {
                                line.mods[m] = ModLine {
                                    state: result,
                                    val: v,
                                };
                            }
                        }
                        let mut full_log = log.clone();
                        full_log.extend(txn.log);
                        out.push(self.finish(
                            state,
                            l,
                            line,
                            m,
                            op,
                            locals.clone(),
                            full_log,
                            defect,
                        ));
                    }
                }
                BusOp::AddressOnly => {
                    for txn in self.run_txn(line, m, &TxnKind::AddressOnly, action.signals, 0) {
                        let mut line = txn.line;
                        let mut defect = txn.error;
                        if defect.is_none() {
                            let result = action.result.resolve(txn.ch_seen);
                            if line.mods[m].state.is_valid() {
                                line.mods[m] = ModLine {
                                    state: result,
                                    val: v,
                                };
                            } else {
                                // fabric asserts residency for invalidate-writes
                                defect = Some(Defect::StaleCopy {
                                    holder: m,
                                    state: cur_state,
                                });
                            }
                        }
                        let mut full_log = log.clone();
                        full_log.extend(txn.log);
                        out.push(self.finish(
                            state,
                            l,
                            line,
                            m,
                            op,
                            locals.clone(),
                            full_log,
                            defect,
                        ));
                    }
                }
                BusOp::Read => {
                    // Read-for-modify: one bus read, then the write lands
                    // locally (memory is NOT updated — the master owns dirty).
                    for txn in self.run_txn(line, m, &TxnKind::Read, action.signals, 0) {
                        let mut line = txn.line;
                        let mut defect = txn.error;
                        if defect.is_none() {
                            let served = txn.data.expect("reads return data");
                            let result = action.result.resolve(txn.ch_seen);
                            if result.is_valid() {
                                let _ = served; // fill value immediately overwritten
                                line.mods[m] = ModLine {
                                    state: result,
                                    val: v,
                                };
                            } else {
                                defect = Some(Defect::StaleCopy {
                                    holder: m,
                                    state: result,
                                });
                            }
                        }
                        let mut full_log = log.clone();
                        full_log.extend(txn.log);
                        out.push(self.finish(
                            state,
                            l,
                            line,
                            m,
                            op,
                            locals.clone(),
                            full_log,
                            defect,
                        ));
                    }
                }
                BusOp::ReadThenWrite => {
                    // Two transactions: the protocol's Read row, then the
                    // write is re-decided from the new state.
                    for read_action in self.local_choices(m, cur_state, LocalEvent::Read) {
                        if read_action.bus_op != BusOp::Read {
                            continue;
                        }
                        let mut locals = locals.clone();
                        locals.push(read_action);
                        for txn in self.run_txn(line, m, &TxnKind::Read, read_action.signals, 0) {
                            if let Some(err) = txn.error {
                                let mut full_log = log.clone();
                                full_log.extend(txn.log);
                                out.push(self.finish(
                                    state,
                                    l,
                                    txn.line,
                                    m,
                                    op,
                                    locals.clone(),
                                    full_log,
                                    Some(err),
                                ));
                                continue;
                            }
                            let mut line = txn.line;
                            let served = txn.data.expect("reads return data");
                            let result = read_action.result.resolve(txn.ch_seen);
                            if result.is_valid() {
                                line.mods[m] = ModLine {
                                    state: result,
                                    val: served,
                                };
                            }
                            let mut full_log = log.clone();
                            full_log.extend(txn.log);
                            let mid = line.mods[m].state;
                            self.write_from(
                                state,
                                &line,
                                m,
                                l,
                                mid,
                                v,
                                locals.clone(),
                                full_log,
                                depth + 1,
                                out,
                            );
                        }
                    }
                }
            }
        }
    }

    /// Local Pass (note 3) and Flush (note 4), gated exactly as the fabric
    /// gates them (owned / valid respectively).
    fn pass_flush_transitions(
        &mut self,
        state: &MachState,
        m: usize,
        l: usize,
        out: &mut Vec<Transition>,
    ) {
        let ml = state.lines[l].mods[m];
        if ml.state.is_owned() {
            for action in self.local_choices(m, ml.state, LocalEvent::Pass) {
                if action.bus_op != BusOp::Write {
                    continue; // fabric debug-asserts passes are writes
                }
                for txn in self.run_txn(
                    &state.lines[l],
                    m,
                    &TxnKind::Write(ml.val),
                    action.signals,
                    0,
                ) {
                    let mut line = txn.line;
                    let defect = txn.error;
                    if defect.is_none() {
                        line.mods[m].state = action.result.resolve(txn.ch_seen);
                    }
                    out.push(self.finish(
                        state,
                        l,
                        line,
                        m,
                        mpsim::replay::ReplayOp::Pass,
                        vec![action],
                        txn.log,
                        defect,
                    ));
                }
            }
        }
        if ml.state.is_valid() {
            for action in self.local_choices(m, ml.state, LocalEvent::Flush) {
                if action.bus_op == BusOp::Write {
                    for txn in self.run_txn(
                        &state.lines[l],
                        m,
                        &TxnKind::Write(ml.val),
                        action.signals,
                        0,
                    ) {
                        let mut line = txn.line;
                        let defect = txn.error;
                        if defect.is_none() {
                            line.mods[m] = ModLine::EMPTY;
                        }
                        out.push(self.finish(
                            state,
                            l,
                            line,
                            m,
                            mpsim::replay::ReplayOp::Flush,
                            vec![action],
                            txn.log,
                            defect,
                        ));
                    }
                } else {
                    // Clean flush: drop the copy silently.
                    let mut line = state.lines[l].clone();
                    line.mods[m] = ModLine::EMPTY;
                    out.push(self.finish(
                        state,
                        l,
                        line,
                        m,
                        mpsim::replay::ReplayOp::Flush,
                        vec![action],
                        Vec::new(),
                        None,
                    ));
                }
            }
        }
    }

    /// Packages a finished step: swaps the touched line into the global
    /// state, checks invariants (unless the step already failed), and emits
    /// the replayable record.
    #[allow(clippy::too_many_arguments)]
    fn finish(
        &self,
        state: &MachState,
        l: usize,
        line: LineView,
        m: usize,
        op: mpsim::replay::ReplayOp,
        locals: Vec<LocalAction>,
        log: Vec<(usize, BusReaction)>,
        defect: Option<Defect>,
    ) -> Transition {
        let mut next = state.clone();
        next.lines[l] = line;
        let defect = defect.or_else(|| self.check_line(&next.lines[l]));
        Transition {
            next,
            step: mpsim::replay::TraceStep {
                module: m,
                line: l as u64,
                op,
                local_choices: locals,
                snoop_choices: log,
            },
            defect,
        }
    }

    /// Runs one abstract bus transaction, branching over every snooper's
    /// permitted reaction (and over retry rounds after BS aborts). Mirrors
    /// `bus.rs::execute`.
    fn run_txn(
        &mut self,
        line: &LineView,
        master: usize,
        kind: &TxnKind,
        signals: moesi::MasterSignals,
        retries: u32,
    ) -> Vec<TxnOutcome> {
        let Some(event) = BusEvent::from_signals(signals) else {
            // Illegal signal combination: the bus would reject the request.
            return vec![TxnOutcome {
                line: line.clone(),
                ch_seen: false,
                data: None,
                log: Vec::new(),
                error: Some(Defect::TooManyRetries),
            }];
        };

        // Snoopers: every other module with a cache and a valid copy (the
        // controller answers NONE for cacheless or Invalid without
        // consulting the protocol).
        let snoopers: Vec<usize> = (0..self.specs.len())
            .filter(|&i| {
                i != master
                    && self.specs[i].kind != CacheKind::NonCaching
                    && line.mods[i].state.is_valid()
            })
            .collect();

        let mut choice_sets: Vec<(usize, Vec<BusReaction>)> = Vec::with_capacity(snoopers.len());
        for &i in &snoopers {
            let choices = self.bus_choices(i, line.mods[i].state, event);
            if choices.is_empty() {
                return vec![TxnOutcome {
                    line: line.clone(),
                    ch_seen: false,
                    data: None,
                    log: Vec::new(),
                    error: Some(Defect::ErrorCell {
                        module: i,
                        state: line.mods[i].state,
                        event,
                    }),
                }];
            }
            choice_sets.push((i, choices));
        }

        // Cartesian product over the snoopers' choices.
        let mut outcomes = Vec::new();
        let mut combo = vec![0usize; choice_sets.len()];
        loop {
            let chosen: Vec<(usize, BusReaction)> = choice_sets
                .iter()
                .zip(&combo)
                .map(|((i, set), &c)| (*i, set[c]))
                .collect();
            outcomes.extend(self.run_txn_combo(line, master, kind, signals, retries, &chosen));

            // Advance the odometer.
            let mut k = 0;
            loop {
                if k == combo.len() {
                    return outcomes;
                }
                combo[k] += 1;
                if combo[k] < choice_sets[k].1.len() {
                    break;
                }
                combo[k] = 0;
                k += 1;
            }
        }
    }

    /// One fixed combination of snooper reactions: the BS/abort round, data
    /// phase, and completion phase of `bus.rs::execute`.
    fn run_txn_combo(
        &mut self,
        line: &LineView,
        master: usize,
        kind: &TxnKind,
        signals: moesi::MasterSignals,
        retries: u32,
        chosen: &[(usize, BusReaction)],
    ) -> Vec<TxnOutcome> {
        let log: Vec<(usize, BusReaction)> = chosen.to_vec();

        // ---- BS: abort, push, restart. ----
        if chosen.iter().any(|(_, r)| r.busy.is_some()) {
            if retries + 1 > self.max_retries {
                return vec![TxnOutcome {
                    line: line.clone(),
                    ch_seen: false,
                    data: None,
                    log,
                    error: Some(Defect::TooManyRetries),
                }];
            }
            let mut pushed = line.clone();
            for (i, r) in chosen {
                if let Some(push) = r.busy {
                    // prepare_push: the line goes to memory, the pusher
                    // transitions to the push result.
                    pushed.mem = pushed.mods[*i].val;
                    pushed.mods[*i] = if push.result == LineState::Invalid {
                        ModLine::EMPTY
                    } else {
                        ModLine {
                            state: push.result,
                            val: pushed.mods[*i].val,
                        }
                    };
                }
            }
            // The master retries the identical transaction.
            let mut out = Vec::new();
            for mut retry in self.run_txn(&pushed, master, kind, signals, retries + 1) {
                let mut full = log.clone();
                full.extend(retry.log);
                retry.log = full;
                out.push(retry);
            }
            return out;
        }

        // ---- Unique intervener. ----
        let interveners: Vec<usize> = chosen
            .iter()
            .filter(|(_, r)| r.di)
            .map(|(i, _)| *i)
            .collect();
        if interveners.len() > 1 {
            return vec![TxnOutcome {
                line: line.clone(),
                ch_seen: false,
                data: None,
                log,
                error: Some(Defect::MultipleInterveners(interveners)),
            }];
        }
        let intervener = interveners.first().copied();
        let broadcast = signals.bc;
        let mut next = line.clone();

        // ---- Data phase. ----
        let data = match kind {
            TxnKind::Read => Some(match intervener {
                Some(i) => next.mods[i].val, // intervention does NOT update memory
                None => next.mem,
            }),
            TxnKind::Write(v) => {
                if broadcast {
                    next.mem = *v; // broadcast writes always reach memory
                } else if intervener.is_some() {
                    // the owner captures the write; memory is preempted
                } else {
                    next.mem = *v;
                }
                None
            }
            TxnKind::AddressOnly => None,
        };

        // ---- Completion phase. ----
        let write_val = match kind {
            TxnKind::Write(v) => Some(*v),
            _ => None,
        };
        for (i, r) in chosen {
            let ch_others = chosen.iter().any(|(j, other)| j != i && other.ch);
            let delivers = write_val.is_some() && (r.sl || (r.di && !broadcast));
            if let Some(v) = write_val {
                if delivers {
                    next.mods[*i].val = v;
                }
            }
            let result = r.result.resolve(ch_others);
            next.mods[*i] = if result == LineState::Invalid {
                ModLine::EMPTY
            } else {
                ModLine {
                    state: result,
                    val: next.mods[*i].val,
                }
            };
        }

        vec![TxnOutcome {
            line: next,
            ch_seen: chosen.iter().any(|(_, r)| r.ch),
            data,
            log,
            error: None,
        }]
    }
}
