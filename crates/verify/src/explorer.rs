//! Breadth-first exhaustive exploration of the abstract machine.
//!
//! States are deduplicated on their canonical byte encoding
//! ([`MachState::encode`]); each admitted state keeps a parent pointer plus
//! the [`TraceStep`](mpsim::replay::TraceStep) that reached it, so the first
//! defect found unwinds into a **minimal-length** counterexample schedule
//! (BFS explores shortest schedules first).

use crate::machine::{Defect, MachState, Machine};
use mpsim::replay::{Trace, TraceStep};
use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};

/// Exploration limits.
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Stop expanding after this many distinct states (0 = unbounded).
    pub max_states: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_states: 2_000_000,
        }
    }
}

/// A counterexample: a replayable schedule plus the defect it exposes.
#[derive(Clone, Debug)]
pub struct Counterexample {
    /// The schedule, feedable straight into [`mpsim::replay::replay`].
    pub trace: Trace,
    /// The defect observed by the abstract machine.
    pub defect: Defect,
}

/// The result of one exhaustive exploration.
#[derive(Debug)]
pub struct Report {
    /// Distinct reachable states admitted (each invariant-checked).
    pub explored: usize,
    /// Transitions examined (successor computations, including duplicates).
    pub transitions: usize,
    /// Largest frontier (queue length) seen during the search.
    pub frontier_peak: usize,
    /// Depth (schedule length) of the deepest admitted state.
    pub depth: usize,
    /// Whether the state cap stopped the search before exhaustion.
    pub truncated: bool,
    /// The first (minimal) defect found, if any.
    pub counterexample: Option<Counterexample>,
}

impl Report {
    /// True when the whole reachable space was explored defect-free.
    #[must_use]
    pub fn verified(&self) -> bool {
        self.counterexample.is_none() && !self.truncated
    }
}

impl std::fmt::Display for Report {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.counterexample {
            Some(cx) => {
                writeln!(
                    f,
                    "VIOLATION after {} states ({} transitions): {}",
                    self.explored, self.transitions, cx.defect
                )?;
                write!(f, "{}", cx.trace)
            }
            None => write!(
                f,
                "{}: {} states, {} transitions, depth {}, frontier peak {}",
                if self.truncated {
                    "TRUNCATED"
                } else {
                    "verified"
                },
                self.explored,
                self.transitions,
                self.depth,
                self.frontier_peak
            ),
        }
    }
}

/// Per-state bookkeeping for trace reconstruction.
struct Node {
    parent: Option<Box<[u8]>>,
    step: Option<TraceStep>,
    depth: usize,
}

/// Exhaustively explores `machine` from the initial state, checking every
/// admitted state against the five invariants. Returns on the first defect
/// (with a minimal counterexample) or when the space is exhausted.
#[must_use]
pub fn explore(machine: &mut Machine, limits: &Limits) -> Report {
    let line_size = 8; // replayed traces use 8-byte lines
    let initial = MachState::initial(machine.modules(), machine.lines);
    let init_key = initial.encode();

    let mut seen: HashMap<Box<[u8]>, Node> = HashMap::new();
    seen.insert(
        init_key.clone(),
        Node {
            parent: None,
            step: None,
            depth: 0,
        },
    );
    let mut queue: VecDeque<(MachState, Box<[u8]>)> = VecDeque::new();
    queue.push_back((initial, init_key));

    let mut report = Report {
        explored: 1,
        transitions: 0,
        frontier_peak: 1,
        depth: 0,
        truncated: false,
        counterexample: None,
    };

    while let Some((state, key)) = queue.pop_front() {
        let depth = seen[&key].depth;
        for t in machine.transitions(&state) {
            report.transitions += 1;
            if let Some(defect) = t.defect {
                let trace = unwind(&seen, &key, t.step, machine, line_size, &defect);
                report.counterexample = Some(Counterexample { trace, defect });
                return report;
            }
            let next_key = t.next.encode();
            if let Entry::Vacant(slot) = seen.entry(next_key.clone()) {
                slot.insert(Node {
                    parent: Some(key.clone()),
                    step: Some(t.step),
                    depth: depth + 1,
                });
                report.explored += 1;
                report.depth = report.depth.max(depth + 1);
                queue.push_back((t.next, next_key));
                report.frontier_peak = report.frontier_peak.max(queue.len());
                if limits.max_states != 0 && report.explored >= limits.max_states {
                    report.truncated = true;
                    return report;
                }
            }
        }
    }
    report
}

/// Walks parent pointers from `key` back to the root and appends the
/// violating step, producing the minimal replayable schedule.
fn unwind(
    seen: &HashMap<Box<[u8]>, Node>,
    key: &[u8],
    last: TraceStep,
    machine: &Machine,
    line_size: usize,
    defect: &Defect,
) -> Trace {
    let mut steps = vec![last];
    let mut cursor = key.to_vec().into_boxed_slice();
    loop {
        let node = &seen[&cursor];
        match (&node.parent, &node.step) {
            (Some(parent), Some(step)) => {
                steps.push(step.clone());
                cursor = parent.clone();
            }
            _ => break,
        }
    }
    steps.reverse();
    Trace {
        line_size,
        modules: machine.kinds(),
        steps,
        faults: Vec::new(),
        expected: defect.to_string(),
    }
}
