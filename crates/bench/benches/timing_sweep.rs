//! E5: §5.2 cost-sensitivity sweep — how intervention latency moves the cost
//! of an intervention-based protocol against a push-to-memory one.

use bench::{homogeneous_system, workload_streams, LINE};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use futurebus::TimingConfig;

const CPUS: usize = 4;
const STEPS: u64 = 150;

fn run(protocol: &str, intervention_ns: u64) -> u64 {
    let timing = TimingConfig {
        intervention_latency_ns: intervention_ns,
        ..TimingConfig::default()
    };
    let mut sys = homogeneous_system(protocol, CPUS, 4096, LINE, timing, false);
    let mut streams = workload_streams("ping-pong", CPUS, LINE, 3);
    sys.run(&mut streams, STEPS);
    sys.bus_stats().busy_ns
}

fn bench_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("timing_sweep");
    group.sample_size(10);
    for intervention in [50u64, 150, 300, 600] {
        for protocol in ["moesi-invalidating", "illinois"] {
            group.bench_with_input(
                BenchmarkId::new(protocol, intervention),
                &intervention,
                |b, &ns| b.iter(|| black_box(run(protocol, ns))),
            );
        }
    }
    group.finish();

    // Shape check: the intervention protocol's simulated cost must grow with
    // intervention latency, while the push protocol's must not.
    c.bench_function("timing_sweep/sensitivity_shape", |b| {
        b.iter(|| {
            let cheap = run("moesi-invalidating", 50);
            let dear = run("moesi-invalidating", 600);
            assert!(dear > cheap, "intervention cost must matter");
            let ill_cheap = run("illinois", 50);
            let ill_dear = run("illinois", 600);
            assert_eq!(ill_cheap, ill_dear, "illinois never intervenes");
            black_box((cheap, dear))
        });
    });
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);
