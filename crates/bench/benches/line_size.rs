//! E6: §5.1 line-size study — miss ratio falls and per-miss traffic grows
//! with the line size, the trade-off behind the standard-line-size mandate.

use bench::homogeneous_system;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use futurebus::TimingConfig;
use mpsim::{RefStream, Sequential};

const STEPS: u64 = 1_000;

fn run(line: usize) -> (f64, u64) {
    let mut sys = homogeneous_system("moesi", 1, 4096, line, TimingConfig::default(), false);
    let mut streams: Vec<Box<dyn RefStream + Send>> =
        vec![Box::new(Sequential::new(0, 4, 4096, 0.2, 9))];
    sys.run(&mut streams, STEPS);
    (sys.total_stats().hit_ratio(), sys.bus_stats().bytes_moved)
}

fn bench_line_sizes(c: &mut Criterion) {
    let mut group = c.benchmark_group("line_size");
    group.sample_size(10);
    for line in [8usize, 16, 32, 64, 128] {
        group.bench_with_input(BenchmarkId::from_parameter(line), &line, |b, &line| {
            b.iter(|| black_box(run(line)));
        });
    }
    group.finish();

    c.bench_function("line_size/shape", |b| {
        b.iter(|| {
            let (hit_small, bytes_small) = run(8);
            let (hit_large, bytes_large) = run(128);
            assert!(
                hit_large > hit_small,
                "larger lines must exploit sequential locality"
            );
            assert!(
                bytes_large > bytes_small,
                "larger lines must move more bytes"
            );
            black_box((hit_small, hit_large))
        });
    });
}

criterion_group!(benches, bench_line_sizes);
criterion_main!(benches);
