//! E7: the §6 multiple-bus extension — parent-bus traffic of a two-level
//! hierarchy versus a flat single bus under cluster-local sharing.

use cache_array::{CacheConfig, ReplacementKind};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use moesi::protocols::MoesiPreferred;
use mpsim::hierarchy::HierarchyBuilder;
use mpsim::workload::{DuboisBriggs, SharingModel};
use mpsim::{RefStream, SystemBuilder};

const LINE: usize = 32;
const STEPS: u64 = 200;

fn cfg() -> CacheConfig {
    CacheConfig::new(2048, LINE, 2, ReplacementKind::Lru)
}

fn model() -> SharingModel {
    SharingModel {
        shared_lines: 8,
        private_lines: 32,
        p_shared: 0.15,
        p_write: 0.3,
        p_rereference: 0.4,
        line_size: LINE as u64,
    }
}

fn run_flat(cpus: usize) -> u64 {
    let mut b = SystemBuilder::new(LINE);
    for _ in 0..cpus {
        b = b.cache(Box::new(MoesiPreferred::new()), cfg());
    }
    let mut sys = b.build();
    let mut streams: Vec<Box<dyn RefStream + Send>> = (0..cpus)
        .map(|cpu| Box::new(DuboisBriggs::new(cpu / 2, model(), 5)) as _)
        .collect();
    sys.run(&mut streams, STEPS);
    sys.bus_stats().transactions
}

fn run_hierarchy(clusters: usize, per_cluster: usize) -> u64 {
    let mut b = HierarchyBuilder::new(LINE);
    for _ in 0..clusters {
        b = b.cluster();
        for _ in 0..per_cluster {
            b = b.cache(Box::new(MoesiPreferred::new()), cfg());
        }
    }
    let mut sys = b.build();
    let mut streams: Vec<Vec<Box<dyn RefStream + Send>>> = (0..clusters)
        .map(|cluster| {
            (0..per_cluster)
                .map(|_| {
                    Box::new(DuboisBriggs::new(cluster, model(), 5)) as Box<dyn RefStream + Send>
                })
                .collect()
        })
        .collect();
    sys.run(&mut streams, STEPS);
    sys.parent_stats().transactions
}

fn bench_hierarchy(c: &mut Criterion) {
    let mut group = c.benchmark_group("hierarchy");
    group.sample_size(10);
    for &cpus in &[4usize, 8, 16] {
        group.bench_with_input(BenchmarkId::new("flat", cpus), &cpus, |b, &cpus| {
            b.iter(|| black_box(run_flat(cpus)));
        });
        group.bench_with_input(BenchmarkId::new("two_level", cpus), &cpus, |b, &cpus| {
            b.iter(|| black_box(run_hierarchy(cpus / 2, 2)));
        });
    }
    group.finish();

    c.bench_function("hierarchy/parent_bus_offload_shape", |b| {
        b.iter(|| {
            let flat = run_flat(8);
            let parent = run_hierarchy(4, 2);
            assert!(
                parent * 2 < flat,
                "the parent bus must carry far less than the flat bus ({parent} vs {flat})"
            );
            black_box((flat, parent))
        });
    });
}

criterion_group!(benches, bench_hierarchy);
criterion_main!(benches);
