//! Micro-benchmark: pure state-machine throughput of every protocol.
//!
//! Measures `on_local` and `on_bus` decision rates over all legal
//! (state, event) cells — the cost a hardware evaluation would implement in
//! a PAL, here the innermost loop of the simulator.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use moesi::protocols::by_name;
use moesi::{table, BusEvent, LineState, LocalCtx, LocalEvent, SnoopCtx};

fn bench_protocol_decisions(c: &mut Criterion) {
    let mut group = c.benchmark_group("state_machine");
    group.sample_size(30);

    for name in [
        "moesi",
        "berkeley",
        "dragon",
        "write-once",
        "illinois",
        "firefly",
        "synapse",
    ] {
        let mut p = by_name(name, 1).expect("known protocol");
        let reachable = moesi::compat::reachable_states(p.as_mut());
        let local_cells: Vec<(LineState, LocalEvent)> = reachable
            .iter()
            .flat_map(|&s| {
                [LocalEvent::Read, LocalEvent::Write]
                    .into_iter()
                    .map(move |e| (s, e))
            })
            .filter(|&(s, e)| !table::permitted_local(s, e, moesi::CacheKind::CopyBack).is_empty())
            .collect();
        let bus_cells: Vec<(LineState, BusEvent)> = reachable
            .iter()
            .flat_map(|&s| BusEvent::ALL.into_iter().map(move |e| (s, e)))
            // Skip the class's error-condition cells; every protocol either
            // defines the rest itself or falls back to the MOESI entry.
            .filter(|&(s, e)| !table::permitted_bus(s, e).is_empty())
            .collect();

        group.bench_function(format!("{name}/local"), |b| {
            b.iter(|| {
                for &(s, e) in &local_cells {
                    black_box(p.on_local(black_box(s), black_box(e), &LocalCtx::default()));
                }
            });
        });
        group.bench_function(format!("{name}/bus"), |b| {
            b.iter(|| {
                for &(s, e) in &bus_cells {
                    black_box(p.on_bus(black_box(s), black_box(e), &SnoopCtx::default()));
                }
            });
        });
    }
    group.finish();
}

fn bench_permitted_sets(c: &mut Criterion) {
    c.bench_function("table/permitted_local_all_cells", |b| {
        b.iter(|| {
            for s in LineState::ALL {
                for e in LocalEvent::ALL {
                    black_box(table::permitted_local(s, e, moesi::CacheKind::CopyBack));
                }
            }
        });
    });
    c.bench_function("table/permitted_bus_all_cells", |b| {
        b.iter(|| {
            for s in LineState::ALL {
                for e in BusEvent::ALL {
                    black_box(table::permitted_bus(s, e));
                }
            }
        });
    });
}

criterion_group!(benches, bench_protocol_decisions, bench_permitted_sets);
criterion_main!(benches);
