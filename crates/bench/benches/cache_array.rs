//! Micro-benchmarks of the cache-array substrate: lookup, fill/evict and
//! replacement bookkeeping — the per-access cost under every simulator run.

use cache_array::{CacheArray, CacheConfig, ReplacementKind};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use moesi::LineState;

fn filled_cache(cfg: CacheConfig) -> CacheArray<LineState> {
    let mut cache = CacheArray::new(cfg, 42);
    for i in 0..cfg.lines() as u64 {
        cache.fill(
            i * cfg.line_size as u64,
            LineState::Shareable,
            vec![0; cfg.line_size].into(),
        );
    }
    cache
}

fn bench_lookup(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_array/lookup");
    for ways in [1usize, 2, 4, 8] {
        let cfg = CacheConfig::new(8192, 32, ways, ReplacementKind::Lru);
        let cache = filled_cache(cfg);
        group.bench_with_input(BenchmarkId::from_parameter(ways), &ways, |b, _| {
            let mut addr = 0u64;
            b.iter(|| {
                addr = (addr + 32) % 8192;
                black_box(cache.lookup(black_box(addr)))
            });
        });
    }
    group.finish();
}

fn bench_fill_evict(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache_array/fill_evict");
    for policy in [
        ReplacementKind::Lru,
        ReplacementKind::Fifo,
        ReplacementKind::Random,
    ] {
        let cfg = CacheConfig::new(4096, 32, 4, ReplacementKind::Lru);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{policy}")),
            &policy,
            |b, &policy| {
                let cfg =
                    CacheConfig::new(cfg.size_bytes, cfg.line_size, cfg.associativity, policy);
                let mut cache = filled_cache(cfg);
                let mut addr = 0x10_0000u64;
                b.iter(|| {
                    addr += 32;
                    black_box(cache.fill(black_box(addr), LineState::Exclusive, vec![0; 32].into()))
                });
            },
        );
    }
    group.finish();
}

fn bench_touch_and_rank(c: &mut Criterion) {
    let cfg = CacheConfig::new(8192, 32, 8, ReplacementKind::Lru);
    let mut cache = filled_cache(cfg);
    c.bench_function("cache_array/touch", |b| {
        let mut addr = 0u64;
        b.iter(|| {
            addr = (addr + 32) % 8192;
            cache.touch(black_box(addr));
        });
    });
    c.bench_function("cache_array/recency_rank", |b| {
        let mut addr = 0u64;
        b.iter(|| {
            addr = (addr + 32) % 8192;
            black_box(cache.recency_rank(black_box(addr)))
        });
    });
}

criterion_group!(
    benches,
    bench_lookup,
    bench_fill_evict,
    bench_touch_and_rank
);
criterion_main!(benches);
