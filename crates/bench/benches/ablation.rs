//! E4: the §5.2 Puzak replacement-status refinement, as an ablation.
//!
//! Three policies differ only in the snooped-broadcast-write decision:
//! always update (`moesi`), always invalidate (`moesi-invalidating`), or
//! update-if-recent / discard-if-near-replacement (`puzak`). Under private
//! cache pressure that ages shared lines, the refinement should sit between
//! the two extremes.

use bench::{homogeneous_system, LINE};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use futurebus::TimingConfig;
use mpsim::workload::{DuboisBriggs, SharingModel};
use mpsim::RefStream;

const CPUS: usize = 4;
const STEPS: u64 = 300;

fn run(protocol: &str) -> u64 {
    // A small 2-way cache under private pressure: shared lines often reach
    // LRU before their next use, making blind updates wasted work.
    let mut sys = homogeneous_system(protocol, CPUS, 1024, LINE, TimingConfig::default(), false);
    let model = SharingModel {
        shared_lines: 8,
        private_lines: 48,
        p_shared: 0.3,
        p_write: 0.4,
        p_rereference: 0.2,
        line_size: LINE as u64,
    };
    let mut streams: Vec<Box<dyn RefStream + Send>> = (0..CPUS)
        .map(|cpu| Box::new(DuboisBriggs::new(cpu, model, 5)) as _)
        .collect();
    sys.run(&mut streams, STEPS);
    sys.bus_stats().busy_ns
}

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation");
    group.sample_size(10);
    for protocol in ["moesi", "moesi-invalidating", "puzak"] {
        group.bench_with_input(
            BenchmarkId::from_parameter(protocol),
            protocol,
            |b, protocol| b.iter(|| black_box(run(protocol))),
        );
    }
    group.finish();

    c.bench_function("ablation/puzak_updates_selectively", |b| {
        b.iter(|| {
            // The refinement must apply *fewer* updates than always-update
            // and *fewer* invalidations than always-invalidate.
            let mut always =
                homogeneous_system("moesi", CPUS, 1024, LINE, TimingConfig::default(), false);
            let mut refined =
                homogeneous_system("puzak", CPUS, 1024, LINE, TimingConfig::default(), false);
            let model = SharingModel {
                shared_lines: 8,
                private_lines: 48,
                p_shared: 0.3,
                p_write: 0.4,
                p_rereference: 0.2,
                line_size: LINE as u64,
            };
            for sys in [&mut always, &mut refined] {
                let mut streams: Vec<Box<dyn RefStream + Send>> = (0..CPUS)
                    .map(|cpu| Box::new(DuboisBriggs::new(cpu, model, 5)) as _)
                    .collect();
                sys.run(&mut streams, STEPS);
            }
            let a = always.total_stats();
            let r = refined.total_stats();
            assert!(
                r.updates_received < a.updates_received,
                "the refinement must skip some updates ({} vs {})",
                r.updates_received,
                a.updates_received
            );
            black_box((a.updates_received, r.updates_received))
        });
    });
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
