//! E3: full-system protocol comparison (the Archibald & Baer-style study
//! behind §5.2's preferences), as a Criterion benchmark.
//!
//! Each measurement runs a homogeneous 4-CPU system of one protocol over one
//! workload; the throughput figure of merit is simulated references per
//! second of host time, and the simulated bus-busy time per run is asserted
//! to preserve the paper-shaped ordering (update beats invalidate on live
//! sharing).

use bench::{homogeneous_system, workload_streams, COMPARED_PROTOCOLS, LINE};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use futurebus::TimingConfig;

const CPUS: usize = 4;
const STEPS: u64 = 200;

fn run_once(protocol: &str, workload: &str) -> u64 {
    let mut sys = homogeneous_system(protocol, CPUS, 4096, LINE, TimingConfig::default(), false);
    let mut streams = workload_streams(workload, CPUS, LINE, 7);
    sys.run(&mut streams, STEPS);
    sys.bus_stats().busy_ns
}

fn bench_protocols(c: &mut Criterion) {
    for workload in ["general", "ping-pong", "read-mostly"] {
        let mut group = c.benchmark_group(format!("protocol_compare/{workload}"));
        group.sample_size(10);
        for protocol in COMPARED_PROTOCOLS {
            group.bench_with_input(
                BenchmarkId::from_parameter(protocol),
                protocol,
                |b, protocol| {
                    b.iter(|| black_box(run_once(protocol, workload)));
                },
            );
        }
        group.finish();
    }
}

fn shape_checks(c: &mut Criterion) {
    // One cheap bench that locks in the headline ordering.
    c.bench_function(
        "protocol_compare/update_beats_invalidate_on_ping_pong",
        |b| {
            b.iter(|| {
                let update = run_once("moesi", "ping-pong");
                let invalidate = run_once("moesi-invalidating", "ping-pong");
                assert!(
                    update < invalidate,
                    "update ({update} ns) must beat invalidate ({invalidate} ns) on ping-pong"
                );
                black_box((update, invalidate))
            });
        },
    );
}

criterion_group!(benches, bench_protocols, shape_checks);
criterion_main!(benches);
