//! E10: the §1 bus-saturation argument — aggregate throughput vs processor
//! count for cacheless, write-through and copy-back machines, using the
//! contention-aware timed mode.

use cache_array::{CacheConfig, ReplacementKind};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use moesi::protocols::by_name;
use mpsim::workload::{DuboisBriggs, SharingModel};
use mpsim::{RefStream, TimedReport};

const LINE: usize = 32;
const REFS: u64 = 800;

fn run(kind: &str, cpus: usize) -> TimedReport {
    let cfg = CacheConfig::new(4096, LINE, 2, ReplacementKind::Lru);
    let mut b = mpsim::SystemBuilder::new(LINE);
    for i in 0..cpus {
        b = match kind {
            "none" => b.uncached(by_name("non-caching", i as u64).unwrap()),
            name => b.cache(by_name(name, i as u64).unwrap(), cfg),
        };
    }
    let mut sys = b.build();
    let model = SharingModel {
        p_shared: 0.1,
        line_size: LINE as u64,
        ..SharingModel::default()
    };
    let mut streams: Vec<Box<dyn RefStream + Send>> = (0..cpus)
        .map(|cpu| Box::new(DuboisBriggs::new(cpu, model, 9)) as _)
        .collect();
    sys.run_timed(&mut streams, REFS, 50)
}

fn bench_saturation(c: &mut Criterion) {
    let mut group = c.benchmark_group("saturation");
    group.sample_size(10);
    for cpus in [1usize, 4, 8] {
        for kind in ["none", "write-through", "moesi"] {
            group.bench_with_input(BenchmarkId::new(kind, cpus), &cpus, |b, &cpus| {
                b.iter(|| black_box(run(kind, cpus)))
            });
        }
    }
    group.finish();

    c.bench_function("saturation/caches_prevent_saturation_shape", |b| {
        b.iter(|| {
            // §1's claim as assertions: at 8 CPUs, the cacheless bus is
            // saturated and throughput is far below the cached machines'.
            let none = run("none", 8);
            let moesi = run("moesi", 8);
            assert!(none.bus_utilization() > 0.99, "cacheless bus must saturate");
            assert!(
                moesi.refs_per_us() > 3.0 * none.refs_per_us(),
                "copy-back caches must multiply aggregate throughput ({} vs {})",
                moesi.refs_per_us(),
                none.refs_per_us()
            );
            // And caches must scale: 4 CPUs beat 1 CPU clearly.
            let one = run("moesi", 1);
            let four = run("moesi", 4);
            assert!(four.refs_per_us() > 1.2 * one.refs_per_us());
            black_box((none, moesi))
        });
    });
}

criterion_group!(benches, bench_saturation);
criterion_main!(benches);
