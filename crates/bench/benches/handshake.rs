//! Figure 2 benchmark: the broadcast address handshake at growing populations.
//!
//! Confirms the §2.2 cost structure — the cycle is governed by the slowest
//! module plus the fixed 25 ns wired-OR filter penalty, independent of how
//! many boards participate — and measures the simulator's own throughput.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use futurebus::handshake::HandshakeSim;
use futurebus::TimingConfig;

fn bench_handshake(c: &mut Criterion) {
    let sim = HandshakeSim::new(TimingConfig::default());
    let mut group = c.benchmark_group("handshake");
    group.sample_size(50);
    for modules in [1usize, 2, 4, 8, 16, 32] {
        let delays: Vec<u64> = (0..modules).map(|i| 20 + (i as u64 * 13) % 70).collect();
        // Assert the paper's invariants once per size before timing.
        let trace = sim.run(&delays);
        assert_eq!(trace.glitches, modules as u64 - 1);
        let slowest = delays.iter().max().copied().unwrap_or(0);
        assert!(trace.duration >= slowest);

        group.bench_with_input(BenchmarkId::new("run", modules), &delays, |b, delays| {
            b.iter(|| black_box(sim.run(black_box(delays))));
        });
    }
    group.finish();
}

fn bench_broadcast_overhead(c: &mut Criterion) {
    let sim = HandshakeSim::new(TimingConfig::default());
    c.bench_function("handshake/broadcast_overhead", |b| {
        b.iter(|| {
            let o = sim.broadcast_overhead(black_box(40), black_box(8));
            assert_eq!(o, 25, "the paper's 25 ns penalty");
            black_box(o)
        });
    });
}

criterion_group!(benches, bench_handshake, bench_broadcast_overhead);
criterion_main!(benches);
