//! The hierarchy saturation study (experiment E8): fabric-tree machines
//! swept over cache count x tree depth x arbitration discipline x protocol.
//!
//! Where [`crate::sweep`] times one flat bus under contention, this module
//! asks the §6 question at scale: how much root-bus traffic does a recursive
//! fabric tree absorb as the machine grows, and how much of what remains do
//! the bridges' inclusion snoop filters suppress before it ever reaches a
//! subtree? Every cell builds one uniform tree via
//! [`mpsim::hierarchy::TreeBuilder::uniform`], drives the Dubois-&-Briggs
//! sharing workload on every leaf cache, and reports the root-bus counters,
//! per-phase latency percentiles from the root bus's histograms, and the
//! filter ledger summed over every bridge in the tree.
//!
//! Cells shard over [`mpsim::run_jobs`], and every reported field is a pure
//! function of the cell, so the output is byte-identical for any `--jobs`
//! value (the host-side wall clock is excluded from row equality and
//! strippable from the JSON, exactly like the flat sweep).

use std::time::Instant;

use cache_array::{CacheConfig, ReplacementKind};
use futurebus::Discipline;
use moesi::json::{array_u64, JsonObject};
use moesi::protocols::by_name;
use mpsim::hierarchy::TreeBuilder;
use mpsim::workload::{DuboisBriggs, SharingModel};
use mpsim::{run_jobs, RefStream};

use crate::LINE;

pub use crate::sweep::strip_host_fields;

/// The saturation-study grid: every combination of the vectors below is one
/// cell (with the fan-out axis collapsed at depth 2, where a tree has no
/// interior levels to fan).
#[derive(Clone, Debug)]
pub struct HierarchyBenchConfig {
    /// Protocol names, one machine per entry.
    pub protocols: Vec<String>,
    /// Root-level cluster counts to sweep.
    pub clusters: Vec<usize>,
    /// Tree depths (bus levels) to sweep; 2 is the classic two-level
    /// machine.
    pub depths: Vec<usize>,
    /// Interior fan-outs to sweep (ignored at depth 2).
    pub fanouts: Vec<usize>,
    /// Arbitration disciplines to run on every bus of the tree.
    pub disciplines: Vec<Discipline>,
    /// Caches per leaf cluster.
    pub cpus: usize,
    /// References per cache.
    pub steps: u64,
    /// Per-cache capacity in bytes.
    pub cache_bytes: usize,
    /// Workload seed.
    pub seed: u64,
    /// Worker threads sharding the cells; the output is identical for any
    /// value.
    pub jobs: usize,
}

impl Default for HierarchyBenchConfig {
    /// The committed-baseline grid: four protocols x {two-level, three-level}
    /// x all three disciplines. The depth-3 machines put
    /// `4 clusters x 4 fan-out x 4 cpus = 64` caches under one root bus.
    fn default() -> Self {
        HierarchyBenchConfig {
            protocols: vec![
                "moesi".into(),
                "dragon".into(),
                "berkeley".into(),
                "write-through".into(),
            ],
            clusters: vec![4],
            depths: vec![2, 3],
            fanouts: vec![4],
            disciplines: Discipline::ALL.to_vec(),
            cpus: 4,
            steps: 300,
            cache_bytes: 2048,
            seed: 7,
            jobs: mpsim::default_jobs(),
        }
    }
}

/// One saturation cell's result.
///
/// Equality ignores the host-side measurements (`host_wall_ns`,
/// `engine_accesses_per_sec`): two rows are "the same result" when the
/// simulated machine behaved identically.
#[derive(Clone, Debug)]
pub struct HierarchyRow {
    /// Protocol name.
    pub protocol: String,
    /// Arbitration discipline on every bus (display name).
    pub discipline: String,
    /// Bus levels in the tree.
    pub depth: usize,
    /// Interior fan-out (1 at depth 2: no interior levels exist).
    pub fanout: usize,
    /// Root-level clusters.
    pub clusters: usize,
    /// Leaf clusters in the whole tree.
    pub leaves: usize,
    /// Total caches (`leaves * cpus`).
    pub caches: usize,
    /// References issued (`steps * caches`).
    pub accesses: u64,
    /// Root-bus transactions committed.
    pub root_transactions: u64,
    /// Root-bus occupied time (simulated ns).
    pub root_busy_ns: u64,
    /// Root-bus abort/backoff retry rounds.
    pub root_retries: u64,
    /// Transactions summed over every leaf-cluster bus — the level where the
    /// leaf protocol's own invalidate/update/write-through behaviour shows
    /// (root-bus traffic is the bridges' cluster-as-one-big-cache logic and
    /// is protocol-invariant for a fixed workload and geometry).
    pub leaf_transactions: u64,
    /// Bus-occupied time summed over every leaf-cluster bus (simulated ns).
    pub leaf_busy_ns: u64,
    /// Host-side wall-clock spent simulating this cell. Varies run to run;
    /// excluded from equality.
    pub host_wall_ns: u64,
    /// References per host second. Excluded from equality, like
    /// `host_wall_ns`.
    pub engine_accesses_per_sec: f64,
    /// Snoops observed across every bridge in the tree.
    pub snooped: u64,
    /// Snoops whose inclusion tag hit (subtree holds the line).
    pub filter_hits: u64,
    /// Snoops admitted past the filters into subtrees.
    pub forwarded: u64,
    /// Snoops the inclusion filters suppressed.
    pub suppressed: u64,
    /// Root-bus per-phase p50 latency (ns), pipeline order.
    pub phase_p50: [u64; 6],
    /// Root-bus per-phase p99 latency (ns), pipeline order.
    pub phase_p99: [u64; 6],
}

impl PartialEq for HierarchyRow {
    fn eq(&self, other: &Self) -> bool {
        // host_wall_ns and engine_accesses_per_sec deliberately excluded;
        // they are measurements of the host, not of the simulated machine.
        self.protocol == other.protocol
            && self.discipline == other.discipline
            && self.depth == other.depth
            && self.fanout == other.fanout
            && self.clusters == other.clusters
            && self.leaves == other.leaves
            && self.caches == other.caches
            && self.accesses == other.accesses
            && self.root_transactions == other.root_transactions
            && self.root_busy_ns == other.root_busy_ns
            && self.root_retries == other.root_retries
            && self.leaf_transactions == other.leaf_transactions
            && self.leaf_busy_ns == other.leaf_busy_ns
            && self.snooped == other.snooped
            && self.filter_hits == other.filter_hits
            && self.forwarded == other.forwarded
            && self.suppressed == other.suppressed
            && self.phase_p50 == other.phase_p50
            && self.phase_p99 == other.phase_p99
    }
}

/// One cell of the grid, plain data so it can cross into the worker pool.
#[derive(Clone, Debug)]
struct Cell {
    protocol: String,
    discipline: Discipline,
    depth: usize,
    fanout: usize,
    clusters: usize,
}

fn cells(cfg: &HierarchyBenchConfig) -> Vec<Cell> {
    let mut out = Vec::new();
    for protocol in &cfg.protocols {
        for &clusters in &cfg.clusters {
            for &depth in &cfg.depths {
                // A two-level tree has no interior levels, so every fan-out
                // value would build the same machine: collapse the axis.
                let fanouts: &[usize] = if depth == 2 { &[1] } else { &cfg.fanouts };
                for &fanout in fanouts {
                    for &discipline in &cfg.disciplines {
                        out.push(Cell {
                            protocol: protocol.clone(),
                            discipline,
                            depth,
                            fanout,
                            clusters,
                        });
                    }
                }
            }
        }
    }
    out
}

fn validate(cfg: &HierarchyBenchConfig) -> Result<(), String> {
    if cfg.protocols.is_empty() {
        return Err("no protocols to bench".into());
    }
    if cfg.clusters.is_empty() || cfg.depths.is_empty() || cfg.fanouts.is_empty() {
        return Err("clusters, depths and fanouts must each name at least one value".into());
    }
    if cfg.disciplines.is_empty() {
        return Err("no disciplines to bench".into());
    }
    if let Some(&d) = cfg.depths.iter().find(|&&d| d < 2) {
        return Err(format!("depth {d} is below 2 (the two-level machine)"));
    }
    if cfg.clusters.contains(&0) || cfg.fanouts.contains(&0) {
        return Err("clusters and fanouts must be at least 1".into());
    }
    if cfg.cpus == 0 || cfg.steps == 0 {
        return Err("cpus and steps must be at least 1".into());
    }
    for p in &cfg.protocols {
        if by_name(p, 0).is_none() {
            return Err(format!("unknown protocol `{p}`"));
        }
    }
    Ok(())
}

/// Runs one cell: builds the uniform tree, drives the sharing workload on
/// every leaf cache, and verifies the tree before reading the counters.
fn hierarchy_one(cfg: &HierarchyBenchConfig, cell: &Cell) -> Result<HierarchyRow, String> {
    let cache_cfg = CacheConfig::new(cfg.cache_bytes, LINE, 2, ReplacementKind::Lru);
    let cpus = cfg.cpus;
    let mut sys = TreeBuilder::uniform(
        LINE,
        cell.clusters,
        cell.depth,
        cell.fanout,
        cpus,
        |leaf, cpu| {
            (
                by_name(&cell.protocol, 1000 + (leaf * cpus + cpu) as u64)
                    .expect("protocol validated before the sweep started"),
                Some(cache_cfg),
            )
        },
    )
    .seed(cfg.seed)
    .discipline(cell.discipline)
    .build();

    let leaves = sys.leaves();
    let caches = leaves * cpus;
    // Every cache gets its own Dubois-&-Briggs stream keyed by its global
    // index: a hot shared pool every subtree contends for, plus per-cache
    // private lines that never appear under any other bridge — the traffic
    // the inclusion filters exist to suppress.
    let mut streams: Vec<Vec<Box<dyn RefStream + Send>>> = (0..leaves)
        .map(|leaf| {
            (0..cpus)
                .map(|cpu| -> Box<dyn RefStream + Send> {
                    Box::new(DuboisBriggs::new(
                        leaf * cpus + cpu,
                        SharingModel {
                            line_size: LINE as u64,
                            ..SharingModel::default()
                        },
                        cfg.seed,
                    ))
                })
                .collect()
        })
        .collect();

    let host = Instant::now();
    sys.run(&mut streams, cfg.steps);
    let host_wall_ns = host.elapsed().as_nanos() as u64;
    sys.verify()
        .map_err(|v| format!("hierarchy bench violation: {v}"))?;

    let root = *sys.parent_stats();
    let (mut leaf_transactions, mut leaf_busy_ns) = (0u64, 0u64);
    for leaf in 0..leaves {
        let s = sys.leaf_fabric(leaf).bus().stats();
        leaf_transactions += s.transactions;
        leaf_busy_ns += s.busy_ns;
    }
    let hist = sys.parent_bus().phase_histograms();
    let (mut snooped, mut filter_hits, mut forwarded, mut suppressed) = (0u64, 0u64, 0u64, 0u64);
    for bridge in sys.bridges_preorder() {
        let s = bridge.stats();
        snooped += s.snooped;
        filter_hits += s.filter_hits;
        forwarded += s.forwarded;
        suppressed += s.suppressed;
    }
    let accesses = cfg.steps * caches as u64;
    Ok(HierarchyRow {
        protocol: cell.protocol.clone(),
        discipline: cell.discipline.to_string(),
        depth: cell.depth,
        fanout: cell.fanout,
        clusters: cell.clusters,
        leaves,
        caches,
        accesses,
        root_transactions: root.transactions,
        root_busy_ns: root.busy_ns,
        root_retries: root.retries,
        leaf_transactions,
        leaf_busy_ns,
        host_wall_ns,
        engine_accesses_per_sec: if host_wall_ns == 0 {
            0.0
        } else {
            accesses as f64 * 1e9 / host_wall_ns as f64
        },
        snooped,
        filter_hits,
        forwarded,
        suppressed,
        phase_p50: hist.p50s(),
        phase_p99: hist.p99s(),
    })
}

/// Runs the full saturation grid, sharding cells over `cfg.jobs` workers.
/// Rows come back in grid order regardless of worker count.
///
/// # Errors
///
/// Returns an error for an empty or malformed grid, an unknown protocol
/// name, or a consistency violation in any cell.
pub fn hierarchy_sweep(cfg: &HierarchyBenchConfig) -> Result<Vec<HierarchyRow>, String> {
    validate(cfg)?;
    run_jobs(cells(cfg), cfg.jobs, |cell| hierarchy_one(cfg, &cell))
        .into_iter()
        .collect()
}

/// Renders the rows as the `BENCH_hierarchy.json` document. The host fields
/// sit mid-row so [`strip_host_fields`] can consume each of them through its
/// trailing `", "`.
#[must_use]
pub fn hierarchy_json(cfg: &HierarchyBenchConfig, rows: &[HierarchyRow]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"seed\": {},\n  \"cpus_per_leaf\": {},\n  \"steps_per_cpu\": {},\n  \
         \"cache_bytes\": {},\n",
        cfg.seed, cfg.cpus, cfg.steps, cfg.cache_bytes
    ));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let row = JsonObject::new()
            .string("protocol", &r.protocol)
            .string("discipline", &r.discipline)
            .number("depth", r.depth)
            .number("fanout", r.fanout)
            .number("clusters", r.clusters)
            .number("leaves", r.leaves)
            .number("caches", r.caches)
            .number("accesses", r.accesses)
            .number("root_transactions", r.root_transactions)
            .number("root_busy_ns", r.root_busy_ns)
            .number("root_retries", r.root_retries)
            .number("leaf_transactions", r.leaf_transactions)
            .number("leaf_busy_ns", r.leaf_busy_ns)
            .number("host_wall_ns", r.host_wall_ns)
            .fixed("engine_accesses_per_sec", r.engine_accesses_per_sec, 3)
            .number("snooped", r.snooped)
            .number("filter_hits", r.filter_hits)
            .number("forwarded", r.forwarded)
            .number("suppressed", r.suppressed)
            .raw("phase_p50_ns", &array_u64(&r.phase_p50))
            .raw("phase_p99_ns", &array_u64(&r.phase_p99))
            .finish();
        out.push_str(&format!(
            "    {row}{}\n",
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Renders the rows as an aligned text table with the filter-suppression
/// ratio as the headline column.
#[must_use]
pub fn render_hierarchy(rows: &[HierarchyRow]) -> String {
    let mut out = format!(
        "{:<16} {:<12} {:>5} {:>6} {:>6} {:>9} {:>10} {:>10} {:>11} {:>9} {:>10} {:>6}\n",
        "protocol",
        "discipline",
        "depth",
        "fanout",
        "caches",
        "accesses",
        "leaf txns",
        "root txns",
        "root us",
        "snooped",
        "suppressed",
        "supp%"
    );
    for r in rows {
        let supp_pct = if r.snooped == 0 {
            0.0
        } else {
            r.suppressed as f64 * 100.0 / r.snooped as f64
        };
        out.push_str(&format!(
            "{:<16} {:<12} {:>5} {:>6} {:>6} {:>9} {:>10} {:>10} {:>11.1} {:>9} {:>10} {:>5.1}%\n",
            r.protocol,
            r.discipline,
            r.depth,
            r.fanout,
            r.caches,
            r.accesses,
            r.leaf_transactions,
            r.root_transactions,
            r.root_busy_ns as f64 / 1000.0,
            r.snooped,
            r.suppressed,
            supp_pct,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> HierarchyBenchConfig {
        HierarchyBenchConfig {
            protocols: vec!["moesi".into()],
            clusters: vec![2],
            depths: vec![2, 3],
            fanouts: vec![2],
            disciplines: vec![Discipline::Priority],
            cpus: 2,
            steps: 40,
            jobs: 1,
            ..HierarchyBenchConfig::default()
        }
    }

    #[test]
    fn default_grid_covers_the_saturation_acceptance_matrix() {
        let cfg = HierarchyBenchConfig::default();
        assert!(cfg.protocols.len() >= 4);
        assert_eq!(cfg.disciplines.len(), 3, "all three disciplines");
        assert!(cfg.depths.contains(&3));
        // The depth-3 machines put at least 64 caches under the root bus.
        let leaves = cfg.clusters[0] * cfg.fanouts[0];
        assert!(leaves * cfg.cpus >= 64, "{} caches", leaves * cfg.cpus);
    }

    #[test]
    fn tiny_sweep_reports_conserving_filter_ledgers() {
        let rows = hierarchy_sweep(&tiny()).unwrap();
        assert_eq!(rows.len(), 2, "depth 2 and depth 3, fan-out collapsed");
        for r in &rows {
            assert_eq!(r.accesses, 40 * r.caches as u64);
            assert!(r.root_transactions > 0, "shared pool crossed the root");
            assert!(r.leaf_transactions > 0, "cluster buses carried traffic");
            assert_eq!(
                r.forwarded + r.suppressed,
                r.snooped,
                "every snoop is forwarded or suppressed"
            );
            assert!(r.filter_hits <= r.forwarded);
            assert!(
                r.suppressed > 0,
                "private lines were snoop-filtered at depth {}",
                r.depth
            );
        }
        let (d2, d3) = (&rows[0], &rows[1]);
        assert_eq!((d2.depth, d2.fanout, d2.leaves, d2.caches), (2, 1, 2, 4));
        assert_eq!((d3.depth, d3.fanout, d3.leaves, d3.caches), (3, 2, 4, 8));
    }

    #[test]
    fn worker_count_never_changes_the_rows() {
        let sequential = hierarchy_sweep(&tiny()).unwrap();
        let sharded = hierarchy_sweep(&HierarchyBenchConfig { jobs: 4, ..tiny() }).unwrap();
        assert_eq!(sequential, sharded);
        assert_eq!(
            strip_host_fields(&hierarchy_json(&tiny(), &sequential)),
            strip_host_fields(&hierarchy_json(&tiny(), &sharded)),
        );
    }

    #[test]
    fn leaf_protocol_shows_up_in_the_leaf_bus_column() {
        let rows = hierarchy_sweep(&HierarchyBenchConfig {
            protocols: vec!["moesi".into(), "write-through".into()],
            depths: vec![2],
            ..tiny()
        })
        .unwrap();
        assert_eq!(rows.len(), 2);
        // Root-bus traffic is the bridges' doing and matches cell for cell;
        // the protocol axis differentiates on the cluster buses, where
        // write-through pushes every write and MOESI keeps dirty lines local.
        assert_eq!(rows[0].root_transactions, rows[1].root_transactions);
        assert_ne!(
            rows[0].leaf_transactions, rows[1].leaf_transactions,
            "leaf protocols must be distinguishable in the leaf-bus column"
        );
    }

    #[test]
    fn malformed_grids_are_rejected() {
        let err = |cfg: HierarchyBenchConfig| hierarchy_sweep(&cfg).unwrap_err();
        assert!(err(HierarchyBenchConfig {
            depths: vec![1],
            ..tiny()
        })
        .contains("below 2"));
        assert!(err(HierarchyBenchConfig {
            protocols: vec!["mesif".into()],
            ..tiny()
        })
        .contains("unknown protocol"));
        assert!(err(HierarchyBenchConfig {
            fanouts: vec![0],
            ..tiny()
        })
        .contains("at least 1"));
        assert!(err(HierarchyBenchConfig {
            disciplines: vec![],
            ..tiny()
        })
        .contains("no disciplines"));
    }

    #[test]
    fn json_document_strips_to_simulated_results_only() {
        let cfg = tiny();
        let rows = hierarchy_sweep(&cfg).unwrap();
        let json = hierarchy_json(&cfg, &rows);
        assert!(json.contains("\"cpus_per_leaf\": 2"), "{json}");
        assert!(json.contains("\"depth\": 3"), "{json}");
        assert!(json.contains("\"suppressed\": "), "{json}");
        assert!(json.contains("\"host_wall_ns\": "), "{json}");
        let stripped = strip_host_fields(&json);
        assert!(!stripped.contains("host_wall_ns"), "{stripped}");
        assert!(!stripped.contains("engine_accesses_per_sec"), "{stripped}");
        assert!(stripped.contains("\"phase_p99_ns\": ["), "{stripped}");
        let text = render_hierarchy(&rows);
        assert!(text.contains("supp%"), "{text}");
        assert!(text.contains("moesi"), "{text}");
    }
}
