//! Shared harness code for the table/figure regeneration binaries and the
//! Criterion benchmarks.
//!
//! The experiment index lives in `DESIGN.md`; each experiment id (T1–T7,
//! F1–F4, E1–E6) maps to a function here, a binary under `src/bin/`, or a
//! bench under `benches/`.

#![warn(missing_docs)]

pub mod hierarchy;
pub mod sweep;

use cache_array::{CacheConfig, ReplacementKind};
use futurebus::TimingConfig;
use moesi::protocols::by_name;
use moesi::{PolicyTable, TablePolicy};
use mpsim::workload::{
    DuboisBriggs, FalseSharing, Migratory, PingPong, ProducerConsumer, ReadMostly, SharingModel,
};
use mpsim::{RefStream, System, SystemBuilder};

/// The standard line size used across the experiments (bytes).
pub const LINE: usize = 32;

/// The protocols compared in the E2/E3 experiments, in presentation order.
pub const COMPARED_PROTOCOLS: &[&str] = &[
    "moesi",
    "moesi-invalidating",
    "puzak",
    "berkeley",
    "dragon",
    "write-once",
    "illinois",
    "firefly",
    "synapse",
    "write-through",
    "hybrid",
];

/// The named workloads used across the experiments.
pub const WORKLOADS: &[&str] = &[
    "general",
    "ping-pong",
    "read-mostly",
    "migratory",
    "producer-consumer",
    "false-sharing",
];

/// Builds a homogeneous `cpus`-node system of `protocol` caches.
///
/// # Panics
///
/// Panics on an unknown protocol name.
#[must_use]
pub fn homogeneous_system(
    protocol: &str,
    cpus: usize,
    cache_bytes: usize,
    line: usize,
    timing: TimingConfig,
    checking: bool,
) -> System {
    let cfg = CacheConfig::new(cache_bytes, line, 2, ReplacementKind::Lru);
    let mut b = SystemBuilder::new(line).timing(timing).checking(checking);
    for i in 0..cpus {
        b = b.cache(
            by_name(protocol, 1000 + i as u64)
                .unwrap_or_else(|| panic!("unknown protocol {protocol}")),
            cfg,
        );
    }
    b.build()
}

/// A homogeneous machine like [`homogeneous_system`], but every node runs a
/// given [`PolicyTable`] through the generic `TablePolicy` interpreter
/// instead of a shipped protocol looked up by name. This is how the synth
/// subsystem scores candidate tables that exist nowhere in the registry.
#[must_use]
pub fn homogeneous_table_system(
    table: PolicyTable,
    cpus: usize,
    cache_bytes: usize,
    line: usize,
    timing: TimingConfig,
    checking: bool,
) -> System {
    let cfg = CacheConfig::new(cache_bytes, line, 2, ReplacementKind::Lru);
    let mut b = SystemBuilder::new(line).timing(timing).checking(checking);
    for _ in 0..cpus {
        b = b.cache(Box::new(TablePolicy::new(table)), cfg);
    }
    b.build()
}

/// Builds per-CPU reference streams for a named workload.
///
/// # Panics
///
/// Panics on an unknown workload name.
#[must_use]
pub fn workload_streams(
    kind: &str,
    cpus: usize,
    line: usize,
    seed: u64,
) -> Vec<Box<dyn RefStream + Send>> {
    let line = line as u64;
    (0..cpus)
        .map(|cpu| -> Box<dyn RefStream + Send> {
            match kind {
                "ping-pong" => Box::new(PingPong::new(cpu, 0, line)),
                "false-sharing" => Box::new(FalseSharing::new(cpu, 0, line, 3)),
                "read-mostly" => Box::new(ReadMostly::new(cpu, 0, 16, line, 8)),
                "migratory" => Box::new(Migratory::new(cpu, cpus, 8, line)),
                "producer-consumer" => {
                    if cpu == 0 {
                        Box::new(ProducerConsumer::producer(8, line))
                    } else {
                        Box::new(ProducerConsumer::consumer(8, line))
                    }
                }
                "general" => Box::new(DuboisBriggs::new(
                    cpu,
                    SharingModel {
                        line_size: line,
                        ..SharingModel::default()
                    },
                    seed,
                )),
                other => panic!("unknown workload {other}"),
            }
        })
        .collect()
}

/// One row of a protocol-comparison table.
#[derive(Clone, Debug)]
pub struct ComparisonRow {
    /// Protocol name.
    pub protocol: String,
    /// Cache hit ratio over all nodes.
    pub hit_ratio: f64,
    /// Total bus transactions.
    pub bus_transactions: u64,
    /// Total bus-busy time in nanoseconds.
    pub bus_ns: u64,
    /// Invalidations received across all nodes.
    pub invalidations: u64,
    /// Broadcast updates received across all nodes.
    pub updates: u64,
    /// Interventions served.
    pub interventions: u64,
    /// BS aborts.
    pub aborts: u64,
}

/// Runs `protocol` on `workload` and summarises (the E2/E3 measurement).
#[must_use]
pub fn compare_one(protocol: &str, workload: &str, cpus: usize, steps: u64) -> ComparisonRow {
    let mut sys = homogeneous_system(protocol, cpus, 4096, LINE, TimingConfig::default(), true);
    let mut streams = workload_streams(workload, cpus, LINE, 7);
    sys.run(&mut streams, steps);
    sys.verify().expect("consistent");
    let t = sys.total_stats();
    let b = sys.bus_stats();
    ComparisonRow {
        protocol: protocol.to_string(),
        hit_ratio: t.hit_ratio(),
        bus_transactions: b.transactions,
        bus_ns: b.busy_ns,
        invalidations: t.invalidations_received,
        updates: t.updates_received,
        interventions: b.interventions,
        aborts: b.aborts,
    }
}

/// Formats comparison rows as an aligned text table.
#[must_use]
pub fn render_comparison(title: &str, rows: &[ComparisonRow]) -> String {
    let mut out = format!("== {title} ==\n");
    out.push_str(&format!(
        "{:<20} {:>7} {:>9} {:>11} {:>8} {:>8} {:>8} {:>7}\n",
        "protocol", "hit%", "bus txns", "bus us", "inval", "update", "interv", "aborts"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<20} {:>6.1}% {:>9} {:>11.1} {:>8} {:>8} {:>8} {:>7}\n",
            r.protocol,
            r.hit_ratio * 100.0,
            r.bus_transactions,
            r.bus_ns as f64 / 1000.0,
            r.invalidations,
            r.updates,
            r.interventions,
            r.aborts,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_compared_protocol_builds_and_runs() {
        for p in COMPARED_PROTOCOLS {
            let row = compare_one(p, "general", 2, 50);
            assert!(row.bus_transactions > 0, "{p} produced no traffic");
        }
    }

    #[test]
    fn every_workload_builds() {
        for w in WORKLOADS {
            let streams = workload_streams(w, 3, LINE, 1);
            assert_eq!(streams.len(), 3, "{w}");
        }
    }

    #[test]
    fn render_includes_all_rows() {
        let rows = vec![compare_one("moesi", "ping-pong", 2, 20)];
        let text = render_comparison("t", &rows);
        assert!(text.contains("moesi"));
        assert!(text.contains("bus txns"));
    }
}
