//! The protocol × workload benchmark sweep behind `moesi-sim bench`.
//!
//! Each cell of the sweep runs one homogeneous machine (one protocol) under
//! one named workload with the contention-aware timed model
//! (`System::run_timed`), and reports simulated throughput (accesses per
//! simulated second), bus occupancy and the miss ratio. Cells are fully
//! independent, so the sweep shards across the [`mpsim::campaign`] pool;
//! rows come back in protocol-major order for any worker count, and the
//! rendered JSON is byte-identical for `--jobs 1` and `--jobs N`.
//!
//! The *sharded* sweep (`--shards N`) is the benchmark mode of record for
//! multi-threaded throughput: every cell's workload is partitioned into
//! [`SHARD_REGIONS`] fixed address-interleaved regions, each region runs as
//! an independent machine, and all cell × region tasks feed one flat worker
//! pool. [`shard_scaling`] runs that sweep once per worker count and reports
//! the speedup column committed in `BENCH_shards.json`.

use crate::{
    homogeneous_system, homogeneous_table_system, workload_streams, COMPARED_PROTOCOLS, LINE,
    WORKLOADS,
};
use cache_array::split_line_crossers;
use futurebus::{Nanos, Phase, PhaseHistograms, TimingConfig};
use moesi::json::{array_u64, JsonObject};
use moesi::PolicyTable;
use mpsim::campaign::run_jobs;
use mpsim::workload::Access;
use std::time::Instant;

pub use mpsim::campaign::SHARD_REGIONS;

/// Nanoseconds of local (non-bus) work modelled per processor reference.
pub const CPU_WORK_NS: u64 = 50;

/// Shape of a benchmark sweep.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Protocol names to bench (one homogeneous machine per entry).
    pub protocols: Vec<String>,
    /// Workload names (see [`workload_streams`]).
    pub workloads: Vec<String>,
    /// Processors per machine.
    pub cpus: usize,
    /// References per processor.
    pub steps: u64,
    /// Cache capacity per node in bytes.
    pub cache_bytes: usize,
    /// Workload seed.
    pub seed: u64,
    /// Worker threads sharding the cells of an *unsharded* sweep
    /// (1 = sequential). A sharded sweep runs on `shards` workers instead.
    pub jobs: usize,
    /// Bus/memory/cache cost model every cell runs under. The §5.2
    /// sensitivity study re-scores candidates across a grid of these.
    pub timing: TimingConfig,
    /// `0` (the default) runs each cell as one classic whole-machine
    /// simulation. `N ≥ 1` splits each cell's reference scripts into
    /// [`SHARD_REGIONS`] interleaved line-address regions, simulates each
    /// region as an independent machine, and feeds every cell × region task
    /// to one flat pool of `N` worker threads, merging in region order —
    /// deterministic, and byte-identical for every `N ≥ 1`.
    pub shards: usize,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            protocols: COMPARED_PROTOCOLS
                .iter()
                .map(|s| (*s).to_string())
                .collect(),
            workloads: WORKLOADS.iter().map(|s| (*s).to_string()).collect(),
            cpus: 4,
            steps: 2000,
            cache_bytes: 4096,
            seed: 7,
            jobs: mpsim::campaign::default_jobs(),
            timing: TimingConfig::default(),
            shards: 0,
        }
    }
}

/// One cell of the sweep: a protocol under a workload.
///
/// Equality ignores the host-side measurements (`host_wall_ns`,
/// `engine_accesses_per_sec`): two rows are "the same result" when the
/// *simulated* outcome matches, however fast the host happened to run.
#[derive(Clone, Debug)]
pub struct SweepRow {
    /// Protocol name.
    pub protocol: String,
    /// Workload name.
    pub workload: String,
    /// Processor accesses executed.
    pub accesses: u64,
    /// Simulated wall time of the timed run (ns).
    pub wall_ns: u64,
    /// Bus occupancy during the run (ns).
    pub busy_ns: u64,
    /// Time spent queued for the bus (ns).
    pub wait_ns: u64,
    /// Accesses per simulated second. Derived from `accesses` and `wall_ns`,
    /// so it carries no information equality doesn't already cover.
    pub accesses_per_sec: f64,
    /// Host wall-clock nanoseconds the cell's timed run took (sharded cells
    /// sum their region runs). A measurement of the simulator, not the
    /// simulated machine — excluded from equality and from committed-fixture
    /// comparisons (see [`strip_host_fields`]).
    pub host_wall_ns: u64,
    /// Engine throughput: processor accesses simulated per host second.
    /// Excluded from equality, like `host_wall_ns`.
    pub engine_accesses_per_sec: f64,
    /// Cache miss ratio over all nodes.
    pub miss_ratio: f64,
    /// Median latency charged per pipeline phase, in [`Phase::PIPELINE`]
    /// order (nearest-rank histogram bucket bounds).
    pub phase_p50: [Nanos; Phase::PIPELINE.len()],
    /// 99th-percentile latency charged per pipeline phase.
    pub phase_p99: [Nanos; Phase::PIPELINE.len()],
}

impl PartialEq for SweepRow {
    fn eq(&self, other: &Self) -> bool {
        // host_wall_ns and engine_accesses_per_sec deliberately excluded;
        // accesses_per_sec is a pure function of (accesses, wall_ns), which
        // are compared exactly, so it adds nothing but FP wobble.
        self.protocol == other.protocol
            && self.workload == other.workload
            && self.accesses == other.accesses
            && self.wall_ns == other.wall_ns
            && self.busy_ns == other.busy_ns
            && self.wait_ns == other.wait_ns
            && self.miss_ratio == other.miss_ratio
            && self.phase_p50 == other.phase_p50
            && self.phase_p99 == other.phase_p99
    }
}

/// Runs one cell.
///
/// # Errors
///
/// Returns a message for an unknown protocol or workload name.
pub fn sweep_one(cfg: &SweepConfig, protocol: &str, workload: &str) -> Result<SweepRow, String> {
    if moesi::protocols::by_name(protocol, 0).is_none() {
        return Err(format!("unknown protocol `{protocol}`"));
    }
    if !WORKLOADS.contains(&workload) {
        return Err(format!("unknown workload `{workload}`"));
    }
    if cfg.shards > 0 {
        return Ok(measure_sharded(
            cfg,
            &|| homogeneous_system(protocol, cfg.cpus, cfg.cache_bytes, LINE, cfg.timing, false),
            protocol,
            workload,
        ));
    }
    let sys = homogeneous_system(protocol, cfg.cpus, cfg.cache_bytes, LINE, cfg.timing, false);
    Ok(measure(cfg, sys, protocol, workload))
}

/// Scores one candidate [`PolicyTable`] under a workload — the synth
/// subsystem's fitness function. Identical machinery to [`sweep_one`]
/// (same machine shape, timed model, cost knobs and optional sharding), but
/// the protocol is the given table interpreted by the generic `TablePolicy`
/// engine rather than a shipped protocol looked up by name.
///
/// # Errors
///
/// Returns a message for an unknown workload name.
pub fn table_fitness(
    cfg: &SweepConfig,
    table: PolicyTable,
    workload: &str,
) -> Result<SweepRow, String> {
    if !WORKLOADS.contains(&workload) {
        return Err(format!("unknown workload `{workload}`"));
    }
    if cfg.shards > 0 {
        return Ok(measure_sharded(
            cfg,
            &|| homogeneous_table_system(table, cfg.cpus, cfg.cache_bytes, LINE, cfg.timing, false),
            table.name(),
            workload,
        ));
    }
    let sys = homogeneous_table_system(table, cfg.cpus, cfg.cache_bytes, LINE, cfg.timing, false);
    Ok(measure(cfg, sys, table.name(), workload))
}

fn measure(cfg: &SweepConfig, mut sys: mpsim::System, protocol: &str, workload: &str) -> SweepRow {
    let mut streams = workload_streams(workload, cfg.cpus, LINE, cfg.seed);
    let host = Instant::now();
    let timed = sys.run_timed(&mut streams, cfg.steps, CPU_WORK_NS);
    let host_wall_ns = host.elapsed().as_nanos() as u64;
    let total = sys.total_stats();
    finish_row(
        protocol,
        workload,
        &timed,
        host_wall_ns,
        1.0 - total.hit_ratio(),
    )
}

/// Shared row assembly for the classic and sharded measurements.
fn finish_row(
    protocol: &str,
    workload: &str,
    timed: &mpsim::TimedReport,
    host_wall_ns: u64,
    miss_ratio: f64,
) -> SweepRow {
    SweepRow {
        protocol: protocol.to_string(),
        workload: workload.to_string(),
        accesses: timed.total_refs,
        wall_ns: timed.wall_ns,
        busy_ns: timed.bus_busy_ns,
        wait_ns: timed.bus_wait_ns,
        accesses_per_sec: if timed.wall_ns == 0 {
            0.0
        } else {
            timed.total_refs as f64 * 1e9 / timed.wall_ns as f64
        },
        host_wall_ns,
        engine_accesses_per_sec: if host_wall_ns == 0 {
            0.0
        } else {
            timed.total_refs as f64 * 1e9 / host_wall_ns as f64
        },
        miss_ratio,
        phase_p50: timed.phase_hist.p50s(),
        phase_p99: timed.phase_hist.p99s(),
    }
}

/// What one region run of a sharded cell produces: the timed result, the
/// summed node counters, and the host nanoseconds the region cost.
type RegionResult = (mpsim::TimedReport, mpsim::CpuStats, u64);

/// Materialises one cell's per-cpu reference scripts — split at line
/// boundaries so every piece lands wholly in one region — and partitions
/// them into [`SHARD_REGIONS`] interleaved line-address regions
/// (region → cpu → script). The partition is a pure function of the
/// workload and seed, never of the worker count.
fn region_scripts(cfg: &SweepConfig, workload: &str) -> Vec<Vec<Vec<Access>>> {
    let mut streams = workload_streams(workload, cfg.cpus, LINE, cfg.seed);
    let scripts: Vec<Vec<Access>> = streams
        .iter_mut()
        .map(|s| {
            let mut script = Vec::with_capacity(cfg.steps as usize);
            for _ in 0..cfg.steps {
                let a = s.next_access();
                for (addr, size) in split_line_crossers(a.addr, a.size, LINE) {
                    script.push(Access {
                        addr,
                        size,
                        is_write: a.is_write,
                    });
                }
            }
            script
        })
        .collect();
    let region_of = |addr: u64| ((addr / LINE as u64) % SHARD_REGIONS as u64) as usize;
    (0..SHARD_REGIONS)
        .map(|r| {
            scripts
                .iter()
                .map(|script| {
                    script
                        .iter()
                        .copied()
                        .filter(|a| region_of(a.addr) == r)
                        .collect()
                })
                .collect()
        })
        .collect()
}

/// Simulates one region of a cell as an independent machine (same protocol,
/// processors and caches, touching only its own lines) and times the host.
fn run_region(build: &(dyn Fn() -> mpsim::System + Sync), lane: &[Vec<Access>]) -> RegionResult {
    let mut sys = build();
    let host = Instant::now();
    let timed = sys.run_timed_script(lane, CPU_WORK_NS);
    let host_ns = host.elapsed().as_nanos() as u64;
    (timed, sys.total_stats(), host_ns)
}

/// Merges one cell's region results, in region order: simulated wall is the
/// max over regions (the regions model independent buses running
/// concurrently), traffic and occupancy sum, the phase histograms merge
/// bucket-wise, and host time sums. A sharded row is *not* comparable to an
/// unsharded one — splitting the address space removes cross-region bus
/// contention by construction (see DESIGN.md).
fn merge_regions(protocol: &str, workload: &str, results: &[RegionResult]) -> SweepRow {
    let mut merged = mpsim::TimedReport {
        wall_ns: 0,
        bus_busy_ns: 0,
        bus_wait_ns: 0,
        total_refs: 0,
        phase_hist: PhaseHistograms::new(),
    };
    let (mut host_wall_ns, mut hits, mut refs) = (0u64, 0u64, 0u64);
    for (timed, stats, host_ns) in results {
        merged.wall_ns = merged.wall_ns.max(timed.wall_ns);
        merged.bus_busy_ns += timed.bus_busy_ns;
        merged.bus_wait_ns += timed.bus_wait_ns;
        merged.total_refs += timed.total_refs;
        merged.phase_hist.merge(&timed.phase_hist);
        host_wall_ns += host_ns;
        hits += stats.read_hits + stats.write_hits;
        refs += stats.reads + stats.writes;
    }
    let miss_ratio = if refs == 0 {
        0.0
    } else {
        1.0 - hits as f64 / refs as f64
    };
    finish_row(protocol, workload, &merged, host_wall_ns, miss_ratio)
}

/// Runs one cell sharded on its own `cfg.shards`-worker pool — the
/// single-cell entry point ([`sweep_one`], [`table_fitness`]). The merged
/// row is identical to what the whole-sweep flat pool produces for the same
/// cell: the partition is fixed and the merge is region-ordered, so pool
/// shape can never show through.
fn measure_sharded(
    cfg: &SweepConfig,
    build: &(dyn Fn() -> mpsim::System + Sync),
    protocol: &str,
    workload: &str,
) -> SweepRow {
    let regions = region_scripts(cfg, workload);
    let results = run_jobs(regions, cfg.shards, |lane: Vec<Vec<Access>>| {
        run_region(build, &lane)
    });
    merge_regions(protocol, workload, &results)
}

/// A sharded run of the whole sweep, plus the host-cost profile the scaling
/// model consumes.
#[derive(Clone, Debug)]
pub struct ShardedSweep {
    /// Per-cell rows, protocol-major — byte-identical for every worker
    /// count at the fixed [`SHARD_REGIONS`] partition.
    pub rows: Vec<SweepRow>,
    /// Host nanoseconds each cell × region task cost, in task order (cell-
    /// major, region-minor) — the input to [`critical_path_ns`].
    pub task_host_ns: Vec<u64>,
}

/// Runs the whole sweep sharded: every cell's [`SHARD_REGIONS`] region
/// machines become one flat task list driven by a single `cfg.shards`-worker
/// pool, so workers stay busy across cell boundaries instead of draining
/// each cell's four regions before starting the next.
///
/// # Errors
///
/// Returns the first unknown protocol or workload name.
pub fn sweep_sharded(cfg: &SweepConfig) -> Result<ShardedSweep, String> {
    for p in &cfg.protocols {
        if moesi::protocols::by_name(p, 0).is_none() {
            return Err(format!("unknown protocol `{p}`"));
        }
    }
    for w in &cfg.workloads {
        if !WORKLOADS.contains(&w.as_str()) {
            return Err(format!("unknown workload `{w}`"));
        }
    }
    let mut cells = Vec::with_capacity(cfg.protocols.len() * cfg.workloads.len());
    for p in &cfg.protocols {
        for w in &cfg.workloads {
            cells.push((p.clone(), w.clone()));
        }
    }
    let mut tasks = Vec::with_capacity(cells.len() * SHARD_REGIONS);
    for (cell, (_, w)) in cells.iter().enumerate() {
        for lane in region_scripts(cfg, w) {
            tasks.push((cell, lane));
        }
    }
    let results = run_jobs(
        tasks,
        cfg.shards,
        |(cell, lane): (usize, Vec<Vec<Access>>)| {
            let (p, _) = &cells[cell];
            run_region(
                &|| homogeneous_system(p, cfg.cpus, cfg.cache_bytes, LINE, cfg.timing, false),
                &lane,
            )
        },
    );
    let task_host_ns = results.iter().map(|(_, _, host_ns)| *host_ns).collect();
    let rows = cells
        .iter()
        .enumerate()
        .map(|(cell, (p, w))| {
            merge_regions(
                p,
                w,
                &results[cell * SHARD_REGIONS..(cell + 1) * SHARD_REGIONS],
            )
        })
        .collect();
    Ok(ShardedSweep { rows, task_host_ns })
}

/// Runs the whole sweep. Unsharded, cells run on `cfg.jobs` workers; with
/// `cfg.shards ≥ 1` the flat cell × region pool runs on `cfg.shards`
/// workers. Rows come back in protocol-major, workload-minor order
/// regardless of worker count.
///
/// # Errors
///
/// Returns the first cell error (unknown protocol/workload) in row order.
pub fn sweep(cfg: &SweepConfig) -> Result<Vec<SweepRow>, String> {
    if cfg.protocols.is_empty() || cfg.workloads.is_empty() {
        return Err("nothing to bench: empty protocol or workload list".into());
    }
    if cfg.cpus == 0 || cfg.steps == 0 {
        return Err("cpus and steps must be non-zero".into());
    }
    if cfg.shards > 0 {
        return Ok(sweep_sharded(cfg)?.rows);
    }
    let mut cells = Vec::with_capacity(cfg.protocols.len() * cfg.workloads.len());
    for p in &cfg.protocols {
        for w in &cfg.workloads {
            cells.push((p.clone(), w.clone()));
        }
    }
    mpsim::campaign::run_jobs(cells, cfg.jobs, |(p, w)| sweep_one(cfg, &p, &w))
        .into_iter()
        .collect()
}

/// The critical path of the `run_jobs` claim schedule: replays the measured
/// per-task host costs through the pool's own discipline — each worker
/// claims the next task in order the moment it frees — and returns the
/// busiest worker's finish time.
///
/// This is how long the task list takes on a host with `workers` real
/// cores, computed from *measured* per-task times, so the speedup column it
/// feeds is robust on CI boxes with fewer cores than workers (where
/// elapsed wall-clock would only measure oversubscription).
#[must_use]
pub fn critical_path_ns(task_ns: &[u64], workers: usize) -> u64 {
    let workers = workers.clamp(1, task_ns.len().max(1));
    let mut free_at = vec![0u64; workers];
    for &cost in task_ns {
        // The earliest-free worker is the one that claims the next task.
        let next = (0..workers)
            .min_by_key(|&w| free_at[w])
            .expect("at least one worker");
        free_at[next] += cost;
    }
    free_at.into_iter().max().unwrap_or(0)
}

/// One per-shard-count row of the scaling sweep: the whole sharded sweep's
/// simulated totals plus its host-cost schedule at that worker count.
///
/// Equality (like [`SweepRow`]'s) ignores every host-side measurement —
/// `host_cpu_ns`, `host_critical_ns`, `host_elapsed_ns`,
/// `engine_accesses_per_sec` and `speedup` vary run to run by construction.
#[derive(Clone, Debug)]
pub struct ScalingRow {
    /// Worker count this row ran the sharded sweep on.
    pub shards: usize,
    /// Processor accesses executed across every cell.
    pub accesses: u64,
    /// Summed simulated wall time over cells (ns).
    pub wall_ns: u64,
    /// Summed bus occupancy over cells (ns).
    pub busy_ns: u64,
    /// Summed bus queueing over cells (ns).
    pub wait_ns: u64,
    /// Host nanoseconds of simulation work: the sum of every cell × region
    /// task's measured cost.
    pub host_cpu_ns: u64,
    /// The claim schedule's critical path at this worker count
    /// (see [`critical_path_ns`]).
    pub host_critical_ns: u64,
    /// Measured host wall-clock for the whole sharded sweep, scheduling
    /// overhead and oversubscription included.
    pub host_elapsed_ns: u64,
    /// Engine throughput of the parallel schedule: accesses per host second
    /// at this worker count (`accesses / host_critical_ns`).
    pub engine_accesses_per_sec: f64,
    /// Host-throughput speedup of this worker count's schedule over running
    /// the same measured tasks serially (`host_cpu_ns / host_critical_ns`).
    /// Exactly 1.0 at one worker.
    pub speedup: f64,
    /// Accesses per simulated second (`accesses / wall_ns`).
    pub accesses_per_sec: f64,
}

impl PartialEq for ScalingRow {
    fn eq(&self, other: &Self) -> bool {
        // Host-side measurements deliberately excluded, as in SweepRow.
        self.shards == other.shards
            && self.accesses == other.accesses
            && self.wall_ns == other.wall_ns
            && self.busy_ns == other.busy_ns
            && self.wait_ns == other.wait_ns
    }
}

/// Runs the sharded sweep once per worker count and aggregates each run
/// into a [`ScalingRow`]. The simulated rows are demanded identical across
/// counts — the fixed-partition determinism contract — so the returned
/// per-cell rows (from the first count) describe every run.
///
/// # Errors
///
/// Returns validation errors from the sweep, an empty/zero `counts` list,
/// or a determinism violation between worker counts.
pub fn shard_scaling(
    cfg: &SweepConfig,
    counts: &[usize],
) -> Result<(Vec<SweepRow>, Vec<ScalingRow>), String> {
    if counts.is_empty() {
        return Err("no shard counts to scale over".into());
    }
    if counts.contains(&0) {
        return Err("shard counts must be ≥ 1".into());
    }
    let mut baseline: Option<Vec<SweepRow>> = None;
    let mut scaling = Vec::with_capacity(counts.len());
    for &workers in counts {
        let elapsed = Instant::now();
        let run = sweep_sharded(&SweepConfig {
            shards: workers,
            ..cfg.clone()
        })?;
        let host_elapsed_ns = elapsed.elapsed().as_nanos() as u64;
        match &baseline {
            Some(rows) if *rows != run.rows => {
                return Err(format!(
                    "sharded sweep diverged between worker counts {} and {workers} \
                     (fixed partition must be byte-identical)",
                    counts[0]
                ));
            }
            Some(_) => {}
            None => baseline = Some(run.rows.clone()),
        }
        let (mut accesses, mut wall_ns, mut busy_ns, mut wait_ns) = (0u64, 0u64, 0u64, 0u64);
        for row in &run.rows {
            accesses += row.accesses;
            wall_ns += row.wall_ns;
            busy_ns += row.busy_ns;
            wait_ns += row.wait_ns;
        }
        let host_cpu_ns: u64 = run.task_host_ns.iter().sum();
        let host_critical_ns = critical_path_ns(&run.task_host_ns, workers);
        scaling.push(ScalingRow {
            shards: workers,
            accesses,
            wall_ns,
            busy_ns,
            wait_ns,
            host_cpu_ns,
            host_critical_ns,
            host_elapsed_ns,
            engine_accesses_per_sec: if host_critical_ns == 0 {
                0.0
            } else {
                accesses as f64 * 1e9 / host_critical_ns as f64
            },
            speedup: if host_critical_ns == 0 {
                0.0
            } else {
                host_cpu_ns as f64 / host_critical_ns as f64
            },
            accesses_per_sec: if wall_ns == 0 {
                0.0
            } else {
                accesses as f64 * 1e9 / wall_ns as f64
            },
        });
    }
    Ok((baseline.expect("at least one count ran"), scaling))
}

/// Renders the rows as a JSON document via the shared hand-rolled writer
/// ([`moesi::json`]; the workspace carries no serialisation dependency).
/// Floats are printed with fixed precision so the bytes are stable across
/// runs and worker counts.
#[must_use]
pub fn sweep_json(cfg: &SweepConfig, rows: &[SweepRow]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"seed\": {},\n  \"cpus\": {},\n  \"steps_per_cpu\": {},\n  \"cpu_work_ns\": {},\n",
        cfg.seed, cfg.cpus, cfg.steps, CPU_WORK_NS
    ));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let row = JsonObject::new()
            .string("protocol", &r.protocol)
            .string("workload", &r.workload)
            .number("accesses", r.accesses)
            .number("wall_ns", r.wall_ns)
            .number("busy_ns", r.busy_ns)
            .number("wait_ns", r.wait_ns)
            .fixed("accesses_per_sec", r.accesses_per_sec, 3)
            .number("host_wall_ns", r.host_wall_ns)
            .fixed("engine_accesses_per_sec", r.engine_accesses_per_sec, 3)
            .fixed("miss_ratio", r.miss_ratio, 6)
            .raw("phase_p50_ns", &array_u64(&r.phase_p50))
            .raw("phase_p99_ns", &array_u64(&r.phase_p99))
            .finish();
        out.push_str(&format!(
            "    {row}{}\n",
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Renders the scaling rows as the `BENCH_shards.json` document. The host
/// fields sit mid-row (before the final simulated `accesses_per_sec`) so
/// [`strip_host_fields`] can consume each of them through its trailing
/// `", "`.
#[must_use]
pub fn scaling_json(cfg: &SweepConfig, rows: &[ScalingRow]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"seed\": {},\n  \"cpus\": {},\n  \"steps_per_cpu\": {},\n  \"cpu_work_ns\": {},\n  \
         \"shard_regions\": {},\n",
        cfg.seed, cfg.cpus, cfg.steps, CPU_WORK_NS, SHARD_REGIONS
    ));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let row = JsonObject::new()
            .number("shards", r.shards as u64)
            .number("accesses", r.accesses)
            .number("wall_ns", r.wall_ns)
            .number("busy_ns", r.busy_ns)
            .number("wait_ns", r.wait_ns)
            .number("host_cpu_ns", r.host_cpu_ns)
            .number("host_critical_ns", r.host_critical_ns)
            .number("host_elapsed_ns", r.host_elapsed_ns)
            .fixed("engine_accesses_per_sec", r.engine_accesses_per_sec, 3)
            .fixed("speedup", r.speedup, 3)
            .fixed("accesses_per_sec", r.accesses_per_sec, 3)
            .finish();
        out.push_str(&format!(
            "    {row}{}\n",
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Strips the host-side measurement fields (`host_wall_ns`,
/// `engine_accesses_per_sec` in [`sweep_json`]; additionally `host_cpu_ns`,
/// `host_critical_ns`, `host_elapsed_ns` and `speedup` in
/// [`scaling_json`]) from a document, leaving only the simulated results.
/// This is the normalisation fixture comparisons and the sharded-baseline
/// CI stage run through: host timings differ run to run by construction,
/// simulated results must not.
#[must_use]
pub fn strip_host_fields(json: &str) -> String {
    let mut out = json.to_string();
    for key in [
        "\"host_wall_ns\": ",
        "\"host_cpu_ns\": ",
        "\"host_critical_ns\": ",
        "\"host_elapsed_ns\": ",
        "\"engine_accesses_per_sec\": ",
        "\"speedup\": ",
    ] {
        while let Some(start) = out.find(key) {
            // Every host field sits mid-row, so the value is always followed
            // by `, ` — consume through it.
            let end = match out[start..].find(", ") {
                Some(comma) => start + comma + 2,
                None => break,
            };
            out.replace_range(start..end, "");
        }
    }
    out
}

/// Renders the rows as an aligned text table grouped by workload.
#[must_use]
pub fn render_sweep(rows: &[SweepRow]) -> String {
    let mut out = format!(
        "{:<20} {:<18} {:>9} {:>12} {:>12} {:>14} {:>7}\n",
        "protocol", "workload", "accesses", "wall us", "bus us", "acc/sec", "miss%"
    );
    for r in rows {
        out.push_str(&format!(
            "{:<20} {:<18} {:>9} {:>12.1} {:>12.1} {:>14.0} {:>6.1}%\n",
            r.protocol,
            r.workload,
            r.accesses,
            r.wall_ns as f64 / 1000.0,
            r.busy_ns as f64 / 1000.0,
            r.accesses_per_sec,
            r.miss_ratio * 100.0,
        ));
    }
    out
}

/// Renders the scaling rows as an aligned text table with the speedup
/// column.
#[must_use]
pub fn render_scaling(rows: &[ScalingRow]) -> String {
    let mut out = format!(
        "{:>6} {:>10} {:>13} {:>13} {:>13} {:>14} {:>8}\n",
        "shards", "accesses", "host cpu ms", "critical ms", "elapsed ms", "acc/host-sec", "speedup"
    );
    for r in rows {
        out.push_str(&format!(
            "{:>6} {:>10} {:>13.1} {:>13.1} {:>13.1} {:>14.0} {:>7.2}x\n",
            r.shards,
            r.accesses,
            r.host_cpu_ns as f64 / 1e6,
            r.host_critical_ns as f64 / 1e6,
            r.host_elapsed_ns as f64 / 1e6,
            r.engine_accesses_per_sec,
            r.speedup,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SweepConfig {
        SweepConfig {
            protocols: vec!["moesi".into(), "write-through".into()],
            workloads: vec!["general".into(), "ping-pong".into()],
            cpus: 2,
            steps: 100,
            jobs: 1,
            ..SweepConfig::default()
        }
    }

    #[test]
    fn sweep_produces_protocol_major_rows_with_traffic() {
        let rows = sweep(&tiny()).unwrap();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].protocol, "moesi");
        assert_eq!(rows[0].workload, "general");
        assert_eq!(rows[1].workload, "ping-pong");
        assert_eq!(rows[2].protocol, "write-through");
        for r in &rows {
            assert!(r.accesses > 0, "{}/{} ran nothing", r.protocol, r.workload);
            assert!(r.accesses_per_sec > 0.0);
            assert!((0.0..=1.0).contains(&r.miss_ratio));
            let data = Phase::DataTransfer as usize;
            assert!(
                r.phase_p99[data] >= r.phase_p50[data],
                "{}/{}: p99 below p50",
                r.protocol,
                r.workload
            );
            assert!(
                r.phase_p99[data] > 0,
                "{}/{}: bus traffic must charge the data phase",
                r.protocol,
                r.workload
            );
        }
    }

    #[test]
    fn sharded_sweep_is_byte_identical_to_sequential() {
        let cfg = tiny();
        let seq = sweep(&cfg).unwrap();
        let par = sweep(&SweepConfig {
            jobs: 4,
            ..cfg.clone()
        })
        .unwrap();
        assert_eq!(seq, par);
        assert_eq!(
            strip_host_fields(&sweep_json(&cfg, &seq)),
            strip_host_fields(&sweep_json(&cfg, &par))
        );
    }

    #[test]
    fn strip_host_fields_removes_exactly_the_host_measurements() {
        let cfg = tiny();
        let rows = sweep(&cfg).unwrap();
        let json = sweep_json(&cfg, &rows);
        assert_eq!(json.matches("\"host_wall_ns\"").count(), rows.len());
        let stripped = strip_host_fields(&json);
        assert!(!stripped.contains("host_wall_ns"));
        assert!(!stripped.contains("engine_accesses_per_sec"));
        // Everything else survives untouched.
        assert_eq!(stripped.matches("\"accesses_per_sec\"").count(), rows.len());
        assert_eq!(stripped.matches("\"miss_ratio\"").count(), rows.len());
        assert!(stripped.ends_with("}\n"));
    }

    #[test]
    fn shard_worker_count_never_changes_the_merged_rows() {
        let one = sweep(&SweepConfig {
            shards: 1,
            ..tiny()
        })
        .unwrap();
        let two = sweep(&SweepConfig {
            shards: 2,
            ..tiny()
        })
        .unwrap();
        assert_eq!(one, two);
        let cfg = tiny();
        assert_eq!(
            strip_host_fields(&sweep_json(&cfg, &one)),
            strip_host_fields(&sweep_json(&cfg, &two))
        );
        // Sharding preserves the reference count (line-crosser pieces and
        // all) even though the partition changes the contention picture.
        let whole = sweep(&cfg).unwrap();
        for (s, w) in one.iter().zip(&whole) {
            assert_eq!(s.protocol, w.protocol);
            assert_eq!(s.workload, w.workload);
            assert_eq!(s.accesses, w.accesses, "{}/{}", s.protocol, s.workload);
        }
    }

    #[test]
    fn single_cell_pool_and_flat_pool_agree() {
        // sweep_one's per-cell pool and sweep_sharded's flat cell × region
        // pool must merge to the same rows: pool shape is a host detail.
        let cfg = SweepConfig {
            shards: 2,
            ..tiny()
        };
        let flat = sweep_sharded(&cfg).unwrap();
        assert_eq!(
            flat.task_host_ns.len(),
            flat.rows.len() * SHARD_REGIONS,
            "one timed task per cell × region"
        );
        for row in &flat.rows {
            let single = sweep_one(&cfg, &row.protocol, &row.workload).unwrap();
            assert_eq!(&single, row, "{}/{}", row.protocol, row.workload);
        }
    }

    #[test]
    fn critical_path_replays_the_claim_schedule() {
        // Four equal tasks on two workers: two each.
        assert_eq!(critical_path_ns(&[3, 3, 3, 3], 2), 6);
        // One long task dominates; the other worker absorbs the rest.
        assert_eq!(critical_path_ns(&[5, 1, 1, 1], 2), 5);
        // One worker is exactly the serial sum.
        assert_eq!(critical_path_ns(&[5, 1, 1, 1], 1), 8);
        // More workers than tasks clamps harmlessly.
        assert_eq!(critical_path_ns(&[4, 2], 8), 4);
        assert_eq!(critical_path_ns(&[], 3), 0);
    }

    #[test]
    fn shard_scaling_reports_consistent_speedups() {
        let (rows, scaling) = shard_scaling(&tiny(), &[1, 2]).unwrap();
        assert_eq!(rows.len(), 4);
        assert_eq!(scaling.len(), 2);
        assert_eq!(scaling[0].shards, 1);
        assert_eq!(scaling[1].shards, 2);
        // The simulated totals are identical across worker counts...
        assert_eq!(scaling[0], scaling[1].clone_with_shards(1));
        // ...and the schedule model is internally consistent.
        for s in &scaling {
            assert_eq!(
                s.accesses,
                rows.iter().map(|r| r.accesses).sum::<u64>(),
                "aggregate covers every cell"
            );
            assert!(s.host_cpu_ns > 0);
            assert!(s.host_critical_ns > 0);
            assert!(s.host_critical_ns <= s.host_cpu_ns);
            assert!(
                s.speedup >= 1.0 - 1e-9,
                "shards={}: {}",
                s.shards,
                s.speedup
            );
        }
        // One worker's schedule is exactly serial.
        assert_eq!(scaling[0].host_cpu_ns, scaling[0].host_critical_ns);
        assert!((scaling[0].speedup - 1.0).abs() < 1e-9);
    }

    impl ScalingRow {
        /// Test helper: the same row relabelled with another worker count,
        /// so the host-blind equality can compare across counts.
        fn clone_with_shards(&self, shards: usize) -> ScalingRow {
            ScalingRow {
                shards,
                ..self.clone()
            }
        }
    }

    #[test]
    fn scaling_json_strips_to_stable_simulated_columns() {
        let cfg = tiny();
        let (_, scaling) = shard_scaling(&cfg, &[1, 2]).unwrap();
        let json = scaling_json(&cfg, &scaling);
        assert!(json.contains("\"shard_regions\": 4"));
        assert_eq!(json.matches("\"speedup\"").count(), scaling.len());
        let stripped = strip_host_fields(&json);
        for host_key in [
            "host_cpu_ns",
            "host_critical_ns",
            "host_elapsed_ns",
            "engine_accesses_per_sec",
            "speedup",
        ] {
            assert!(!stripped.contains(host_key), "{host_key} survived");
        }
        assert_eq!(
            stripped.matches("\"accesses_per_sec\"").count(),
            scaling.len()
        );
        assert!(stripped.ends_with("}\n"));
        // Two runs' stripped documents are byte-identical.
        let (_, again) = shard_scaling(&cfg, &[1, 2]).unwrap();
        assert_eq!(stripped, strip_host_fields(&scaling_json(&cfg, &again)));
    }

    #[test]
    fn shard_scaling_rejects_bad_counts() {
        assert!(shard_scaling(&tiny(), &[])
            .unwrap_err()
            .contains("no shard counts"));
        assert!(shard_scaling(&tiny(), &[1, 0]).unwrap_err().contains("≥ 1"));
    }

    #[test]
    fn json_is_wellformed_enough_to_eyeball() {
        let cfg = tiny();
        let rows = sweep(&cfg).unwrap();
        let json = sweep_json(&cfg, &rows);
        assert!(json.starts_with("{\n"));
        assert!(json.ends_with("}\n"));
        assert_eq!(json.matches("\"protocol\"").count(), rows.len());
        assert_eq!(json.matches("\"phase_p50_ns\": [").count(), rows.len());
        assert_eq!(json.matches("\"phase_p99_ns\": [").count(), rows.len());
        assert!(json.contains("\"seed\": 7"));
        assert!(!json.contains(",\n  ]"), "no trailing comma:\n{json}");
    }

    #[test]
    fn unknown_names_are_reported() {
        let mut cfg = tiny();
        cfg.protocols = vec!["mesif".into()];
        assert!(sweep(&cfg).unwrap_err().contains("mesif"));
        let mut cfg = tiny();
        cfg.workloads = vec!["zipfian".into()];
        assert!(sweep(&cfg).unwrap_err().contains("zipfian"));
        // The sharded path reports the same errors.
        let mut cfg = tiny();
        cfg.shards = 2;
        cfg.protocols = vec!["mesif".into()];
        assert!(sweep(&cfg).unwrap_err().contains("mesif"));
    }

    #[test]
    fn render_lists_every_cell() {
        let cfg = tiny();
        let rows = sweep(&cfg).unwrap();
        let text = render_sweep(&rows);
        assert_eq!(text.lines().count(), rows.len() + 1);
        assert!(text.contains("acc/sec"));
    }

    #[test]
    fn render_scaling_lists_every_count_with_speedup() {
        let (_, scaling) = shard_scaling(&tiny(), &[1, 2]).unwrap();
        let text = render_scaling(&scaling);
        assert_eq!(text.lines().count(), scaling.len() + 1);
        assert!(text.contains("speedup"));
        assert!(text.contains('x'));
    }
}
