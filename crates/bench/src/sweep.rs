//! The protocol × workload benchmark sweep behind `moesi-sim bench`.
//!
//! Each cell of the sweep runs one homogeneous machine (one protocol) under
//! one named workload with the contention-aware timed model
//! (`System::run_timed`), and reports simulated throughput (accesses per
//! simulated second), bus occupancy and the miss ratio. Cells are fully
//! independent, so the sweep shards across the [`mpsim::campaign`] pool;
//! rows come back in protocol-major order for any worker count, and the
//! rendered JSON is byte-identical for `--jobs 1` and `--jobs N`.

use crate::{
    homogeneous_system_on, homogeneous_table_system, workload_streams, COMPARED_PROTOCOLS, LINE,
    WORKLOADS,
};
use cache_array::split_line_crossers;
use futurebus::{Nanos, Phase, PhaseHistograms, TimingConfig};
use moesi::json::{array_u64, JsonObject};
use moesi::PolicyTable;
use mpsim::campaign::run_jobs;
use mpsim::workload::Access;
use mpsim::EngineKind;
use std::time::Instant;

/// Nanoseconds of local (non-bus) work modelled per processor reference.
pub const CPU_WORK_NS: u64 = 50;

/// Address-interleaved regions a sharded cell splits one run into. Fixed —
/// `--shards N` chooses only the worker count, never the partition — so the
/// merged result is byte-identical for every `N ≥ 1`.
pub const SHARD_REGIONS: usize = 4;

/// Shape of a benchmark sweep.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// Protocol names to bench (one homogeneous machine per entry).
    pub protocols: Vec<String>,
    /// Workload names (see [`workload_streams`]).
    pub workloads: Vec<String>,
    /// Processors per machine.
    pub cpus: usize,
    /// References per processor.
    pub steps: u64,
    /// Cache capacity per node in bytes.
    pub cache_bytes: usize,
    /// Workload seed.
    pub seed: u64,
    /// Worker threads sharding the cells (1 = sequential).
    pub jobs: usize,
    /// Bus/memory/cache cost model every cell runs under. The §5.2
    /// sensitivity study re-scores candidates across a grid of these.
    pub timing: TimingConfig,
    /// Which simulation core runs each cell. The legacy loop is kept one PR
    /// as a differential-benchmarking baseline.
    pub engine: EngineKind,
    /// `0` (the default) runs each cell as one classic whole-machine
    /// simulation. `N ≥ 1` splits each cell's reference scripts into
    /// [`SHARD_REGIONS`] interleaved line-address regions, simulates each
    /// region as an independent machine on `N` worker threads, and merges in
    /// region order — deterministic, and byte-identical for every `N ≥ 1`.
    /// Requires the event engine.
    pub shards: usize,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            protocols: COMPARED_PROTOCOLS
                .iter()
                .map(|s| (*s).to_string())
                .collect(),
            workloads: WORKLOADS.iter().map(|s| (*s).to_string()).collect(),
            cpus: 4,
            steps: 2000,
            cache_bytes: 4096,
            seed: 7,
            jobs: mpsim::campaign::default_jobs(),
            timing: TimingConfig::default(),
            engine: EngineKind::default(),
            shards: 0,
        }
    }
}

/// One cell of the sweep: a protocol under a workload.
///
/// Equality ignores the host-side measurements (`host_wall_ns`,
/// `engine_accesses_per_sec`): two rows are "the same result" when the
/// *simulated* outcome matches, however fast the host happened to run.
#[derive(Clone, Debug)]
pub struct SweepRow {
    /// Protocol name.
    pub protocol: String,
    /// Workload name.
    pub workload: String,
    /// Processor accesses executed.
    pub accesses: u64,
    /// Simulated wall time of the timed run (ns).
    pub wall_ns: u64,
    /// Bus occupancy during the run (ns).
    pub busy_ns: u64,
    /// Time spent queued for the bus (ns).
    pub wait_ns: u64,
    /// Accesses per simulated second.
    pub accesses_per_sec: f64,
    /// Host wall-clock nanoseconds the cell's timed run took (sharded cells
    /// sum their region runs). A measurement of the simulator, not the
    /// simulated machine — excluded from equality and from committed-fixture
    /// comparisons (see [`strip_host_fields`]).
    pub host_wall_ns: u64,
    /// Engine throughput: processor accesses simulated per host second.
    /// Excluded from equality, like `host_wall_ns`.
    pub engine_accesses_per_sec: f64,
    /// Cache miss ratio over all nodes.
    pub miss_ratio: f64,
    /// Median latency charged per pipeline phase, in [`Phase::PIPELINE`]
    /// order (nearest-rank histogram bucket bounds).
    pub phase_p50: [Nanos; Phase::PIPELINE.len()],
    /// 99th-percentile latency charged per pipeline phase.
    pub phase_p99: [Nanos; Phase::PIPELINE.len()],
}

impl PartialEq for SweepRow {
    fn eq(&self, other: &Self) -> bool {
        // host_wall_ns and engine_accesses_per_sec deliberately excluded.
        self.protocol == other.protocol
            && self.workload == other.workload
            && self.accesses == other.accesses
            && self.wall_ns == other.wall_ns
            && self.busy_ns == other.busy_ns
            && self.wait_ns == other.wait_ns
            && self.accesses_per_sec == other.accesses_per_sec
            && self.miss_ratio == other.miss_ratio
            && self.phase_p50 == other.phase_p50
            && self.phase_p99 == other.phase_p99
    }
}

/// Runs one cell.
///
/// # Errors
///
/// Returns a message for an unknown protocol or workload name.
pub fn sweep_one(cfg: &SweepConfig, protocol: &str, workload: &str) -> Result<SweepRow, String> {
    if moesi::protocols::by_name(protocol, 0).is_none() {
        return Err(format!("unknown protocol `{protocol}`"));
    }
    if !WORKLOADS.contains(&workload) {
        return Err(format!("unknown workload `{workload}`"));
    }
    if cfg.shards > 0 {
        return Ok(measure_sharded(cfg, protocol, workload));
    }
    let sys = homogeneous_system_on(
        cfg.engine,
        protocol,
        cfg.cpus,
        cfg.cache_bytes,
        LINE,
        cfg.timing,
        false,
    );
    Ok(measure(cfg, sys, protocol, workload))
}

/// Scores one candidate [`PolicyTable`] under a workload — the synth
/// subsystem's fitness function. Identical machinery to [`sweep_one`]
/// (same machine shape, timed model and cost knobs), but the protocol is
/// the given table interpreted by the generic `TablePolicy` engine rather
/// than a shipped protocol looked up by name.
///
/// # Errors
///
/// Returns a message for an unknown workload name.
pub fn table_fitness(
    cfg: &SweepConfig,
    table: PolicyTable,
    workload: &str,
) -> Result<SweepRow, String> {
    if !WORKLOADS.contains(&workload) {
        return Err(format!("unknown workload `{workload}`"));
    }
    let sys = homogeneous_table_system(table, cfg.cpus, cfg.cache_bytes, LINE, cfg.timing, false);
    Ok(measure(cfg, sys, table.name(), workload))
}

fn measure(cfg: &SweepConfig, mut sys: mpsim::System, protocol: &str, workload: &str) -> SweepRow {
    let mut streams = workload_streams(workload, cfg.cpus, LINE, cfg.seed);
    let host = Instant::now();
    let timed = sys.run_timed(&mut streams, cfg.steps, CPU_WORK_NS);
    let host_wall_ns = host.elapsed().as_nanos() as u64;
    let total = sys.total_stats();
    finish_row(
        protocol,
        workload,
        &timed,
        host_wall_ns,
        1.0 - total.hit_ratio(),
    )
}

/// Shared row assembly for the classic and sharded measurements.
fn finish_row(
    protocol: &str,
    workload: &str,
    timed: &mpsim::TimedReport,
    host_wall_ns: u64,
    miss_ratio: f64,
) -> SweepRow {
    SweepRow {
        protocol: protocol.to_string(),
        workload: workload.to_string(),
        accesses: timed.total_refs,
        wall_ns: timed.wall_ns,
        busy_ns: timed.bus_busy_ns,
        wait_ns: timed.bus_wait_ns,
        accesses_per_sec: if timed.wall_ns == 0 {
            0.0
        } else {
            timed.total_refs as f64 * 1e9 / timed.wall_ns as f64
        },
        host_wall_ns,
        engine_accesses_per_sec: if host_wall_ns == 0 {
            0.0
        } else {
            timed.total_refs as f64 * 1e9 / host_wall_ns as f64
        },
        miss_ratio,
        phase_p50: timed.phase_hist.p50s(),
        phase_p99: timed.phase_hist.p99s(),
    }
}

/// Runs one cell sharded: the per-cpu reference scripts are materialised up
/// front, split at line boundaries, partitioned into [`SHARD_REGIONS`]
/// interleaved line-address regions, and each region is simulated as an
/// *independent* machine (same protocol, processors and caches, touching
/// only its own lines) on `cfg.shards` worker threads. The merge is in
/// region order: simulated wall is the max over regions (the regions model
/// independent buses running concurrently), traffic and occupancy sum, and
/// the phase histograms merge bucket-wise.
///
/// The partition count is fixed, so the merged row is byte-identical for
/// every `cfg.shards ≥ 1`; the shard count only decides how many host
/// threads run the regions. A sharded row is *not* comparable to an
/// unsharded one — splitting the address space removes cross-region bus
/// contention by construction (see DESIGN.md).
fn measure_sharded(cfg: &SweepConfig, protocol: &str, workload: &str) -> SweepRow {
    let mut streams = workload_streams(workload, cfg.cpus, LINE, cfg.seed);
    // Materialise each cpu's script, split at line boundaries so every
    // piece lands wholly in one region.
    let scripts: Vec<Vec<Access>> = streams
        .iter_mut()
        .map(|s| {
            let mut script = Vec::with_capacity(cfg.steps as usize);
            for _ in 0..cfg.steps {
                let a = s.next_access();
                for (addr, size) in split_line_crossers(a.addr, a.size, LINE) {
                    script.push(Access {
                        addr,
                        size,
                        is_write: a.is_write,
                    });
                }
            }
            script
        })
        .collect();
    let region_of = |addr: u64| ((addr / LINE as u64) % SHARD_REGIONS as u64) as usize;
    let regions: Vec<Vec<Vec<Access>>> = (0..SHARD_REGIONS)
        .map(|r| {
            scripts
                .iter()
                .map(|script| {
                    script
                        .iter()
                        .copied()
                        .filter(|a| region_of(a.addr) == r)
                        .collect()
                })
                .collect()
        })
        .collect();
    let lane_results = run_jobs(regions, cfg.shards, |lane: Vec<Vec<Access>>| {
        let mut sys = homogeneous_system_on(
            cfg.engine,
            protocol,
            cfg.cpus,
            cfg.cache_bytes,
            LINE,
            cfg.timing,
            false,
        );
        let host = Instant::now();
        let timed = sys.run_timed_script(&lane, CPU_WORK_NS);
        let host_ns = host.elapsed().as_nanos() as u64;
        (timed, sys.total_stats(), host_ns)
    });
    let mut merged = mpsim::TimedReport {
        wall_ns: 0,
        bus_busy_ns: 0,
        bus_wait_ns: 0,
        total_refs: 0,
        phase_hist: PhaseHistograms::new(),
    };
    let (mut host_wall_ns, mut hits, mut refs) = (0u64, 0u64, 0u64);
    for (timed, stats, host_ns) in &lane_results {
        merged.wall_ns = merged.wall_ns.max(timed.wall_ns);
        merged.bus_busy_ns += timed.bus_busy_ns;
        merged.bus_wait_ns += timed.bus_wait_ns;
        merged.total_refs += timed.total_refs;
        merged.phase_hist.merge(&timed.phase_hist);
        host_wall_ns += host_ns;
        hits += stats.read_hits + stats.write_hits;
        refs += stats.reads + stats.writes;
    }
    let miss_ratio = if refs == 0 {
        0.0
    } else {
        1.0 - hits as f64 / refs as f64
    };
    finish_row(protocol, workload, &merged, host_wall_ns, miss_ratio)
}

/// Runs the whole sweep, sharded over `cfg.jobs` workers. Rows come back in
/// protocol-major, workload-minor order regardless of worker count.
///
/// # Errors
///
/// Returns the first cell error (unknown protocol/workload) in row order.
pub fn sweep(cfg: &SweepConfig) -> Result<Vec<SweepRow>, String> {
    if cfg.protocols.is_empty() || cfg.workloads.is_empty() {
        return Err("nothing to bench: empty protocol or workload list".into());
    }
    if cfg.cpus == 0 || cfg.steps == 0 {
        return Err("cpus and steps must be non-zero".into());
    }
    if cfg.shards > 0 && cfg.engine == EngineKind::Legacy {
        return Err("--shards requires the event engine (script-driven lanes)".into());
    }
    let mut cells = Vec::with_capacity(cfg.protocols.len() * cfg.workloads.len());
    for p in &cfg.protocols {
        for w in &cfg.workloads {
            cells.push((p.clone(), w.clone()));
        }
    }
    mpsim::campaign::run_jobs(cells, cfg.jobs, |(p, w)| sweep_one(cfg, &p, &w))
        .into_iter()
        .collect()
}

/// Renders the rows as a JSON document via the shared hand-rolled writer
/// ([`moesi::json`]; the workspace carries no serialisation dependency).
/// Floats are printed with fixed precision so the bytes are stable across
/// runs and worker counts.
#[must_use]
pub fn sweep_json(cfg: &SweepConfig, rows: &[SweepRow]) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"seed\": {},\n  \"cpus\": {},\n  \"steps_per_cpu\": {},\n  \"cpu_work_ns\": {},\n",
        cfg.seed, cfg.cpus, cfg.steps, CPU_WORK_NS
    ));
    out.push_str("  \"rows\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let row = JsonObject::new()
            .string("protocol", &r.protocol)
            .string("workload", &r.workload)
            .number("accesses", r.accesses)
            .number("wall_ns", r.wall_ns)
            .number("busy_ns", r.busy_ns)
            .number("wait_ns", r.wait_ns)
            .fixed("accesses_per_sec", r.accesses_per_sec, 3)
            .number("host_wall_ns", r.host_wall_ns)
            .fixed("engine_accesses_per_sec", r.engine_accesses_per_sec, 3)
            .fixed("miss_ratio", r.miss_ratio, 6)
            .raw("phase_p50_ns", &array_u64(&r.phase_p50))
            .raw("phase_p99_ns", &array_u64(&r.phase_p99))
            .finish();
        out.push_str(&format!(
            "    {row}{}\n",
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Strips the host-side measurement fields (`host_wall_ns`,
/// `engine_accesses_per_sec`) from a [`sweep_json`] document, leaving only
/// the simulated results. This is the normalisation fixture comparisons and
/// the engine-equivalence CI stage run through: host timings differ run to
/// run by construction, simulated results must not.
#[must_use]
pub fn strip_host_fields(json: &str) -> String {
    let mut out = json.to_string();
    for key in ["\"host_wall_ns\": ", "\"engine_accesses_per_sec\": "] {
        while let Some(start) = out.find(key) {
            // Both fields sit mid-row, so the value is always followed by
            // `, ` — consume through it.
            let end = match out[start..].find(", ") {
                Some(comma) => start + comma + 2,
                None => break,
            };
            out.replace_range(start..end, "");
        }
    }
    out
}

/// Renders the rows as an aligned text table grouped by workload.
#[must_use]
pub fn render_sweep(rows: &[SweepRow]) -> String {
    let mut out = format!(
        "{:<20} {:<18} {:>9} {:>12} {:>12} {:>14} {:>7}\n",
        "protocol", "workload", "accesses", "wall us", "bus us", "acc/sec", "miss%"
    );
    for r in rows {
        out.push_str(&format!(
            "{:<20} {:<18} {:>9} {:>12.1} {:>12.1} {:>14.0} {:>6.1}%\n",
            r.protocol,
            r.workload,
            r.accesses,
            r.wall_ns as f64 / 1000.0,
            r.busy_ns as f64 / 1000.0,
            r.accesses_per_sec,
            r.miss_ratio * 100.0,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SweepConfig {
        SweepConfig {
            protocols: vec!["moesi".into(), "write-through".into()],
            workloads: vec!["general".into(), "ping-pong".into()],
            cpus: 2,
            steps: 100,
            jobs: 1,
            ..SweepConfig::default()
        }
    }

    #[test]
    fn sweep_produces_protocol_major_rows_with_traffic() {
        let rows = sweep(&tiny()).unwrap();
        assert_eq!(rows.len(), 4);
        assert_eq!(rows[0].protocol, "moesi");
        assert_eq!(rows[0].workload, "general");
        assert_eq!(rows[1].workload, "ping-pong");
        assert_eq!(rows[2].protocol, "write-through");
        for r in &rows {
            assert!(r.accesses > 0, "{}/{} ran nothing", r.protocol, r.workload);
            assert!(r.accesses_per_sec > 0.0);
            assert!((0.0..=1.0).contains(&r.miss_ratio));
            let data = Phase::DataTransfer as usize;
            assert!(
                r.phase_p99[data] >= r.phase_p50[data],
                "{}/{}: p99 below p50",
                r.protocol,
                r.workload
            );
            assert!(
                r.phase_p99[data] > 0,
                "{}/{}: bus traffic must charge the data phase",
                r.protocol,
                r.workload
            );
        }
    }

    #[test]
    fn sharded_sweep_is_byte_identical_to_sequential() {
        let cfg = tiny();
        let seq = sweep(&cfg).unwrap();
        let par = sweep(&SweepConfig {
            jobs: 4,
            ..cfg.clone()
        })
        .unwrap();
        assert_eq!(seq, par);
        assert_eq!(
            strip_host_fields(&sweep_json(&cfg, &seq)),
            strip_host_fields(&sweep_json(&cfg, &par))
        );
    }

    #[test]
    fn strip_host_fields_removes_exactly_the_host_measurements() {
        let cfg = tiny();
        let rows = sweep(&cfg).unwrap();
        let json = sweep_json(&cfg, &rows);
        assert_eq!(json.matches("\"host_wall_ns\"").count(), rows.len());
        let stripped = strip_host_fields(&json);
        assert!(!stripped.contains("host_wall_ns"));
        assert!(!stripped.contains("engine_accesses_per_sec"));
        // Everything else survives untouched.
        assert_eq!(stripped.matches("\"accesses_per_sec\"").count(), rows.len());
        assert_eq!(stripped.matches("\"miss_ratio\"").count(), rows.len());
        assert!(stripped.ends_with("}\n"));
    }

    #[test]
    fn legacy_and_event_engines_sweep_identically() {
        let event = sweep(&tiny()).unwrap();
        let legacy = sweep(&SweepConfig {
            engine: EngineKind::Legacy,
            ..tiny()
        })
        .unwrap();
        assert_eq!(event, legacy);
    }

    #[test]
    fn shard_worker_count_never_changes_the_merged_rows() {
        let one = sweep(&SweepConfig {
            shards: 1,
            ..tiny()
        })
        .unwrap();
        let two = sweep(&SweepConfig {
            shards: 2,
            ..tiny()
        })
        .unwrap();
        assert_eq!(one, two);
        let cfg = tiny();
        assert_eq!(
            strip_host_fields(&sweep_json(&cfg, &one)),
            strip_host_fields(&sweep_json(&cfg, &two))
        );
        // Sharding preserves the reference count (line-crosser pieces and
        // all) even though the partition changes the contention picture.
        let whole = sweep(&cfg).unwrap();
        for (s, w) in one.iter().zip(&whole) {
            assert_eq!(s.protocol, w.protocol);
            assert_eq!(s.workload, w.workload);
            assert_eq!(s.accesses, w.accesses, "{}/{}", s.protocol, s.workload);
        }
    }

    #[test]
    fn sharding_requires_the_event_engine() {
        let err = sweep(&SweepConfig {
            shards: 2,
            engine: EngineKind::Legacy,
            ..tiny()
        })
        .unwrap_err();
        assert!(err.contains("event engine"), "{err}");
    }

    #[test]
    fn json_is_wellformed_enough_to_eyeball() {
        let cfg = tiny();
        let rows = sweep(&cfg).unwrap();
        let json = sweep_json(&cfg, &rows);
        assert!(json.starts_with("{\n"));
        assert!(json.ends_with("}\n"));
        assert_eq!(json.matches("\"protocol\"").count(), rows.len());
        assert_eq!(json.matches("\"phase_p50_ns\": [").count(), rows.len());
        assert_eq!(json.matches("\"phase_p99_ns\": [").count(), rows.len());
        assert!(json.contains("\"seed\": 7"));
        assert!(!json.contains(",\n  ]"), "no trailing comma:\n{json}");
    }

    #[test]
    fn unknown_names_are_reported() {
        let mut cfg = tiny();
        cfg.protocols = vec!["mesif".into()];
        assert!(sweep(&cfg).unwrap_err().contains("mesif"));
        let mut cfg = tiny();
        cfg.workloads = vec!["zipfian".into()];
        assert!(sweep(&cfg).unwrap_err().contains("zipfian"));
    }

    #[test]
    fn render_lists_every_cell() {
        let cfg = tiny();
        let rows = sweep(&cfg).unwrap();
        let text = render_sweep(&rows);
        assert_eq!(text.lines().count(), rows.len() + 1);
        assert!(text.contains("acc/sec"));
    }
}
