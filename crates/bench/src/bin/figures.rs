//! Regenerates Figures 1–4 of the paper (experiments F1–F4 in DESIGN.md).
//!
//! Run with `cargo run -p bench --bin figures`.

use futurebus::handshake::HandshakeSim;
use futurebus::wire::WiredOr;
use futurebus::TimingConfig;
use moesi::{Characteristics, LineState};

fn main() {
    println!("================================================================");
    println!("Figure 1 — Broadcast handshake on Futurebus (wired-OR semantics)");
    println!("================================================================");
    let mut line = WiredOr::new("AI*");
    println!("\"Drive low, float high\": the line rises only when ALL drivers let go.\n");
    for m in 0..3 {
        line.assert(m);
        println!("  driver {m} asserts   -> {line}");
    }
    for m in 0..3 {
        let ev = line.release(m).expect("asserting");
        println!("  driver {m} releases  -> {line}   [{ev}]");
    }
    println!("  wired-OR glitches produced: {}\n", line.glitch_count());

    println!("================================================================");
    println!("Figure 2 — Futurebus parallel protocol (one address cycle)");
    println!("================================================================");
    let sim = HandshakeSim::new(TimingConfig::default());
    println!("Modules: cache (20 ns probe), I/O board (90 ns), memory (45 ns)\n");
    let trace = sim.run(&[20, 90, 45]);
    print!("{}", trace.render());
    println!(
        "\nBroadcast penalty vs a single-slave handshake: {} ns (paper: 25 ns)\n",
        sim.broadcast_overhead(40, 4)
    );

    println!("================================================================");
    println!("Figure 3 — Three characteristics of cached data");
    println!("================================================================");
    println!(
        "{:<10} {:<12} {:<14} {:<10} -> state",
        "", "validity", "exclusiveness", "ownership"
    );
    for v in [true, false] {
        for e in [true, false] {
            for o in [true, false] {
                let c = Characteristics {
                    validity: v,
                    exclusiveness: e,
                    ownership: o,
                };
                let s = LineState::from(c);
                println!(
                    "{:<10} {:<12} {:<14} {:<10} -> {} ({})",
                    "",
                    v,
                    e,
                    o,
                    s.letter(),
                    s.long_name()
                );
            }
        }
    }
    println!("\n8 combinations collapse to 5 states: exclusiveness and ownership are");
    println!("meaningless for invalid data (§3.1.4).\n");

    println!("================================================================");
    println!("Figure 4 — MOESI state pairs");
    println!("================================================================");
    type PairSpec = (&'static str, fn(LineState) -> bool, &'static str);
    let pairs: [PairSpec; 4] = [
        (
            "intervenient (owned)",
            LineState::is_intervenient,
            "must preempt memory's response",
        ),
        (
            "sole copy (exclusive)",
            LineState::is_exclusive,
            "may be modified without warning others",
        ),
        (
            "unowned valid",
            LineState::is_unowned_valid,
            "not responsible for other modules' accesses",
        ),
        (
            "non-exclusive",
            LineState::is_non_exclusive,
            "local writes must notify the bus",
        ),
    ];
    for (name, pred, meaning) in pairs {
        let members: Vec<String> = LineState::ALL
            .into_iter()
            .filter(|s| pred(*s))
            .map(|s| s.letter().to_string())
            .collect();
        println!("  {{{}}}  {:<24} — {}", members.join(","), name, meaning);
    }
}
