//! Regenerates Tables 1–7 of the paper (experiments T1–T7 in DESIGN.md).
//!
//! Run with `cargo run -p bench --bin tables`.

use moesi::compat::{check_protocol, reachable_states};
use moesi::protocols::{by_name, MoesiPreferred};
use moesi::{table, BusEvent, CacheKind, LineState, LocalCtx, LocalEvent, Protocol, SnoopCtx};

/// Renders one protocol's transition table in the paper's format: local
/// columns first, then the bus-event columns it can encounter.
fn render_protocol(p: &mut (dyn Protocol + Send), bus_cols: &[BusEvent]) -> String {
    let reachable = reachable_states(p);
    let states: Vec<LineState> = LineState::ALL
        .into_iter()
        .filter(|s| reachable.contains(s))
        .collect();
    let mut out = String::new();
    out.push_str(&format!(
        "{:<7} {:<18} {:<22}",
        "State", "Read(1)", "Write(2)"
    ));
    for ev in bus_cols {
        out.push_str(&format!(
            " {:<16}",
            format!("{}({})", ev.signals(), ev.column())
        ));
    }
    out.push('\n');
    for state in states {
        out.push_str(&format!("{:<7}", state.letter()));
        for event in [LocalEvent::Read, LocalEvent::Write] {
            let cell = p
                .try_on_local(state, event, &LocalCtx::default())
                .map_or_else(|_| "-".to_string(), |a| a.to_string());
            let w = if event == LocalEvent::Read { 18 } else { 22 };
            out.push_str(&format!(" {cell:<w$}", w = w));
        }
        for ev in bus_cols {
            // Error-condition cells (`—` in the paper) are structured
            // IllegalCell errors; render them as dashes.
            let cell = p
                .try_on_bus(state, *ev, &SnoopCtx::default())
                .map_or_else(|_| "-".to_string(), |r| r.to_string());
            out.push_str(&format!(" {cell:<16}"));
        }
        out.push('\n');
    }
    out
}

fn main() {
    println!("================================================================");
    println!("Table 1 — MOESI protocol class: local events (copy-back rows)");
    println!("================================================================");
    print!("{}", table::render_table1(CacheKind::CopyBack));
    println!();
    println!("Table 1 (cont.) — write-through cache rows (*)");
    print!("{}", table::render_table1(CacheKind::WriteThrough));
    println!();
    println!("Table 1 (cont.) — non-caching processor rows (**)");
    print!("{}", table::render_table1(CacheKind::NonCaching));
    println!();

    println!("================================================================");
    println!("Table 2 — MOESI protocol class: bus events");
    println!("================================================================");
    print!("{}", table::render_table2());
    println!();

    let specs: &[(&str, &str, &[BusEvent])] = &[
        (
            "Table 3 — Berkeley protocol",
            "berkeley",
            &[BusEvent::CacheRead, BusEvent::CacheReadInvalidate],
        ),
        (
            "Table 4 — Dragon protocol",
            "dragon",
            &[BusEvent::CacheRead, BusEvent::CacheBroadcastWrite],
        ),
        (
            "Table 5 — Write-Once protocol",
            "write-once",
            &[BusEvent::CacheRead, BusEvent::CacheReadInvalidate],
        ),
        (
            "Table 6 — Illinois protocol",
            "illinois",
            &[BusEvent::CacheRead, BusEvent::CacheReadInvalidate],
        ),
        (
            "Table 7 — Firefly protocol",
            "firefly",
            &[BusEvent::CacheRead, BusEvent::CacheBroadcastWrite],
        ),
        (
            "Bonus — Synapse protocol (Arch85's sixth, via [Fran84])",
            "synapse",
            &[BusEvent::CacheRead, BusEvent::CacheReadInvalidate],
        ),
    ];
    for (title, name, cols) in specs {
        println!("================================================================");
        println!("{title}");
        println!("================================================================");
        let mut p = by_name(name, 0).expect("known protocol");
        print!("{}", render_protocol(p.as_mut(), cols));
        let report = check_protocol(p.as_mut());
        if report.is_class_member() {
            println!("  -> class membership: IN the MOESI compatible class");
        } else {
            println!(
                "  -> class membership: ADAPTED (outside the class; {} deviations, BS used: {})",
                report.violations().len(),
                report.violations().iter().any(|v| v.contains("BS")),
            );
        }
        println!();
    }

    println!("================================================================");
    println!("Class membership summary (§3.4 / §4)");
    println!("================================================================");
    for name in [
        "moesi",
        "moesi-invalidating",
        "puzak",
        "write-through",
        "non-caching",
        "berkeley",
        "dragon",
        "random",
        "write-once",
        "illinois",
        "firefly",
        "synapse",
    ] {
        let mut p = by_name(name, 9).expect("known");
        let report = check_protocol(p.as_mut());
        println!(
            "  {:<20} {}",
            name,
            if report.is_class_member() {
                "class member".to_string()
            } else {
                format!(
                    "adapted ({} out-of-class decisions)",
                    report.violations().len()
                )
            }
        );
    }
    let _ = MoesiPreferred::new();
}
