//! Runs the quantitative experiments E2–E6 of DESIGN.md and prints the
//! series recorded in EXPERIMENTS.md.
//!
//! Run with `cargo run --release -p bench --bin experiments`.

use bench::{
    compare_one, homogeneous_system, render_comparison, workload_streams, COMPARED_PROTOCOLS, LINE,
    WORKLOADS,
};
use futurebus::TimingConfig;
use mpsim::workload::{DuboisBriggs, SharingModel};
use mpsim::{RefStream, Sequential};

const CPUS: usize = 4;
const STEPS: u64 = 1_000;

fn e2_sharing_sweep() {
    println!("================================================================");
    println!("E2 — §5.2 invalidate vs update, by sharing intensity");
    println!("================================================================");
    println!("4 CPUs, Dubois-Briggs model, p_write=0.3; bus-busy microseconds:");
    println!(
        "{:>9} {:>12} {:>12} {:>12} {:>10}",
        "p_shared", "update(us)", "inval(us)", "puzak(us)", "winner"
    );
    for p_shared in [0.05, 0.1, 0.2, 0.4, 0.6, 0.8] {
        let mut results = Vec::new();
        for protocol in ["moesi", "moesi-invalidating", "puzak"] {
            let mut sys =
                homogeneous_system(protocol, CPUS, 4096, LINE, TimingConfig::default(), true);
            let model = SharingModel {
                p_shared,
                line_size: LINE as u64,
                ..SharingModel::default()
            };
            let mut streams: Vec<Box<dyn RefStream + Send>> = (0..CPUS)
                .map(|cpu| Box::new(DuboisBriggs::new(cpu, model, 11)) as _)
                .collect();
            sys.run(&mut streams, STEPS);
            results.push(sys.bus_stats().busy_ns as f64 / 1000.0);
        }
        let winner = if results[0] <= results[1] {
            "update"
        } else {
            "invalidate"
        };
        println!(
            "{:>9.2} {:>12.1} {:>12.1} {:>12.1} {:>10}",
            p_shared, results[0], results[1], results[2], winner
        );
    }
    println!();
}

fn e3_protocol_comparison() {
    println!("================================================================");
    println!("E3 — §5.2 full protocol comparison, per workload");
    println!("================================================================");
    for workload in WORKLOADS {
        let rows: Vec<_> = COMPARED_PROTOCOLS
            .iter()
            .map(|p| compare_one(p, workload, CPUS, STEPS))
            .collect();
        print!(
            "{}",
            render_comparison(
                &format!("workload: {workload} ({CPUS} CPUs x {STEPS} steps)"),
                &rows
            )
        );
        println!();
    }
}

fn e4_puzak_ablation() {
    println!("================================================================");
    println!("E4 — §5.2 replacement-status refinement (Puzak) ablation");
    println!("================================================================");
    println!("Shared lines contend with private traffic for a 2-way cache, so");
    println!("updates to near-replacement lines are wasted. Bus-busy us / misses:");
    println!(
        "{:>24} {:>10} {:>10} {:>12} {:>12}",
        "policy", "bus us", "misses", "updates", "invalidations"
    );
    for protocol in ["moesi", "moesi-invalidating", "puzak"] {
        // A small cache with heavy private pressure ages shared lines fast.
        let mut sys = homogeneous_system(protocol, CPUS, 1024, LINE, TimingConfig::default(), true);
        let model = SharingModel {
            shared_lines: 8,
            private_lines: 48,
            p_shared: 0.3,
            p_write: 0.4,
            p_rereference: 0.2,
            line_size: LINE as u64,
        };
        let mut streams: Vec<Box<dyn RefStream + Send>> = (0..CPUS)
            .map(|cpu| Box::new(DuboisBriggs::new(cpu, model, 5)) as _)
            .collect();
        sys.run(&mut streams, STEPS);
        let t = sys.total_stats();
        println!(
            "{:>24} {:>10.1} {:>10} {:>12} {:>12}",
            protocol,
            sys.bus_stats().busy_ns as f64 / 1000.0,
            t.references() - t.hits(),
            t.updates_received,
            t.invalidations_received,
        );
    }
    println!();
}

fn e5_timing_sensitivity() {
    println!("================================================================");
    println!("E5 — §5.2 cost sensitivity: intervention vs memory latency");
    println!("================================================================");
    println!("Ping-pong sharing; memory latency fixed at 300 ns. MOESI-inv serves the");
    println!("migrating dirty line by cache-to-cache intervention; Illinois pushes it to");
    println!("memory (BS) and lets memory respond. \"Changes in their relative performance");
    println!("can change the cost of various bus operations\" — the crossover moves:");
    println!(
        "{:>18} {:>14} {:>14} {:>12}",
        "intervention(ns)", "moesi-inv(us)", "illinois(us)", "cheaper"
    );
    for intervention in [50u64, 100, 200, 300, 450, 600] {
        let timing = TimingConfig {
            intervention_latency_ns: intervention,
            ..TimingConfig::default()
        };
        let mut results = Vec::new();
        for protocol in ["moesi-invalidating", "illinois"] {
            let mut sys = homogeneous_system(protocol, CPUS, 4096, LINE, timing, true);
            let mut streams = workload_streams("ping-pong", CPUS, LINE, 3);
            sys.run(&mut streams, STEPS);
            results.push(sys.bus_stats().busy_ns as f64 / 1000.0);
        }
        println!(
            "{:>18} {:>14.1} {:>14.1} {:>12}",
            intervention,
            results[0],
            results[1],
            if results[0] <= results[1] {
                "moesi-inv"
            } else {
                "illinois"
            }
        );
    }
    println!();
}

fn e6_line_size_sweep() {
    println!("================================================================");
    println!("E6 — §5.1 line size: miss ratio and traffic vs line size");
    println!("================================================================");
    println!("One CPU, sequential sweep with spatial locality (stride 4B):");
    println!(
        "{:>10} {:>10} {:>14} {:>12}",
        "line(B)", "hit%", "bytes moved", "bus txns"
    );
    for line in [8usize, 16, 32, 64, 128] {
        let mut sys = homogeneous_system("moesi", 1, 4096, line, TimingConfig::default(), true);
        let mut streams: Vec<Box<dyn RefStream + Send>> =
            vec![Box::new(Sequential::new(0, 4, 8192, 0.2, 9))];
        sys.run(&mut streams, 4_000);
        let t = sys.total_stats();
        println!(
            "{:>10} {:>9.1}% {:>14} {:>12}",
            line,
            t.hit_ratio() * 100.0,
            sys.bus_stats().bytes_moved,
            sys.bus_stats().transactions,
        );
    }
    println!("\nLarger lines exploit the spatial locality (hit%% rises) but move more");
    println!("bytes per miss — the traffic trade-off behind §5.1's call for a single");
    println!("standardised size chosen from data like [Smit85c].\n");
}

fn main() {
    e2_sharing_sweep();
    e3_protocol_comparison();
    e4_puzak_ablation();
    e5_timing_sensitivity();
    e6_line_size_sweep();
}
