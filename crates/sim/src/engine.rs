//! The cycle-stamped discrete-event core behind [`System`](crate::System)'s
//! run loops.
//!
//! The engine models the machine as a set of *lanes* (one per processor),
//! each with a private cycle clock, coupled only through the shared bus. A
//! binary-heap event queue orders lane wake-ups by `(cycle, seq)`; `seq`
//! encodes the lane id in its high bits and a per-lane monotonic counter in
//! its low bits, so ties on the same cycle resolve deterministically by lane
//! id (FIFO within a lane is guaranteed by the counter). That makes the
//! event order — and therefore every coherence interleaving — a pure
//! function of the workload, independent of host scheduling.
//!
//! The pre-event accounting loop is retained for one PR as
//! [`EngineKind::Legacy`], so differential tests can pin the event engine
//! against it byte for byte (see `tests/engine_equivalence.rs`). The legacy
//! loop orders processors by `(clock, cpu)`; the event queue's `(cycle,
//! seq)` order coincides with it exactly, because a lane never has two
//! events in flight and the lane id occupies the most significant bits of
//! `seq`.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Which core drives a run.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EngineKind {
    /// The pre-event per-access accounting loop. Kept for one PR as the
    /// differential-testing baseline; it materialises every read's bytes
    /// and dispatches bus modules through trait objects.
    Legacy,
    /// The cycle-stamped event-queue engine (the default): flat
    /// index-addressed component state, statically dispatched snooping, and
    /// dataless fast paths for checked-off runs. Byte-identical observable
    /// behaviour to [`EngineKind::Legacy`].
    #[default]
    Event,
}

impl EngineKind {
    /// Parses a CLI engine name.
    #[must_use]
    pub fn parse(name: &str) -> Option<EngineKind> {
        match name {
            "legacy" => Some(EngineKind::Legacy),
            "event" => Some(EngineKind::Event),
            _ => None,
        }
    }

    /// The CLI-facing name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Legacy => "legacy",
            EngineKind::Event => "event",
        }
    }
}

/// One scheduled lane wake-up. Ordering is lexicographic on
/// `(cycle, seq)` via the derived `Ord` (field declaration order), which the
/// queue relies on for its determinism contract.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct Event {
    cycle: u64,
    seq: u64,
}

/// Widest machine the dense slot array serves; wider machines fall back to
/// the binary heap. Linear min-scans over a flat `u128` key array beat heap
/// sift costs by a wide margin at these sizes (the scan is branch-predictable
/// and in-cache; a pop+push pays several cold, branchy sift compares).
const FLAT_MAX_LANES: usize = 64;

/// A lane-indexed slot key: `(cycle, lane)` packed so integer comparison is
/// the event order. [`EMPTY`] (all ones) sorts after every real key, so the
/// min-scan needs no occupancy branches.
const EMPTY: u128 = u128::MAX;

#[inline]
fn key(cycle: u64, lane: usize) -> u128 {
    (u128::from(cycle) << 64) | lane as u128
}

/// The deterministic event queue, ordered by `(cycle, seq)`.
///
/// Two layouts with identical observable order:
/// - **Flat** (machines up to [`FLAT_MAX_LANES`] lanes): one slot per lane
///   holding its next wake-up as a packed `(cycle, lane)` key; `pop` is a
///   linear min-scan. Exact because a lane has at most one event in flight,
///   so `(cycle, lane)` *is* `(cycle, seq)`.
/// - **Heap** (wider machines): the classic binary min-heap of [`Event`]s,
///   `seq = lane << 32 | counter`.
#[derive(Debug)]
pub(crate) struct EventQueue {
    imp: Imp,
}

#[derive(Debug)]
enum Imp {
    Flat {
        slots: Vec<u128>,
        live: usize,
    },
    Heap {
        heap: BinaryHeap<Reverse<Event>>,
        /// Per-lane schedule counters (the low half of `seq`). A lane has at
        /// most one event in flight, so the counter only needs to keep FIFO
        /// order among that lane's *successive* events; wrapping is harmless.
        counters: Vec<u32>,
    },
}

impl EventQueue {
    /// A queue with every lane scheduled at cycle 0, in lane order.
    pub(crate) fn new(lanes: usize) -> Self {
        let mut q = EventQueue {
            imp: if lanes <= FLAT_MAX_LANES {
                Imp::Flat {
                    slots: vec![EMPTY; lanes],
                    live: 0,
                }
            } else {
                Imp::Heap {
                    heap: BinaryHeap::with_capacity(lanes + 1),
                    counters: vec![0; lanes],
                }
            },
        };
        for lane in 0..lanes {
            q.schedule(lane, 0);
        }
        q
    }

    /// Schedules `lane`'s next wake-up at `cycle`.
    pub(crate) fn schedule(&mut self, lane: usize, cycle: u64) {
        match &mut self.imp {
            Imp::Flat { slots, live } => {
                debug_assert_eq!(slots[lane], EMPTY, "one event in flight per lane");
                slots[lane] = key(cycle, lane);
                *live += 1;
            }
            Imp::Heap { heap, counters } => {
                let counter = counters[lane];
                counters[lane] = counter.wrapping_add(1);
                heap.push(Reverse(Event {
                    cycle,
                    seq: ((lane as u64) << 32) | u64::from(counter),
                }));
            }
        }
    }

    /// Pops the earliest event: `(cycle, lane)`.
    pub(crate) fn pop(&mut self) -> Option<(u64, usize)> {
        match &mut self.imp {
            Imp::Flat { slots, live } => {
                if *live == 0 {
                    return None;
                }
                let mut best = EMPTY;
                let mut at = 0;
                for (lane, &k) in slots.iter().enumerate() {
                    if k < best {
                        best = k;
                        at = lane;
                    }
                }
                slots[at] = EMPTY;
                *live -= 1;
                Some(((best >> 64) as u64, at))
            }
            Imp::Heap { heap, .. } => heap
                .pop()
                .map(|Reverse(e)| (e.cycle, (e.seq >> 32) as usize)),
        }
    }

    /// True when `lane`, rescheduled at `cycle`, would still precede every
    /// queued event — the run-ahead test: popping would return this lane
    /// immediately, so the caller may keep executing it without the
    /// schedule/pop round-trip. Exact by the same `(cycle, lane)` order the
    /// queue uses (no two queued events share a lane).
    pub(crate) fn lane_still_first(&self, lane: usize, cycle: u64) -> bool {
        let own = key(cycle, lane);
        match &self.imp {
            Imp::Flat { slots, .. } => slots.iter().all(|&k| own < k),
            Imp::Heap { heap, .. } => match heap.peek() {
                None => true,
                Some(Reverse(head)) => (cycle, lane) < (head.cycle, (head.seq >> 32) as usize),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_kind_parses_cli_names() {
        assert_eq!(EngineKind::parse("legacy"), Some(EngineKind::Legacy));
        assert_eq!(EngineKind::parse("event"), Some(EngineKind::Event));
        assert_eq!(EngineKind::parse("warp"), None);
        assert_eq!(EngineKind::Event.name(), "event");
        assert_eq!(EngineKind::Legacy.name(), "legacy");
        assert_eq!(EngineKind::default(), EngineKind::Event);
    }

    #[test]
    fn same_cycle_ties_break_by_lane_id() {
        let mut q = EventQueue::new(4);
        let order: Vec<usize> = (0..4).map(|_| q.pop().unwrap().1).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn events_pop_in_cycle_then_lane_order() {
        let mut q = EventQueue::new(3);
        for _ in 0..3 {
            q.pop();
        }
        q.schedule(2, 10);
        q.schedule(0, 20);
        q.schedule(1, 10);
        assert_eq!(q.pop(), Some((10, 1)));
        assert_eq!(q.pop(), Some((10, 2)));
        assert_eq!(q.pop(), Some((20, 0)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn run_ahead_matches_the_heap_order() {
        let mut q = EventQueue::new(2);
        q.pop();
        q.pop();
        q.schedule(1, 100);
        // Lane 0 at an earlier cycle precedes; at the same cycle its lower
        // id precedes; later it does not.
        assert!(q.lane_still_first(0, 50));
        assert!(q.lane_still_first(0, 100));
        assert!(!q.lane_still_first(1, 100)); // its own event is not "another"
        assert!(!q.lane_still_first(0, 101));
    }

    #[test]
    fn empty_queue_always_runs_ahead() {
        let mut q = EventQueue::new(1);
        q.pop();
        assert!(q.lane_still_first(0, u64::MAX - 1));
    }

    #[test]
    fn heap_and_flat_layouts_pop_in_the_same_order() {
        // 100 lanes exercises the heap; 50 the flat array. Drive both with
        // the same deterministic reschedule rule and compare the prefix.
        let mut flat = EventQueue::new(50);
        let mut heap = EventQueue::new(100);
        let mut flat_order = Vec::new();
        let mut heap_order = Vec::new();
        for step in 0..500u64 {
            let (cycle, lane) = flat.pop().unwrap();
            flat_order.push((cycle, lane));
            flat.schedule(lane, cycle + 1 + (lane as u64 * step) % 7);
            let (cycle, lane) = heap.pop().unwrap();
            if lane < 50 {
                heap_order.push((cycle, lane));
            }
            heap.schedule(lane, cycle + 1 + (lane as u64 * step) % 7);
        }
        // Same (cycle, lane) ordering contract on both layouts.
        let mut sorted = flat_order.clone();
        sorted.sort_unstable();
        assert_eq!(flat_order, sorted);
        let mut sorted = heap_order.clone();
        sorted.sort_unstable();
        assert_eq!(heap_order, sorted);
    }
}
