//! The cycle-stamped discrete-event core behind [`System`](crate::System)'s
//! run loops.
//!
//! The engine models the machine as a set of *lanes* (one per processor),
//! each with a private cycle clock, coupled only through the shared bus. An
//! event queue orders lane wake-ups by `(cycle, seq)`; `seq` encodes the
//! lane id in its high bits and a per-lane monotonic counter in its low
//! bits, so ties on the same cycle resolve deterministically by lane id
//! (FIFO within a lane is guaranteed by the counter). That makes the event
//! order — and therefore every coherence interleaving — a pure function of
//! the workload, independent of host scheduling.
//!
//! The queue's total order coincides with a `(clock, cpu)` virtual-time
//! scan, because a lane never has two events in flight and the lane id
//! occupies the most significant bits of `seq`. The pre-event accounting
//! loop this engine replaced was kept for one PR as a differential
//! baseline and has since been deleted; the 7 golden-trace fixtures and
//! the phase-accounting suite remain the semantic gate.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One scheduled lane wake-up. Ordering is lexicographic on
/// `(cycle, seq)` via the derived `Ord` (field declaration order), which the
/// queue relies on for its determinism contract.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct Event {
    cycle: u64,
    seq: u64,
}

/// Widest machine the dense slot array serves; wider machines fall back to
/// the binary heap. Linear min-scans over a flat `u128` key array beat heap
/// sift costs by a wide margin at these sizes (the scan is branch-predictable
/// and in-cache; a pop+push pays several cold, branchy sift compares).
const FLAT_MAX_LANES: usize = 64;

/// A lane-indexed slot key: `(cycle, lane)` packed so integer comparison is
/// the event order. [`EMPTY`] (all ones) sorts after every real key, so the
/// min-scan needs no occupancy branches.
const EMPTY: u128 = u128::MAX;

#[inline]
fn key(cycle: u64, lane: usize) -> u128 {
    (u128::from(cycle) << 64) | lane as u128
}

/// The structured outcome of [`EventQueue::pop`]: either the earliest
/// pending event, or a definitive signal that the queue is drained — every
/// lane's stream has ended and nothing was rescheduled. Run loops match on
/// this instead of unwrapping an option, so a lane whose stream ends
/// mid-cycle can never panic the engine: the queue simply reports
/// [`Popped::Drained`] and the loop terminates cleanly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Popped {
    /// The earliest queued event: `lane` wakes at `cycle`.
    Next {
        /// The event's cycle stamp.
        cycle: u64,
        /// The lane (processor index) the event belongs to.
        lane: usize,
    },
    /// No events remain; the run is over.
    Drained,
}

/// The deterministic event queue, ordered by `(cycle, seq)`.
///
/// Two layouts with identical observable order:
/// - **Flat** (machines up to [`FLAT_MAX_LANES`] lanes): one slot per lane
///   holding its next wake-up as a packed `(cycle, lane)` key; `pop` is a
///   linear min-scan. Exact because a lane has at most one event in flight,
///   so `(cycle, lane)` *is* `(cycle, seq)`.
/// - **Heap** (wider machines): the classic binary min-heap of [`Event`]s,
///   `seq = lane << 32 | counter`.
#[derive(Debug)]
pub(crate) struct EventQueue {
    imp: Imp,
}

/// Which queue layout an [`EventQueue`] uses. `new` picks by lane count;
/// tests force one explicitly to pin the two layouts against each other at
/// the `FLAT_MAX_LANES` boundary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum QueueLayout {
    /// Dense slot array (the ≤ [`FLAT_MAX_LANES`] fast path).
    Flat,
    /// Binary min-heap (the wide-machine fallback).
    Heap,
}

#[derive(Debug)]
enum Imp {
    Flat {
        slots: Vec<u128>,
        live: usize,
    },
    Heap {
        heap: BinaryHeap<Reverse<Event>>,
        /// Per-lane schedule counters (the low half of `seq`). A lane has at
        /// most one event in flight, so the counter only needs to keep FIFO
        /// order among that lane's *successive* events; wrapping is harmless.
        counters: Vec<u32>,
    },
}

impl EventQueue {
    /// A queue with every lane scheduled at cycle 0, in lane order, on the
    /// layout the lane count selects.
    pub(crate) fn new(lanes: usize) -> Self {
        let layout = if lanes <= FLAT_MAX_LANES {
            QueueLayout::Flat
        } else {
            QueueLayout::Heap
        };
        Self::with_layout(lanes, layout)
    }

    /// A queue on an explicit layout, regardless of lane count. Both
    /// layouts implement the same `(cycle, lane)` total order — this
    /// constructor exists so tests can run the *same* machine on both and
    /// compare byte for byte (see `system.rs`'s boundary tests).
    pub(crate) fn with_layout(lanes: usize, layout: QueueLayout) -> Self {
        let mut q = EventQueue {
            imp: match layout {
                QueueLayout::Flat => Imp::Flat {
                    slots: vec![EMPTY; lanes],
                    live: 0,
                },
                QueueLayout::Heap => Imp::Heap {
                    heap: BinaryHeap::with_capacity(lanes + 1),
                    counters: vec![0; lanes],
                },
            },
        };
        for lane in 0..lanes {
            q.schedule(lane, 0);
        }
        q
    }

    /// Schedules `lane`'s next wake-up at `cycle`.
    pub(crate) fn schedule(&mut self, lane: usize, cycle: u64) {
        match &mut self.imp {
            Imp::Flat { slots, live } => {
                debug_assert_eq!(slots[lane], EMPTY, "one event in flight per lane");
                slots[lane] = key(cycle, lane);
                *live += 1;
            }
            Imp::Heap { heap, counters } => {
                let counter = counters[lane];
                counters[lane] = counter.wrapping_add(1);
                heap.push(Reverse(Event {
                    cycle,
                    seq: ((lane as u64) << 32) | u64::from(counter),
                }));
            }
        }
    }

    /// Pops the earliest event, or reports the queue drained.
    pub(crate) fn pop(&mut self) -> Popped {
        match &mut self.imp {
            Imp::Flat { slots, live } => {
                if *live == 0 {
                    return Popped::Drained;
                }
                let mut best = EMPTY;
                let mut at = 0;
                for (lane, &k) in slots.iter().enumerate() {
                    if k < best {
                        best = k;
                        at = lane;
                    }
                }
                slots[at] = EMPTY;
                *live -= 1;
                Popped::Next {
                    cycle: (best >> 64) as u64,
                    lane: at,
                }
            }
            Imp::Heap { heap, .. } => match heap.pop() {
                Some(Reverse(e)) => Popped::Next {
                    cycle: e.cycle,
                    lane: (e.seq >> 32) as usize,
                },
                None => Popped::Drained,
            },
        }
    }

    /// True when `lane`, rescheduled at `cycle`, would still precede every
    /// queued event — the run-ahead test: popping would return this lane
    /// immediately, so the caller may keep executing it without the
    /// schedule/pop round-trip. Exact by the same `(cycle, lane)` order the
    /// queue uses (no two queued events share a lane).
    pub(crate) fn lane_still_first(&self, lane: usize, cycle: u64) -> bool {
        let own = key(cycle, lane);
        match &self.imp {
            Imp::Flat { slots, .. } => slots.iter().all(|&k| own < k),
            Imp::Heap { heap, .. } => match heap.peek() {
                None => true,
                Some(Reverse(head)) => (cycle, lane) < (head.cycle, (head.seq >> 32) as usize),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Unwrap-free pop helper for the ordering tests: `Drained` maps to
    /// `None` so assertions stay literal.
    fn next(q: &mut EventQueue) -> Option<(u64, usize)> {
        match q.pop() {
            Popped::Next { cycle, lane } => Some((cycle, lane)),
            Popped::Drained => None,
        }
    }

    #[test]
    fn same_cycle_ties_break_by_lane_id() {
        let mut q = EventQueue::new(4);
        let order: Vec<usize> = (0..4).map(|_| next(&mut q).expect("4 queued").1).collect();
        assert_eq!(order, vec![0, 1, 2, 3]);
    }

    #[test]
    fn events_pop_in_cycle_then_lane_order() {
        let mut q = EventQueue::new(3);
        for _ in 0..3 {
            q.pop();
        }
        q.schedule(2, 10);
        q.schedule(0, 20);
        q.schedule(1, 10);
        assert_eq!(next(&mut q), Some((10, 1)));
        assert_eq!(next(&mut q), Some((10, 2)));
        assert_eq!(next(&mut q), Some((20, 0)));
        assert_eq!(q.pop(), Popped::Drained);
    }

    #[test]
    fn drained_queue_keeps_reporting_drained() {
        // The structured empty signal is stable: popping a drained queue any
        // number of times stays `Drained` and never panics, on both layouts.
        for layout in [QueueLayout::Flat, QueueLayout::Heap] {
            let mut q = EventQueue::with_layout(2, layout);
            assert!(matches!(q.pop(), Popped::Next { .. }));
            assert!(matches!(q.pop(), Popped::Next { .. }));
            for _ in 0..3 {
                assert_eq!(q.pop(), Popped::Drained, "{layout:?}");
            }
        }
    }

    #[test]
    fn run_ahead_matches_the_queue_order() {
        let mut q = EventQueue::new(2);
        q.pop();
        q.pop();
        q.schedule(1, 100);
        // Lane 0 at an earlier cycle precedes; at the same cycle its lower
        // id precedes; later it does not.
        assert!(q.lane_still_first(0, 50));
        assert!(q.lane_still_first(0, 100));
        assert!(!q.lane_still_first(1, 100)); // its own event is not "another"
        assert!(!q.lane_still_first(0, 101));
    }

    #[test]
    fn empty_queue_always_runs_ahead() {
        let mut q = EventQueue::new(1);
        q.pop();
        assert!(q.lane_still_first(0, u64::MAX - 1));
    }

    /// Drives two queues with the same deterministic reschedule rule and
    /// asserts every pop agrees — the layouts must be observably identical.
    fn assert_layouts_agree(lanes: usize, steps: u64) {
        let mut flat = EventQueue::with_layout(lanes, QueueLayout::Flat);
        let mut heap = EventQueue::with_layout(lanes, QueueLayout::Heap);
        for step in 0..steps {
            let f = next(&mut flat).expect("flat never drains here");
            let h = next(&mut heap).expect("heap never drains here");
            assert_eq!(f, h, "lanes={lanes} step={step}");
            let (cycle, lane) = f;
            let bump = 1 + (lane as u64 * step) % 7;
            flat.schedule(lane, cycle + bump);
            heap.schedule(lane, cycle + bump);
        }
    }

    #[test]
    fn flat_and_heap_layouts_pop_identically_at_the_boundary() {
        // Exactly at the dense-array cutover (64 lanes) and just past it
        // (65 lanes, where `new` switches to the heap), the two layouts must
        // produce the same event sequence — the boundary is a layout choice,
        // never a semantics choice.
        assert_layouts_agree(FLAT_MAX_LANES, 2000);
        assert_layouts_agree(FLAT_MAX_LANES + 1, 2000);
        assert_layouts_agree(3, 500);
    }

    #[test]
    fn new_selects_flat_up_to_64_lanes_and_heap_past_it() {
        assert!(matches!(
            EventQueue::new(FLAT_MAX_LANES).imp,
            Imp::Flat { .. }
        ));
        assert!(matches!(
            EventQueue::new(FLAT_MAX_LANES + 1).imp,
            Imp::Heap { .. }
        ));
    }
}
