//! Fault-injection campaigns: prove the protocol class degrades gracefully.
//!
//! A campaign runs a seeded workload over one machine per protocol with a
//! [`FaultPlan`] installed on the bus, then audits every injected fault with
//! the consistency oracle and classifies it:
//!
//! * [`FaultClass::Masked`] — the fault had no observable effect at all; the
//!   hardware absorbed it (the fate of every consistency-line glitch, which
//!   the §2.2 settle window filters out).
//! * [`FaultClass::Detected`] — the fault was observed and recovered from
//!   with the damage *reported*: a watchdog retirement, a drained abort
//!   storm, a scrubbed soft error, or an explicitly-reported data loss.
//! * [`FaultClass::Silent`] — the machine kept running but an invariant or a
//!   read went wrong *after* recovery. This is the failure mode the class is
//!   claimed not to have; a campaign with any silent fault fails.
//!
//! The harness is deliberately an *accepting* auditor: when a killed module
//! takes the only copy of a line with it, the golden image is reconciled to
//! the post-loss memory (the loss was reported, so consumers know), and any
//! *remaining* divergence is silent corruption.

use cache_array::{CacheConfig, ReplacementKind};
use futurebus::fault::{FaultConfig, FaultKind, FaultPlan, FaultRecord, InjectedFault};
use futurebus::{BusStats, PhaseHistograms, TimingConfig};
use moesi::protocols::by_name;
use moesi::rng::SmallRng;
use moesi::{CacheKind, PolicyTable, Protocol, TablePolicy};
use std::collections::BTreeMap;
use std::fmt;

use crate::checker::Checker;
use crate::controller::CacheController;
use crate::fabric::Fabric;

/// How a campaign classified one injected fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultClass {
    /// No observable effect; the hardware absorbed it outright.
    Masked,
    /// Observed and recovered, with any damage reported.
    Detected,
    /// An invariant or read went wrong after recovery — the failure mode the
    /// class must not have.
    Silent,
}

impl fmt::Display for FaultClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FaultClass::Masked => "masked",
            FaultClass::Detected => "detected",
            FaultClass::Silent => "SILENT",
        })
    }
}

/// One injected fault with its audit verdict.
#[derive(Clone, Debug)]
pub struct FaultVerdict {
    /// The fault as the bus logged it.
    pub record: FaultRecord,
    /// The audit classification.
    pub class: FaultClass,
    /// Why the class was assigned.
    pub note: String,
}

impl fmt::Display for FaultVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]: {}", self.record, self.class, self.note)
    }
}

/// Campaign shape: protocols, machine geometry, workload and fault rates.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Protocol names (see `moesi::protocols::by_name`), one homogeneous
    /// machine per entry.
    pub protocols: Vec<String>,
    /// Processors per machine.
    pub cpus: usize,
    /// Bytes per line.
    pub line_size: usize,
    /// Cache capacity per node in bytes.
    pub cache_bytes: usize,
    /// Processor accesses per machine.
    pub steps: u64,
    /// Distinct lines in the working set (sized to overflow the caches so
    /// the bus stays busy and faults keep landing).
    pub lines: u64,
    /// Workload seed (the fault seed lives in [`CampaignConfig::faults`]).
    pub seed: u64,
    /// Loaded policy tables (e.g. synthesized winners) made addressable by
    /// name: when an entry in [`CampaignConfig::protocols`] matches a
    /// table's name, the machine runs that table under the generic
    /// `TablePolicy` engine instead of a shipped protocol.
    pub tables: Vec<PolicyTable>,
    /// Fault kinds and rates to inject.
    pub faults: FaultConfig,
    /// Worker threads sharding the per-protocol runs. Each protocol's
    /// machine is fully independent and seeded, so the merged report is
    /// byte-identical for any value; `1` runs sequentially on the caller.
    pub jobs: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            protocols: vec![
                "moesi".into(),
                "dragon".into(),
                "write-through".into(),
                "berkeley".into(),
                "hybrid".into(),
            ],
            cpus: 4,
            line_size: 16,
            cache_bytes: 1024,
            steps: 2500,
            lines: 96,
            seed: 0xCA_FE,
            tables: Vec::new(),
            faults: FaultConfig {
                glitch_rate: 0.20,
                stall_rate: 0.0015,
                kill_rate: 0.0015,
                storm_rate: 0.04,
                corrupt_rate: 0.10,
                max_storm_rounds: 4,
                ..FaultConfig::default()
            },
            jobs: crate::campaign::default_jobs(),
        }
    }
}

/// One protocol's campaign outcome.
#[derive(Clone, Debug)]
pub struct ProtocolRun {
    /// The protocol name the machine ran.
    pub protocol: String,
    /// Processor accesses executed.
    pub accesses: u64,
    /// Every injected fault with its verdict, in injection order.
    pub verdicts: Vec<FaultVerdict>,
    /// Modules the watchdog retired, ascending.
    pub retired: Vec<usize>,
    /// Invariant/read violations observed after recovery (silent corruption;
    /// the run stops at the first one).
    pub violations: Vec<String>,
    /// Bus errors the fabric survived in tolerant mode (each degraded one
    /// access to a memory-direct fallback — detected, not process-fatal).
    pub bus_errors: Vec<String>,
    /// Bus statistics at the end of the run.
    pub bus_stats: BusStats,
    /// Per-phase latency histograms accumulated over the run.
    pub phase_hist: PhaseHistograms,
}

impl ProtocolRun {
    /// Faults in `class`.
    #[must_use]
    pub fn count_class(&self, class: FaultClass) -> u64 {
        self.verdicts.iter().filter(|v| v.class == class).count() as u64
    }

    /// Faults of `kind` in `class`.
    #[must_use]
    pub fn count(&self, kind: FaultKind, class: FaultClass) -> u64 {
        self.verdicts
            .iter()
            .filter(|v| v.record.fault.kind() == kind && v.class == class)
            .count() as u64
    }
}

impl fmt::Display for ProtocolRun {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} accesses, {} faults",
            self.protocol,
            self.accesses,
            self.verdicts.len()
        )?;
        let mut by_kind: BTreeMap<String, (u64, u64, u64)> = BTreeMap::new();
        for v in &self.verdicts {
            let slot = by_kind
                .entry(v.record.fault.kind().to_string())
                .or_default();
            match v.class {
                FaultClass::Masked => slot.0 += 1,
                FaultClass::Detected => slot.1 += 1,
                FaultClass::Silent => slot.2 += 1,
            }
        }
        for (kind, (masked, detected, silent)) in &by_kind {
            write!(f, "\n    {kind}: {masked} masked, {detected} detected")?;
            if *silent > 0 {
                write!(f, ", {silent} SILENT")?;
            }
        }
        if !self.retired.is_empty() {
            write!(f, "\n    retired modules: {:?}", self.retired)?;
        }
        if !self.bus_errors.is_empty() {
            write!(f, "\n    bus errors survived: {}", self.bus_errors.len())?;
        }
        for v in &self.violations {
            write!(f, "\n    SILENT CORRUPTION: {v}")?;
        }
        Ok(())
    }
}

/// A whole campaign's outcome: one [`ProtocolRun`] per protocol.
#[derive(Clone, Debug)]
pub struct CampaignReport {
    /// Per-protocol results, in configuration order.
    pub runs: Vec<ProtocolRun>,
}

impl CampaignReport {
    /// Total faults injected across all runs.
    #[must_use]
    pub fn injected(&self) -> u64 {
        self.runs.iter().map(|r| r.verdicts.len() as u64).sum()
    }

    /// Total silent corruptions (violations observed after recovery). A
    /// graceful degradation claim requires this to be zero.
    #[must_use]
    pub fn silent(&self) -> u64 {
        self.runs.iter().map(|r| r.violations.len() as u64).sum()
    }

    /// Total faults of `kind` in `class` across all runs.
    #[must_use]
    pub fn count(&self, kind: FaultKind, class: FaultClass) -> u64 {
        self.runs.iter().map(|r| r.count(kind, class)).sum()
    }

    /// Total watchdog retirements across all runs.
    #[must_use]
    pub fn retirements(&self) -> u64 {
        self.runs.iter().map(|r| r.retired.len() as u64).sum()
    }

    /// Campaign-wide phase latency histograms, merged over the runs in job
    /// (configuration) order so the aggregate is independent of `jobs`.
    #[must_use]
    pub fn phase_hist(&self) -> PhaseHistograms {
        crate::campaign::merge_phase_histograms(self.runs.iter().map(|r| r.phase_hist))
    }
}

impl fmt::Display for CampaignReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fault campaign: {} protocols, {} faults injected, {} silent",
            self.runs.len(),
            self.injected(),
            self.silent()
        )?;
        for run in &self.runs {
            writeln!(f, "  {run}")?;
        }
        write!(
            f,
            "verdict: {}",
            if self.silent() == 0 {
                "graceful degradation — every fault masked or detected"
            } else {
                "SILENT CORRUPTION OBSERVED"
            }
        )
    }
}

/// Runs a fault-injection campaign: for each protocol, a seeded workload on a
/// faulty bus, with every injected fault audited and classified.
///
/// # Errors
///
/// Returns a message when a protocol name is unknown or the geometry is
/// unusable (zero cpus/steps/lines).
pub fn run_campaign(cfg: &CampaignConfig) -> Result<CampaignReport, String> {
    if cfg.protocols.is_empty() {
        return Err("no protocols given".into());
    }
    if cfg.cpus == 0 || cfg.steps == 0 || cfg.lines == 0 {
        return Err("cpus, steps and lines must all be non-zero".into());
    }
    // Every protocol's machine is independent, so shard them across the
    // pool; `run_jobs` hands results back in protocol order, keeping the
    // report identical for any worker count.
    let jobs: Vec<(u64, String)> = cfg
        .protocols
        .iter()
        .enumerate()
        .map(|(run_idx, name)| (run_idx as u64, name.clone()))
        .collect();
    let runs = crate::campaign::run_jobs(jobs, cfg.jobs, |(run_idx, name)| {
        run_one(cfg, &name, run_idx)
    })
    .into_iter()
    .collect::<Result<Vec<_>, String>>()?;
    Ok(CampaignReport { runs })
}

fn run_one(cfg: &CampaignConfig, name: &str, run_idx: u64) -> Result<ProtocolRun, String> {
    let controllers: Vec<CacheController> = (0..cfg.cpus)
        .map(|id| {
            let protocol: Box<dyn Protocol + Send> =
                match cfg.tables.iter().find(|t| t.name() == name) {
                    Some(table) => Box::new(TablePolicy::new(*table)),
                    None => by_name(name, cfg.seed.wrapping_add(id as u64))
                        .ok_or_else(|| format!("unknown protocol `{name}`"))?,
                };
            let cache = (protocol.kind() != CacheKind::NonCaching)
                .then(|| CacheConfig::new(cfg.cache_bytes, cfg.line_size, 2, ReplacementKind::Lru));
            Ok(CacheController::new(
                id,
                protocol,
                cache,
                cfg.seed.wrapping_add(id as u64),
            ))
        })
        .collect::<Result<_, String>>()?;
    let mut fabric = Fabric::new(cfg.line_size, TimingConfig::default(), controllers);
    // A fault campaign must record bus errors as detected damage, not die
    // on them: errored accesses degrade to a memory-direct fallback and any
    // staleness they cause is the checker's to flag.
    fabric.tolerate_bus_errors(true);
    fabric.bus_mut().inject_faults(FaultPlan::new(FaultConfig {
        seed: cfg.faults.seed.wrapping_add(run_idx),
        ..cfg.faults
    }));
    let mut checker = Checker::new(cfg.line_size);
    let mut rng = SmallRng::seed_from_u64(cfg.seed.wrapping_add(run_idx));

    let mut run = ProtocolRun {
        protocol: name.to_string(),
        accesses: 0,
        verdicts: Vec::new(),
        retired: Vec::new(),
        violations: Vec::new(),
        bus_errors: Vec::new(),
        bus_stats: BusStats::new(),
        phase_hist: PhaseHistograms::new(),
    };
    let mut cursor = 0usize;
    let mut write_pieces: Vec<(u64, Vec<u8>)> = Vec::new();

    for step in 0..cfg.steps {
        let cpu = (step as usize) % cfg.cpus;
        let line = rng.gen_range(0..cfg.lines);
        let word = rng.gen_range(0..(cfg.line_size / 4) as u64);
        let addr = line * cfg.line_size as u64 + word * 4;
        write_pieces.clear();
        let read_back = if rng.gen_bool(0.5) {
            let bytes = vec![rng.gen_range(0u16..256) as u8; 4];
            let ck = &mut checker;
            let pieces = &mut write_pieces;
            fabric.write_with(cpu, addr, &bytes, |piece_addr, piece| {
                ck.record_write(piece_addr, piece);
                pieces.push((piece_addr, piece.to_vec()));
            });
            None
        } else {
            Some(fabric.read(cpu, addr, 4))
        };
        run.accesses += 1;
        run.bus_errors.extend(fabric.drain_bus_errors());

        // Drain faults the bus injected during this access, reconcile the
        // reported damage, and classify.
        let new: Vec<FaultRecord> = {
            let plan = fabric.bus().fault_plan().expect("plan installed above");
            plan.records()[cursor..].to_vec()
        };
        cursor += new.len();
        let first_new = run.verdicts.len();
        let mut killed = false;
        for record in new {
            killed |= matches!(record.fault, InjectedFault::Kill { .. });
            let (class, note) = audit(&record.fault, &mut fabric, &mut checker, cfg.line_size);
            run.verdicts.push(FaultVerdict {
                record,
                class,
                note,
            });
        }
        // A kill can land mid-transaction on the very line this step is
        // writing: the master fills from the rolled-back memory and merges
        // its bytes on top, so the write *survives* even though the rest of
        // the line reverted. The kill reconciliation above set the golden
        // line to bare memory; re-apply the step's write on top of it.
        if killed {
            for (piece_addr, piece) in &write_pieces {
                checker.record_write(*piece_addr, piece);
            }
        }

        // With all reported damage reconciled, anything still wrong is
        // silent corruption: the read must match the golden image and every
        // structural invariant must hold.
        let mut broken = None;
        if let Some(got) = read_back {
            if let Err(v) = checker.check_read(cpu, addr, &got) {
                broken = Some(v);
            }
        }
        if broken.is_none() {
            if let Err(v) = checker.verify(fabric.controllers(), fabric.bus().memory()) {
                broken = Some(v);
            }
        }
        if let Some(v) = broken {
            run.violations.push(format!("step {step}: {v}"));
            for verdict in &mut run.verdicts[first_new..] {
                verdict.class = FaultClass::Silent;
                verdict.note = format!("post-recovery violation: {v}");
            }
            break; // the machine state is poisoned; stop this run
        }
    }

    run.retired = fabric.bus().retired();
    run.bus_stats = *fabric.bus().stats();
    run.phase_hist = *fabric.bus().phase_histograms();
    Ok(run)
}

/// Reconciles one fault's reported damage and returns its provisional class
/// (flipped to `Silent` by the caller if the post-recovery audit fails).
fn audit(
    fault: &InjectedFault,
    fabric: &mut Fabric,
    checker: &mut Checker,
    line_size: usize,
) -> (FaultClass, String) {
    match fault {
        InjectedFault::Glitch { .. } => (
            FaultClass::Masked,
            "absorbed by the wired-OR settle window".into(),
        ),
        InjectedFault::Stall { module, salvaged } => (
            FaultClass::Detected,
            format!(
                "watchdog retired m{module}; {} dirty lines salvaged to memory",
                salvaged.len()
            ),
        ),
        InjectedFault::Kill { module, lost } => {
            // The loss is reported: accept the rolled-back memory image as
            // the new truth. Any divergence beyond it is silent corruption.
            for addr in lost {
                let mem_line = fabric.bus().memory().peek_line(*addr);
                checker.record_write(*addr, &mem_line);
            }
            (
                FaultClass::Detected,
                format!(
                    "watchdog retired m{module}; {} dirty lines lost (reported, survivors invalidated)",
                    lost.len()
                ),
            )
        }
        InjectedFault::AbortStorm { rounds } => (
            FaultClass::Detected,
            format!("{rounds} phantom BS rounds drained by bounded retry with backoff"),
        ),
        InjectedFault::CorruptMemory { addr, .. } => {
            let golden = checker.golden_bytes(*addr, line_size);
            let diverged = fabric.bus().memory().peek_line(*addr)[..] != golden[..];
            fabric.bus_mut().memory_mut().write_line(*addr, &golden);
            (
                FaultClass::Detected,
                if diverged {
                    "scrubber found memory diverged from the golden image; restored".into()
                } else {
                    "corruption landed on already-stale bytes; scrubbed anyway".into()
                },
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> CampaignConfig {
        CampaignConfig {
            protocols: vec!["moesi".into()],
            steps: 300,
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn loaded_tables_run_under_the_table_engine_by_name() {
        // A table whose name matches a protocol entry shadows the shipped
        // registry: the campaign runs it via `TablePolicy` and it must
        // degrade as gracefully as the hand-written original.
        let table = PolicyTable::preferred("loaded-preferred", CacheKind::CopyBack);
        let cfg = CampaignConfig {
            protocols: vec!["loaded-preferred".into()],
            tables: vec![table],
            steps: 300,
            ..CampaignConfig::default()
        };
        let report = run_campaign(&cfg).unwrap();
        assert_eq!(report.runs[0].protocol, "loaded-preferred");
        assert!(report.injected() > 0, "faults must land");
        assert_eq!(report.silent(), 0, "loaded table corrupted silently");
        // Without the table, the same name is unknown.
        let missing = CampaignConfig {
            tables: Vec::new(),
            ..cfg
        };
        assert!(run_campaign(&missing)
            .unwrap_err()
            .contains("loaded-preferred"));
    }

    #[test]
    fn campaigns_are_deterministic() {
        let cfg = quick_cfg();
        let a = run_campaign(&cfg).unwrap();
        let b = run_campaign(&cfg).unwrap();
        assert_eq!(a.injected(), b.injected());
        assert_eq!(a.silent(), b.silent());
        assert_eq!(a.runs[0].retired, b.runs[0].retired);
        assert_eq!(a.runs[0].bus_stats, b.runs[0].bus_stats);
    }

    #[test]
    fn sharded_campaigns_match_sequential_ones() {
        let base = CampaignConfig {
            steps: 250,
            ..CampaignConfig::default()
        };
        let seq = run_campaign(&CampaignConfig {
            jobs: 1,
            ..base.clone()
        })
        .unwrap();
        let par = run_campaign(&CampaignConfig { jobs: 4, ..base }).unwrap();
        assert_eq!(seq.runs.len(), par.runs.len());
        for (a, b) in seq.runs.iter().zip(&par.runs) {
            assert_eq!(a.protocol, b.protocol);
            assert_eq!(a.accesses, b.accesses);
            assert_eq!(a.verdicts.len(), b.verdicts.len());
            assert_eq!(a.retired, b.retired);
            assert_eq!(a.bus_stats, b.bus_stats);
            assert_eq!(a.phase_hist, b.phase_hist);
        }
    }

    #[test]
    fn histograms_cover_every_access_and_sum_to_busy_ns() {
        let report = run_campaign(&quick_cfg()).unwrap();
        let run = &report.runs[0];
        assert!(run.phase_hist.phase(futurebus::Phase::Arbitrate).samples() > 0);
        let charged: u64 = run.phase_hist.sums().iter().sum();
        assert_eq!(charged, run.bus_stats.busy_ns);
        assert_eq!(run.bus_stats.phase_total_ns(), run.bus_stats.busy_ns);
    }

    #[test]
    fn a_saturated_storm_degrades_the_run_instead_of_killing_it() {
        // Storm every arbitration for more rounds than the retry budget:
        // every bus transaction fails with TooManyRetries. Pre-tolerant
        // fabrics panicked here and took the whole campaign process down;
        // now each failure is logged and the access degrades to memory.
        let cfg = CampaignConfig {
            protocols: vec!["moesi".into()],
            steps: 40,
            faults: FaultConfig {
                storm_rate: 1.0,
                max_storm_rounds: 32,
                ..FaultConfig::default()
            },
            ..CampaignConfig::default()
        };
        let report = run_campaign(&cfg).unwrap();
        let run = &report.runs[0];
        assert!(!run.bus_errors.is_empty(), "errors must be recorded");
        assert!(
            run.bus_errors[0].contains("aborted"),
            "{}",
            run.bus_errors[0]
        );
        assert!(run.accesses > 0, "the campaign keeps making progress");
    }

    #[test]
    fn an_inert_plan_injects_nothing_and_stays_clean() {
        let cfg = CampaignConfig {
            protocols: vec!["moesi".into(), "write-through".into()],
            steps: 200,
            faults: FaultConfig::default(),
            ..CampaignConfig::default()
        };
        let report = run_campaign(&cfg).unwrap();
        assert_eq!(report.injected(), 0);
        assert_eq!(report.silent(), 0);
        assert_eq!(report.retirements(), 0);
    }

    #[test]
    fn unknown_protocols_are_reported() {
        let cfg = CampaignConfig {
            protocols: vec!["mesif".into()],
            ..CampaignConfig::default()
        };
        let err = run_campaign(&cfg).unwrap_err();
        assert!(err.contains("mesif"), "{err}");
    }

    #[test]
    fn empty_geometry_is_rejected() {
        let cfg = CampaignConfig {
            steps: 0,
            ..CampaignConfig::default()
        };
        assert!(run_campaign(&cfg).is_err());
        assert!(run_campaign(&CampaignConfig {
            protocols: vec![],
            ..CampaignConfig::default()
        })
        .is_err());
    }

    #[test]
    fn glitches_alone_are_always_masked() {
        let cfg = CampaignConfig {
            protocols: vec!["moesi".into()],
            steps: 400,
            faults: FaultConfig {
                glitch_rate: 0.5,
                ..FaultConfig::default()
            },
            ..CampaignConfig::default()
        };
        let report = run_campaign(&cfg).unwrap();
        assert!(report.injected() > 50, "glitches must actually land");
        assert_eq!(
            report.count(FaultKind::Glitch, FaultClass::Masked),
            report.injected(),
            "every glitch is absorbed by the settle window"
        );
        assert_eq!(report.silent(), 0);
    }

    #[test]
    fn a_kill_landing_on_the_line_being_written_is_reported_not_silent() {
        // A kill can take the owner of the very line another module is
        // mid-write to: the master fills from the rolled-back memory and
        // merges its bytes on top. The audit must credit the surviving
        // write when it reconciles the loss, or the master's copy looks
        // silently stale. These parameters (matching
        // `moesi-sim faults --protocol moesi --kind kill --rate 0.5
        // --steps 600`) hit that interleaving.
        let cfg = CampaignConfig {
            protocols: vec!["moesi".into()],
            steps: 600,
            faults: FaultConfig {
                seed: 0xCA_FE ^ 0xFA_017,
                kill_rate: 0.005,
                max_storm_rounds: 4,
                ..FaultConfig::default()
            },
            ..CampaignConfig::default()
        };
        let report = run_campaign(&cfg).unwrap();
        assert!(
            report.count(FaultKind::Kill, FaultClass::Detected) > 0,
            "kills must actually land: {report}"
        );
        assert_eq!(report.silent(), 0, "{report}");
    }

    #[test]
    fn report_display_renders_the_verdict() {
        let report = run_campaign(&quick_cfg()).unwrap();
        let text = report.to_string();
        assert!(text.contains("fault campaign"), "{text}");
        assert!(text.contains("graceful degradation"), "{text}");
    }
}
