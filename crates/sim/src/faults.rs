//! Fault-injection campaigns: prove the protocol class degrades gracefully.
//!
//! A campaign runs a seeded workload over one machine per protocol with a
//! [`FaultPlan`] installed on the bus, then audits every injected fault with
//! the consistency oracle and classifies it:
//!
//! * [`FaultClass::Masked`] — the fault had no observable effect at all; the
//!   hardware absorbed it (the fate of every consistency-line glitch, which
//!   the §2.2 settle window filters out).
//! * [`FaultClass::Detected`] — the fault was observed and recovered from
//!   with the damage *reported*: a watchdog retirement, a drained abort
//!   storm, a scrubbed soft error, or an explicitly-reported data loss.
//! * [`FaultClass::Silent`] — the machine kept running but an invariant or a
//!   read went wrong *after* recovery. This is the failure mode the class is
//!   claimed not to have; a campaign with any silent fault fails.
//!
//! The harness is deliberately an *accepting* auditor: when a killed module
//! takes the only copy of a line with it, the golden image is reconciled to
//! the post-loss memory (the loss was reported, so consumers know), and any
//! *remaining* divergence is silent corruption.

use cache_array::{CacheConfig, ReplacementKind};
use futurebus::fault::{FaultConfig, FaultKind, FaultPlan, FaultRecord, InjectedFault};
use futurebus::{BusStats, PhaseHistograms, RetryPolicy, TimingConfig};
use moesi::json::{array_u64, JsonObject};
use moesi::protocols::by_name;
use moesi::rng::SmallRng;
use moesi::{CacheKind, PolicyTable, Protocol, TablePolicy};
use std::collections::BTreeMap;
use std::fmt;

use crate::checker::Checker;
use crate::controller::CacheController;
use crate::fabric::Fabric;
use crate::hierarchy::{HierarchicalSystem, HierarchyBuilder, ParentError, TreeBuilder};

/// How a campaign classified one injected fault.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultClass {
    /// No observable effect; the hardware absorbed it outright.
    Masked,
    /// Observed and recovered, with any damage reported.
    Detected,
    /// An invariant or read went wrong after recovery — the failure mode the
    /// class must not have.
    Silent,
}

impl fmt::Display for FaultClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            FaultClass::Masked => "masked",
            FaultClass::Detected => "detected",
            FaultClass::Silent => "SILENT",
        })
    }
}

/// One injected fault with its audit verdict.
#[derive(Clone, Debug)]
pub struct FaultVerdict {
    /// The fault as the bus logged it.
    pub record: FaultRecord,
    /// The audit classification.
    pub class: FaultClass,
    /// Why the class was assigned.
    pub note: String,
}

impl fmt::Display for FaultVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]: {}", self.record, self.class, self.note)
    }
}

/// Campaign shape: protocols, machine geometry, workload and fault rates.
#[derive(Clone, Debug)]
pub struct CampaignConfig {
    /// Protocol names (see `moesi::protocols::by_name`), one homogeneous
    /// machine per entry.
    pub protocols: Vec<String>,
    /// Processors per machine.
    pub cpus: usize,
    /// Bytes per line.
    pub line_size: usize,
    /// Cache capacity per node in bytes.
    pub cache_bytes: usize,
    /// Processor accesses per machine.
    pub steps: u64,
    /// Distinct lines in the working set (sized to overflow the caches so
    /// the bus stays busy and faults keep landing).
    pub lines: u64,
    /// Workload seed (the fault seed lives in [`CampaignConfig::faults`]).
    pub seed: u64,
    /// Loaded policy tables (e.g. synthesized winners) made addressable by
    /// name: when an entry in [`CampaignConfig::protocols`] matches a
    /// table's name, the machine runs that table under the generic
    /// `TablePolicy` engine instead of a shipped protocol.
    pub tables: Vec<PolicyTable>,
    /// Fault kinds and rates to inject.
    pub faults: FaultConfig,
    /// Worker threads sharding the per-protocol runs. Each protocol's
    /// machine is fully independent and seeded, so the merged report is
    /// byte-identical for any value; `1` runs sequentially on the caller.
    pub jobs: usize,
    /// `0` (the default) runs each protocol as one whole-machine campaign.
    /// `N ≥ 1` partitions each protocol's pre-drawn access schedule into
    /// [`crate::SHARD_REGIONS`] interleaved line-address regions, runs each
    /// region as an independent faulty machine (its own derived fault seed),
    /// and merges in region order on a flat protocol × region pool of `N`
    /// workers — byte-identical for every `N ≥ 1`, but *not* comparable to
    /// an unsharded campaign (the partition changes where faults land).
    pub shards: usize,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            protocols: vec![
                "moesi".into(),
                "dragon".into(),
                "write-through".into(),
                "berkeley".into(),
                "hybrid".into(),
            ],
            cpus: 4,
            line_size: 16,
            cache_bytes: 1024,
            steps: 2500,
            lines: 96,
            seed: 0xCA_FE,
            tables: Vec::new(),
            faults: FaultConfig {
                glitch_rate: 0.20,
                stall_rate: 0.0015,
                kill_rate: 0.0015,
                storm_rate: 0.04,
                corrupt_rate: 0.10,
                max_storm_rounds: 4,
                ..FaultConfig::default()
            },
            jobs: crate::campaign::default_jobs(),
            shards: 0,
        }
    }
}

/// One protocol's campaign outcome.
#[derive(Clone, Debug)]
pub struct ProtocolRun {
    /// The protocol name the machine ran.
    pub protocol: String,
    /// Processor accesses executed.
    pub accesses: u64,
    /// Every injected fault with its verdict, in injection order.
    pub verdicts: Vec<FaultVerdict>,
    /// Modules the watchdog retired — ascending for a whole-machine run; a
    /// sharded run concatenates its region machines' lists in region order.
    pub retired: Vec<usize>,
    /// Invariant/read violations observed after recovery (silent corruption;
    /// the run stops at the first one).
    pub violations: Vec<String>,
    /// Bus errors the fabric survived in tolerant mode (each degraded one
    /// access to a memory-direct fallback — detected, not process-fatal).
    pub bus_errors: Vec<String>,
    /// Bus statistics at the end of the run.
    pub bus_stats: BusStats,
    /// Per-phase latency histograms accumulated over the run.
    pub phase_hist: PhaseHistograms,
}

impl ProtocolRun {
    /// Faults in `class`.
    #[must_use]
    pub fn count_class(&self, class: FaultClass) -> u64 {
        self.verdicts.iter().filter(|v| v.class == class).count() as u64
    }

    /// Faults of `kind` in `class`.
    #[must_use]
    pub fn count(&self, kind: FaultKind, class: FaultClass) -> u64 {
        self.verdicts
            .iter()
            .filter(|v| v.record.fault.kind() == kind && v.class == class)
            .count() as u64
    }
}

impl fmt::Display for ProtocolRun {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} accesses, {} faults",
            self.protocol,
            self.accesses,
            self.verdicts.len()
        )?;
        let mut by_kind: BTreeMap<String, (u64, u64, u64)> = BTreeMap::new();
        for v in &self.verdicts {
            let slot = by_kind
                .entry(v.record.fault.kind().to_string())
                .or_default();
            match v.class {
                FaultClass::Masked => slot.0 += 1,
                FaultClass::Detected => slot.1 += 1,
                FaultClass::Silent => slot.2 += 1,
            }
        }
        for (kind, (masked, detected, silent)) in &by_kind {
            write!(f, "\n    {kind}: {masked} masked, {detected} detected")?;
            if *silent > 0 {
                write!(f, ", {silent} SILENT")?;
            }
        }
        if !self.retired.is_empty() {
            write!(f, "\n    retired modules: {:?}", self.retired)?;
        }
        if !self.bus_errors.is_empty() {
            write!(f, "\n    bus errors survived: {}", self.bus_errors.len())?;
        }
        for v in &self.violations {
            write!(f, "\n    SILENT CORRUPTION: {v}")?;
        }
        Ok(())
    }
}

/// A whole campaign's outcome: one [`ProtocolRun`] per protocol.
#[derive(Clone, Debug)]
pub struct CampaignReport {
    /// Per-protocol results, in configuration order.
    pub runs: Vec<ProtocolRun>,
}

impl CampaignReport {
    /// Total faults injected across all runs.
    #[must_use]
    pub fn injected(&self) -> u64 {
        self.runs.iter().map(|r| r.verdicts.len() as u64).sum()
    }

    /// Total silent corruptions (violations observed after recovery). A
    /// graceful degradation claim requires this to be zero.
    #[must_use]
    pub fn silent(&self) -> u64 {
        self.runs.iter().map(|r| r.violations.len() as u64).sum()
    }

    /// Total faults of `kind` in `class` across all runs.
    #[must_use]
    pub fn count(&self, kind: FaultKind, class: FaultClass) -> u64 {
        self.runs.iter().map(|r| r.count(kind, class)).sum()
    }

    /// Total watchdog retirements across all runs.
    #[must_use]
    pub fn retirements(&self) -> u64 {
        self.runs.iter().map(|r| r.retired.len() as u64).sum()
    }

    /// Campaign-wide phase latency histograms, merged over the runs in job
    /// (configuration) order so the aggregate is independent of `jobs`.
    #[must_use]
    pub fn phase_hist(&self) -> PhaseHistograms {
        crate::campaign::merge_phase_histograms(self.runs.iter().map(|r| r.phase_hist))
    }
}

impl fmt::Display for CampaignReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fault campaign: {} protocols, {} faults injected, {} silent",
            self.runs.len(),
            self.injected(),
            self.silent()
        )?;
        for run in &self.runs {
            writeln!(f, "  {run}")?;
        }
        write!(
            f,
            "verdict: {}",
            if self.silent() == 0 {
                "graceful degradation — every fault masked or detected"
            } else {
                "SILENT CORRUPTION OBSERVED"
            }
        )
    }
}

/// Runs a fault-injection campaign: for each protocol, a seeded workload on a
/// faulty bus, with every injected fault audited and classified.
///
/// # Errors
///
/// Returns a message when a protocol name is unknown or the geometry is
/// unusable (zero cpus/steps/lines).
pub fn run_campaign(cfg: &CampaignConfig) -> Result<CampaignReport, String> {
    if cfg.protocols.is_empty() {
        return Err("no protocols given".into());
    }
    if cfg.cpus == 0 || cfg.steps == 0 || cfg.lines == 0 {
        return Err("cpus, steps and lines must all be non-zero".into());
    }
    if cfg.shards > 0 {
        return run_campaign_sharded(cfg);
    }
    // Every protocol's machine is independent, so shard them across the
    // pool; `run_jobs` hands results back in protocol order, keeping the
    // report identical for any worker count.
    let jobs: Vec<(u64, String)> = cfg
        .protocols
        .iter()
        .enumerate()
        .map(|(run_idx, name)| (run_idx as u64, name.clone()))
        .collect();
    let runs = crate::campaign::run_jobs(jobs, cfg.jobs, |(run_idx, name)| {
        let schedule = plan_schedule(cfg, run_idx);
        execute_schedule(cfg, &name, cfg.faults.seed.wrapping_add(run_idx), &schedule)
    })
    .into_iter()
    .collect::<Result<Vec<_>, String>>()?;
    Ok(CampaignReport { runs })
}

/// The sharded campaign: one flat protocol × region task pool on
/// `cfg.shards` workers, merged per protocol in region order. The region a
/// step belongs to is a pure function of its line address, and each region
/// machine's fault seed is derived from `(run_idx, region)`, so the merged
/// report is byte-identical for every worker count.
fn run_campaign_sharded(cfg: &CampaignConfig) -> Result<CampaignReport, String> {
    let regions = crate::SHARD_REGIONS;
    let mut tasks = Vec::with_capacity(cfg.protocols.len() * regions);
    for (run_idx, name) in cfg.protocols.iter().enumerate() {
        for region in 0..regions {
            tasks.push((run_idx as u64, name.clone(), region as u64));
        }
    }
    let results = crate::campaign::run_jobs(tasks, cfg.shards, |(run_idx, name, region)| {
        let schedule: Vec<CampaignStep> = plan_schedule(cfg, run_idx)
            .into_iter()
            .filter(|s| (s.addr / cfg.line_size as u64) % regions as u64 == region)
            .collect();
        let fault_seed = cfg
            .faults
            .seed
            .wrapping_add(run_idx * regions as u64 + region);
        execute_schedule(cfg, &name, fault_seed, &schedule)
    })
    .into_iter()
    .collect::<Result<Vec<_>, String>>()?;
    let runs = results.chunks(regions).map(merge_protocol_runs).collect();
    Ok(CampaignReport { runs })
}

/// Folds one protocol's region runs into a single [`ProtocolRun`], in
/// region order: counters and bus statistics sum, verdict/retirement/error
/// lists concatenate, histograms merge bucket-wise.
fn merge_protocol_runs(region_runs: &[ProtocolRun]) -> ProtocolRun {
    let mut merged = ProtocolRun {
        protocol: region_runs[0].protocol.clone(),
        accesses: 0,
        verdicts: Vec::new(),
        retired: Vec::new(),
        violations: Vec::new(),
        bus_errors: Vec::new(),
        bus_stats: BusStats::new(),
        phase_hist: PhaseHistograms::new(),
    };
    for run in region_runs {
        merged.accesses += run.accesses;
        merged.verdicts.extend(run.verdicts.iter().cloned());
        merged.retired.extend(run.retired.iter().copied());
        merged.violations.extend(run.violations.iter().cloned());
        merged.bus_errors.extend(run.bus_errors.iter().cloned());
        merged.bus_stats += run.bus_stats;
        merged.phase_hist.merge(&run.phase_hist);
    }
    merged
}

/// One pre-drawn access of the campaign workload.
#[derive(Clone, Copy, Debug)]
struct CampaignStep {
    /// The original step index (kept so violation messages name the same
    /// step sharded or not).
    step: u64,
    cpu: usize,
    addr: u64,
    /// `Some(byte)` writes `[byte; 4]`; `None` reads 4 bytes.
    write_byte: Option<u8>,
}

/// Pre-draws the whole access schedule for one protocol run. The draw order
/// per step — line, word, read/write coin, then the write byte only on a
/// write — exactly matches the order the execution loop used before the
/// schedule was materialised, so the unsharded campaign is byte-identical
/// to its pre-schedule ancestor; sharding then only *partitions* this list,
/// never re-draws it.
fn plan_schedule(cfg: &CampaignConfig, run_idx: u64) -> Vec<CampaignStep> {
    let mut rng = SmallRng::seed_from_u64(cfg.seed.wrapping_add(run_idx));
    (0..cfg.steps)
        .map(|step| {
            let cpu = (step as usize) % cfg.cpus;
            let line = rng.gen_range(0..cfg.lines);
            let word = rng.gen_range(0..(cfg.line_size / 4) as u64);
            let addr = line * cfg.line_size as u64 + word * 4;
            let write_byte = rng.gen_bool(0.5).then(|| rng.gen_range(0u16..256) as u8);
            CampaignStep {
                step,
                cpu,
                addr,
                write_byte,
            }
        })
        .collect()
}

fn execute_schedule(
    cfg: &CampaignConfig,
    name: &str,
    fault_seed: u64,
    schedule: &[CampaignStep],
) -> Result<ProtocolRun, String> {
    let controllers: Vec<CacheController> = (0..cfg.cpus)
        .map(|id| {
            let protocol: Box<dyn Protocol + Send> =
                match cfg.tables.iter().find(|t| t.name() == name) {
                    Some(table) => Box::new(TablePolicy::new(*table)),
                    None => by_name(name, cfg.seed.wrapping_add(id as u64))
                        .ok_or_else(|| format!("unknown protocol `{name}`"))?,
                };
            let cache = (protocol.kind() != CacheKind::NonCaching)
                .then(|| CacheConfig::new(cfg.cache_bytes, cfg.line_size, 2, ReplacementKind::Lru));
            Ok(CacheController::new(
                id,
                protocol,
                cache,
                cfg.seed.wrapping_add(id as u64),
            ))
        })
        .collect::<Result<_, String>>()?;
    let mut fabric = Fabric::new(cfg.line_size, TimingConfig::default(), controllers);
    // A fault campaign must record bus errors as detected damage, not die
    // on them: errored accesses degrade to a memory-direct fallback and any
    // staleness they cause is the checker's to flag.
    fabric.tolerate_bus_errors(true);
    fabric.bus_mut().inject_faults(FaultPlan::new(FaultConfig {
        seed: fault_seed,
        ..cfg.faults
    }));
    let mut checker = Checker::new(cfg.line_size);

    let mut run = ProtocolRun {
        protocol: name.to_string(),
        accesses: 0,
        verdicts: Vec::new(),
        retired: Vec::new(),
        violations: Vec::new(),
        bus_errors: Vec::new(),
        bus_stats: BusStats::new(),
        phase_hist: PhaseHistograms::new(),
    };
    let mut cursor = 0usize;
    let mut write_pieces: Vec<(u64, Vec<u8>)> = Vec::new();

    for &CampaignStep {
        step,
        cpu,
        addr,
        write_byte,
    } in schedule
    {
        write_pieces.clear();
        let read_back = if let Some(byte) = write_byte {
            let bytes = [byte; 4];
            let ck = &mut checker;
            let pieces = &mut write_pieces;
            fabric.write_with(cpu, addr, &bytes, |piece_addr, piece| {
                ck.record_write(piece_addr, piece);
                pieces.push((piece_addr, piece.to_vec()));
            });
            None
        } else {
            Some(fabric.read(cpu, addr, 4))
        };
        run.accesses += 1;
        run.bus_errors.extend(fabric.drain_bus_errors());

        // Drain faults the bus injected during this access, reconcile the
        // reported damage, and classify.
        let new: Vec<FaultRecord> = {
            let plan = fabric.bus().fault_plan().expect("plan installed above");
            plan.records()[cursor..].to_vec()
        };
        cursor += new.len();
        let first_new = run.verdicts.len();
        let mut killed = false;
        for record in new {
            killed |= matches!(record.fault, InjectedFault::Kill { .. });
            let (class, note) = audit(&record.fault, &mut fabric, &mut checker, cfg.line_size);
            run.verdicts.push(FaultVerdict {
                record,
                class,
                note,
            });
        }
        // A kill can land mid-transaction on the very line this step is
        // writing: the master fills from the rolled-back memory and merges
        // its bytes on top, so the write *survives* even though the rest of
        // the line reverted. The kill reconciliation above set the golden
        // line to bare memory; re-apply the step's write on top of it.
        if killed {
            for (piece_addr, piece) in &write_pieces {
                checker.record_write(*piece_addr, piece);
            }
        }

        // With all reported damage reconciled, anything still wrong is
        // silent corruption: the read must match the golden image and every
        // structural invariant must hold.
        let mut broken = None;
        if let Some(got) = read_back {
            if let Err(v) = checker.check_read(cpu, addr, &got) {
                broken = Some(v);
            }
        }
        if broken.is_none() {
            if let Err(v) = checker.verify(fabric.controllers(), fabric.bus().memory()) {
                broken = Some(v);
            }
        }
        if let Some(v) = broken {
            run.violations.push(format!("step {step}: {v}"));
            for verdict in &mut run.verdicts[first_new..] {
                verdict.class = FaultClass::Silent;
                verdict.note = format!("post-recovery violation: {v}");
            }
            break; // the machine state is poisoned; stop this run
        }
    }

    run.retired = fabric.bus().retired();
    run.bus_stats = *fabric.bus().stats();
    run.phase_hist = *fabric.bus().phase_histograms();
    Ok(run)
}

/// Reconciles one fault's reported damage and returns its provisional class
/// (flipped to `Silent` by the caller if the post-recovery audit fails).
fn audit(
    fault: &InjectedFault,
    fabric: &mut Fabric,
    checker: &mut Checker,
    line_size: usize,
) -> (FaultClass, String) {
    match fault {
        InjectedFault::Glitch { .. } => (
            FaultClass::Masked,
            "absorbed by the wired-OR settle window".into(),
        ),
        InjectedFault::Stall { module, salvaged } => (
            FaultClass::Detected,
            format!(
                "watchdog retired m{module}; {} dirty lines salvaged to memory",
                salvaged.len()
            ),
        ),
        InjectedFault::Kill { module, lost } => {
            // The loss is reported: accept the rolled-back memory image as
            // the new truth. Any divergence beyond it is silent corruption.
            for addr in lost {
                let mem_line = fabric.bus().memory().peek_line(*addr);
                checker.record_write(*addr, &mem_line);
            }
            (
                FaultClass::Detected,
                format!(
                    "watchdog retired m{module}; {} dirty lines lost (reported, survivors invalidated)",
                    lost.len()
                ),
            )
        }
        InjectedFault::AbortStorm { rounds } => (
            FaultClass::Detected,
            format!("{rounds} phantom BS rounds drained by bounded retry with backoff"),
        ),
        InjectedFault::CorruptMemory { addr, .. } => {
            let golden = checker.golden_bytes(*addr, line_size);
            let diverged = fabric.bus().memory().peek_line(*addr)[..] != golden[..];
            fabric.bus_mut().memory_mut().write_line(*addr, &golden);
            (
                FaultClass::Detected,
                if diverged {
                    "scrubber found memory diverged from the golden image; restored".into()
                } else {
                    "corruption landed on already-stale bytes; scrubbed anyway".into()
                },
            )
        }
        // Bridge-level faults only arise on a parent bus whose plan carries
        // `bridges: true`; a flat campaign never configures one. Classify
        // defensively so a misconfigured plan is visible, not fatal.
        InjectedFault::BridgeStall { .. }
        | InjectedFault::BridgeKill { .. }
        | InjectedFault::StaleTag { .. } => (
            FaultClass::Detected,
            "bridge-level fault on a flat (single-bus) campaign".into(),
        ),
    }
}

// ---------------------------------------------------------------------------
// Hierarchy campaign: inject bridge-targeted faults into a two-level machine
// and prove the partition/recovery machinery never corrupts silently.
// ---------------------------------------------------------------------------

/// Hierarchy campaign shape: protocols, cluster geometry, workload and fault
/// rates. The parent bus gets the full plan (`bridges: true`, so stalls and
/// kills target bridges); each cluster bus gets a derived glitch/storm-only
/// plan — retiring an individual cache is the flat campaign's subject, here
/// the bridge is the victim.
#[derive(Clone, Debug)]
pub struct HierarchyCampaignConfig {
    /// Protocol names, one homogeneous hierarchy per entry.
    pub protocols: Vec<String>,
    /// Clusters per hierarchy (root-bus children).
    pub clusters: usize,
    /// Bus levels in the fabric tree: 2 is the classic two-level machine;
    /// deeper values interpose interior segments built by
    /// [`TreeBuilder::uniform`](crate::hierarchy::TreeBuilder::uniform).
    pub depth: usize,
    /// Children per interior segment when `depth > 2` (ignored at depth 2).
    pub fanout: usize,
    /// Caching processors per leaf cluster.
    pub cpus: usize,
    /// Bytes per line.
    pub line_size: usize,
    /// Cache capacity per node in bytes.
    pub cache_bytes: usize,
    /// Processor accesses per hierarchy.
    pub steps: u64,
    /// Distinct lines in the working set.
    pub lines: u64,
    /// Workload seed (the fault seed lives in
    /// [`HierarchyCampaignConfig::faults`]).
    pub seed: u64,
    /// Fault kinds and rates (see the field doc above for how they are split
    /// between the parent and cluster buses).
    pub faults: FaultConfig,
    /// Consecutive parent-bus retry-cutoff failures per master before the
    /// liveness watchdog flags starvation.
    pub liveness_deadline: u32,
    /// Worker threads sharding the per-protocol runs; the merged report is
    /// byte-identical for any value.
    pub jobs: usize,
}

impl Default for HierarchyCampaignConfig {
    fn default() -> Self {
        HierarchyCampaignConfig {
            protocols: vec![
                "moesi".into(),
                "dragon".into(),
                "write-through".into(),
                "berkeley".into(),
            ],
            clusters: 2,
            depth: 2,
            fanout: 2,
            cpus: 2,
            line_size: 16,
            cache_bytes: 1024,
            steps: 1500,
            lines: 48,
            seed: 0xCA_FE,
            faults: FaultConfig {
                glitch_rate: 0.20,
                stall_rate: 0.002,
                kill_rate: 0.002,
                storm_rate: 0.05,
                corrupt_rate: 0.08,
                stale_tag_rate: 0.10,
                max_storm_rounds: 4,
                ..FaultConfig::default()
            },
            liveness_deadline: 3,
            jobs: crate::campaign::default_jobs(),
        }
    }
}

/// One protocol's hierarchy campaign outcome.
#[derive(Clone, Debug)]
pub struct HierarchyRun {
    /// The protocol every cache in the hierarchy ran.
    pub protocol: String,
    /// Processor accesses executed.
    pub accesses: u64,
    /// Every injected fault (parent and cluster buses) with its verdict.
    pub verdicts: Vec<FaultVerdict>,
    /// Bridges the parent-bus watchdog retired, ascending.
    pub retired_bridges: Vec<usize>,
    /// Clusters running memory-direct degraded mode at the end of the run.
    pub degraded_clusters: Vec<usize>,
    /// Invariant/read violations observed after recovery (silent corruption;
    /// the run stops at the first one).
    pub violations: Vec<String>,
    /// Structured parent-bus errors the hierarchy survived.
    pub parent_errors: Vec<ParentError>,
    /// Cluster-bus errors survived in tolerant mode.
    pub cluster_bus_errors: Vec<String>,
    /// Parent-bus statistics at the end of the run.
    pub parent_stats: BusStats,
    /// Dirty lines owned by bridges at their retirement instants, summed.
    pub dirty_at_retire: u64,
    /// Of those, lines salvaged to parent memory by synthetic push rounds.
    pub salvaged_lines: u64,
    /// Of those, lines lost with their bridge (reported, never silent).
    pub lost_lines: u64,
}

impl HierarchyRun {
    /// Faults in `class`.
    #[must_use]
    pub fn count_class(&self, class: FaultClass) -> u64 {
        self.verdicts.iter().filter(|v| v.class == class).count() as u64
    }

    /// Faults of `kind` in `class`.
    #[must_use]
    pub fn count(&self, kind: FaultKind, class: FaultClass) -> u64 {
        self.verdicts
            .iter()
            .filter(|v| v.record.fault.kind() == kind && v.class == class)
            .count() as u64
    }
}

impl fmt::Display for HierarchyRun {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} accesses, {} faults",
            self.protocol,
            self.accesses,
            self.verdicts.len()
        )?;
        let mut by_kind: BTreeMap<String, (u64, u64, u64)> = BTreeMap::new();
        for v in &self.verdicts {
            let slot = by_kind
                .entry(v.record.fault.kind().to_string())
                .or_default();
            match v.class {
                FaultClass::Masked => slot.0 += 1,
                FaultClass::Detected => slot.1 += 1,
                FaultClass::Silent => slot.2 += 1,
            }
        }
        for (kind, (masked, detected, silent)) in &by_kind {
            write!(f, "\n    {kind}: {masked} masked, {detected} detected")?;
            if *silent > 0 {
                write!(f, ", {silent} SILENT")?;
            }
        }
        if !self.retired_bridges.is_empty() {
            write!(
                f,
                "\n    retired bridges: {:?} ({} dirty lines: {} salvaged, {} lost)",
                self.retired_bridges, self.dirty_at_retire, self.salvaged_lines, self.lost_lines
            )?;
        }
        if !self.parent_errors.is_empty() || !self.cluster_bus_errors.is_empty() {
            write!(
                f,
                "\n    bus errors survived: {} parent, {} cluster",
                self.parent_errors.len(),
                self.cluster_bus_errors.len()
            )?;
        }
        if self.parent_stats.liveness_violations > 0 {
            write!(
                f,
                "\n    liveness violations: {}",
                self.parent_stats.liveness_violations
            )?;
        }
        for v in &self.violations {
            write!(f, "\n    SILENT CORRUPTION: {v}")?;
        }
        Ok(())
    }
}

/// A whole hierarchy campaign's outcome.
#[derive(Clone, Debug)]
pub struct HierarchyReport {
    /// Bus levels in each machine's fabric tree.
    pub depth: usize,
    /// Interior fan-out (meaningful when `depth > 2`).
    pub fanout: usize,
    /// Root-bus clusters per machine.
    pub clusters: usize,
    /// Leaf clusters per machine (== `clusters` at depth 2).
    pub leaves: usize,
    /// Per-protocol results, in configuration order.
    pub runs: Vec<HierarchyRun>,
}

impl HierarchyReport {
    /// Total faults injected across all runs.
    #[must_use]
    pub fn injected(&self) -> u64 {
        self.runs.iter().map(|r| r.verdicts.len() as u64).sum()
    }

    /// Total silent corruptions. The zero-silent-corruption bar of the
    /// partition/recovery oracle: any nonzero value fails the campaign.
    #[must_use]
    pub fn silent(&self) -> u64 {
        self.runs.iter().map(|r| r.violations.len() as u64).sum()
    }

    /// Total faults of `kind` in `class` across all runs.
    #[must_use]
    pub fn count(&self, kind: FaultKind, class: FaultClass) -> u64 {
        self.runs.iter().map(|r| r.count(kind, class)).sum()
    }

    /// Total bridge retirements across all runs.
    #[must_use]
    pub fn retirements(&self) -> u64 {
        self.runs
            .iter()
            .map(|r| r.retired_bridges.len() as u64)
            .sum()
    }

    /// Total liveness violations the parent-bus watchdogs flagged.
    #[must_use]
    pub fn liveness_violations(&self) -> u64 {
        self.runs
            .iter()
            .map(|r| r.parent_stats.liveness_violations)
            .sum()
    }
}

impl fmt::Display for HierarchyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "hierarchy fault campaign: {} protocols, {} faults injected, {} silent",
            self.runs.len(),
            self.injected(),
            self.silent()
        )?;
        for run in &self.runs {
            writeln!(f, "  {run}")?;
        }
        write!(
            f,
            "verdict: {}",
            if self.silent() == 0 {
                "graceful degradation — every fault masked or detected"
            } else {
                "SILENT CORRUPTION OBSERVED"
            }
        )
    }
}

/// Runs a hierarchy fault campaign: for each protocol, a seeded workload on a
/// clustered machine whose parent bus injects bridge-targeted faults, with
/// every fault audited against [`HierarchicalSystem::verify`] and classified
/// masked / detected / silent.
///
/// # Errors
///
/// Returns a message when a protocol name is unknown or the geometry is
/// unusable.
pub fn run_hierarchy_campaign(cfg: &HierarchyCampaignConfig) -> Result<HierarchyReport, String> {
    if cfg.protocols.is_empty() {
        return Err("no protocols given".into());
    }
    if cfg.clusters == 0 || cfg.cpus == 0 || cfg.steps == 0 || cfg.lines == 0 {
        return Err("clusters, cpus, steps and lines must all be non-zero".into());
    }
    if cfg.depth < 2 {
        return Err("depth must be at least 2 (the two-level machine)".into());
    }
    if cfg.depth > 2 && cfg.fanout == 0 {
        return Err("fanout must be non-zero for trees deeper than two levels".into());
    }
    let jobs: Vec<(u64, String)> = cfg
        .protocols
        .iter()
        .enumerate()
        .map(|(run_idx, name)| (run_idx as u64, name.clone()))
        .collect();
    let runs = crate::campaign::run_jobs(jobs, cfg.jobs, |(run_idx, name)| {
        run_hierarchy_one(cfg, &name, run_idx)
    })
    .into_iter()
    .collect::<Result<Vec<_>, String>>()?;
    let per_interior = if cfg.depth > 2 { cfg.fanout } else { 1 };
    let leaves = cfg.clusters * per_interior.pow(cfg.depth.saturating_sub(2) as u32);
    Ok(HierarchyReport {
        depth: cfg.depth,
        fanout: cfg.fanout,
        clusters: cfg.clusters,
        leaves,
        runs,
    })
}

fn run_hierarchy_one(
    cfg: &HierarchyCampaignConfig,
    name: &str,
    run_idx: u64,
) -> Result<HierarchyRun, String> {
    // Validate the protocol name once, outside the builder closures.
    by_name(name, 0).ok_or_else(|| format!("unknown protocol `{name}`"))?;
    let mut sys = if cfg.depth == 2 {
        let mut builder = HierarchyBuilder::new(cfg.line_size)
            .checking(true)
            .seed(cfg.seed.wrapping_add(run_idx));
        for _ in 0..cfg.clusters {
            builder = builder.cluster();
            for cpu in 0..cfg.cpus {
                let protocol =
                    by_name(name, cfg.seed.wrapping_add(cpu as u64)).expect("validated above");
                if protocol.kind() == CacheKind::NonCaching {
                    builder = builder.uncached(protocol);
                } else {
                    builder = builder.cache(
                        protocol,
                        CacheConfig::new(cfg.cache_bytes, cfg.line_size, 2, ReplacementKind::Lru),
                    );
                }
            }
        }
        builder.build()
    } else {
        TreeBuilder::uniform(
            cfg.line_size,
            cfg.clusters,
            cfg.depth,
            cfg.fanout,
            cfg.cpus,
            {
                |_, cpu| {
                    let protocol =
                        by_name(name, cfg.seed.wrapping_add(cpu as u64)).expect("validated above");
                    if protocol.kind() == CacheKind::NonCaching {
                        (protocol, None)
                    } else {
                        (
                            protocol,
                            Some(CacheConfig::new(
                                cfg.cache_bytes,
                                cfg.line_size,
                                2,
                                ReplacementKind::Lru,
                            )),
                        )
                    }
                }
            },
        )
        .checking(true)
        .seed(cfg.seed.wrapping_add(run_idx))
        .build()
    };
    let leaves = sys.leaves();
    let leaf_paths = sys.leaf_paths();
    // The campaign owns verification: reported damage is reconciled first,
    // then the oracle runs — only unreported divergence counts as silent.
    sys.tolerate_faults(true);
    sys.parent_bus_mut()
        .inject_faults(FaultPlan::new(FaultConfig {
            seed: cfg.faults.seed.wrapping_add(run_idx),
            bridges: true,
            ..cfg.faults
        }));
    sys.parent_bus_mut().enable_liveness(cfg.liveness_deadline);
    for leaf in 0..leaves {
        sys.leaf_fabric_mut(leaf)
            .bus_mut()
            .inject_faults(FaultPlan::new(FaultConfig {
                seed: cfg
                    .faults
                    .seed
                    .wrapping_add(run_idx)
                    .wrapping_add((leaf as u64 + 1) << 32),
                glitch_rate: cfg.faults.glitch_rate,
                storm_rate: cfg.faults.storm_rate,
                max_storm_rounds: cfg.faults.max_storm_rounds,
                ..FaultConfig::default()
            }));
    }
    let mut rng = SmallRng::seed_from_u64(cfg.seed.wrapping_add(run_idx));

    let mut run = HierarchyRun {
        protocol: name.to_string(),
        accesses: 0,
        verdicts: Vec::new(),
        retired_bridges: Vec::new(),
        degraded_clusters: Vec::new(),
        violations: Vec::new(),
        parent_errors: Vec::new(),
        cluster_bus_errors: Vec::new(),
        parent_stats: BusStats::new(),
        dirty_at_retire: 0,
        salvaged_lines: 0,
        lost_lines: 0,
    };
    let mut parent_cursor = 0usize;
    let mut cluster_cursors = vec![0usize; leaves];

    for step in 0..cfg.steps {
        // Inclusion-tag soft errors are injected by the campaign itself (the
        // directory RAM is not in any transaction's fault path) and scrubbed
        // immediately: ECC detection precedes use, so no coherence action
        // ever trusts a corrupt tag. The scrubber reconstructs the tag from
        // cluster evidence alone; the record still gets a verdict below.
        if let Some((cluster, line)) = sys.corrupt_inclusion_tag() {
            let _ = sys.scrub_inclusion_tag(cluster, line);
        }

        // Accesses address leaf clusters (== root clusters at depth 2, so
        // the draws and the access path are unchanged for the classic
        // two-level machine).
        let leaf = rng.gen_range(0..leaves as u64) as usize;
        let cpu = rng.gen_range(0..cfg.cpus as u64) as usize;
        let line = rng.gen_range(0..cfg.lines);
        let word = rng.gen_range(0..(cfg.line_size / 4) as u64);
        let addr = line * cfg.line_size as u64 + word * 4;
        let mut write_piece: Option<(u64, Vec<u8>)> = None;
        let read_back = if rng.gen_bool(0.5) {
            let bytes = vec![rng.gen_range(0u16..256) as u8; 4];
            sys.write_at(&leaf_paths[leaf], cpu, addr, &bytes);
            write_piece = Some((addr, bytes));
            None
        } else {
            Some(sys.read_at(&leaf_paths[leaf], cpu, addr, 4))
        };
        run.accesses += 1;
        run.cluster_bus_errors
            .extend(sys.drain_cluster_bus_errors());

        // Drain and audit the parent plan's injections from this step.
        let new: Vec<FaultRecord> = {
            let plan = sys.parent_bus().fault_plan().expect("plan installed above");
            plan.records()[parent_cursor..].to_vec()
        };
        parent_cursor += new.len();
        let first_new = run.verdicts.len();
        let mut killed = false;
        for record in new {
            killed |= matches!(record.fault, InjectedFault::BridgeKill { .. });
            let (class, note) = audit_hierarchy(&record.fault, &mut sys, cfg.line_size);
            run.verdicts.push(FaultVerdict {
                record,
                class,
                note,
            });
        }
        // Then each cluster bus's glitch/storm injections.
        for (c, cursor) in cluster_cursors.iter_mut().enumerate() {
            let new: Vec<FaultRecord> = {
                let plan = sys
                    .leaf_fabric(c)
                    .bus()
                    .fault_plan()
                    .expect("plan installed above");
                plan.records()[*cursor..].to_vec()
            };
            *cursor += new.len();
            for record in new {
                let (class, note) = match &record.fault {
                    InjectedFault::Glitch { .. } => (
                        FaultClass::Masked,
                        format!("cluster {c}: absorbed by the wired-OR settle window"),
                    ),
                    InjectedFault::AbortStorm { rounds } => (
                        FaultClass::Detected,
                        format!("cluster {c}: {rounds} phantom BS rounds drained by bounded retry"),
                    ),
                    other => (
                        FaultClass::Detected,
                        format!("cluster {c}: unexpected fault `{other}`"),
                    ),
                };
                run.verdicts.push(FaultVerdict {
                    record,
                    class,
                    note,
                });
            }
        }
        // A bridge kill can land mid-transaction on the very line this step
        // is writing; the kill reconciliation accepted the pre-kill memory as
        // truth, so re-apply the surviving write on top of it.
        if killed {
            if let Some((piece_addr, piece)) = &write_piece {
                sys.checker_mut()
                    .expect("campaign hierarchies run checked")
                    .record_write(*piece_addr, piece);
            }
        }

        // The partition/recovery oracle: with all reported damage reconciled,
        // anything still wrong is silent corruption.
        let mut broken = None;
        if let Some(got) = read_back {
            let global_cpu = leaf * cfg.cpus + cpu;
            if let Err(v) = sys
                .checker()
                .expect("campaign hierarchies run checked")
                .check_read(global_cpu, addr, &got)
            {
                broken = Some(v);
            }
        }
        if broken.is_none() {
            if let Err(v) = sys.verify() {
                broken = Some(v);
            }
        }
        if let Some(v) = broken {
            run.violations.push(format!("step {step}: {v}"));
            for verdict in &mut run.verdicts[first_new..] {
                verdict.class = FaultClass::Silent;
                verdict.note = format!("post-recovery violation: {v}");
            }
            break;
        }
    }

    run.retired_bridges = sys.parent_bus().retired();
    run.degraded_clusters = sys.degraded_clusters();
    run.parent_errors = sys.parent_errors().to_vec();
    run.parent_stats = *sys.parent_bus().stats();
    for bridge in sys.bridges_preorder() {
        let stats = bridge.stats();
        run.dirty_at_retire += stats.dirty_at_retire;
        run.salvaged_lines += stats.salvaged_lines;
        run.lost_lines += stats.lost_lines;
    }
    Ok(run)
}

/// Reconciles one parent-bus fault's reported damage against the hierarchy
/// and returns its provisional class.
fn audit_hierarchy(
    fault: &InjectedFault,
    sys: &mut HierarchicalSystem,
    line_size: usize,
) -> (FaultClass, String) {
    match fault {
        InjectedFault::Glitch { .. } => (
            FaultClass::Masked,
            "parent bus: absorbed by the wired-OR settle window".into(),
        ),
        InjectedFault::AbortStorm { rounds } => (
            FaultClass::Detected,
            format!("parent bus: {rounds} phantom BS rounds drained by bounded retry"),
        ),
        InjectedFault::BridgeStall { bridge, salvaged } => (
            FaultClass::Detected,
            format!(
                "watchdog retired bridge b{bridge}; {} dirty lines salvaged by synthetic \
                 push rounds; cluster degraded to memory-direct",
                salvaged.len()
            ),
        ),
        InjectedFault::BridgeKill { bridge, lost } => {
            // The loss is reported: accept the pre-kill parent memory as the
            // new truth for the lost lines. Survivor copies were invalidated
            // by the watchdog's synthetic invalidate rounds; anything beyond
            // that is silent corruption.
            for addr in lost {
                let mem = sys.parent_memory_peek(*addr, line_size);
                sys.checker_mut()
                    .expect("campaign hierarchies run checked")
                    .record_write(*addr, &mem);
            }
            (
                FaultClass::Detected,
                format!(
                    "watchdog retired bridge b{bridge}; {} dirty lines lost (reported, \
                     survivors invalidated); cluster degraded to memory-direct",
                    lost.len()
                ),
            )
        }
        InjectedFault::CorruptMemory { addr, .. } => {
            let golden = sys
                .checker()
                .expect("campaign hierarchies run checked")
                .golden_bytes(*addr, line_size);
            let diverged = sys.parent_memory_peek(*addr, line_size)[..] != golden[..];
            // The scrubber may restore a line a cluster currently owns — in
            // that case parent memory is *supposed* to be stale, but golden
            // is still the safest restoration (the owner's push will
            // overwrite it), and the corruption itself remains reported.
            sys.parent_bus_mut().memory_mut().write_line(*addr, &golden);
            (
                FaultClass::Detected,
                if diverged {
                    "scrubber found parent memory diverged from the golden image; restored".into()
                } else {
                    "corruption landed on already-stale bytes; scrubbed anyway".into()
                },
            )
        }
        InjectedFault::StaleTag {
            bridge,
            addr,
            from,
            to,
        } => (
            FaultClass::Detected,
            format!(
                "directory parity hit on b{bridge} @{addr:#x} ({from}->{to}); tag \
                 reconstructed from cluster evidence"
            ),
        ),
        InjectedFault::Stall { module, .. } | InjectedFault::Kill { module, .. } => (
            FaultClass::Detected,
            format!("flat-style retirement of parent module m{module} (bridges flag unset?)"),
        ),
    }
}

// ---------------------------------------------------------------------------
// Liveness probe: the seeded adversarial workload of §2.1's arbitration
// story. A phantom-BS storm longer than the retry budget livelocks a naive
// flat-retry bus; capped exponential backoff bounds the waste but still hits
// the cutoff; arbitration priority aging recovers outright.
// ---------------------------------------------------------------------------

/// One retry-policy configuration's outcome under the adversarial storm.
#[derive(Clone, Debug)]
pub struct LivenessOutcome {
    /// Configuration label: `flat-retry`, `capped-backoff` or
    /// `capped+aging`.
    pub label: String,
    /// Bus transactions that committed.
    pub committed: u64,
    /// Bus transactions that hit the retry cutoff (each degraded one access).
    pub failed: u64,
    /// Starvation events the liveness watchdog flagged.
    pub liveness_violations: u64,
    /// Largest abort count any single transaction saw.
    pub max_txn_aborts: u64,
    /// Phantom-storm promotions granted by priority aging.
    pub aging_promotions: u64,
    /// Total nanoseconds spent backing off.
    pub backoff_ns: u64,
}

/// The three-way comparison the liveness probe produces.
#[derive(Clone, Debug)]
pub struct LivenessProbe {
    /// Outcomes in escalation order: flat retry, capped backoff, capped
    /// backoff + priority aging.
    pub outcomes: Vec<LivenessOutcome>,
}

impl LivenessProbe {
    /// The probe's claim, checkable: flat retry livelocked (every transaction
    /// starved), and the aged configuration recovered (no violations, some
    /// promotions).
    #[must_use]
    pub fn demonstrates_recovery(&self) -> bool {
        let flat = self.outcomes.iter().find(|o| o.label == "flat-retry");
        let aged = self.outcomes.iter().find(|o| o.label == "capped+aging");
        match (flat, aged) {
            (Some(flat), Some(aged)) => {
                flat.liveness_violations > 0
                    && flat.committed == 0
                    && aged.liveness_violations == 0
                    && aged.failed == 0
                    && aged.aging_promotions > 0
            }
            _ => false,
        }
    }
}

impl fmt::Display for LivenessProbe {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "liveness probe: phantom-BS storm of 32 rounds vs a 16-retry budget"
        )?;
        for o in &self.outcomes {
            writeln!(
                f,
                "  {:>14}: {} committed, {} failed, {} starvations, max {} aborts/txn, \
                 {} promotions, {} ns backing off",
                o.label,
                o.committed,
                o.failed,
                o.liveness_violations,
                o.max_txn_aborts,
                o.aging_promotions,
                o.backoff_ns
            )?;
        }
        write!(
            f,
            "verdict: {}",
            if self.demonstrates_recovery() {
                "flat retry livelocks; capped backoff + priority aging recovers"
            } else {
                "UNEXPECTED — adversarial scenario did not behave as claimed"
            }
        )
    }
}

/// Runs the adversarial liveness scenario three times — naive flat retry,
/// capped exponential backoff, and capped backoff with §2.1 priority aging —
/// on identical seeded workloads and storm plans, and reports the per-policy
/// ledgers. The storm outlasts the retry budget (32 rounds vs 16 retries), so
/// it defeats any policy that cannot break the phase lock; only aging
/// commits every transaction.
///
/// # Errors
///
/// Returns a message when `steps` is zero.
pub fn run_liveness_probe(seed: u64, steps: u64) -> Result<LivenessProbe, String> {
    if steps == 0 {
        return Err("steps must be non-zero".into());
    }
    let configs: [(&str, RetryPolicy); 3] = [
        (
            "flat-retry",
            RetryPolicy {
                flat_retry: true,
                ..RetryPolicy::default()
            },
        ),
        ("capped-backoff", RetryPolicy::default()),
        (
            "capped+aging",
            RetryPolicy {
                aging_rounds: 8,
                ..RetryPolicy::default()
            },
        ),
    ];
    let mut outcomes = Vec::new();
    for (label, policy) in configs {
        let controllers: Vec<CacheController> = (0..2)
            .map(|id| {
                let protocol = by_name("moesi", seed.wrapping_add(id as u64))
                    .expect("moesi is a shipped protocol");
                CacheController::new(
                    id,
                    protocol,
                    Some(CacheConfig::new(1024, 16, 2, ReplacementKind::Lru)),
                    seed.wrapping_add(id as u64),
                )
            })
            .collect();
        let mut fabric = Fabric::new(16, TimingConfig::default(), controllers);
        fabric.tolerate_bus_errors(true);
        fabric.bus_mut().set_retry_policy(policy);
        fabric.bus_mut().enable_liveness(2);
        // Every transaction storms for longer than the retry budget.
        fabric.bus_mut().inject_faults(FaultPlan::new(FaultConfig {
            seed: seed ^ 0x57_0B,
            storm_rate: 1.0,
            max_storm_rounds: 32,
            ..FaultConfig::default()
        }));
        let mut rng = SmallRng::seed_from_u64(seed);
        for step in 0..steps {
            // Ping-pong writes to a small shared set so every access needs
            // the bus (invalidate or broadcast traffic), keeping the storm
            // in the arbitration path of both masters.
            let cpu = (step % 2) as usize;
            let addr = (step % 4) * 16;
            let bytes = vec![rng.gen_range(0u16..256) as u8; 4];
            fabric.write_with(cpu, addr, &bytes, |_, _| {});
        }
        let failed = fabric.drain_bus_errors().len() as u64;
        let stats = fabric.bus().stats();
        let monitor = fabric.bus().liveness().expect("liveness enabled above");
        let committed = (0..2).map(|m| monitor.progress(m).commits).sum();
        outcomes.push(LivenessOutcome {
            label: label.to_string(),
            committed,
            failed,
            liveness_violations: stats.liveness_violations,
            max_txn_aborts: stats.max_txn_aborts,
            aging_promotions: stats.aging_promotions,
            backoff_ns: stats.backoff_ns,
        });
    }
    Ok(LivenessProbe { outcomes })
}

// ---------------------------------------------------------------------------
// JSON reports (house style, `moesi::json`): machine-readable campaign
// output for CI gates and trend dashboards.
// ---------------------------------------------------------------------------

/// Renders a flat campaign report as a JSON object, including the
/// lost/salvaged-line and retry/backoff counters.
#[must_use]
pub fn campaign_report_json(report: &CampaignReport) -> String {
    let runs: Vec<String> = report
        .runs
        .iter()
        .map(|run| {
            let retired: Vec<u64> = run.retired.iter().map(|&m| m as u64).collect();
            JsonObject::new()
                .string("protocol", &run.protocol)
                .number("accesses", run.accesses)
                .number("faults", run.verdicts.len())
                .number("masked", run.count_class(FaultClass::Masked))
                .number("detected", run.count_class(FaultClass::Detected))
                .number("silent", run.count_class(FaultClass::Silent))
                .raw("retired", &array_u64(&retired))
                .number("bus_errors", run.bus_errors.len())
                .number("salvaged_lines", run.bus_stats.salvaged_lines)
                .number("lost_lines", run.bus_stats.lost_lines)
                .number("retries", run.bus_stats.retries)
                .number("backoff_ns", run.bus_stats.backoff_ns)
                .number("max_txn_aborts", run.bus_stats.max_txn_aborts)
                .number("liveness_violations", run.bus_stats.liveness_violations)
                .number("aging_promotions", run.bus_stats.aging_promotions)
                .finish()
        })
        .collect();
    JsonObject::new()
        .string("campaign", "flat")
        .number("protocols", report.runs.len())
        .number("injected", report.injected())
        .number("silent", report.silent())
        .number("retirements", report.retirements())
        .raw("runs", &format!("[{}]", runs.join(", ")))
        .finish()
}

/// Renders a hierarchy campaign report as a JSON object.
#[must_use]
pub fn hierarchy_report_json(report: &HierarchyReport) -> String {
    let runs: Vec<String> = report
        .runs
        .iter()
        .map(|run| {
            let retired: Vec<u64> = run.retired_bridges.iter().map(|&m| m as u64).collect();
            let degraded: Vec<u64> = run.degraded_clusters.iter().map(|&m| m as u64).collect();
            JsonObject::new()
                .string("protocol", &run.protocol)
                .number("accesses", run.accesses)
                .number("faults", run.verdicts.len())
                .number("masked", run.count_class(FaultClass::Masked))
                .number("detected", run.count_class(FaultClass::Detected))
                .number("silent", run.count_class(FaultClass::Silent))
                .raw("retired_bridges", &array_u64(&retired))
                .raw("degraded_clusters", &array_u64(&degraded))
                .number("dirty_at_retire", run.dirty_at_retire)
                .number("salvaged_lines", run.salvaged_lines)
                .number("lost_lines", run.lost_lines)
                .number("parent_errors", run.parent_errors.len())
                .number("cluster_bus_errors", run.cluster_bus_errors.len())
                .number("retries", run.parent_stats.retries)
                .number("backoff_ns", run.parent_stats.backoff_ns)
                .number("max_txn_aborts", run.parent_stats.max_txn_aborts)
                .number("liveness_violations", run.parent_stats.liveness_violations)
                .number("aging_promotions", run.parent_stats.aging_promotions)
                .finish()
        })
        .collect();
    JsonObject::new()
        .string("campaign", "hierarchy")
        .number("depth", report.depth as u64)
        .number("fanout", report.fanout as u64)
        .number("clusters", report.clusters as u64)
        .number("leaves", report.leaves as u64)
        .number("protocols", report.runs.len())
        .number("injected", report.injected())
        .number("silent", report.silent())
        .number("retirements", report.retirements())
        .number("liveness_violations", report.liveness_violations())
        .raw("runs", &format!("[{}]", runs.join(", ")))
        .finish()
}

/// Renders a liveness probe as a JSON object.
#[must_use]
pub fn liveness_probe_json(probe: &LivenessProbe) -> String {
    let outcomes: Vec<String> = probe
        .outcomes
        .iter()
        .map(|o| {
            JsonObject::new()
                .string("policy", &o.label)
                .number("committed", o.committed)
                .number("failed", o.failed)
                .number("liveness_violations", o.liveness_violations)
                .number("max_txn_aborts", o.max_txn_aborts)
                .number("aging_promotions", o.aging_promotions)
                .number("backoff_ns", o.backoff_ns)
                .finish()
        })
        .collect();
    JsonObject::new()
        .string("probe", "liveness")
        .number("recovery_demonstrated", probe.demonstrates_recovery())
        .raw("outcomes", &format!("[{}]", outcomes.join(", ")))
        .finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> CampaignConfig {
        CampaignConfig {
            protocols: vec!["moesi".into()],
            steps: 300,
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn loaded_tables_run_under_the_table_engine_by_name() {
        // A table whose name matches a protocol entry shadows the shipped
        // registry: the campaign runs it via `TablePolicy` and it must
        // degrade as gracefully as the hand-written original.
        let table = PolicyTable::preferred("loaded-preferred", CacheKind::CopyBack);
        let cfg = CampaignConfig {
            protocols: vec!["loaded-preferred".into()],
            tables: vec![table],
            steps: 300,
            ..CampaignConfig::default()
        };
        let report = run_campaign(&cfg).unwrap();
        assert_eq!(report.runs[0].protocol, "loaded-preferred");
        assert!(report.injected() > 0, "faults must land");
        assert_eq!(report.silent(), 0, "loaded table corrupted silently");
        // Without the table, the same name is unknown.
        let missing = CampaignConfig {
            tables: Vec::new(),
            ..cfg
        };
        assert!(run_campaign(&missing)
            .unwrap_err()
            .contains("loaded-preferred"));
    }

    #[test]
    fn campaigns_are_deterministic() {
        let cfg = quick_cfg();
        let a = run_campaign(&cfg).unwrap();
        let b = run_campaign(&cfg).unwrap();
        assert_eq!(a.injected(), b.injected());
        assert_eq!(a.silent(), b.silent());
        assert_eq!(a.runs[0].retired, b.runs[0].retired);
        assert_eq!(a.runs[0].bus_stats, b.runs[0].bus_stats);
    }

    #[test]
    fn sharded_campaigns_match_sequential_ones() {
        let base = CampaignConfig {
            steps: 250,
            ..CampaignConfig::default()
        };
        let seq = run_campaign(&CampaignConfig {
            jobs: 1,
            ..base.clone()
        })
        .unwrap();
        let par = run_campaign(&CampaignConfig { jobs: 4, ..base }).unwrap();
        assert_eq!(seq.runs.len(), par.runs.len());
        for (a, b) in seq.runs.iter().zip(&par.runs) {
            assert_eq!(a.protocol, b.protocol);
            assert_eq!(a.accesses, b.accesses);
            assert_eq!(a.verdicts.len(), b.verdicts.len());
            assert_eq!(a.retired, b.retired);
            assert_eq!(a.bus_stats, b.bus_stats);
            assert_eq!(a.phase_hist, b.phase_hist);
        }
    }

    #[test]
    fn sharded_campaign_is_byte_identical_for_any_worker_count() {
        let base = CampaignConfig {
            protocols: vec!["moesi".into(), "dragon".into()],
            steps: 400,
            ..CampaignConfig::default()
        };
        let one = run_campaign(&CampaignConfig {
            shards: 1,
            ..base.clone()
        })
        .unwrap();
        let four = run_campaign(&CampaignConfig { shards: 4, ..base }).unwrap();
        assert_eq!(
            campaign_report_json(&one),
            campaign_report_json(&four),
            "fixed partition, merged in region order"
        );
        assert!(one.injected() > 0, "faults must land on the sharded path");
        assert_eq!(one.silent(), 0);
        // Each protocol's accesses cover the full schedule: partitioning
        // never drops a step.
        for run in &one.runs {
            assert_eq!(run.accesses, 400, "{}", run.protocol);
        }
    }

    #[test]
    fn histograms_cover_every_access_and_sum_to_busy_ns() {
        let report = run_campaign(&quick_cfg()).unwrap();
        let run = &report.runs[0];
        assert!(run.phase_hist.phase(futurebus::Phase::Arbitrate).samples() > 0);
        let charged: u64 = run.phase_hist.sums().iter().sum();
        assert_eq!(charged, run.bus_stats.busy_ns);
        assert_eq!(run.bus_stats.phase_total_ns(), run.bus_stats.busy_ns);
    }

    #[test]
    fn a_saturated_storm_degrades_the_run_instead_of_killing_it() {
        // Storm every arbitration for more rounds than the retry budget:
        // every bus transaction fails with TooManyRetries. Pre-tolerant
        // fabrics panicked here and took the whole campaign process down;
        // now each failure is logged and the access degrades to memory.
        let cfg = CampaignConfig {
            protocols: vec!["moesi".into()],
            steps: 40,
            faults: FaultConfig {
                storm_rate: 1.0,
                max_storm_rounds: 32,
                ..FaultConfig::default()
            },
            ..CampaignConfig::default()
        };
        let report = run_campaign(&cfg).unwrap();
        let run = &report.runs[0];
        assert!(!run.bus_errors.is_empty(), "errors must be recorded");
        assert!(
            run.bus_errors[0].contains("aborted"),
            "{}",
            run.bus_errors[0]
        );
        assert!(run.accesses > 0, "the campaign keeps making progress");
    }

    #[test]
    fn an_inert_plan_injects_nothing_and_stays_clean() {
        let cfg = CampaignConfig {
            protocols: vec!["moesi".into(), "write-through".into()],
            steps: 200,
            faults: FaultConfig::default(),
            ..CampaignConfig::default()
        };
        let report = run_campaign(&cfg).unwrap();
        assert_eq!(report.injected(), 0);
        assert_eq!(report.silent(), 0);
        assert_eq!(report.retirements(), 0);
    }

    #[test]
    fn unknown_protocols_are_reported() {
        let cfg = CampaignConfig {
            protocols: vec!["mesif".into()],
            ..CampaignConfig::default()
        };
        let err = run_campaign(&cfg).unwrap_err();
        assert!(err.contains("mesif"), "{err}");
    }

    #[test]
    fn empty_geometry_is_rejected() {
        let cfg = CampaignConfig {
            steps: 0,
            ..CampaignConfig::default()
        };
        assert!(run_campaign(&cfg).is_err());
        assert!(run_campaign(&CampaignConfig {
            protocols: vec![],
            ..CampaignConfig::default()
        })
        .is_err());
    }

    #[test]
    fn glitches_alone_are_always_masked() {
        let cfg = CampaignConfig {
            protocols: vec!["moesi".into()],
            steps: 400,
            faults: FaultConfig {
                glitch_rate: 0.5,
                ..FaultConfig::default()
            },
            ..CampaignConfig::default()
        };
        let report = run_campaign(&cfg).unwrap();
        assert!(report.injected() > 50, "glitches must actually land");
        assert_eq!(
            report.count(FaultKind::Glitch, FaultClass::Masked),
            report.injected(),
            "every glitch is absorbed by the settle window"
        );
        assert_eq!(report.silent(), 0);
    }

    #[test]
    fn a_kill_landing_on_the_line_being_written_is_reported_not_silent() {
        // A kill can take the owner of the very line another module is
        // mid-write to: the master fills from the rolled-back memory and
        // merges its bytes on top. The audit must credit the surviving
        // write when it reconciles the loss, or the master's copy looks
        // silently stale. These parameters (matching
        // `moesi-sim faults --protocol moesi --kind kill --rate 0.5
        // --steps 600`) hit that interleaving.
        let cfg = CampaignConfig {
            protocols: vec!["moesi".into()],
            steps: 600,
            faults: FaultConfig {
                seed: 0xCA_FE ^ 0xFA_017,
                kill_rate: 0.005,
                max_storm_rounds: 4,
                ..FaultConfig::default()
            },
            ..CampaignConfig::default()
        };
        let report = run_campaign(&cfg).unwrap();
        assert!(
            report.count(FaultKind::Kill, FaultClass::Detected) > 0,
            "kills must actually land: {report}"
        );
        assert_eq!(report.silent(), 0, "{report}");
    }

    #[test]
    fn report_display_renders_the_verdict() {
        let report = run_campaign(&quick_cfg()).unwrap();
        let text = report.to_string();
        assert!(text.contains("fault campaign"), "{text}");
        assert!(text.contains("graceful degradation"), "{text}");
    }

    fn quick_hierarchy_cfg() -> HierarchyCampaignConfig {
        HierarchyCampaignConfig {
            protocols: vec!["moesi".into()],
            steps: 400,
            ..HierarchyCampaignConfig::default()
        }
    }

    #[test]
    fn hierarchy_campaign_keeps_every_fault_loud() {
        let report = run_hierarchy_campaign(&quick_hierarchy_cfg()).unwrap();
        let run = &report.runs[0];
        assert!(report.injected() > 0, "faults must actually land");
        assert_eq!(report.silent(), 0, "{report}");
        assert_eq!(
            run.salvaged_lines + run.lost_lines,
            run.dirty_at_retire,
            "every dirty line owned at retirement is salvaged or reported lost"
        );
    }

    #[test]
    fn default_hierarchy_campaign_meets_the_acceptance_bar() {
        // The bar the CI smoke enforces: >= 1000 injected faults across
        // >= 4 protocols x 2 clusters, zero silent, and — because storms
        // stay within the retry budget — zero liveness violations on a
        // clean (non-adversarial) run.
        let cfg = HierarchyCampaignConfig::default();
        let report = run_hierarchy_campaign(&cfg).unwrap();
        assert!(cfg.protocols.len() >= 4);
        assert_eq!(cfg.clusters, 2);
        assert!(
            report.injected() >= 1000,
            "only {} faults injected",
            report.injected()
        );
        assert_eq!(report.silent(), 0, "{report}");
        assert_eq!(
            report.liveness_violations(),
            0,
            "in-budget storms must never starve a master: {report}"
        );
        for run in &report.runs {
            assert_eq!(
                run.salvaged_lines + run.lost_lines,
                run.dirty_at_retire,
                "{}: dirty-line ledger must balance",
                run.protocol
            );
            assert_eq!(run.retired_bridges, run.degraded_clusters);
            assert!(
                run.parent_stats.max_txn_aborts <= u64::from(RetryPolicy::default().abort_bound()),
                "{}: retry budget exceeded",
                run.protocol
            );
        }
    }

    #[test]
    fn sharded_hierarchy_campaigns_match_sequential_ones() {
        let base = quick_hierarchy_cfg();
        let seq = run_hierarchy_campaign(&HierarchyCampaignConfig {
            jobs: 1,
            protocols: vec!["moesi".into(), "dragon".into()],
            ..base.clone()
        })
        .unwrap();
        let par = run_hierarchy_campaign(&HierarchyCampaignConfig {
            jobs: 4,
            protocols: vec!["moesi".into(), "dragon".into()],
            ..base
        })
        .unwrap();
        assert_eq!(hierarchy_report_json(&seq), hierarchy_report_json(&par));
    }

    #[test]
    fn deep_hierarchy_campaign_keeps_every_fault_loud() {
        let cfg = HierarchyCampaignConfig {
            depth: 3,
            fanout: 2,
            steps: 700,
            ..quick_hierarchy_cfg()
        };
        let report = run_hierarchy_campaign(&cfg).unwrap();
        assert_eq!((report.depth, report.fanout), (3, 2));
        assert_eq!(report.leaves, 4, "2 clusters x fanout 2 at depth 3");
        assert!(report.injected() > 0, "faults must land on the deep tree");
        assert_eq!(report.silent(), 0, "{report}");
        for run in &report.runs {
            assert_eq!(
                run.salvaged_lines + run.lost_lines,
                run.dirty_at_retire,
                "{}: dirty-line ledger must balance on the deep tree",
                run.protocol
            );
        }
        let json = hierarchy_report_json(&report);
        assert!(json.contains("\"depth\": 3"), "{json}");
        assert!(json.contains("\"leaves\": 4"), "{json}");
        // Sharding invariance holds for the deep tree too.
        let par = run_hierarchy_campaign(&HierarchyCampaignConfig { jobs: 4, ..cfg }).unwrap();
        assert_eq!(json, hierarchy_report_json(&par));
    }

    #[test]
    fn hierarchy_campaign_rejects_bad_geometry() {
        let err = run_hierarchy_campaign(&HierarchyCampaignConfig {
            depth: 1,
            ..quick_hierarchy_cfg()
        })
        .unwrap_err();
        assert!(err.contains("at least 2"), "{err}");
        let err = run_hierarchy_campaign(&HierarchyCampaignConfig {
            depth: 3,
            fanout: 0,
            ..quick_hierarchy_cfg()
        })
        .unwrap_err();
        assert!(err.contains("fanout"), "{err}");
    }

    #[test]
    fn liveness_probe_shows_livelock_then_recovery() {
        let probe = run_liveness_probe(7, 24).unwrap();
        assert!(probe.demonstrates_recovery(), "{probe}");
        let flat = &probe.outcomes[0];
        assert_eq!(flat.label, "flat-retry");
        assert_eq!(flat.committed, 0, "flat retry must livelock: {probe}");
        assert!(flat.liveness_violations > 0, "{probe}");
        let capped = &probe.outcomes[1];
        assert_eq!(capped.label, "capped-backoff");
        assert!(
            capped.max_txn_aborts <= u64::from(RetryPolicy::default().abort_bound()),
            "capped backoff bounds the waste per transaction: {probe}"
        );
        let aged = &probe.outcomes[2];
        assert_eq!(aged.label, "capped+aging");
        assert_eq!(aged.failed, 0, "aging must recover every master: {probe}");
        assert_eq!(aged.liveness_violations, 0, "{probe}");
        assert!(aged.aging_promotions > 0, "{probe}");
    }

    #[test]
    fn json_reports_render_house_style() {
        let flat = run_campaign(&quick_cfg()).unwrap();
        let flat_json = campaign_report_json(&flat);
        assert!(flat_json.starts_with('{') && flat_json.ends_with('}'));
        assert!(flat_json.contains("\"campaign\": \"flat\""), "{flat_json}");
        assert!(flat_json.contains("\"retries\": "), "{flat_json}");
        assert!(flat_json.contains("\"salvaged_lines\": "), "{flat_json}");

        let hier = run_hierarchy_campaign(&quick_hierarchy_cfg()).unwrap();
        let hier_json = hierarchy_report_json(&hier);
        assert!(
            hier_json.contains("\"campaign\": \"hierarchy\""),
            "{hier_json}"
        );
        assert!(
            hier_json.contains("\"degraded_clusters\": ["),
            "{hier_json}"
        );

        let probe = run_liveness_probe(7, 24).unwrap();
        let probe_json = liveness_probe_json(&probe);
        assert!(
            probe_json.contains("\"recovery_demonstrated\": true"),
            "{probe_json}"
        );
        assert!(
            probe_json.contains("\"policy\": \"flat-retry\""),
            "{probe_json}"
        );
    }
}
