//! §6 future work, implemented: "how one might implement a system with
//! *multiple* buses and still maintain consistency."
//!
//! The construction exploits the paper's own recursion: **a cluster is one
//! big cache**. Each cluster is a complete single-bus machine (a
//! [`Fabric`]: caches, mirror memory, one Futurebus), and its [`Bridge`]
//! attaches it to a parent Futurebus as an ordinary MOESI cache master —
//! holding one cluster-level MOESI state per line in a directory, asserting
//! CA/IM/BC upward and CH/DI/SL downward exactly per Tables 1 and 2:
//!
//! * a cluster-level read miss is a `CH:S/E,CA,R` on the parent bus;
//! * a write to a line other clusters share is a `CH:O/M,CA,IM,BC,W`
//!   broadcast (sibling bridges SL-connect and patch their mirrors and local
//!   caches), and a cluster-level write miss is a read-for-modify;
//! * a parent-bus read of a line this cluster owns is answered with DI, the
//!   data extracted from the internal owner; the demotion (M→O at cluster
//!   level) is propagated into the cluster as an internal bus read;
//! * the cluster's *mirror memory* (the cluster bus's "main memory") plays
//!   the default-owner role inside the cluster, exactly as global memory
//!   does on the parent bus.
//!
//! Intra-cluster sharing therefore never leaves the cluster — the bandwidth
//! multiplication a bus hierarchy exists to provide — while the consistency
//! oracle's invariants keep holding globally.

use cache_array::{split_line_crossers, CacheConfig};
use futurebus::fault::InjectedFault;
use futurebus::{
    BusError, BusModule, BusObservation, BusStats, Futurebus, LineAddr, Phase, RetireReport,
    TimingConfig, TransactionOutcome, TransactionRequest,
};
use moesi::{
    table, BusEvent, BusReaction, CacheKind, LineState, MasterSignals, Protocol, ResponseSignals,
};
use std::collections::HashMap;
use std::fmt;

use crate::checker::{Checker, Violation};
use crate::controller::CacheController;
use crate::fabric::Fabric;
use crate::metrics::CpuStats;
use crate::workload::RefStream;

/// One node specification: a protocol and (for caching nodes) its geometry.
type NodeSpec = (Box<dyn Protocol + Send>, Option<CacheConfig>);

/// Builds a [`HierarchicalSystem`].
///
/// # Examples
///
/// ```
/// use cache_array::CacheConfig;
/// use moesi::protocols::MoesiPreferred;
/// use mpsim::hierarchy::HierarchyBuilder;
///
/// let mut sys = HierarchyBuilder::new(32)
///     .cluster()
///     .cache(Box::new(MoesiPreferred::new()), CacheConfig::small())
///     .cache(Box::new(MoesiPreferred::new()), CacheConfig::small())
///     .cluster()
///     .cache(Box::new(MoesiPreferred::new()), CacheConfig::small())
///     .checking(true)
///     .build();
///
/// sys.write(0, 0, 0x1000, &[1, 2, 3, 4]);        // cluster 0, cpu 0
/// assert_eq!(sys.read(1, 0, 0x1000, 4), vec![1, 2, 3, 4]); // cluster 1 sees it
/// ```
#[derive(Debug)]
pub struct HierarchyBuilder {
    line_size: usize,
    parent_timing: TimingConfig,
    cluster_timing: TimingConfig,
    checking: bool,
    seed: u64,
    clusters: Vec<Vec<NodeSpec>>,
}

impl HierarchyBuilder {
    /// Starts a builder with the system-wide (§5.1) line size.
    #[must_use]
    pub fn new(line_size: usize) -> Self {
        HierarchyBuilder {
            line_size,
            parent_timing: TimingConfig::default(),
            cluster_timing: TimingConfig::default(),
            checking: false,
            seed: 0xB0B,
            clusters: Vec::new(),
        }
    }

    /// Sets the parent (inter-cluster) bus timing.
    #[must_use]
    pub fn parent_timing(mut self, timing: TimingConfig) -> Self {
        self.parent_timing = timing;
        self
    }

    /// Sets the cluster-bus timing.
    #[must_use]
    pub fn cluster_timing(mut self, timing: TimingConfig) -> Self {
        self.cluster_timing = timing;
        self
    }

    /// Enables the global consistency oracle.
    #[must_use]
    pub fn checking(mut self, on: bool) -> Self {
        self.checking = on;
        self
    }

    /// Seeds replacement RNGs.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Starts a new (initially empty) cluster; subsequent [`cache`] /
    /// [`uncached`] calls add nodes to it.
    ///
    /// [`cache`]: HierarchyBuilder::cache
    /// [`uncached`]: HierarchyBuilder::uncached
    #[must_use]
    pub fn cluster(mut self) -> Self {
        self.clusters.push(Vec::new());
        self
    }

    /// Adds a caching node to the current cluster.
    ///
    /// # Panics
    ///
    /// Panics if no cluster was started or the line size mismatches (§5.1).
    #[must_use]
    pub fn cache(mut self, protocol: Box<dyn Protocol + Send>, config: CacheConfig) -> Self {
        assert_eq!(
            config.line_size, self.line_size,
            "§5.1: all caches must use the system line size"
        );
        assert_ne!(protocol.kind(), CacheKind::NonCaching);
        self.clusters
            .last_mut()
            .expect("call .cluster() first")
            .push((protocol, Some(config)));
        self
    }

    /// Adds a non-caching node to the current cluster.
    ///
    /// # Panics
    ///
    /// Panics if no cluster was started.
    #[must_use]
    pub fn uncached(mut self, protocol: Box<dyn Protocol + Send>) -> Self {
        assert_eq!(protocol.kind(), CacheKind::NonCaching);
        self.clusters
            .last_mut()
            .expect("call .cluster() first")
            .push((protocol, None));
        self
    }

    /// Assembles the hierarchy.
    ///
    /// # Panics
    ///
    /// Panics when there are no clusters or an empty cluster.
    #[must_use]
    pub fn build(self) -> HierarchicalSystem {
        assert!(!self.clusters.is_empty(), "a hierarchy needs clusters");
        let line_size = self.line_size;
        let bridges: Vec<Bridge> = self
            .clusters
            .into_iter()
            .enumerate()
            .map(|(cluster_id, nodes)| {
                assert!(!nodes.is_empty(), "cluster {cluster_id} is empty");
                let controllers: Vec<CacheController> = nodes
                    .into_iter()
                    .enumerate()
                    .map(|(id, (protocol, cfg))| {
                        CacheController::new(
                            id,
                            protocol,
                            cfg,
                            self.seed
                                .wrapping_add((cluster_id as u64) << 16)
                                .wrapping_add(id as u64),
                        )
                    })
                    .collect();
                Bridge::new(
                    cluster_id,
                    Fabric::new(line_size, self.cluster_timing, controllers),
                )
            })
            .collect();
        HierarchicalSystem {
            parent: Futurebus::new(line_size, self.parent_timing),
            bridges,
            checker: if self.checking {
                Some(Checker::new(line_size))
            } else {
                None
            },
            line_size,
            parent_errors: Vec::new(),
            tolerant: false,
        }
    }
}

/// What a bridge needs from the parent bus before an intra-cluster access
/// may proceed.
#[derive(Clone, Debug, PartialEq, Eq)]
enum ParentNeed {
    /// Fetch the line (a cluster-level read miss or read-for-modify).
    Fetch {
        signals: MasterSignals,
        for_write: bool,
    },
    /// Broadcast the written bytes (a cluster-level shared write).
    Broadcast { offset: usize, bytes: Vec<u8> },
}

/// Which parent-bus transaction a bridge was running when it failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ParentTxnKind {
    /// A cluster-level line fetch (read miss or read-for-modify).
    Fetch,
    /// A cluster-level broadcast write.
    Broadcast,
    /// A consistency-command write-back push.
    Push,
    /// An uncached read by a degraded (bridge-retired) cluster.
    DegradedRead,
    /// An uncached broadcast write by a degraded cluster.
    DegradedWrite,
}

impl fmt::Display for ParentTxnKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ParentTxnKind::Fetch => "fetch",
            ParentTxnKind::Broadcast => "broadcast",
            ParentTxnKind::Push => "push",
            ParentTxnKind::DegradedRead => "degraded-read",
            ParentTxnKind::DegradedWrite => "degraded-write",
        })
    }
}

/// A survived parent-bus error: which cluster was mastering what kind of
/// transaction, the pipeline phase the failure belongs to, and the bus error
/// itself. Structured so fault campaigns can classify damage without string
/// matching; [`fmt::Display`] still renders the full story for logs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParentError {
    /// The cluster whose bridge mastered the failed transaction.
    pub cluster: usize,
    /// What the bridge was trying to do.
    pub txn: ParentTxnKind,
    /// The pipeline phase the error arises in (see [`BusError::phase`]).
    pub phase: Phase,
    /// The underlying bus error.
    pub error: BusError,
}

impl fmt::Display for ParentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cluster {} {} failed in {}: {}",
            self.cluster, self.txn, self.phase, self.error
        )
    }
}

/// Per-bridge counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BridgeStats {
    /// Parent-bus transactions this bridge mastered.
    pub parent_transactions: u64,
    /// Cluster-level line fetches from the parent bus.
    pub fetches: u64,
    /// Cluster-level broadcast writes onto the parent bus.
    pub broadcasts: u64,
    /// Parent-bus reads this cluster supplied by intervention.
    pub supplied: u64,
    /// Invalidations propagated into the cluster from the parent bus.
    pub invalidations_in: u64,
    /// Updates propagated into the cluster from the parent bus.
    pub updates_in: u64,
    /// Dirty lines this bridge owned at the moment the watchdog retired it.
    pub dirty_at_retire: u64,
    /// Of those, lines salvaged onto the parent bus by the watchdog's
    /// synthetic push rounds.
    pub salvaged_lines: u64,
    /// Of those, lines whose only up-to-date copy died with the bridge.
    pub lost_lines: u64,
    /// Memory-direct parent-bus accesses made after the bridge was retired.
    pub degraded_accesses: u64,
}

/// A bus bridge: one cluster presented to the parent bus as a single MOESI
/// cache master whose "cache" is the whole cluster.
#[derive(Debug)]
pub struct Bridge {
    id: usize,
    fabric: Fabric,
    directory: HashMap<LineAddr, LineState>,
    pending: Option<(LineAddr, BusReaction)>,
    stats: BridgeStats,
    degraded: bool,
}

impl Bridge {
    fn new(id: usize, fabric: Fabric) -> Self {
        Bridge {
            id,
            fabric,
            directory: HashMap::new(),
            pending: None,
            stats: BridgeStats::default(),
            degraded: false,
        }
    }

    /// The cluster index on the parent bus.
    #[must_use]
    pub fn id(&self) -> usize {
        self.id
    }

    /// The cluster fabric (bus, controllers, mirror memory).
    #[must_use]
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// Mutable access to the cluster fabric, for installing fault plans or
    /// tolerant-mode settings on the cluster bus.
    pub fn fabric_mut(&mut self) -> &mut Fabric {
        &mut self.fabric
    }

    /// True once the watchdog has retired this bridge: the cluster runs in
    /// memory-direct degraded mode (uncached parent-bus accesses).
    #[must_use]
    pub fn degraded(&self) -> bool {
        self.degraded
    }

    /// Bridge counters.
    #[must_use]
    pub fn stats(&self) -> &BridgeStats {
        &self.stats
    }

    /// The cluster-level MOESI state for a line.
    #[must_use]
    pub fn cluster_state(&self, line: LineAddr) -> LineState {
        self.directory
            .get(&line)
            .copied()
            .unwrap_or(LineState::Invalid)
    }

    fn set_cluster_state(&mut self, line: LineAddr, state: LineState) {
        if state == LineState::Invalid {
            self.directory.remove(&line);
        } else {
            self.directory.insert(line, state);
        }
    }

    /// Decides what parent-bus traffic must precede an intra-cluster access,
    /// following Table 1 at cluster granularity.
    fn prepare(&mut self, line: LineAddr, write: Option<(usize, &[u8])>) -> Option<ParentNeed> {
        let ext = self.cluster_state(line);
        match write {
            None => {
                if ext.is_valid() {
                    None
                } else {
                    // Table 1, I/Read: `CH:S/E,CA,R`.
                    Some(ParentNeed::Fetch {
                        signals: MasterSignals::CA,
                        for_write: false,
                    })
                }
            }
            Some((offset, bytes)) => match ext {
                // Table 1, M/Write: silent.
                LineState::Modified => None,
                // Table 1, E/Write: silent upgrade at cluster level.
                LineState::Exclusive => {
                    self.set_cluster_state(line, LineState::Modified);
                    None
                }
                // Table 1, O/S Write (preferred): broadcast the change.
                LineState::Owned | LineState::Shareable => Some(ParentNeed::Broadcast {
                    offset,
                    bytes: bytes.to_vec(),
                }),
                // Table 1, I/Write (preferred): read-for-modify.
                LineState::Invalid => Some(ParentNeed::Fetch {
                    signals: MasterSignals::CA_IM,
                    for_write: true,
                }),
            },
        }
    }

    /// Applies the outcome of the parent transaction [`Bridge::prepare`]
    /// requested.
    fn commit(&mut self, line: LineAddr, need: &ParentNeed, out: &TransactionOutcome) {
        self.stats.parent_transactions += 1;
        match need {
            ParentNeed::Fetch { for_write, .. } => {
                self.stats.fetches += 1;
                let data = out.data.as_ref().expect("fetch returns a line");
                // The mirror becomes the cluster's default owner for the line.
                self.fabric.bus_mut().memory_mut().write_line(line, data);
                let ext = if *for_write {
                    LineState::Modified
                } else if out.ch_seen {
                    LineState::Shareable
                } else {
                    LineState::Exclusive
                };
                self.set_cluster_state(line, ext);
            }
            ParentNeed::Broadcast { offset, bytes } => {
                self.stats.broadcasts += 1;
                // Keep the mirror in step with what the siblings saw.
                self.fabric
                    .bus_mut()
                    .memory_mut()
                    .write_bytes(line, *offset, bytes);
                let ext = if out.ch_seen {
                    LineState::Owned
                } else {
                    LineState::Modified
                };
                self.set_cluster_state(line, ext);
            }
        }
    }

    /// The authoritative cluster data for a line: the internal owner's copy
    /// if one exists, else the mirror.
    fn authoritative_line(&self, line: LineAddr) -> Box<[u8]> {
        for ctrl in self.fabric.controllers() {
            if ctrl.state_of(line).is_owned() {
                return ctrl
                    .cache()
                    .and_then(|c| c.lookup(line))
                    .expect("owner is resident")
                    .data
                    .clone();
            }
        }
        self.fabric.bus().memory().peek_line(line)
    }

    fn any_local_copy(&self, line: LineAddr) -> bool {
        self.fabric
            .controllers()
            .iter()
            .any(|c| c.state_of(line).is_valid())
    }
}

impl BusModule for Bridge {
    fn snoop(&mut self, req: &TransactionRequest) -> ResponseSignals {
        self.pending = None;
        let ext = self.cluster_state(req.addr);
        if ext == LineState::Invalid {
            return ResponseSignals::NONE;
        }
        let event = BusEvent::from_signals(req.signals).expect("legal parent signals");
        // Table 2's error-condition cells ((M, CBW) and (E, CBW)) are
        // unreachable in correct operation but *are* reachable under injected
        // tag corruption. Rather than abort the process, de-escalate to the
        // nearest safe super-state — an owner answers as O, a clean holder as
        // S — which keeps snooping sound until the scrubber repairs the tag.
        let reaction = table::preferred_bus(ext, event)
            .or_else(|| {
                let softened = match ext {
                    LineState::Modified => LineState::Owned,
                    LineState::Exclusive => LineState::Shareable,
                    other => other,
                };
                table::preferred_bus(softened, event)
            })
            .unwrap_or_else(|| {
                panic!(
                    "bridge {}: error-condition parent event ({ext}, {event})",
                    self.id
                )
            });
        self.pending = Some((req.addr, reaction));
        ResponseSignals {
            ch: reaction.ch,
            di: reaction.di,
            sl: reaction.sl,
            bs: false,
        }
    }

    fn supply_line(&mut self, addr: LineAddr) -> Option<Box<[u8]>> {
        self.stats.supplied += 1;
        Some(self.authoritative_line(addr))
    }

    fn complete(&mut self, req: &TransactionRequest, obs: &BusObservation<'_>) {
        let Some((line, reaction)) = self.pending.take() else {
            return;
        };
        if line != req.addr {
            return;
        }
        let event = BusEvent::from_signals(req.signals).expect("legal parent signals");
        let new_ext = reaction.result.resolve(obs.ch_others);

        // Propagate the parent event into the cluster.
        match event {
            // Another cluster fetched the line: internal copies lose
            // exclusivity (and internal owners demote), exactly as if the
            // read had happened on the cluster bus.
            BusEvent::CacheRead => {
                if self.any_local_copy(line) {
                    let _ = self.fabric.external_read(line, MasterSignals::CA);
                }
            }
            // Another cluster read-for-modify: every internal copy dies.
            BusEvent::CacheReadInvalidate => {
                if self.any_local_copy(line) {
                    self.stats.invalidations_in += 1;
                    let _ = self.fabric.external_invalidate(line);
                }
            }
            // Another cluster broadcast a write: patch the mirror and update
            // (or invalidate) internal copies via an internal broadcast.
            BusEvent::CacheBroadcastWrite => {
                if let Some((offset, bytes)) = obs.write_data {
                    self.stats.updates_in += 1;
                    let _ = self
                        .fabric
                        .external_broadcast_write(line, offset, bytes.to_vec());
                }
            }
            // An uncached read (a degraded cluster, or parent-bus DMA) does
            // not disturb internal copies: the data came from this cluster's
            // authority (or memory) and nobody gained a cached copy.
            BusEvent::UncachedRead => {}
            // An uncached write from a degraded cluster: patch the mirror and
            // internal copies when the payload was broadcast our way, else
            // fall back to invalidating whatever we hold — the line changed
            // under us and our copies are stale.
            BusEvent::UncachedWrite | BusEvent::UncachedBroadcastWrite => {
                if let Some((offset, bytes)) = obs.write_data {
                    if self.any_local_copy(line) {
                        self.stats.updates_in += 1;
                        let _ = self
                            .fabric
                            .external_broadcast_write(line, offset, bytes.to_vec());
                    } else {
                        // Keep the mirror in step even with no cached copies.
                        self.fabric
                            .bus_mut()
                            .memory_mut()
                            .write_bytes(line, offset, bytes);
                    }
                } else if self.any_local_copy(line) {
                    self.stats.invalidations_in += 1;
                    let _ = self.fabric.external_invalidate(line);
                }
            }
        }

        self.set_cluster_state(line, new_ext);
    }

    fn retire(&mut self, salvage: bool) -> RetireReport {
        let mut dirty: Vec<LineAddr> = self
            .directory
            .iter()
            .filter(|(_, s)| s.is_owned())
            .map(|(&line, _)| line)
            .collect();
        dirty.sort_unstable(); // HashMap order must not leak into bus traffic
        self.stats.dirty_at_retire += dirty.len() as u64;
        let report = if salvage {
            self.stats.salvaged_lines += dirty.len() as u64;
            RetireReport {
                salvaged: dirty
                    .iter()
                    .map(|&line| (line, self.authoritative_line(line)))
                    .collect(),
                lost: Vec::new(),
            }
        } else {
            self.stats.lost_lines += dirty.len() as u64;
            RetireReport {
                salvaged: Vec::new(),
                lost: dirty,
            }
        };
        // The cluster degrades to memory-direct operation: a dead bridge can
        // no longer keep its caches coherent with the outside world, so every
        // internal copy is cold-invalidated and the directory is dropped.
        self.degraded = true;
        self.directory.clear();
        for cpu in 0..self.fabric.nodes() {
            let resident: Vec<LineAddr> = self
                .fabric
                .controller(cpu)
                .cache()
                .map(|c| c.iter().map(|(a, _)| a).collect())
                .unwrap_or_default();
            for line in resident {
                self.fabric
                    .controller_mut(cpu)
                    .apply_state(line, LineState::Invalid);
            }
        }
        report
    }
}

/// A two-level multiprocessor: clusters of caches on private buses, joined
/// by bridges on one parent bus that owns true main memory.
#[derive(Debug)]
pub struct HierarchicalSystem {
    parent: Futurebus,
    bridges: Vec<Bridge>,
    checker: Option<Checker>,
    line_size: usize,
    parent_errors: Vec<ParentError>,
    tolerant: bool,
}

impl HierarchicalSystem {
    /// Number of clusters.
    #[must_use]
    pub fn clusters(&self) -> usize {
        self.bridges.len()
    }

    /// A cluster's bridge (directory, stats, fabric).
    #[must_use]
    pub fn bridge(&self, cluster: usize) -> &Bridge {
        &self.bridges[cluster]
    }

    /// Mutable access to a cluster's bridge.
    pub fn bridge_mut(&mut self, cluster: usize) -> &mut Bridge {
        &mut self.bridges[cluster]
    }

    /// The parent (inter-cluster) bus.
    #[must_use]
    pub fn parent_bus(&self) -> &Futurebus {
        &self.parent
    }

    /// Mutable access to the parent bus, for fault plans, retry policy and
    /// the liveness watchdog.
    pub fn parent_bus_mut(&mut self) -> &mut Futurebus {
        &mut self.parent
    }

    /// The consistency oracle, if enabled.
    #[must_use]
    pub fn checker(&self) -> Option<&Checker> {
        self.checker.as_ref()
    }

    /// Mutable oracle access — fault campaigns reconcile the golden image
    /// against *reported* loss through this.
    pub fn checker_mut(&mut self) -> Option<&mut Checker> {
        self.checker.as_mut()
    }

    /// Clusters whose bridge the watchdog has retired, ascending.
    #[must_use]
    pub fn degraded_clusters(&self) -> Vec<usize> {
        self.bridges
            .iter()
            .filter(|b| b.degraded())
            .map(|b| b.id)
            .collect()
    }

    /// Switches fault-tolerant mode on or off, for every cluster bus and the
    /// hierarchy itself. Tolerant mode stops the per-access oracle panics
    /// (`read`/`write` no longer call [`verify`](HierarchicalSystem::verify));
    /// a fault campaign reconciles reported damage first and then runs the
    /// oracle explicitly, so only *unreported* corruption counts as silent.
    pub fn tolerate_faults(&mut self, on: bool) {
        self.tolerant = on;
        for bridge in &mut self.bridges {
            bridge.fabric.tolerate_bus_errors(on);
        }
    }

    /// Drains the error logs of every cluster bus, each entry prefixed with
    /// its cluster index.
    pub fn drain_cluster_bus_errors(&mut self) -> Vec<String> {
        let mut out = Vec::new();
        for bridge in &mut self.bridges {
            out.extend(
                bridge
                    .fabric
                    .drain_bus_errors()
                    .into_iter()
                    .map(|e| format!("cluster{}: {e}", bridge.id)),
            );
        }
        out
    }

    /// Parent-bus statistics.
    #[must_use]
    pub fn parent_stats(&self) -> &BusStats {
        self.parent.stats()
    }

    /// A node's CPU statistics.
    #[must_use]
    pub fn stats(&self, cluster: usize, cpu: usize) -> &CpuStats {
        self.bridges[cluster].fabric.controller(cpu).stats()
    }

    /// The local cache state a node holds for `addr`.
    #[must_use]
    pub fn state_of(&self, cluster: usize, cpu: usize, addr: u64) -> LineState {
        self.bridges[cluster].fabric.controller(cpu).state_of(addr)
    }

    /// The cluster-level state a bridge holds for `addr`.
    #[must_use]
    pub fn cluster_state_of(&self, cluster: usize, addr: u64) -> LineState {
        self.bridges[cluster].cluster_state(self.line_addr(addr))
    }

    fn line_addr(&self, addr: u64) -> u64 {
        addr & !(self.line_size as u64 - 1)
    }

    /// Processor (`cluster`, `cpu`) reads `len` bytes at `addr`.
    ///
    /// # Panics
    ///
    /// Panics on a consistency violation when the oracle is enabled.
    pub fn read(&mut self, cluster: usize, cpu: usize, addr: u64, len: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        for (piece_addr, piece_len) in split_line_crossers(addr, len, self.line_size) {
            let line = self.line_addr(piece_addr);
            if self.bridges[cluster].degraded() {
                let offset = (piece_addr - line) as usize;
                out.extend(self.degraded_read(cluster, line, offset, piece_len));
            } else {
                self.ensure(cluster, line, None);
                out.extend(
                    self.bridges[cluster]
                        .fabric
                        .read(cpu, piece_addr, piece_len),
                );
            }
        }
        if !self.tolerant {
            if let Some(ck) = &self.checker {
                if let Err(v) = ck.check_read(cpu, addr, &out) {
                    panic!("hierarchy consistency violation: {v}");
                }
            }
        }
        self.audit();
        out
    }

    /// Processor (`cluster`, `cpu`) writes `bytes` at `addr`.
    ///
    /// # Panics
    ///
    /// Panics on a consistency violation when the oracle is enabled.
    pub fn write(&mut self, cluster: usize, cpu: usize, addr: u64, bytes: &[u8]) {
        let pieces = split_line_crossers(addr, bytes.len(), self.line_size);
        let mut cursor = 0;
        for (piece_addr, piece_len) in pieces {
            let piece = bytes[cursor..cursor + piece_len].to_vec();
            cursor += piece_len;
            let line = self.line_addr(piece_addr);
            let offset = (piece_addr - line) as usize;
            if let Some(ck) = &mut self.checker {
                ck.record_write(piece_addr, &piece);
            }
            if self.bridges[cluster].degraded() {
                self.degraded_write(cluster, line, offset, &piece);
            } else {
                self.ensure(cluster, line, Some((offset, &piece)));
                self.bridges[cluster]
                    .fabric
                    .write_with(cpu, piece_addr, &piece, |_, _| {});
            }
        }
        self.audit();
    }

    /// Memory-direct degraded read: the cluster's bridge is dead, so the
    /// access goes straight to the parent bus as an uncached read (no CA —
    /// Table 2 column 7). A live sibling that owns the line intervenes and
    /// supplies current data; otherwise parent memory answers.
    fn degraded_read(&mut self, cluster: usize, line: u64, offset: usize, len: usize) -> Vec<u8> {
        self.bridges[cluster].stats.degraded_accesses += 1;
        let req = TransactionRequest::read(cluster, line, MasterSignals::NONE);
        let mut refs: Vec<&mut dyn BusModule> = self
            .bridges
            .iter_mut()
            .map(|b| b as &mut dyn BusModule)
            .collect();
        match self.parent.execute(&req, &mut refs) {
            Ok(out) => {
                let data = out.data.expect("uncached read returns a line");
                data[offset..offset + len].to_vec()
            }
            Err(e) => {
                self.log_parent_error(cluster, ParentTxnKind::DegradedRead, e);
                let data = self.parent.memory().peek_line(line);
                data[offset..offset + len].to_vec()
            }
        }
    }

    /// Memory-direct degraded write: an uncached broadcast write (IM,BC) so
    /// live siblings holding the line SL-connect and patch their copies.
    fn degraded_write(&mut self, cluster: usize, line: u64, offset: usize, bytes: &[u8]) {
        self.bridges[cluster].stats.degraded_accesses += 1;
        let req =
            TransactionRequest::write(cluster, line, MasterSignals::IM_BC, offset, bytes.to_vec());
        let mut refs: Vec<&mut dyn BusModule> = self
            .bridges
            .iter_mut()
            .map(|b| b as &mut dyn BusModule)
            .collect();
        if let Err(e) = self.parent.execute(&req, &mut refs) {
            self.log_parent_error(cluster, ParentTxnKind::DegradedWrite, e);
            self.parent.memory_mut().write_bytes(line, offset, bytes);
        }
    }

    fn log_parent_error(&mut self, cluster: usize, txn: ParentTxnKind, error: BusError) {
        self.parent_errors.push(ParentError {
            cluster,
            txn,
            phase: error.phase(),
            error,
        });
    }

    /// Parent-bus errors survived so far: each one degraded the requesting
    /// bridge to a memory-direct fallback instead of killing the simulation.
    #[must_use]
    pub fn parent_errors(&self) -> &[ParentError] {
        &self.parent_errors
    }

    /// Gates an intra-cluster access on the cluster-level protocol: runs
    /// whatever parent-bus transaction the bridge's Table-1 consultation
    /// demands. A parent-bus error does not kill the simulation: the bridge
    /// degrades to a memory-direct fallback (the error is logged in
    /// [`parent_errors`](HierarchicalSystem::parent_errors), and any
    /// inconsistency the skipped snoops cause is the oracle's to report).
    fn ensure(&mut self, cluster: usize, line: u64, write: Option<(usize, &[u8])>) {
        let Some(need) = self.bridges[cluster].prepare(line, write) else {
            return;
        };
        let req = match &need {
            ParentNeed::Fetch { signals, .. } => TransactionRequest::read(cluster, line, *signals),
            ParentNeed::Broadcast { offset, bytes } => TransactionRequest::write(
                cluster,
                line,
                MasterSignals::CA_IM_BC,
                *offset,
                bytes.clone(),
            ),
        };
        let mut refs: Vec<&mut dyn BusModule> = self
            .bridges
            .iter_mut()
            .map(|b| b as &mut dyn BusModule)
            .collect();
        let out = match self.parent.execute(&req, &mut refs) {
            Ok(out) => out,
            Err(e) => {
                let txn = match &need {
                    ParentNeed::Fetch { .. } => ParentTxnKind::Fetch,
                    ParentNeed::Broadcast { .. } => ParentTxnKind::Broadcast,
                };
                self.log_parent_error(cluster, txn, e);
                // Degraded fallback: serve from (or write through to)
                // parent memory directly. `ch_seen` is reported true — the
                // conservative answer, since the failed transaction never
                // resolved the wired-OR, and claiming exclusivity on a bus
                // that just faulted would be worse.
                match &need {
                    ParentNeed::Fetch { .. } => TransactionOutcome {
                        data: Some(self.parent.memory().peek_line(line)),
                        responses: ResponseSignals::NONE,
                        ch_seen: true,
                        source: futurebus::DataSource::Memory,
                        duration: 0,
                        aborts: 0,
                    },
                    ParentNeed::Broadcast { offset, bytes } => {
                        self.parent.memory_mut().write_bytes(line, *offset, bytes);
                        TransactionOutcome {
                            data: None,
                            responses: ResponseSignals::NONE,
                            ch_seen: true,
                            source: futurebus::DataSource::Memory,
                            duration: 0,
                            aborts: 0,
                        }
                    }
                }
            }
        };
        self.bridges[cluster].commit(line, &need, &out);
    }

    /// Verifies the global shared-memory-image invariants.
    ///
    /// # Errors
    ///
    /// Returns the first violation found; always `Ok` without the oracle.
    pub fn verify(&self) -> Result<(), Violation> {
        let Some(ck) = &self.checker else {
            return Ok(());
        };
        // Collect every line cached anywhere or present in a directory.
        let mut lines: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
        for bridge in &self.bridges {
            lines.extend(bridge.directory.keys().copied());
            for ctrl in bridge.fabric.controllers() {
                if let Some(cache) = ctrl.cache() {
                    lines.extend(cache.iter().map(|(a, _)| a));
                }
            }
        }

        for line in lines {
            let golden = ck.golden_bytes(line, self.line_size);

            // (1) Every valid cached copy anywhere equals the golden image.
            // (2) At most one local owner per cluster.
            for bridge in &self.bridges {
                let mut local_owners = 0;
                for ctrl in bridge.fabric.controllers() {
                    let state = ctrl.state_of(line);
                    if state.is_owned() {
                        local_owners += 1;
                    }
                    if state.is_valid() {
                        let data = ctrl
                            .cache()
                            .and_then(|c| c.lookup(line))
                            .expect("valid line resident")
                            .data
                            .clone();
                        if data[..] != golden[..] {
                            return Err(Violation::StaleCopy {
                                addr: line,
                                holder: format!("cluster{}/{}", bridge.id, ctrl.name()),
                                state,
                            });
                        }
                    }
                }
                if local_owners > 1 {
                    return Err(Violation::MultipleOwners {
                        addr: line,
                        owners: vec![format!("cluster{}: {local_owners} owners", bridge.id)],
                    });
                }
            }

            // (3) At most one owning cluster; (4) exclusivity between clusters.
            let owning: Vec<usize> = self
                .bridges
                .iter()
                .filter(|b| b.cluster_state(line).is_owned())
                .map(|b| b.id)
                .collect();
            if owning.len() > 1 {
                return Err(Violation::MultipleOwners {
                    addr: line,
                    owners: owning.iter().map(|i| format!("cluster{i}")).collect(),
                });
            }
            if let Some(excl) = self
                .bridges
                .iter()
                .find(|b| b.cluster_state(line).is_exclusive())
            {
                if let Some(other) = self
                    .bridges
                    .iter()
                    .find(|b| b.id != excl.id && b.cluster_state(line).is_valid())
                {
                    return Err(Violation::ExclusivityViolated {
                        addr: line,
                        exclusive_holder: format!("cluster{}", excl.id),
                        other_holder: format!("cluster{}", other.id),
                    });
                }
            }

            // (5) When no cluster owns the line, parent memory is golden.
            if owning.is_empty() && self.parent.memory().peek_line(line)[..] != golden[..] {
                return Err(Violation::StaleMemory { addr: line });
            }

            // (6) The owning cluster's authoritative data is golden.
            if let Some(&owner) = owning.first() {
                let data = self.bridges[owner].authoritative_line(line);
                if data[..] != golden[..] {
                    return Err(Violation::StaleCopy {
                        addr: line,
                        holder: format!("cluster{owner} (authoritative)"),
                        state: self.bridges[owner].cluster_state(line),
                    });
                }
            }
        }
        Ok(())
    }

    /// Drives one access from each stream per step, for `steps` rounds.
    /// `streams[cluster][cpu]` feeds node `cpu` of `cluster`.
    ///
    /// # Panics
    ///
    /// Panics if the stream shape does not match the machine, or on a
    /// consistency violation.
    pub fn run(&mut self, streams: &mut [Vec<Box<dyn RefStream + Send>>], steps: u64) {
        assert_eq!(streams.len(), self.clusters(), "one stream vec per cluster");
        for (cluster, cluster_streams) in streams.iter().enumerate() {
            assert_eq!(
                cluster_streams.len(),
                self.bridges[cluster].fabric.nodes(),
                "one stream per node"
            );
        }
        let mut seq: u32 = 0;
        // The body needs `&mut self` for the access methods, so indexing is
        // clearer than restructuring around iter_mut.
        #[allow(clippy::needless_range_loop)]
        for _ in 0..steps {
            for cluster in 0..self.bridges.len() {
                for cpu in 0..self.bridges[cluster].fabric.nodes() {
                    let access = streams[cluster][cpu].next_access();
                    if access.is_write {
                        seq = seq.wrapping_add(1);
                        let pattern = seq.to_le_bytes();
                        let bytes: Vec<u8> = (0..access.size)
                            .map(|i| pattern[i % pattern.len()])
                            .collect();
                        self.write(cluster, cpu, access.addr, &bytes);
                    } else {
                        let _ = self.read(cluster, cpu, access.addr, access.size);
                    }
                }
            }
        }
    }

    /// The §6 consistency command at global scale: pushes every owned line
    /// out of every cluster so *parent* main memory holds the complete
    /// shared image (e.g. before parent-bus DMA). Returns lines pushed.
    pub fn make_globally_consistent(&mut self) -> usize {
        let mut pushed = 0;
        for cluster in 0..self.bridges.len() {
            let owned: Vec<u64> = self.bridges[cluster]
                .directory
                .iter()
                .filter(|(_, s)| s.is_owned())
                .map(|(&line, _)| line)
                .collect();
            for line in owned {
                // First bring the cluster mirror up to date: an internal
                // owner passes the line (Table 1, note 3).
                let owner_cpu = (0..self.bridges[cluster].fabric.nodes()).find(|&cpu| {
                    self.bridges[cluster]
                        .fabric
                        .controller(cpu)
                        .state_of(line)
                        .is_owned()
                });
                if let Some(cpu) = owner_cpu {
                    self.bridges[cluster].fabric.pass(cpu, line);
                }
                // Then the bridge passes the line on the parent bus: a
                // full-line write-back with CA (the cluster keeps its copy).
                let data = self.bridges[cluster].authoritative_line(line);
                let req =
                    TransactionRequest::write(cluster, line, MasterSignals::CA, 0, data.to_vec());
                let mut refs: Vec<&mut dyn BusModule> = self
                    .bridges
                    .iter_mut()
                    .map(|b| b as &mut dyn BusModule)
                    .collect();
                let ch_seen = match self.parent.execute(&req, &mut refs) {
                    Ok(out) => out.ch_seen,
                    Err(e) => {
                        // Degrade instead of dying: the push still reaches
                        // parent memory, which is the whole point of the
                        // consistency command; siblings just miss the snoop.
                        self.log_parent_error(cluster, ParentTxnKind::Push, e);
                        self.parent.memory_mut().write_line(line, &data);
                        true
                    }
                };
                // CH from another cluster means shared copies exist (assumed
                // conservatively when the transaction errored).
                let ext = if ch_seen {
                    LineState::Shareable
                } else {
                    LineState::Exclusive
                };
                self.bridges[cluster].set_cluster_state(line, ext);
                pushed += 1;
            }
        }
        self.audit();
        pushed
    }

    /// Reads directly from *parent* main memory, bypassing all coherence —
    /// the parent-bus DMA view. Pair with [`make_globally_consistent`].
    ///
    /// [`make_globally_consistent`]: HierarchicalSystem::make_globally_consistent
    #[must_use]
    pub fn parent_memory_peek(&self, addr: u64, len: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        let mut cur = addr;
        let mut remaining = len;
        while remaining > 0 {
            let line = self.line_addr(cur);
            let offset = (cur - line) as usize;
            let take = (self.line_size - offset).min(remaining);
            let data = self.parent.memory().peek_line(line);
            out.extend_from_slice(&data[offset..offset + take]);
            cur += take as u64;
            remaining -= take;
        }
        out
    }

    fn audit(&self) {
        if self.tolerant {
            return;
        }
        if let Err(v) = self.verify() {
            panic!("hierarchy consistency violation: {v}");
        }
    }

    /// Deterministically retires a cluster's bridge, as if the parent-bus
    /// watchdog had timed it out: arms the one-shot stall and fires it with a
    /// harmless uncached read of an untouched line, mastered by the external
    /// (DMA) index so any cluster — including cluster 0 of a one-cluster
    /// system — can be the victim. With `salvage` the watchdog pushes the
    /// bridge's dirty lines to parent memory in synthetic push rounds; without
    /// it they are lost and every surviving copy is invalidated.
    pub fn retire_bridge(&mut self, cluster: usize, salvage: bool) {
        self.parent.stall_module(cluster, salvage);
        let trigger = TransactionRequest::read(
            self.bridges.len(),
            // The top line of the address space, never used by workloads.
            !(self.line_size as u64 - 1),
            MasterSignals::NONE,
        );
        let mut refs: Vec<&mut dyn BusModule> = self
            .bridges
            .iter_mut()
            .map(|b| b as &mut dyn BusModule)
            .collect();
        if let Err(e) = self.parent.execute(&trigger, &mut refs) {
            self.log_parent_error(cluster, ParentTxnKind::DegradedRead, e);
        }
    }

    /// Corrupts one resident inclusion tag, driven by the parent fault plan:
    /// rolls the plan's stale-tag dice and, on a hit, flips a directory entry
    /// of a plan-chosen cluster to a plan-chosen wrong state, recording an
    /// [`InjectedFault::StaleTag`]. Returns the victim `(cluster, line)` so
    /// the caller can run the scrubber. `None` when the dice miss, no plan is
    /// installed, or the chosen cluster's directory is empty.
    pub fn corrupt_inclusion_tag(&mut self) -> Option<(usize, LineAddr)> {
        let cluster_count = self.bridges.len();
        let plan = self.parent.fault_plan_mut()?;
        if !plan.decide_stale_tag() {
            return None;
        }
        let cluster = plan.gen_index(cluster_count);
        let mut keys: Vec<LineAddr> = self.bridges[cluster].directory.keys().copied().collect();
        if keys.is_empty() {
            return None;
        }
        keys.sort_unstable(); // HashMap order must not leak into the RNG draw
        let plan = self.parent.fault_plan_mut().expect("checked above");
        let line = keys[plan.gen_index(keys.len())];
        let from = self.bridges[cluster].cluster_state(line);
        let others: Vec<LineState> = LineState::ALL.into_iter().filter(|s| *s != from).collect();
        let plan = self.parent.fault_plan_mut().expect("checked above");
        let to = others[plan.gen_index(others.len())];
        self.bridges[cluster].set_cluster_state(line, to);
        let record = InjectedFault::StaleTag {
            bridge: cluster,
            addr: line,
            from: from.letter(),
            to: to.letter(),
        };
        self.parent
            .fault_plan_mut()
            .expect("checked above")
            .record(cluster, line, record, 0);
        Some((cluster, line))
    }

    /// The directory scrubber: reconstructs one cluster's inclusion tag for
    /// `line` from evidence — internal cache states, mirror-vs-parent-memory
    /// divergence, and the (trusted) sibling directories — and installs the
    /// reconstructed state. Models the ECC/parity repair a real directory RAM
    /// performs when a consultation detects a flipped tag: detection precedes
    /// use, so no coherence action ever trusts a corrupt tag.
    ///
    /// The reconstruction is conservative rather than literal: a tag the
    /// evidence cannot distinguish from a weaker-but-sound one (e.g. M whose
    /// write never changed the data) may come back as the weaker state.
    pub fn scrub_inclusion_tag(&mut self, cluster: usize, line: LineAddr) -> LineState {
        let others_owned = self
            .bridges
            .iter()
            .any(|b| b.id != cluster && b.cluster_state(line).is_owned());
        let others_valid = self
            .bridges
            .iter()
            .any(|b| b.id != cluster && b.cluster_state(line).is_valid());
        let state = if others_owned {
            // Ownership is unique and sibling tags are sound: we can only
            // hold a shareable copy.
            LineState::Shareable
        } else {
            let bridge = &self.bridges[cluster];
            let internal_owner = bridge
                .fabric
                .controllers()
                .iter()
                .any(|c| c.state_of(line).is_owned());
            let mirror = bridge.fabric.bus().memory().peek_line(line);
            let pmem = self.parent.memory().peek_line(line);
            // The cluster is dirty when an internal owner exists or the
            // mirror has drifted from parent memory.
            let dirty = internal_owner || mirror[..] != pmem[..];
            match (dirty, others_valid) {
                (true, true) => LineState::Owned,
                (true, false) => LineState::Modified,
                (false, true) => LineState::Shareable,
                (false, false) => LineState::Exclusive,
            }
        };
        self.bridges[cluster].set_cluster_state(line, state);
        state
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_array::ReplacementKind;
    use moesi::protocols::MoesiPreferred;

    fn cfg() -> CacheConfig {
        CacheConfig::new(1024, 32, 2, ReplacementKind::Lru)
    }

    fn two_by_two() -> HierarchicalSystem {
        HierarchyBuilder::new(32)
            .cluster()
            .cache(Box::new(MoesiPreferred::new()), cfg())
            .cache(Box::new(MoesiPreferred::new()), cfg())
            .cluster()
            .cache(Box::new(MoesiPreferred::new()), cfg())
            .cache(Box::new(MoesiPreferred::new()), cfg())
            .checking(true)
            .build()
    }

    #[test]
    fn cross_cluster_read_after_write() {
        let mut sys = two_by_two();
        sys.write(0, 0, 0x1000, &[7; 4]);
        assert_eq!(sys.cluster_state_of(0, 0x1000), LineState::Modified);
        let v = sys.read(1, 0, 0x1000, 4);
        assert_eq!(v, vec![7; 4]);
        // The owning cluster demotes to O; the reader cluster is S.
        assert_eq!(sys.cluster_state_of(0, 0x1000), LineState::Owned);
        assert_eq!(sys.cluster_state_of(1, 0x1000), LineState::Shareable);
        assert_eq!(sys.bridge(0).stats().supplied, 1);
    }

    #[test]
    fn intra_cluster_sharing_stays_off_the_parent_bus() {
        let mut sys = two_by_two();
        sys.write(0, 0, 0x1000, &[1; 4]);
        let parent_before = sys.parent_stats().transactions;
        // Heavy sharing *within* cluster 0: no parent traffic at all.
        for i in 0..20u32 {
            let cpu = (i % 2) as usize;
            sys.write(0, cpu, 0x1000, &i.to_le_bytes());
            let _ = sys.read(0, 1 - cpu, 0x1000, 4);
        }
        assert_eq!(
            sys.parent_stats().transactions,
            parent_before,
            "intra-cluster traffic must not escalate"
        );
    }

    #[test]
    fn cross_cluster_write_broadcasts_and_updates() {
        let mut sys = two_by_two();
        let _ = sys.read(0, 0, 0x1000, 4);
        let _ = sys.read(1, 0, 0x1000, 4); // both clusters S
        assert_eq!(sys.cluster_state_of(0, 0x1000), LineState::Shareable);
        sys.write(0, 0, 0x1000, &[9; 4]);
        // Cluster 0 broadcast at parent level and became the owner.
        assert_eq!(sys.cluster_state_of(0, 0x1000), LineState::Owned);
        assert_eq!(sys.cluster_state_of(1, 0x1000), LineState::Shareable);
        assert_eq!(sys.bridge(1).stats().updates_in, 1);
        // Cluster 1's copy was updated in place — reading is a local hit.
        let parent_before = sys.parent_stats().transactions;
        assert_eq!(sys.read(1, 0, 0x1000, 4), vec![9; 4]);
        assert_eq!(sys.parent_stats().transactions, parent_before);
    }

    #[test]
    fn cluster_level_exclusive_upgrade_is_silent() {
        let mut sys = two_by_two();
        let _ = sys.read(0, 0, 0x1000, 4); // only cluster 0: ext E
        assert_eq!(sys.cluster_state_of(0, 0x1000), LineState::Exclusive);
        let parent_before = sys.parent_stats().transactions;
        sys.write(0, 0, 0x1000, &[3; 4]);
        assert_eq!(
            sys.parent_stats().transactions,
            parent_before,
            "silent E->M"
        );
        assert_eq!(sys.cluster_state_of(0, 0x1000), LineState::Modified);
    }

    #[test]
    fn write_miss_invalidates_other_clusters() {
        let mut sys = two_by_two();
        let _ = sys.read(1, 0, 0x1000, 4);
        let _ = sys.read(1, 1, 0x1000, 4); // cluster 1 shares internally
        sys.write(0, 0, 0x1000, &[5; 4]); // cluster 0: RWITM at parent level
        assert_eq!(sys.cluster_state_of(0, 0x1000), LineState::Modified);
        assert_eq!(sys.cluster_state_of(1, 0x1000), LineState::Invalid);
        assert_eq!(sys.state_of(1, 0, 0x1000), LineState::Invalid);
        assert_eq!(sys.state_of(1, 1, 0x1000), LineState::Invalid);
        assert_eq!(sys.bridge(1).stats().invalidations_in, 1);
        assert_eq!(sys.read(1, 1, 0x1000, 4), vec![5; 4]);
    }

    #[test]
    fn three_clusters_ownership_ring() {
        let mut sys = HierarchyBuilder::new(32)
            .cluster()
            .cache(Box::new(MoesiPreferred::new()), cfg())
            .cluster()
            .cache(Box::new(MoesiPreferred::new()), cfg())
            .cluster()
            .cache(Box::new(MoesiPreferred::new()), cfg())
            .checking(true)
            .build();
        for round in 0..9u32 {
            let cluster = (round as usize) % 3;
            sys.write(cluster, 0, 0x2000, &round.to_le_bytes());
            for reader in 0..3 {
                assert_eq!(
                    sys.read(reader, 0, 0x2000, 4),
                    round.to_le_bytes().to_vec(),
                    "round {round} reader {reader}"
                );
            }
            let owners = (0..3)
                .filter(|&c| sys.cluster_state_of(c, 0x2000).is_owned())
                .count();
            assert!(owners <= 1, "round {round}: {owners} owning clusters");
        }
    }

    #[test]
    fn randomized_hierarchy_run_stays_consistent() {
        use crate::workload::{DuboisBriggs, SharingModel};
        let mut sys = two_by_two();
        let model = SharingModel {
            shared_lines: 6,
            private_lines: 16,
            p_shared: 0.5,
            p_write: 0.4,
            p_rereference: 0.3,
            line_size: 32,
        };
        let mut streams: Vec<Vec<Box<dyn RefStream + Send>>> = (0..2)
            .map(|cluster| {
                (0..2)
                    .map(|cpu| {
                        Box::new(DuboisBriggs::new(cluster * 2 + cpu, model, 99))
                            as Box<dyn RefStream + Send>
                    })
                    .collect()
            })
            .collect();
        sys.run(&mut streams, 250);
        sys.verify().expect("hierarchy consistent");
        assert!(sys.parent_stats().transactions > 0);
    }

    #[test]
    fn heterogeneous_clusters_work() {
        use moesi::protocols::{Dragon, NonCaching, WriteThrough};
        let mut sys = HierarchyBuilder::new(32)
            .cluster()
            .cache(Box::new(MoesiPreferred::new()), cfg())
            .cache(Box::new(WriteThrough::new()), cfg())
            .cluster()
            .cache(Box::new(Dragon::new()), cfg())
            .uncached(Box::new(NonCaching::new()))
            .checking(true)
            .build();
        for i in 0..30u32 {
            let cluster = (i % 2) as usize;
            let cpu = ((i / 2) % 2) as usize;
            let addr = 0x1000 + u64::from(i % 4) * 32;
            if i % 3 == 0 {
                sys.write(cluster, cpu, addr, &i.to_le_bytes());
            } else {
                let _ = sys.read(cluster, cpu, addr, 4);
            }
        }
        sys.verify().expect("consistent");
    }

    #[test]
    fn global_sync_makes_parent_memory_current() {
        let mut sys = two_by_two();
        sys.write(0, 0, 0x1000, &[1; 4]);
        sys.write(1, 1, 0x2000, &[2; 4]);
        // Parent memory has neither value yet (cluster-level M).
        assert_eq!(sys.parent_memory_peek(0x1000, 4), vec![0; 4]);
        let pushed = sys.make_globally_consistent();
        assert_eq!(pushed, 2);
        assert_eq!(sys.parent_memory_peek(0x1000, 4), vec![1; 4]);
        assert_eq!(sys.parent_memory_peek(0x2000, 4), vec![2; 4]);
        // No cluster owns anything any more.
        for c in 0..2 {
            assert!(!sys.cluster_state_of(c, 0x1000).is_owned());
            assert!(!sys.cluster_state_of(c, 0x2000).is_owned());
        }
        assert_eq!(sys.make_globally_consistent(), 0, "idempotent");
        // The clusters kept readable copies: no parent traffic on re-read.
        let before = sys.parent_stats().transactions;
        assert_eq!(sys.read(0, 0, 0x1000, 4), vec![1; 4]);
        assert_eq!(sys.parent_stats().transactions, before);
    }

    #[test]
    #[should_panic(expected = "call .cluster() first")]
    fn nodes_require_a_cluster() {
        let _ = HierarchyBuilder::new(32).cache(Box::new(MoesiPreferred::new()), cfg());
    }

    /// A parent bus that errors every transaction: a full-rate abort storm
    /// outlasts the 16-round retry policy, so every execute() returns
    /// `TooManyRetries` deterministically.
    fn break_parent_bus(sys: &mut HierarchicalSystem) {
        use futurebus::fault::{FaultConfig, FaultPlan};
        sys.parent.inject_faults(FaultPlan::new(FaultConfig {
            storm_rate: 1.0,
            max_storm_rounds: 32,
            ..FaultConfig::default()
        }));
    }

    #[test]
    fn faulted_parent_fetch_degrades_instead_of_panicking() {
        let mut sys = two_by_two();
        break_parent_bus(&mut sys);
        // The cluster-level fetch errors on the parent bus; the bridge falls
        // back to parent memory (zeros — which is also the golden image, so
        // the oracle stays satisfied) instead of killing the simulation.
        let v = sys.read(1, 0, 0x1000, 4);
        assert_eq!(v, vec![0; 4]);
        assert!(!sys.parent_errors().is_empty());
        let err = &sys.parent_errors()[0];
        assert_eq!(err.cluster, 1);
        assert_eq!(err.txn, ParentTxnKind::Fetch);
        assert_eq!(err.phase, Phase::AbortBackoff);
        assert!(matches!(err.error, BusError::TooManyRetries(_)), "{err}");
        assert!(err.to_string().contains("aborted"), "{err}");
        // The degraded fetch claims conservative sharedness, never
        // exclusivity, on a bus it could not actually snoop.
        assert_eq!(sys.cluster_state_of(1, 0x1000), LineState::Shareable);
        // The machine keeps running.
        let again = sys.read(1, 0, 0x1000, 4);
        assert_eq!(again, vec![0; 4]);
    }

    #[test]
    fn faulted_parent_push_still_syncs_parent_memory() {
        let mut sys = two_by_two();
        sys.write(0, 0, 0x1000, &[1; 4]);
        assert_eq!(sys.cluster_state_of(0, 0x1000), LineState::Modified);
        break_parent_bus(&mut sys);
        // The consistency command's parent write-back errors; the push is
        // applied to parent memory directly so the command still delivers
        // its contract (parent memory holds the shared image).
        let pushed = sys.make_globally_consistent();
        assert_eq!(pushed, 1);
        assert_eq!(sys.parent_memory_peek(0x1000, 4), vec![1; 4]);
        assert_eq!(sys.parent_errors().len(), 1);
        assert_eq!(sys.parent_errors()[0].txn, ParentTxnKind::Push);
        assert_eq!(sys.parent_errors()[0].cluster, 0);
        assert_eq!(sys.cluster_state_of(0, 0x1000), LineState::Shareable);
    }

    #[test]
    fn bridge_kill_loses_dirty_lines_and_invalidates_survivors() {
        let mut sys = two_by_two();
        sys.write(0, 0, 0x1000, &[9; 4]); // cluster 0: M
        let _ = sys.read(1, 0, 0x1000, 4); // cluster 0: O, cluster 1: S
        sys.write(0, 0, 0x2000, &[8; 4]); // cluster 0: M, nobody else
                                          // The checker must accept the reported loss before the oracle runs
                                          // again, exactly as a fault campaign would.
        sys.tolerate_faults(true);
        sys.retire_bridge(0, false);
        let stats = *sys.bridge(0).stats();
        assert_eq!(stats.dirty_at_retire, 2);
        assert_eq!(stats.lost_lines, 2);
        assert_eq!(stats.salvaged_lines, 0);
        assert_eq!(
            stats.salvaged_lines + stats.lost_lines,
            stats.dirty_at_retire
        );
        assert!(sys.bridge(0).degraded());
        assert_eq!(sys.degraded_clusters(), vec![0]);
        assert_eq!(sys.parent_bus().retired(), vec![0]);
        // Cluster 1's surviving S copy of the lost line was invalidated by
        // the watchdog's synthetic invalidate round: no stale data outlives
        // the owner.
        assert_eq!(sys.cluster_state_of(1, 0x1000), LineState::Invalid);
        assert_eq!(sys.state_of(1, 0, 0x1000), LineState::Invalid);
        // Reconcile the golden image to the reported post-loss truth, then
        // the oracle is satisfied again.
        for line in [0x1000u64, 0x2000] {
            let mem = sys.parent_memory_peek(line, 32);
            sys.checker_mut().unwrap().record_write(line, &mem);
        }
        sys.verify().expect("reported loss reconciled");
    }

    #[test]
    fn bridge_stall_salvages_dirty_lines_to_parent_memory() {
        let mut sys = two_by_two();
        sys.write(0, 0, 0x1000, &[5; 4]);
        sys.write(0, 1, 0x2000, &[6; 4]);
        assert_eq!(sys.parent_memory_peek(0x1000, 4), vec![0; 4]);
        sys.retire_bridge(0, true);
        let stats = *sys.bridge(0).stats();
        assert_eq!(stats.dirty_at_retire, 2);
        assert_eq!(stats.salvaged_lines, 2);
        assert_eq!(stats.lost_lines, 0);
        // The synthetic push rounds landed the dirty data in parent memory:
        // nothing was lost, so the oracle stays green with no reconciliation.
        assert_eq!(sys.parent_memory_peek(0x1000, 4), vec![5; 4]);
        assert_eq!(sys.parent_memory_peek(0x2000, 4), vec![6; 4]);
        sys.verify().expect("salvage preserves the golden image");
    }

    #[test]
    fn degraded_cluster_keeps_running_memory_direct() {
        let mut sys = two_by_two();
        sys.write(0, 0, 0x1000, &[5; 4]);
        sys.retire_bridge(0, true);
        // The degraded cluster still reads its old data (now in parent
        // memory) and its writes stay globally visible.
        assert_eq!(sys.read(0, 0, 0x1000, 4), vec![5; 4]);
        sys.write(0, 0, 0x1000, &[7; 4]);
        assert_eq!(sys.read(1, 0, 0x1000, 4), vec![7; 4]);
        assert!(sys.bridge(0).stats().degraded_accesses >= 2);
        sys.verify().expect("degraded mode stays consistent");
    }

    #[test]
    fn degraded_write_updates_a_live_sibling_owner() {
        let mut sys = two_by_two();
        sys.write(1, 0, 0x3000, &[3; 4]); // cluster 1 owns the line (M)
        sys.retire_bridge(0, true);
        // Cluster 0's uncached broadcast write reaches cluster 1's copy via
        // SL-connection, and cluster 1's next read sees it with no extra
        // parent traffic.
        sys.write(0, 0, 0x3000, &[4; 4]);
        assert_eq!(sys.read(1, 0, 0x3000, 4), vec![4; 4]);
        // And a degraded read of a sibling-owned dirty line is served by
        // intervention, not stale memory.
        sys.write(1, 0, 0x3000, &[5; 4]);
        assert_eq!(sys.read(0, 0, 0x3000, 4), vec![5; 4]);
        sys.verify().expect("consistent across degraded traffic");
    }

    #[test]
    fn stale_tag_corruption_is_injected_and_scrubbed() {
        use futurebus::fault::{FaultConfig, FaultPlan};
        let mut sys = two_by_two();
        sys.write(0, 0, 0x1000, &[1; 4]);
        let _ = sys.read(1, 0, 0x1000, 4); // cluster 0: O, cluster 1: S
        sys.parent_bus_mut()
            .inject_faults(FaultPlan::new(FaultConfig {
                stale_tag_rate: 1.0,
                ..FaultConfig::default()
            }));
        let (cluster, line) = sys.corrupt_inclusion_tag().expect("rate 1.0 must fire");
        let record = sys.parent_bus().fault_plan().unwrap().records()[0].clone();
        assert!(
            matches!(record.fault, InjectedFault::StaleTag { .. }),
            "{record:?}"
        );
        // The scrubber reconstructs a sound tag from evidence alone, and the
        // oracle is green again.
        let restored = sys.scrub_inclusion_tag(cluster, line);
        assert!(restored.is_valid(), "a resident line must come back valid");
        sys.verify().expect("scrubbed hierarchy is consistent");
        assert_eq!(sys.read(1, 0, 0x1000, 4), vec![1; 4]);
        assert_eq!(sys.read(0, 0, 0x1000, 4), vec![1; 4]);
    }

    #[test]
    fn scrub_reconstructs_each_legitimate_tag_soundly() {
        let mut sys = two_by_two();
        sys.write(0, 0, 0x1000, &[1; 4]); // cluster 0: M
        let _ = sys.read(1, 0, 0x2000, 4); // cluster 1: E
        let _ = sys.read(0, 0, 0x3000, 4);
        let _ = sys.read(1, 0, 0x3000, 4); // both S
        sys.write(0, 0, 0x4000, &[2; 4]);
        let _ = sys.read(1, 0, 0x4000, 4); // cluster 0: O, cluster 1: S
        for (cluster, line, expect) in [
            (0usize, 0x1000u64, LineState::Modified),
            (1, 0x2000, LineState::Exclusive),
            (0, 0x3000, LineState::Shareable),
            (0, 0x4000, LineState::Owned),
            (1, 0x4000, LineState::Shareable),
        ] {
            assert_eq!(sys.cluster_state_of(cluster, line), expect);
            let rebuilt = sys.scrub_inclusion_tag(cluster, line);
            assert_eq!(rebuilt, expect, "cluster {cluster} line {line:#x}");
            sys.verify().expect("reconstruction is sound");
        }
    }
}
