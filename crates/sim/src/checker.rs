//! The consistency oracle.
//!
//! The paper's correctness requirement (§1): "all references to a given
//! location, no matter from which processor they originate, should reference
//! the same value; i.e. the contents of the cache memories must be
//! consistent." Because the shared bus serialises transactions, the oracle
//! can maintain a *golden* memory image updated at every processor write and
//! verify, after any access, the structural invariants §3.1 implies:
//!
//! 1. **Unique ownership** — at most one cache holds a line in M or O.
//! 2. **Exclusivity** — a line in M or E in one cache has no other cached
//!    copy anywhere.
//! 3. **Shared image** — every *valid* cached copy equals the golden line
//!    ("the shared memory image ... is the set of all owned data"; S copies
//!    are consistent with the owner, whose data is the image).
//! 4. **Default owner** — when no cache owns a line, main memory holds the
//!    golden data (memory is the default owner).
//! 5. **Exclusive-clean** — an E copy matches main memory ("exclusive data
//!    must match the copy in main memory").

use futurebus::SparseMemory;
use moesi::LineState;
use std::collections::{BTreeSet, HashMap};
use std::fmt;

use crate::controller::CacheController;

/// A violation of the shared-memory-image invariants.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// More than one cache owns the line.
    MultipleOwners {
        /// The line address.
        addr: u64,
        /// The offending node names.
        owners: Vec<String>,
    },
    /// A cache holds the line exclusively while another copy exists.
    ExclusivityViolated {
        /// The line address.
        addr: u64,
        /// The node claiming exclusivity.
        exclusive_holder: String,
        /// Another node holding a copy.
        other_holder: String,
    },
    /// A valid cached copy differs from the golden image.
    StaleCopy {
        /// The line address.
        addr: u64,
        /// The node holding the stale copy.
        holder: String,
        /// Its state.
        state: LineState,
    },
    /// No cache owns the line but memory differs from the golden image.
    StaleMemory {
        /// The line address.
        addr: u64,
    },
    /// An E-state copy differs from main memory.
    ExclusiveUnmodifiedDiffers {
        /// The line address.
        addr: u64,
        /// The node holding the E copy.
        holder: String,
    },
    /// A bridge's inclusion tag is Invalid while its subtree still caches
    /// the line — the snoop filter would wrongly suppress forwards.
    InclusionHole {
        /// The line address.
        addr: u64,
        /// The bridge whose directory lost the line.
        bridge: String,
    },
    /// A processor read returned the wrong bytes.
    ReadMismatch {
        /// The processor that read.
        cpu: usize,
        /// The byte address.
        addr: u64,
        /// What it got.
        got: Vec<u8>,
        /// What the golden image says.
        expected: Vec<u8>,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::MultipleOwners { addr, owners } => {
                write!(f, "line {addr:#x} owned by multiple caches: {owners:?}")
            }
            Violation::ExclusivityViolated { addr, exclusive_holder, other_holder } => write!(
                f,
                "line {addr:#x}: {exclusive_holder} claims exclusivity but {other_holder} holds a copy"
            ),
            Violation::StaleCopy { addr, holder, state } => {
                write!(f, "line {addr:#x}: {holder} holds a stale {state} copy")
            }
            Violation::StaleMemory { addr } => {
                write!(f, "line {addr:#x}: unowned but memory is stale")
            }
            Violation::ExclusiveUnmodifiedDiffers { addr, holder } => {
                write!(f, "line {addr:#x}: E copy at {holder} differs from memory")
            }
            Violation::InclusionHole { addr, bridge } => write!(
                f,
                "line {addr:#x}: cached below {bridge} but its inclusion tag is invalid"
            ),
            Violation::ReadMismatch { cpu, addr, got, expected } => write!(
                f,
                "cpu{cpu} read {addr:#x}: got {got:?}, expected {expected:?}"
            ),
        }
    }
}

impl std::error::Error for Violation {}

/// The golden-image oracle.
#[derive(Clone, Debug)]
pub struct Checker {
    line_size: usize,
    golden: HashMap<u64, Box<[u8]>>,
    /// Whether invariant 5 (E matches memory) is enforced. It holds for every
    /// class member, but the adapted Write-Once protocol's E state is entered
    /// by a write-through whose memory update can be captured by an owner in
    /// mixed systems; homogeneous systems keep it on.
    pub check_exclusive_clean: bool,
}

impl Checker {
    /// Creates an oracle for lines of `line_size` bytes (all zero initially,
    /// matching [`SparseMemory`]).
    #[must_use]
    pub fn new(line_size: usize) -> Self {
        Checker {
            line_size,
            golden: HashMap::new(),
            check_exclusive_clean: true,
        }
    }

    /// Records a committed processor write (the run loop is the serialisation
    /// point, standing in for the bus plus local cache order).
    pub fn record_write(&mut self, addr: u64, bytes: &[u8]) {
        let line = addr & !(self.line_size as u64 - 1);
        let offset = (addr - line) as usize;
        assert!(
            offset + bytes.len() <= self.line_size,
            "oracle writes must not cross lines"
        );
        let entry = self
            .golden
            .entry(line)
            .or_insert_with(|| vec![0; self.line_size].into_boxed_slice());
        entry[offset..offset + bytes.len()].copy_from_slice(bytes);
    }

    /// The golden bytes at `addr`; the range may span any number of lines.
    #[must_use]
    pub fn golden_bytes(&self, addr: u64, len: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        let mut cur = addr;
        let mut remaining = len;
        while remaining > 0 {
            let line = cur & !(self.line_size as u64 - 1);
            let offset = (cur - line) as usize;
            let take = (self.line_size - offset).min(remaining);
            match self.golden.get(&line) {
                Some(data) => out.extend_from_slice(&data[offset..offset + take]),
                None => out.extend(std::iter::repeat_n(0, take)),
            }
            cur += take as u64;
            remaining -= take;
        }
        out
    }

    /// Checks a completed processor read against the golden image.
    ///
    /// # Errors
    ///
    /// Returns [`Violation::ReadMismatch`] when the bytes differ.
    pub fn check_read(&self, cpu: usize, addr: u64, got: &[u8]) -> Result<(), Violation> {
        let expected = self.golden_bytes(addr, got.len());
        if got == expected.as_slice() {
            Ok(())
        } else {
            Err(Violation::ReadMismatch {
                cpu,
                addr,
                got: got.to_vec(),
                expected,
            })
        }
    }

    /// Verifies all structural invariants over the caches and memory.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn verify(
        &self,
        controllers: &[CacheController],
        memory: &SparseMemory,
    ) -> Result<(), Violation> {
        // Collect every line that is cached anywhere or has a golden value.
        let mut lines: BTreeSet<u64> = self.golden.keys().copied().collect();
        for ctrl in controllers {
            if let Some(cache) = ctrl.cache() {
                lines.extend(cache.iter().map(|(addr, _)| addr));
            }
        }

        for addr in lines {
            let golden = self.golden_bytes(addr, self.line_size);
            let mut owners: Vec<&CacheController> = Vec::new();
            let mut holders: Vec<(&CacheController, LineState)> = Vec::new();
            for ctrl in controllers {
                let state = ctrl.state_of(addr);
                if state.is_valid() {
                    holders.push((ctrl, state));
                    if state.is_owned() {
                        owners.push(ctrl);
                    }
                }
            }

            // 1. Unique ownership.
            if owners.len() > 1 {
                return Err(Violation::MultipleOwners {
                    addr,
                    owners: owners.iter().map(|c| c.name().to_string()).collect(),
                });
            }

            // 2. Exclusivity.
            if let Some((excl, _)) = holders.iter().find(|(_, s)| s.is_exclusive()) {
                if let Some((other, _)) = holders.iter().find(|(c, _)| c.id() != excl.id()) {
                    return Err(Violation::ExclusivityViolated {
                        addr,
                        exclusive_holder: excl.name().to_string(),
                        other_holder: other.name().to_string(),
                    });
                }
            }

            // 3. Every valid copy equals the golden image.
            for (ctrl, state) in &holders {
                let cached = ctrl
                    .cache()
                    .and_then(|c| c.lookup(addr))
                    .expect("holder has the line");
                if cached.data[..] != golden[..] {
                    return Err(Violation::StaleCopy {
                        addr,
                        holder: ctrl.name().to_string(),
                        state: *state,
                    });
                }
            }

            let mem_line = memory.peek_line(addr);

            // 5. Exclusive-unmodified copies match memory (checked before the
            // default-owner rule so the more specific violation is reported).
            if self.check_exclusive_clean {
                for (ctrl, state) in &holders {
                    if *state == LineState::Exclusive && mem_line[..] != golden[..] {
                        return Err(Violation::ExclusiveUnmodifiedDiffers {
                            addr,
                            holder: ctrl.name().to_string(),
                        });
                    }
                }
            }

            // 4. Memory is the default owner.
            if owners.is_empty() && mem_line[..] != golden[..] {
                return Err(Violation::StaleMemory { addr });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_array::CacheConfig;
    use moesi::protocols::MoesiPreferred;

    fn ctrl(id: usize) -> CacheController {
        CacheController::new(
            id,
            Box::new(MoesiPreferred::new()),
            Some(CacheConfig::new(
                1024,
                16,
                2,
                cache_array::ReplacementKind::Lru,
            )),
            1,
        )
    }

    #[test]
    fn golden_image_starts_zeroed_and_tracks_writes() {
        let mut ck = Checker::new(16);
        assert_eq!(ck.golden_bytes(0x104, 4), vec![0; 4]);
        ck.record_write(0x104, &[1, 2, 3, 4]);
        assert_eq!(ck.golden_bytes(0x104, 4), vec![1, 2, 3, 4]);
        assert_eq!(
            ck.golden_bytes(0x100, 4),
            vec![0; 4],
            "rest of line untouched"
        );
    }

    #[test]
    fn read_checks_catch_wrong_values() {
        let mut ck = Checker::new(16);
        ck.record_write(0x10, &[9]);
        assert!(ck.check_read(0, 0x10, &[9]).is_ok());
        let err = ck.check_read(1, 0x10, &[8]).unwrap_err();
        assert!(matches!(err, Violation::ReadMismatch { cpu: 1, .. }));
        assert!(err.to_string().contains("cpu1"));
    }

    #[test]
    fn detects_multiple_owners() {
        let mut a = ctrl(0);
        let mut b = ctrl(1);
        a.fill(0x100, LineState::Modified, vec![0; 16].into());
        b.fill(0x100, LineState::Owned, vec![0; 16].into());
        let ck = Checker::new(16);
        let mem = SparseMemory::new(16);
        let err = ck.verify(&[a, b], &mem).unwrap_err();
        assert!(matches!(err, Violation::MultipleOwners { .. }));
    }

    #[test]
    fn detects_exclusivity_violation() {
        let mut a = ctrl(0);
        let mut b = ctrl(1);
        // Give the E holder golden (zero) data so the stale-copy check
        // doesn't fire first.
        a.fill(0x100, LineState::Exclusive, vec![0; 16].into());
        b.fill(0x100, LineState::Shareable, vec![0; 16].into());
        let ck = Checker::new(16);
        let mem = SparseMemory::new(16);
        let err = ck.verify(&[a, b], &mem).unwrap_err();
        assert!(matches!(err, Violation::ExclusivityViolated { .. }));
    }

    #[test]
    fn detects_stale_copy_and_stale_memory() {
        let mut a = ctrl(0);
        a.fill(0x100, LineState::Shareable, vec![0; 16].into());
        let mut ck = Checker::new(16);
        ck.record_write(0x100, &[1]);
        let mem = SparseMemory::new(16);
        let err = ck.verify(std::slice::from_ref(&a), &mem).unwrap_err();
        assert!(matches!(err, Violation::StaleCopy { .. }));

        // Now with no cached copy at all: memory must hold the golden data.
        let b = ctrl(1);
        let err = ck.verify(&[b], &mem).unwrap_err();
        assert!(matches!(err, Violation::StaleMemory { addr: 0x100 }));
    }

    #[test]
    fn detects_dirty_exclusive_unmodified() {
        let mut a = ctrl(0);
        let mut ck = Checker::new(16);
        ck.record_write(0x100, &[7]);
        let mut line = vec![0u8; 16];
        line[0] = 7;
        a.fill(0x100, LineState::Exclusive, line.into());
        let mem = SparseMemory::new(16); // memory still zero: E must match it
        let err = ck.verify(std::slice::from_ref(&a), &mem).unwrap_err();
        assert!(matches!(err, Violation::ExclusiveUnmodifiedDiffers { .. }));
    }

    #[test]
    fn consistent_system_passes() {
        let mut a = ctrl(0);
        let mut b = ctrl(1);
        let mut ck = Checker::new(16);
        let mut mem = SparseMemory::new(16);
        ck.record_write(0x100, &[3]);
        let mut line = vec![0u8; 16];
        line[0] = 3;
        // One owner with golden data, one sharer, memory stale — legal.
        a.fill(0x100, LineState::Owned, line.clone().into());
        b.fill(0x100, LineState::Shareable, line.clone().into());
        assert_eq!(ck.verify(&[a, b], &mem), Ok(()));

        // An M holder alone is also legal with stale memory.
        let mut c = ctrl(2);
        c.fill(0x100, LineState::Modified, line.clone().into());
        assert_eq!(ck.verify(std::slice::from_ref(&c), &mem), Ok(()));

        // With memory updated and the line unowned everywhere: also legal.
        mem.write_line(0x100, &line);
        let d = ctrl(3);
        assert_eq!(ck.verify(&[d], &mem), Ok(()));
    }
}
