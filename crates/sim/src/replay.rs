//! Deterministic schedule replay: re-executing a model-checker counterexample
//! on the real simulator.
//!
//! The exhaustive explorer in `crates/verify` works on an abstract machine.
//! When it finds an invariant violation it emits a [`Trace`]: the exact
//! schedule of processor operations together with the Table 1/2 entry every
//! module chose at every decision point. [`replay`] rebuilds the concrete
//! machine — real [`CacheController`]s on a real `Futurebus` — with every
//! module driven by a [`Scripted`](moesi::protocols::Scripted) policy fed
//! from the trace, executes the schedule step by step, and audits each step
//! with the [`Checker`]. A genuine counterexample reproduces the violation at
//! the same step, deterministically, every time.

use cache_array::{CacheConfig, ReplacementKind};
use moesi::protocols::{ScriptHandle, Scripted};
use moesi::{BusReaction, CacheKind, LocalAction};

use futurebus::TimingConfig;
use std::fmt;

use crate::checker::{Checker, Violation};
use crate::controller::CacheController;
use crate::fabric::Fabric;

/// One processor operation in a replayed schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplayOp {
    /// Read the full line and compare it against the golden image.
    Read,
    /// Write the line to the single byte value carried here (the abstract
    /// model's data domain maps value `v` to a line of `v`-bytes).
    Write(u8),
    /// Push the dirty line to memory, keeping the copy (Table 1 note 3).
    Pass,
    /// Push if dirty, then discard the copy (Table 1 note 4).
    Flush,
}

impl fmt::Display for ReplayOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReplayOp::Read => f.write_str("Read"),
            ReplayOp::Write(v) => write!(f, "Write({v})"),
            ReplayOp::Pass => f.write_str("Pass"),
            ReplayOp::Flush => f.write_str("Flush"),
        }
    }
}

/// One step of a counterexample schedule: who did what, and which permitted
/// entries every involved module picked.
#[derive(Clone, Debug)]
pub struct TraceStep {
    /// The module issuing the local event.
    pub module: usize,
    /// The line index the event targets (address = `line * line_size`).
    pub line: u64,
    /// The processor operation.
    pub op: ReplayOp,
    /// The master's local-action choices, in consultation order (one entry
    /// normally; several for `Read>Write` sequences).
    pub local_choices: Vec<LocalAction>,
    /// Every snooper's chosen reaction, in bus order: transaction by
    /// transaction (including BS retries), module index ascending within one
    /// address cycle. Only modules with a valid copy are consulted.
    pub snoop_choices: Vec<(usize, BusReaction)>,
}

impl fmt::Display for TraceStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cpu{} line{} {}", self.module, self.line, self.op)?;
        if !self.local_choices.is_empty() {
            let picks: Vec<String> = self.local_choices.iter().map(ToString::to_string).collect();
            write!(f, " via [{}]", picks.join(" then "))?;
        }
        for (m, r) in &self.snoop_choices {
            write!(f, "; cpu{m} snoops {r}")?;
        }
        Ok(())
    }
}

/// A scripted hardware fault: before executing step `step`, arm the bus
/// watchdog so `module` stalls (and is retired) the next time it snoops.
///
/// This pins watchdog recovery behaviour to a deterministic schedule — the
/// replay equivalent of the randomised injection in `futurebus::fault`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReplayFault {
    /// Index of the step before which the stall is armed.
    pub step: usize,
    /// The module that stops responding.
    pub module: usize,
    /// True when its cache RAM stays readable (dirty lines salvaged); false
    /// for a dead board (dirty lines lost, survivors invalidated).
    pub salvage: bool,
}

impl fmt::Display for ReplayFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} cpu{} before step {}",
            if self.salvage { "stall" } else { "kill" },
            self.module,
            self.step
        )
    }
}

/// A complete counterexample: machine shape plus the violating schedule.
#[derive(Clone, Debug)]
pub struct Trace {
    /// Bytes per line in the replayed machine.
    pub line_size: usize,
    /// One cache kind per module, in bus order.
    pub modules: Vec<CacheKind>,
    /// The schedule, shortest-first (the explorer searches breadth-first, so
    /// the trace is minimal in step count).
    pub steps: Vec<TraceStep>,
    /// Scripted stall/kill faults to arm during the replay (empty for pure
    /// consistency counterexamples).
    pub faults: Vec<ReplayFault>,
    /// The violation the explorer observed (display form), for reporting.
    pub expected: String,
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "counterexample over {} modules ({} steps) — expected: {}",
            self.modules.len(),
            self.steps.len(),
            self.expected
        )?;
        for fault in &self.faults {
            writeln!(f, "  fault: {fault}")?;
        }
        for (i, step) in self.steps.iter().enumerate() {
            writeln!(f, "  {i}: {step}")?;
        }
        Ok(())
    }
}

/// The result of replaying a [`Trace`] on the concrete machine.
#[derive(Debug)]
pub struct ReplayOutcome {
    /// The violation hit, with the index of the step that triggered it.
    pub violation: Option<(usize, Violation)>,
    /// Steps executed (all of them when no violation fired).
    pub steps_executed: usize,
    /// Times a scripted module was consulted beyond its script (a mismatch
    /// between the abstract and concrete machines; 0 for a faithful replay).
    pub script_underflows: usize,
    /// Modules the bus watchdog retired during the replay, ascending.
    pub retired: Vec<usize>,
}

impl ReplayOutcome {
    /// True when the replay reproduced a violation.
    #[must_use]
    pub fn reproduced(&self) -> bool {
        self.violation.is_some()
    }
}

/// Replays `trace` on a freshly built concrete machine.
///
/// `check_exclusive_clean` mirrors [`Checker::check_exclusive_clean`]; pass
/// `false` when the trace came from an exploration that relaxed invariant 5
/// (mixed systems containing the adapted Write-Once protocol).
#[must_use]
pub fn replay(trace: &Trace, check_exclusive_clean: bool) -> ReplayOutcome {
    let line = trace.line_size;
    let mut handles: Vec<ScriptHandle> = Vec::with_capacity(trace.modules.len());
    let controllers: Vec<CacheController> = trace
        .modules
        .iter()
        .enumerate()
        .map(|(id, &kind)| {
            let (protocol, handle) = Scripted::new(kind);
            handles.push(handle);
            let cfg = (kind != CacheKind::NonCaching).then(|| {
                // Room for 8 lines per way: far more than any explorer config.
                CacheConfig::new(line * 16, line, 2, ReplacementKind::Lru)
            });
            CacheController::new(id, Box::new(protocol), cfg, 1)
        })
        .collect();
    let mut fabric = Fabric::new(line, TimingConfig::default(), controllers);
    let mut checker = Checker::new(line);
    checker.check_exclusive_clean = check_exclusive_clean;

    let mut outcome = ReplayOutcome {
        violation: None,
        steps_executed: 0,
        script_underflows: 0,
        retired: Vec::new(),
    };

    for (idx, step) in trace.steps.iter().enumerate() {
        // Arm any fault scheduled for this step: the named module stalls the
        // next time it would snoop, and the watchdog retires it.
        for fault in &trace.faults {
            if fault.step == idx {
                fabric.bus_mut().stall_module(fault.module, fault.salvage);
            }
        }
        // Load this step's script: the master's local decisions and every
        // snooper's reactions, in the order the bus will consult them.
        for h in &handles {
            h.clear();
        }
        for action in &step.local_choices {
            handles[step.module].push_local(*action);
        }
        for (m, reaction) in &step.snoop_choices {
            handles[*m].push_bus(*reaction);
        }

        let addr = step.line * line as u64;
        let result = match step.op {
            ReplayOp::Read => {
                let got = fabric.read(step.module, addr, line);
                checker.check_read(step.module, addr, &got)
            }
            ReplayOp::Write(v) => {
                let bytes = vec![v; line];
                let ck = &mut checker;
                fabric.write_with(step.module, addr, &bytes, |piece_addr, piece| {
                    ck.record_write(piece_addr, piece);
                });
                Ok(())
            }
            ReplayOp::Pass => {
                fabric.pass(step.module, addr);
                Ok(())
            }
            ReplayOp::Flush => {
                fabric.flush(step.module, addr);
                Ok(())
            }
        };
        outcome.steps_executed = idx + 1;

        let verdict =
            result.and_then(|()| checker.verify(fabric.controllers(), fabric.bus().memory()));
        if let Err(v) = verdict {
            outcome.violation = Some((idx, v));
            break;
        }
    }
    outcome.script_underflows = handles.iter().map(ScriptHandle::underflows).sum();
    outcome.retired = fabric.bus().retired();
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;
    use moesi::table;
    use moesi::{BusOp, LineState, LocalEvent, MasterSignals, ResultState};

    fn copyback_pair() -> Vec<CacheKind> {
        vec![CacheKind::CopyBack; 2]
    }

    /// The preferred write-miss choreography: cpu0 RWITM, then cpu1 reads and
    /// the owner intervenes. Entirely legal — replay must be clean.
    #[test]
    fn legal_schedule_replays_without_violation() {
        let rwitm =
            table::permitted_local(LineState::Invalid, LocalEvent::Write, CacheKind::CopyBack)
                .into_iter()
                .find(|a| a.bus_op == BusOp::Read)
                .expect("RWITM entry");
        let read_miss =
            table::preferred_local(LineState::Invalid, LocalEvent::Read, CacheKind::CopyBack)
                .unwrap();
        let owner_reacts =
            table::preferred_bus(LineState::Modified, moesi::BusEvent::CacheRead).unwrap();
        let trace = Trace {
            line_size: 8,
            modules: copyback_pair(),
            steps: vec![
                TraceStep {
                    module: 0,
                    line: 0,
                    op: ReplayOp::Write(3),
                    local_choices: vec![rwitm],
                    snoop_choices: vec![],
                },
                TraceStep {
                    module: 1,
                    line: 0,
                    op: ReplayOp::Read,
                    local_choices: vec![read_miss],
                    snoop_choices: vec![(0, owner_reacts)],
                },
            ],
            faults: Vec::new(),
            expected: "none".into(),
        };
        let out = replay(&trace, true);
        assert!(
            !out.reproduced(),
            "legal schedule flagged: {:?}",
            out.violation
        );
        assert_eq!(out.steps_executed, 2);
        assert_eq!(out.script_underflows, 0);
    }

    /// A hand-corrupted schedule: the snooper *keeps* its S copy through an
    /// invalidating broadcast — the replayer must catch the stale copy.
    #[test]
    fn corrupt_schedule_reproduces_a_violation() {
        let fill =
            table::preferred_local(LineState::Invalid, LocalEvent::Read, CacheKind::CopyBack)
                .unwrap();
        let rwitm = LocalAction::new(
            ResultState::Fixed(LineState::Modified),
            MasterSignals::CA_IM,
            BusOp::Read,
        );
        // Illegal reaction: ignore a read-invalidate while holding S.
        let stubborn = BusReaction::hit(LineState::Shareable);
        let trace = Trace {
            line_size: 8,
            modules: copyback_pair(),
            steps: vec![
                TraceStep {
                    module: 1,
                    line: 0,
                    op: ReplayOp::Read,
                    local_choices: vec![fill],
                    snoop_choices: vec![],
                },
                TraceStep {
                    module: 0,
                    line: 0,
                    op: ReplayOp::Write(5),
                    local_choices: vec![rwitm],
                    snoop_choices: vec![(1, stubborn)],
                },
            ],
            faults: Vec::new(),
            expected: "cpu1 keeps a copy past cpu0's invalidate".into(),
        };
        let out = replay(&trace, true);
        let (step, violation) = out.violation.expect("violation reproduced");
        assert_eq!(step, 1);
        assert!(
            matches!(violation, Violation::ExclusivityViolated { .. }),
            "{violation}"
        );
        // Determinism: run it again, same answer.
        let again = replay(&trace, true);
        assert_eq!(again.violation.map(|(s, _)| s), Some(1));
    }

    /// cpu0 dirties a line, then stalls mid-snoop of cpu1's read. The
    /// watchdog must retire it, salvage the dirty line to memory, and let the
    /// read complete with the correct data — no violation anywhere.
    #[test]
    fn stalled_owner_is_retired_and_its_dirty_line_salvaged() {
        let rwitm =
            table::permitted_local(LineState::Invalid, LocalEvent::Write, CacheKind::CopyBack)
                .into_iter()
                .find(|a| a.bus_op == BusOp::Read)
                .expect("RWITM entry");
        let read_miss =
            table::preferred_local(LineState::Invalid, LocalEvent::Read, CacheKind::CopyBack)
                .unwrap();
        let trace = Trace {
            line_size: 8,
            modules: copyback_pair(),
            steps: vec![
                TraceStep {
                    module: 0,
                    line: 0,
                    op: ReplayOp::Write(3),
                    local_choices: vec![rwitm],
                    snoop_choices: vec![],
                },
                // No snoop choices for cpu0: it is retired before it could
                // react, so its script is never consulted.
                TraceStep {
                    module: 1,
                    line: 0,
                    op: ReplayOp::Read,
                    local_choices: vec![read_miss],
                    snoop_choices: vec![],
                },
            ],
            faults: vec![ReplayFault {
                step: 1,
                module: 0,
                salvage: true,
            }],
            expected: "none — degradation is graceful".into(),
        };
        let out = replay(&trace, true);
        assert!(
            !out.reproduced(),
            "salvaged stall must stay coherent: {:?}",
            out.violation
        );
        assert_eq!(out.retired, vec![0]);
        assert_eq!(out.steps_executed, 2);
        assert_eq!(out.script_underflows, 0);
    }

    /// Same schedule, but the board dies outright: its dirty line is lost and
    /// the loss must surface as a reported violation at the read — never as a
    /// silently wrong value later.
    #[test]
    fn killed_owner_loses_its_line_and_the_loss_is_reported() {
        let rwitm =
            table::permitted_local(LineState::Invalid, LocalEvent::Write, CacheKind::CopyBack)
                .into_iter()
                .find(|a| a.bus_op == BusOp::Read)
                .expect("RWITM entry");
        let read_miss =
            table::preferred_local(LineState::Invalid, LocalEvent::Read, CacheKind::CopyBack)
                .unwrap();
        let trace = Trace {
            line_size: 8,
            modules: copyback_pair(),
            steps: vec![
                TraceStep {
                    module: 0,
                    line: 0,
                    op: ReplayOp::Write(3),
                    local_choices: vec![rwitm],
                    snoop_choices: vec![],
                },
                TraceStep {
                    module: 1,
                    line: 0,
                    op: ReplayOp::Read,
                    local_choices: vec![read_miss],
                    snoop_choices: vec![],
                },
            ],
            faults: vec![ReplayFault {
                step: 1,
                module: 0,
                salvage: false,
            }],
            expected: "the killed owner's data is lost".into(),
        };
        let out = replay(&trace, true);
        let (step, violation) = out.violation.expect("data loss must be reported");
        assert_eq!(step, 1, "detected at the very read that missed the data");
        assert!(
            matches!(violation, Violation::ReadMismatch { cpu: 1, .. }),
            "{violation}"
        );
        assert_eq!(out.retired, vec![0]);
        // Determinism: the loss reproduces identically.
        let again = replay(&trace, true);
        assert_eq!(again.violation.map(|(s, _)| s), Some(1));
    }
}
