//! Builders for the fabric tree: the general [`TreeBuilder`] and the
//! two-level [`HierarchyBuilder`] convenience wrapper it grew out of.

use cache_array::CacheConfig;
use futurebus::{Discipline, Futurebus, TimingConfig};
use moesi::{CacheKind, Protocol};

use super::node::{Bridge, FabricNode, Segment};
use super::HierarchicalSystem;
use crate::checker::Checker;
use crate::controller::CacheController;
use crate::fabric::Fabric;

/// One node specification: a protocol and (for caching nodes) its geometry.
type NodeSpec = (Box<dyn Protocol + Send>, Option<CacheConfig>);

enum TreeSpecKind {
    Leaf(Vec<NodeSpec>),
    Interior(Vec<TreeSpec>),
}

/// The shape of one subtree handed to [`TreeBuilder::child`]: either a leaf
/// cluster of cache/uncached nodes, or an interior segment of further
/// subtrees.
pub struct TreeSpec {
    kind: TreeSpecKind,
}

impl std::fmt::Debug for TreeSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.kind {
            TreeSpecKind::Leaf(nodes) => write!(f, "TreeSpec::Leaf({} nodes)", nodes.len()),
            TreeSpecKind::Interior(children) => {
                write!(f, "TreeSpec::Interior({} children)", children.len())
            }
        }
    }
}

impl TreeSpec {
    /// Starts an empty leaf cluster; add nodes with [`cache`] / [`uncached`].
    ///
    /// [`cache`]: TreeSpec::cache
    /// [`uncached`]: TreeSpec::uncached
    #[must_use]
    pub fn leaf() -> Self {
        TreeSpec {
            kind: TreeSpecKind::Leaf(Vec::new()),
        }
    }

    /// An interior segment whose modules are the given subtrees.
    #[must_use]
    pub fn interior(children: Vec<TreeSpec>) -> Self {
        TreeSpec {
            kind: TreeSpecKind::Interior(children),
        }
    }

    /// Adds a caching node to this leaf cluster.
    ///
    /// # Panics
    ///
    /// Panics when called on an interior spec or with a non-caching
    /// protocol.
    #[must_use]
    pub fn cache(mut self, protocol: Box<dyn Protocol + Send>, config: CacheConfig) -> Self {
        assert_ne!(protocol.kind(), CacheKind::NonCaching);
        match &mut self.kind {
            TreeSpecKind::Leaf(nodes) => nodes.push((protocol, Some(config))),
            TreeSpecKind::Interior(_) => panic!("cache nodes belong to leaf clusters"),
        }
        self
    }

    /// Adds a non-caching node to this leaf cluster.
    ///
    /// # Panics
    ///
    /// Panics when called on an interior spec or with a caching protocol.
    #[must_use]
    pub fn uncached(mut self, protocol: Box<dyn Protocol + Send>) -> Self {
        assert_eq!(protocol.kind(), CacheKind::NonCaching);
        match &mut self.kind {
            TreeSpecKind::Leaf(nodes) => nodes.push((protocol, None)),
            TreeSpecKind::Interior(_) => panic!("cache nodes belong to leaf clusters"),
        }
        self
    }
}

/// Builds a [`HierarchicalSystem`] of arbitrary depth and fan-out: a fabric
/// tree whose interior segments are buses of bridges and whose leaves are
/// clusters of caches.
///
/// # Examples
///
/// A three-level machine — two interior segments of two clusters each:
///
/// ```
/// use cache_array::CacheConfig;
/// use moesi::protocols::MoesiPreferred;
/// use mpsim::hierarchy::{TreeBuilder, TreeSpec};
///
/// let leaf = || {
///     TreeSpec::leaf()
///         .cache(Box::new(MoesiPreferred::new()), CacheConfig::small())
///         .cache(Box::new(MoesiPreferred::new()), CacheConfig::small())
/// };
/// let mut sys = TreeBuilder::new(32)
///     .child(TreeSpec::interior(vec![leaf(), leaf()]))
///     .child(TreeSpec::interior(vec![leaf(), leaf()]))
///     .checking(true)
///     .build();
///
/// sys.write_at(&[0, 1], 0, 0x1000, &[1, 2, 3, 4]);
/// assert_eq!(sys.read_at(&[1, 0], 1, 0x1000, 4), vec![1, 2, 3, 4]);
/// ```
#[derive(Debug)]
pub struct TreeBuilder {
    line_size: usize,
    parent_timing: TimingConfig,
    cluster_timing: TimingConfig,
    checking: bool,
    seed: u64,
    discipline: Discipline,
    filter: bool,
    children: Vec<TreeSpec>,
}

impl TreeBuilder {
    /// Starts a builder with the system-wide (§5.1) line size.
    #[must_use]
    pub fn new(line_size: usize) -> Self {
        TreeBuilder {
            line_size,
            parent_timing: TimingConfig::default(),
            cluster_timing: TimingConfig::default(),
            checking: false,
            seed: 0xB0B,
            discipline: Discipline::Priority,
            filter: true,
            children: Vec::new(),
        }
    }

    /// Sets the timing of the root bus and every interior segment bus.
    #[must_use]
    pub fn parent_timing(mut self, timing: TimingConfig) -> Self {
        self.parent_timing = timing;
        self
    }

    /// Sets the leaf cluster-bus timing.
    #[must_use]
    pub fn cluster_timing(mut self, timing: TimingConfig) -> Self {
        self.cluster_timing = timing;
        self
    }

    /// Enables the global consistency oracle.
    #[must_use]
    pub fn checking(mut self, on: bool) -> Self {
        self.checking = on;
        self
    }

    /// Seeds replacement RNGs.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the arbitration discipline of every bus in the tree
    /// (default: [`Discipline::Priority`]).
    #[must_use]
    pub fn discipline(mut self, discipline: Discipline) -> Self {
        self.discipline = discipline;
        self
    }

    /// Enables or disables the inclusion snoop filter on every bridge
    /// (default: on). See [`Bridge::set_snoop_filter`](super::Bridge::set_snoop_filter).
    #[must_use]
    pub fn snoop_filter(mut self, on: bool) -> Self {
        self.filter = on;
        self
    }

    /// Adds a subtree to the root bus.
    #[must_use]
    pub fn child(mut self, spec: TreeSpec) -> Self {
        self.children.push(spec);
        self
    }

    /// A uniform tree: `clusters` subtrees on the root bus, each fanning out
    /// by `fanout` per interior level until `depth` bus levels exist in
    /// total (`depth == 2` is the classic two-level machine: the root bus
    /// plus leaf clusters), with `cpus` nodes per leaf produced by
    /// `mk(leaf, cpu)`.
    ///
    /// # Panics
    ///
    /// Panics when `depth < 2`, or `clusters`, `fanout`, or `cpus` is zero.
    #[must_use]
    pub fn uniform<F>(
        line_size: usize,
        clusters: usize,
        depth: usize,
        fanout: usize,
        cpus: usize,
        mut mk: F,
    ) -> Self
    where
        F: FnMut(usize, usize) -> NodeSpec,
    {
        assert!(depth >= 2, "a hierarchy has at least two bus levels");
        assert!(clusters > 0, "a hierarchy needs clusters");
        assert!(fanout > 0, "fan-out must be at least 1");
        assert!(cpus > 0, "a leaf cluster needs nodes");
        fn subtree<F>(
            levels: usize,
            fanout: usize,
            cpus: usize,
            leaf: &mut usize,
            mk: &mut F,
        ) -> TreeSpec
        where
            F: FnMut(usize, usize) -> NodeSpec,
        {
            if levels == 1 {
                let mut spec = TreeSpec::leaf();
                let id = *leaf;
                *leaf += 1;
                for cpu in 0..cpus {
                    let (protocol, cfg) = mk(id, cpu);
                    spec = match cfg {
                        Some(cfg) => spec.cache(protocol, cfg),
                        None => spec.uncached(protocol),
                    };
                }
                spec
            } else {
                TreeSpec::interior(
                    (0..fanout)
                        .map(|_| subtree(levels - 1, fanout, cpus, leaf, mk))
                        .collect(),
                )
            }
        }
        let mut leaf = 0usize;
        let mut b = TreeBuilder::new(line_size);
        for _ in 0..clusters {
            let spec = subtree(depth - 1, fanout, cpus, &mut leaf, &mut mk);
            b = b.child(spec);
        }
        b
    }

    /// Assembles the fabric tree.
    ///
    /// # Panics
    ///
    /// Panics when the tree has no children, a cluster is empty, or a cache
    /// config's line size mismatches the system line size (§5.1).
    #[must_use]
    pub fn build(self) -> HierarchicalSystem {
        let TreeBuilder {
            line_size,
            parent_timing,
            cluster_timing,
            checking,
            seed,
            discipline,
            filter,
            children,
        } = self;
        assert!(!children.is_empty(), "a hierarchy needs clusters");

        #[allow(clippy::too_many_arguments)]
        fn build_bridge(
            spec: TreeSpec,
            id: usize,
            level: usize,
            leaf: &mut usize,
            line_size: usize,
            parent_timing: TimingConfig,
            cluster_timing: TimingConfig,
            seed: u64,
            filter: bool,
        ) -> Bridge {
            let node = match spec.kind {
                TreeSpecKind::Leaf(nodes) => {
                    assert!(!nodes.is_empty(), "cluster {id} is empty");
                    let leaf_id = *leaf;
                    *leaf += 1;
                    let controllers: Vec<CacheController> = nodes
                        .into_iter()
                        .enumerate()
                        .map(|(cpu, (protocol, cfg))| {
                            if let Some(cfg) = &cfg {
                                assert_eq!(
                                    cfg.line_size, line_size,
                                    "§5.1: all caches must use the system line size"
                                );
                            }
                            CacheController::new(
                                cpu,
                                protocol,
                                cfg,
                                seed.wrapping_add((leaf_id as u64) << 16)
                                    .wrapping_add(cpu as u64),
                            )
                        })
                        .collect();
                    FabricNode::Leaf(Fabric::new(line_size, cluster_timing, controllers))
                }
                TreeSpecKind::Interior(specs) => {
                    assert!(!specs.is_empty(), "interior segment {id} is empty");
                    let children: Vec<Bridge> = specs
                        .into_iter()
                        .enumerate()
                        .map(|(child_id, child)| {
                            build_bridge(
                                child,
                                child_id,
                                level + 1,
                                leaf,
                                line_size,
                                parent_timing,
                                cluster_timing,
                                seed,
                                filter,
                            )
                        })
                        .collect();
                    FabricNode::Interior(Segment::new(line_size, parent_timing, children))
                }
            };
            let mut bridge = Bridge::new(id, level, node);
            bridge.filter = filter;
            bridge
        }

        let mut leaf = 0usize;
        let children: Vec<Bridge> = children
            .into_iter()
            .enumerate()
            .map(|(id, spec)| {
                build_bridge(
                    spec,
                    id,
                    0,
                    &mut leaf,
                    line_size,
                    parent_timing,
                    cluster_timing,
                    seed,
                    filter,
                )
            })
            .collect();
        let mut sys = HierarchicalSystem {
            root: Segment {
                bus: Futurebus::new(line_size, parent_timing),
                children,
            },
            checker: if checking {
                Some(Checker::new(line_size))
            } else {
                None
            },
            line_size,
            parent_errors: Vec::new(),
            tolerant: false,
        };
        if discipline != Discipline::Priority {
            sys.set_discipline(discipline);
        }
        sys
    }
}

/// Builds a two-level [`HierarchicalSystem`]: clusters of caches on private
/// buses, joined by bridges on one parent bus. A thin wrapper over
/// [`TreeBuilder`] with every root child a leaf cluster.
///
/// # Examples
///
/// ```
/// use cache_array::CacheConfig;
/// use moesi::protocols::MoesiPreferred;
/// use mpsim::hierarchy::HierarchyBuilder;
///
/// let mut sys = HierarchyBuilder::new(32)
///     .cluster()
///     .cache(Box::new(MoesiPreferred::new()), CacheConfig::small())
///     .cache(Box::new(MoesiPreferred::new()), CacheConfig::small())
///     .cluster()
///     .cache(Box::new(MoesiPreferred::new()), CacheConfig::small())
///     .checking(true)
///     .build();
///
/// sys.write(0, 0, 0x1000, &[1, 2, 3, 4]);        // cluster 0, cpu 0
/// assert_eq!(sys.read(1, 0, 0x1000, 4), vec![1, 2, 3, 4]); // cluster 1 sees it
/// ```
#[derive(Debug)]
pub struct HierarchyBuilder {
    line_size: usize,
    parent_timing: TimingConfig,
    cluster_timing: TimingConfig,
    checking: bool,
    seed: u64,
    clusters: Vec<Vec<NodeSpec>>,
}

impl HierarchyBuilder {
    /// Starts a builder with the system-wide (§5.1) line size.
    #[must_use]
    pub fn new(line_size: usize) -> Self {
        HierarchyBuilder {
            line_size,
            parent_timing: TimingConfig::default(),
            cluster_timing: TimingConfig::default(),
            checking: false,
            seed: 0xB0B,
            clusters: Vec::new(),
        }
    }

    /// Sets the parent (inter-cluster) bus timing.
    #[must_use]
    pub fn parent_timing(mut self, timing: TimingConfig) -> Self {
        self.parent_timing = timing;
        self
    }

    /// Sets the cluster-bus timing.
    #[must_use]
    pub fn cluster_timing(mut self, timing: TimingConfig) -> Self {
        self.cluster_timing = timing;
        self
    }

    /// Enables the global consistency oracle.
    #[must_use]
    pub fn checking(mut self, on: bool) -> Self {
        self.checking = on;
        self
    }

    /// Seeds replacement RNGs.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Starts a new (initially empty) cluster; subsequent [`cache`] /
    /// [`uncached`] calls add nodes to it.
    ///
    /// [`cache`]: HierarchyBuilder::cache
    /// [`uncached`]: HierarchyBuilder::uncached
    #[must_use]
    pub fn cluster(mut self) -> Self {
        self.clusters.push(Vec::new());
        self
    }

    /// Adds a caching node to the current cluster.
    ///
    /// # Panics
    ///
    /// Panics if no cluster was started or the line size mismatches (§5.1).
    #[must_use]
    pub fn cache(mut self, protocol: Box<dyn Protocol + Send>, config: CacheConfig) -> Self {
        assert_eq!(
            config.line_size, self.line_size,
            "§5.1: all caches must use the system line size"
        );
        assert_ne!(protocol.kind(), CacheKind::NonCaching);
        self.clusters
            .last_mut()
            .expect("call .cluster() first")
            .push((protocol, Some(config)));
        self
    }

    /// Adds a non-caching node to the current cluster.
    ///
    /// # Panics
    ///
    /// Panics if no cluster was started.
    #[must_use]
    pub fn uncached(mut self, protocol: Box<dyn Protocol + Send>) -> Self {
        assert_eq!(protocol.kind(), CacheKind::NonCaching);
        self.clusters
            .last_mut()
            .expect("call .cluster() first")
            .push((protocol, None));
        self
    }

    /// Assembles the hierarchy.
    ///
    /// # Panics
    ///
    /// Panics when there are no clusters or an empty cluster.
    #[must_use]
    pub fn build(self) -> HierarchicalSystem {
        assert!(!self.clusters.is_empty(), "a hierarchy needs clusters");
        for (cluster_id, nodes) in self.clusters.iter().enumerate() {
            assert!(!nodes.is_empty(), "cluster {cluster_id} is empty");
        }
        let mut b = TreeBuilder::new(self.line_size)
            .parent_timing(self.parent_timing)
            .cluster_timing(self.cluster_timing)
            .checking(self.checking)
            .seed(self.seed);
        for nodes in self.clusters {
            b = b.child(TreeSpec {
                kind: TreeSpecKind::Leaf(nodes),
            });
        }
        b.build()
    }
}
