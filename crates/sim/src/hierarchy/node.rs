//! The fabric tree: segments, bridges, and the recursive bus glue.
//!
//! A [`FabricNode`] is what hangs below a [`Bridge`]: either a leaf segment
//! (a complete single-bus [`Fabric`] of cache controllers) or an interior
//! [`Segment`] whose modules are themselves bridges. The recursion is the
//! paper's own (§6): *a cluster is one big cache*, so a subtree of clusters
//! is — seen from above — still one big cache, and the same Table 1/Table 2
//! machinery applies unchanged at every level.

use futurebus::{
    BusError, BusModule, BusObservation, Futurebus, LineAddr, RetireReport, SparseMemory,
    TimingConfig, TransactionOutcome, TransactionRequest,
};
use moesi::{table, BusEvent, BusReaction, LineState, MasterSignals, ResponseSignals};
use std::collections::HashMap;

use super::{ParentError, ParentTxnKind};
use crate::fabric::Fabric;

/// What a bridge needs from its parent bus before an intra-subtree access
/// may proceed.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(super) enum ParentNeed {
    /// Fetch the line (a cluster-level read miss or read-for-modify).
    Fetch {
        signals: MasterSignals,
        for_write: bool,
    },
    /// Broadcast the written bytes (a cluster-level shared write).
    Broadcast { offset: usize, bytes: Vec<u8> },
}

/// Per-bridge counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BridgeStats {
    /// Parent-bus transactions this bridge mastered.
    pub parent_transactions: u64,
    /// Cluster-level line fetches from the parent bus.
    pub fetches: u64,
    /// Cluster-level broadcast writes onto the parent bus.
    pub broadcasts: u64,
    /// Parent-bus reads this cluster supplied by intervention.
    pub supplied: u64,
    /// Invalidations propagated into the cluster from the parent bus.
    pub invalidations_in: u64,
    /// Updates propagated into the cluster from the parent bus.
    pub updates_in: u64,
    /// Dirty lines this bridge owned at the moment the watchdog retired it.
    pub dirty_at_retire: u64,
    /// Of those, lines salvaged onto the parent bus by the watchdog's
    /// synthetic push rounds.
    pub salvaged_lines: u64,
    /// Of those, lines whose only up-to-date copy died with the bridge.
    pub lost_lines: u64,
    /// Memory-direct parent-bus accesses made after the bridge was retired.
    pub degraded_accesses: u64,
    /// Parent-bus transactions snooped (address cycles observed).
    pub snooped: u64,
    /// Snoops whose inclusion tag hit: the subtree holds the line.
    pub filter_hits: u64,
    /// Snoops admitted past the filter into the subtree (every hit, plus —
    /// with the filter disabled — every miss as well).
    pub forwarded: u64,
    /// Snoops the inclusion filter suppressed: the subtree holds no copy, so
    /// nothing below this bridge needed to see the transaction.
    pub suppressed: u64,
}

/// What hangs below a bridge: a leaf cluster or another bus segment.
#[derive(Debug)]
pub enum FabricNode {
    /// A leaf cluster: cache controllers on one bus with a mirror memory.
    Leaf(Fabric),
    /// An interior segment: child bridges on one bus with a mirror memory.
    Interior(Segment),
}

/// One bus level of the fabric tree: a Futurebus whose modules are child
/// [`Bridge`]s. The root segment's memory is true main memory; an interior
/// segment's memory plays the mirror (default-owner) role for its subtree,
/// exactly as a leaf fabric's mirror does for its caches.
#[derive(Debug)]
pub struct Segment {
    pub(super) bus: Futurebus,
    pub(super) children: Vec<Bridge>,
}

impl Segment {
    pub(super) fn new(line_size: usize, timing: TimingConfig, children: Vec<Bridge>) -> Self {
        Segment {
            bus: Futurebus::new(line_size, timing),
            children,
        }
    }

    /// The child bridges on this segment.
    #[must_use]
    pub fn children(&self) -> &[Bridge] {
        &self.children
    }

    /// This segment's bus.
    #[must_use]
    pub fn bus(&self) -> &Futurebus {
        &self.bus
    }

    /// Mutable access to this segment's bus.
    pub fn bus_mut(&mut self) -> &mut Futurebus {
        &mut self.bus
    }

    /// The master index external agents (DMA, forwarded snoops from above)
    /// use on this segment: one past the last child.
    pub(super) fn external_master(&self) -> usize {
        self.children.len()
    }

    /// Executes `req` on this segment's bus with every child snooping.
    pub(super) fn execute_on_children(
        &mut self,
        req: &TransactionRequest,
    ) -> Result<TransactionOutcome, BusError> {
        let mut refs: Vec<&mut dyn BusModule> = self
            .children
            .iter_mut()
            .map(|b| b as &mut dyn BusModule)
            .collect();
        self.bus.execute(req, &mut refs)
    }

    /// Gates an access descending into `child` on the cluster-level
    /// protocol: runs whatever transaction the bridge's Table-1 consultation
    /// demands on this segment's bus. A bus error does not kill the
    /// simulation: the bridge degrades to a memory-direct fallback (the
    /// error is logged with this segment's `depth`, and any inconsistency
    /// the skipped snoops cause is the oracle's to report).
    pub(super) fn ensure(
        &mut self,
        child: usize,
        line: LineAddr,
        write: Option<(usize, &[u8])>,
        depth: usize,
        errors: &mut Vec<ParentError>,
    ) {
        let Some(need) = self.children[child].prepare(line, write) else {
            return;
        };
        let req = match &need {
            ParentNeed::Fetch { signals, .. } => TransactionRequest::read(child, line, *signals),
            ParentNeed::Broadcast { offset, bytes } => TransactionRequest::write(
                child,
                line,
                MasterSignals::CA_IM_BC,
                *offset,
                bytes.clone(),
            ),
        };
        let out = match self.execute_on_children(&req) {
            Ok(out) => out,
            Err(e) => {
                let txn = match &need {
                    ParentNeed::Fetch { .. } => ParentTxnKind::Fetch,
                    ParentNeed::Broadcast { .. } => ParentTxnKind::Broadcast,
                };
                errors.push(ParentError {
                    cluster: child,
                    txn,
                    phase: e.phase(),
                    error: e,
                    depth,
                });
                // Degraded fallback: serve from (or write through to) this
                // segment's memory directly. `ch_seen` is reported true —
                // the conservative answer, since the failed transaction
                // never resolved the wired-OR, and claiming exclusivity on
                // a bus that just faulted would be worse.
                match &need {
                    ParentNeed::Fetch { .. } => TransactionOutcome {
                        data: Some(self.bus.memory().peek_line(line)),
                        responses: ResponseSignals::NONE,
                        ch_seen: true,
                        source: futurebus::DataSource::Memory,
                        duration: 0,
                        aborts: 0,
                    },
                    ParentNeed::Broadcast { offset, bytes } => {
                        self.bus.memory_mut().write_bytes(line, *offset, bytes);
                        TransactionOutcome {
                            data: None,
                            responses: ResponseSignals::NONE,
                            ch_seen: true,
                            source: futurebus::DataSource::Memory,
                            duration: 0,
                            aborts: 0,
                        }
                    }
                }
            }
        };
        self.children[child].commit(line, &need, &out);
    }

    /// Memory-direct degraded read: `child`'s bridge is dead, so the access
    /// goes straight onto this segment's bus as an uncached read (no CA —
    /// Table 2 column 7). A live sibling that owns the line intervenes and
    /// supplies current data; otherwise segment memory answers.
    pub(super) fn degraded_read(
        &mut self,
        child: usize,
        line: LineAddr,
        offset: usize,
        len: usize,
        depth: usize,
        errors: &mut Vec<ParentError>,
    ) -> Vec<u8> {
        self.children[child].stats.degraded_accesses += 1;
        let req = TransactionRequest::read(child, line, MasterSignals::NONE);
        match self.execute_on_children(&req) {
            Ok(out) => {
                let data = out.data.expect("uncached read returns a line");
                data[offset..offset + len].to_vec()
            }
            Err(e) => {
                errors.push(ParentError {
                    cluster: child,
                    txn: ParentTxnKind::DegradedRead,
                    phase: e.phase(),
                    error: e,
                    depth,
                });
                let data = self.bus.memory().peek_line(line);
                data[offset..offset + len].to_vec()
            }
        }
    }

    /// Memory-direct degraded write: an uncached broadcast write (IM,BC) so
    /// live siblings holding the line SL-connect and patch their copies.
    pub(super) fn degraded_write(
        &mut self,
        child: usize,
        line: LineAddr,
        offset: usize,
        bytes: &[u8],
        depth: usize,
        errors: &mut Vec<ParentError>,
    ) {
        self.children[child].stats.degraded_accesses += 1;
        let req =
            TransactionRequest::write(child, line, MasterSignals::IM_BC, offset, bytes.to_vec());
        if let Err(e) = self.execute_on_children(&req) {
            errors.push(ParentError {
                cluster: child,
                txn: ParentTxnKind::DegradedWrite,
                phase: e.phase(),
                error: e,
                depth,
            });
            self.bus.memory_mut().write_bytes(line, offset, bytes);
        }
    }

    /// Reads one line-bounded piece through the tree: descends along `path`,
    /// gating each level on its cluster-level protocol, until a leaf fabric
    /// serves the access.
    ///
    /// # Panics
    ///
    /// Panics when `path` is exhausted before reaching a leaf, or names a
    /// child that does not exist.
    #[allow(clippy::too_many_arguments)]
    pub(super) fn read_piece(
        &mut self,
        path: &[usize],
        cpu: usize,
        piece_addr: u64,
        piece_len: usize,
        line: LineAddr,
        depth: usize,
        errors: &mut Vec<ParentError>,
    ) -> Vec<u8> {
        let child = path[0];
        if self.children[child].degraded() {
            let offset = (piece_addr - line) as usize;
            return self.degraded_read(child, line, offset, piece_len, depth, errors);
        }
        self.ensure(child, line, None, depth, errors);
        match &mut self.children[child].node {
            FabricNode::Leaf(fabric) => fabric.read(cpu, piece_addr, piece_len),
            FabricNode::Interior(seg) => {
                assert!(path.len() > 1, "access path stops at an interior segment");
                seg.read_piece(
                    &path[1..],
                    cpu,
                    piece_addr,
                    piece_len,
                    line,
                    depth + 1,
                    errors,
                )
            }
        }
    }

    /// Writes one line-bounded piece through the tree (see
    /// [`read_piece`](Segment::read_piece)).
    #[allow(clippy::too_many_arguments)]
    pub(super) fn write_piece(
        &mut self,
        path: &[usize],
        cpu: usize,
        piece_addr: u64,
        piece: &[u8],
        line: LineAddr,
        depth: usize,
        errors: &mut Vec<ParentError>,
    ) {
        let child = path[0];
        let offset = (piece_addr - line) as usize;
        if self.children[child].degraded() {
            self.degraded_write(child, line, offset, piece, depth, errors);
            return;
        }
        self.ensure(child, line, Some((offset, piece)), depth, errors);
        match &mut self.children[child].node {
            FabricNode::Leaf(fabric) => {
                fabric.write_with(cpu, piece_addr, piece, |_, _| {});
            }
            FabricNode::Interior(seg) => {
                assert!(path.len() > 1, "access path stops at an interior segment");
                seg.write_piece(&path[1..], cpu, piece_addr, piece, line, depth + 1, errors);
            }
        }
    }

    /// The §6 consistency command at this segment's scale: pushes every
    /// owned line out of every child so this segment's memory holds the
    /// subtree's complete image. Returns lines pushed (top-level lines only;
    /// descendant demotions ride along inside each push).
    pub(super) fn push_owned(&mut self, depth: usize, errors: &mut Vec<ParentError>) -> usize {
        let mut pushed = 0;
        for child in 0..self.children.len() {
            let mut owned: Vec<LineAddr> = self.children[child]
                .directory
                .iter()
                .filter(|(_, s)| s.is_owned())
                .map(|(&line, _)| line)
                .collect();
            owned.sort_unstable(); // HashMap order must not leak into bus traffic
            for line in owned {
                // First bring the child's mirror up to date: the owner chain
                // below passes the line level by level (Table 1, note 3).
                self.children[child].sync_subtree(line);
                // Then the bridge passes the line on this segment's bus: a
                // full-line write-back with CA (the subtree keeps its copy).
                let data = self.children[child].authoritative_line(line);
                let req =
                    TransactionRequest::write(child, line, MasterSignals::CA, 0, data.to_vec());
                let ch_seen = match self.execute_on_children(&req) {
                    Ok(out) => out.ch_seen,
                    Err(e) => {
                        // Degrade instead of dying: the push still reaches
                        // segment memory, which is the whole point of the
                        // consistency command; siblings just miss the snoop.
                        errors.push(ParentError {
                            cluster: child,
                            txn: ParentTxnKind::Push,
                            phase: e.phase(),
                            error: e,
                            depth,
                        });
                        self.bus.memory_mut().write_line(line, &data);
                        true
                    }
                };
                // CH from a sibling means shared copies exist (assumed
                // conservatively when the transaction errored).
                let ext = if ch_seen {
                    LineState::Shareable
                } else {
                    LineState::Exclusive
                };
                self.children[child].set_cluster_state(line, ext);
                pushed += 1;
            }
        }
        pushed
    }
}

/// A bus bridge: one subtree presented to its parent bus as a single MOESI
/// cache master whose "cache" is the whole subtree. The directory doubles as
/// the bridge's *inclusion tag set*: a line absent from it is guaranteed
/// absent from the entire subtree, which is what lets the snoop filter
/// suppress forwarding without losing coherence.
#[derive(Debug)]
pub struct Bridge {
    pub(super) id: usize,
    /// Depth of the bus this bridge attaches to (root bus = 0).
    pub(super) level: usize,
    pub(super) node: FabricNode,
    pub(super) directory: HashMap<LineAddr, LineState>,
    pub(super) pending: Option<(LineAddr, Option<BusReaction>)>,
    pub(super) stats: BridgeStats,
    pub(super) degraded: bool,
    pub(super) filter: bool,
    pub(super) forward_errors: Vec<ParentError>,
}

impl Bridge {
    pub(super) fn new(id: usize, level: usize, node: FabricNode) -> Self {
        Bridge {
            id,
            level,
            node,
            directory: HashMap::new(),
            pending: None,
            stats: BridgeStats::default(),
            degraded: false,
            filter: true,
            forward_errors: Vec::new(),
        }
    }

    /// The child index on the parent bus.
    #[must_use]
    pub fn id(&self) -> usize {
        self.id
    }

    /// What hangs below this bridge.
    #[must_use]
    pub fn node(&self) -> &FabricNode {
        &self.node
    }

    /// True when this bridge fronts a leaf cluster of cache controllers.
    #[must_use]
    pub fn is_leaf(&self) -> bool {
        matches!(self.node, FabricNode::Leaf(_))
    }

    /// The interior segment below this bridge, when there is one.
    #[must_use]
    pub fn segment(&self) -> Option<&Segment> {
        match &self.node {
            FabricNode::Interior(seg) => Some(seg),
            FabricNode::Leaf(_) => None,
        }
    }

    /// The cluster fabric (bus, controllers, mirror memory).
    ///
    /// # Panics
    ///
    /// Panics when this bridge fronts an interior segment, not a leaf
    /// cluster.
    #[must_use]
    pub fn fabric(&self) -> &Fabric {
        match &self.node {
            FabricNode::Leaf(fabric) => fabric,
            FabricNode::Interior(_) => panic!("bridge {} fronts an interior segment", self.id),
        }
    }

    /// Mutable access to the cluster fabric, for installing fault plans or
    /// tolerant-mode settings on the cluster bus.
    ///
    /// # Panics
    ///
    /// Panics when this bridge fronts an interior segment.
    pub fn fabric_mut(&mut self) -> &mut Fabric {
        match &mut self.node {
            FabricNode::Leaf(fabric) => fabric,
            FabricNode::Interior(_) => panic!("bridge {} fronts an interior segment", self.id),
        }
    }

    /// True once the watchdog has retired this bridge: the subtree runs in
    /// memory-direct degraded mode (uncached parent-bus accesses).
    #[must_use]
    pub fn degraded(&self) -> bool {
        self.degraded
    }

    /// Bridge counters.
    #[must_use]
    pub fn stats(&self) -> &BridgeStats {
        &self.stats
    }

    /// Whether the inclusion snoop filter is enabled (it is by default).
    #[must_use]
    pub fn snoop_filter(&self) -> bool {
        self.filter
    }

    /// Enables or disables the inclusion snoop filter. With the filter off
    /// the bridge forwards *every* snooped transaction into its subtree —
    /// the flood a snoop filter exists to prevent — which is only useful for
    /// measuring what the filter saves.
    pub fn set_snoop_filter(&mut self, on: bool) {
        self.filter = on;
    }

    /// The cluster-level MOESI state for a line.
    #[must_use]
    pub fn cluster_state(&self, line: LineAddr) -> LineState {
        self.directory
            .get(&line)
            .copied()
            .unwrap_or(LineState::Invalid)
    }

    pub(super) fn set_cluster_state(&mut self, line: LineAddr, state: LineState) {
        if state == LineState::Invalid {
            self.directory.remove(&line);
        } else {
            self.directory.insert(line, state);
        }
    }

    /// This bridge's mirror memory: the leaf fabric's bus memory, or the
    /// interior segment's bus memory.
    pub(super) fn mirror(&self) -> &SparseMemory {
        match &self.node {
            FabricNode::Leaf(fabric) => fabric.bus().memory(),
            FabricNode::Interior(seg) => seg.bus.memory(),
        }
    }

    pub(super) fn mirror_mut(&mut self) -> &mut SparseMemory {
        match &mut self.node {
            FabricNode::Leaf(fabric) => fabric.bus_mut().memory_mut(),
            FabricNode::Interior(seg) => seg.bus.memory_mut(),
        }
    }

    /// Decides what parent-bus traffic must precede an intra-subtree access,
    /// following Table 1 at cluster granularity.
    pub(super) fn prepare(
        &mut self,
        line: LineAddr,
        write: Option<(usize, &[u8])>,
    ) -> Option<ParentNeed> {
        let ext = self.cluster_state(line);
        match write {
            None => {
                if ext.is_valid() {
                    None
                } else {
                    // Table 1, I/Read: `CH:S/E,CA,R`.
                    Some(ParentNeed::Fetch {
                        signals: MasterSignals::CA,
                        for_write: false,
                    })
                }
            }
            Some((offset, bytes)) => match ext {
                // Table 1, M/Write: silent.
                LineState::Modified => None,
                // Table 1, E/Write: silent upgrade at cluster level.
                LineState::Exclusive => {
                    self.set_cluster_state(line, LineState::Modified);
                    None
                }
                // Table 1, O/S Write (preferred): broadcast the change.
                LineState::Owned | LineState::Shareable => Some(ParentNeed::Broadcast {
                    offset,
                    bytes: bytes.to_vec(),
                }),
                // Table 1, I/Write (preferred): read-for-modify.
                LineState::Invalid => Some(ParentNeed::Fetch {
                    signals: MasterSignals::CA_IM,
                    for_write: true,
                }),
            },
        }
    }

    /// Applies the outcome of the parent transaction [`Bridge::prepare`]
    /// requested.
    pub(super) fn commit(&mut self, line: LineAddr, need: &ParentNeed, out: &TransactionOutcome) {
        self.stats.parent_transactions += 1;
        match need {
            ParentNeed::Fetch { for_write, .. } => {
                self.stats.fetches += 1;
                let data = out.data.as_ref().expect("fetch returns a line");
                // The mirror becomes the subtree's default owner for the line.
                self.mirror_mut().write_line(line, data);
                let ext = if *for_write {
                    LineState::Modified
                } else if out.ch_seen {
                    LineState::Shareable
                } else {
                    LineState::Exclusive
                };
                self.set_cluster_state(line, ext);
            }
            ParentNeed::Broadcast { offset, bytes } => {
                self.stats.broadcasts += 1;
                // Keep the mirror in step with what the siblings saw.
                self.mirror_mut().write_bytes(line, *offset, bytes);
                let ext = if out.ch_seen {
                    LineState::Owned
                } else {
                    LineState::Modified
                };
                self.set_cluster_state(line, ext);
            }
        }
    }

    /// The authoritative subtree data for a line: the owner chain's copy if
    /// one exists (recursing through owning child bridges to the owning
    /// cache), else the mirror.
    pub(super) fn authoritative_line(&self, line: LineAddr) -> Box<[u8]> {
        match &self.node {
            FabricNode::Leaf(fabric) => {
                for ctrl in fabric.controllers() {
                    if ctrl.state_of(line).is_owned() {
                        return ctrl
                            .cache()
                            .and_then(|c| c.lookup(line))
                            .expect("owner is resident")
                            .data
                            .clone();
                    }
                }
                fabric.bus().memory().peek_line(line)
            }
            FabricNode::Interior(seg) => {
                for child in &seg.children {
                    if child.cluster_state(line).is_owned() {
                        return child.authoritative_line(line);
                    }
                }
                seg.bus.memory().peek_line(line)
            }
        }
    }

    /// Whether the subtree holds a valid copy, judged by the evidence the
    /// bridge actually has: cache states at a leaf, child inclusion tags at
    /// an interior segment.
    pub(super) fn any_local_copy(&self, line: LineAddr) -> bool {
        match &self.node {
            FabricNode::Leaf(fabric) => fabric
                .controllers()
                .iter()
                .any(|c| c.state_of(line).is_valid()),
            FabricNode::Interior(seg) => seg
                .children
                .iter()
                .any(|c| c.cluster_state(line).is_valid()),
        }
    }

    /// Ground truth for the inclusion invariant: does any *cache* anywhere
    /// in the subtree hold a valid copy? (Unlike
    /// [`any_local_copy`](Bridge::any_local_copy), this does not trust
    /// intermediate tags.)
    pub(super) fn subtree_holds_valid(&self, line: LineAddr) -> bool {
        match &self.node {
            FabricNode::Leaf(fabric) => fabric
                .controllers()
                .iter()
                .any(|c| c.state_of(line).is_valid()),
            FabricNode::Interior(seg) => seg.children.iter().any(|c| c.subtree_holds_valid(line)),
        }
    }

    /// Whether the subtree contains an owner below this bridge's own tag:
    /// an owning cache at a leaf, an owning child tag at an interior
    /// segment.
    pub(super) fn subtree_owner_below(&self, line: LineAddr) -> bool {
        match &self.node {
            FabricNode::Leaf(fabric) => fabric
                .controllers()
                .iter()
                .any(|c| c.state_of(line).is_owned()),
            FabricNode::Interior(seg) => seg
                .children
                .iter()
                .any(|c| c.cluster_state(line).is_owned()),
        }
    }

    fn push_forward_error(&mut self, txn: ParentTxnKind, error: BusError) {
        self.forward_errors.push(ParentError {
            cluster: self.id,
            txn,
            phase: error.phase(),
            error,
            depth: self.level + 1,
        });
    }

    /// Forwards a snooped read into the subtree, demoting internal copies
    /// exactly as if the read had happened on the internal bus.
    fn forward_read(&mut self, line: LineAddr) {
        match &mut self.node {
            FabricNode::Leaf(fabric) => {
                let _ = fabric.external_read(line, MasterSignals::CA);
            }
            FabricNode::Interior(seg) => {
                let req = TransactionRequest::read(seg.external_master(), line, MasterSignals::CA);
                if let Err(e) = seg.execute_on_children(&req) {
                    self.push_forward_error(ParentTxnKind::Forward, e);
                }
            }
        }
    }

    /// Forwards a snooped invalidation into the subtree.
    fn forward_invalidate(&mut self, line: LineAddr) {
        match &mut self.node {
            FabricNode::Leaf(fabric) => {
                let _ = fabric.external_invalidate(line);
            }
            FabricNode::Interior(seg) => {
                let req = TransactionRequest::address_only(
                    seg.external_master(),
                    line,
                    MasterSignals::CA_IM,
                );
                if let Err(e) = seg.execute_on_children(&req) {
                    self.push_forward_error(ParentTxnKind::Forward, e);
                }
            }
        }
    }

    /// Forwards a snooped broadcast write into the subtree, patching the
    /// mirror and internal copies. On an interior-bus error the payload is
    /// applied to the segment mirror directly so the data is not lost; the
    /// error is logged with the *inner* bus's phase and depth.
    fn forward_broadcast(&mut self, line: LineAddr, offset: usize, bytes: &[u8]) {
        match &mut self.node {
            FabricNode::Leaf(fabric) => {
                let _ = fabric.external_broadcast_write(line, offset, bytes.to_vec());
            }
            FabricNode::Interior(seg) => {
                let req = TransactionRequest::write(
                    seg.external_master(),
                    line,
                    MasterSignals::IM_BC,
                    offset,
                    bytes.to_vec(),
                );
                if let Err(e) = seg.execute_on_children(&req) {
                    seg.bus.memory_mut().write_bytes(line, offset, bytes);
                    self.push_forward_error(ParentTxnKind::Forward, e);
                }
            }
        }
    }

    /// Brings the subtree's mirrors current for `line` before a push: the
    /// owner chain passes the line level by level (Table 1, note 3), so the
    /// data the bridge pushes upward is the latest anywhere below it.
    pub(super) fn sync_subtree(&mut self, line: LineAddr) {
        match &mut self.node {
            FabricNode::Leaf(fabric) => {
                let owner_cpu = (0..fabric.nodes())
                    .find(|&cpu| fabric.controller(cpu).state_of(line).is_owned());
                if let Some(cpu) = owner_cpu {
                    fabric.pass(cpu, line);
                }
            }
            FabricNode::Interior(seg) => {
                let owner = seg
                    .children
                    .iter()
                    .position(|c| c.cluster_state(line).is_owned());
                if let Some(idx) = owner {
                    seg.children[idx].sync_subtree(line);
                    let data = seg.children[idx].authoritative_line(line);
                    let req =
                        TransactionRequest::write(idx, line, MasterSignals::CA, 0, data.to_vec());
                    let ch_seen = match seg.execute_on_children(&req) {
                        Ok(out) => out.ch_seen,
                        Err(e) => {
                            seg.bus.memory_mut().write_line(line, &data);
                            self.forward_errors.push(ParentError {
                                cluster: idx,
                                txn: ParentTxnKind::Push,
                                phase: e.phase(),
                                error: e,
                                depth: self.level + 1,
                            });
                            true
                        }
                    };
                    let ext = if ch_seen {
                        LineState::Shareable
                    } else {
                        LineState::Exclusive
                    };
                    seg.children[idx].set_cluster_state(line, ext);
                }
            }
        }
    }
}

/// Cold-invalidates every cached line in the subtree and drops every
/// descendant directory: a dead bridge can no longer keep its subtree
/// coherent with the outside world.
fn cold_invalidate(node: &mut FabricNode) {
    match node {
        FabricNode::Leaf(fabric) => {
            for cpu in 0..fabric.nodes() {
                let resident: Vec<LineAddr> = fabric
                    .controller(cpu)
                    .cache()
                    .map(|c| c.iter().map(|(a, _)| a).collect())
                    .unwrap_or_default();
                for line in resident {
                    fabric
                        .controller_mut(cpu)
                        .apply_state(line, LineState::Invalid);
                }
            }
        }
        FabricNode::Interior(seg) => {
            for child in &mut seg.children {
                child.directory.clear();
                cold_invalidate(&mut child.node);
            }
        }
    }
}

impl BusModule for Bridge {
    fn snoop(&mut self, req: &TransactionRequest) -> ResponseSignals {
        self.pending = None;
        self.stats.snooped += 1;
        let ext = self.cluster_state(req.addr);
        if ext == LineState::Invalid {
            if self.filter {
                // Inclusion guarantees the subtree holds no copy: nothing
                // below this bridge needs to see the transaction.
                self.stats.suppressed += 1;
                return ResponseSignals::NONE;
            }
            // Filter disabled: forward blindly into the subtree with no
            // response and no state change.
            self.stats.forwarded += 1;
            self.pending = Some((req.addr, None));
            return ResponseSignals::NONE;
        }
        self.stats.filter_hits += 1;
        self.stats.forwarded += 1;
        let event = BusEvent::from_signals(req.signals).expect("legal parent signals");
        // Table 2's error-condition cells ((M, CBW) and (E, CBW)) are
        // unreachable in correct operation but *are* reachable under injected
        // tag corruption. Rather than abort the process, de-escalate to the
        // nearest safe super-state — an owner answers as O, a clean holder as
        // S — which keeps snooping sound until the scrubber repairs the tag.
        let reaction = table::preferred_bus(ext, event)
            .or_else(|| {
                let softened = match ext {
                    LineState::Modified => LineState::Owned,
                    LineState::Exclusive => LineState::Shareable,
                    other => other,
                };
                table::preferred_bus(softened, event)
            })
            .unwrap_or_else(|| {
                panic!(
                    "bridge {}: error-condition parent event ({ext}, {event})",
                    self.id
                )
            });
        self.pending = Some((req.addr, Some(reaction)));
        ResponseSignals {
            ch: reaction.ch,
            di: reaction.di,
            sl: reaction.sl,
            bs: false,
        }
    }

    fn supply_line(&mut self, addr: LineAddr) -> Option<Box<[u8]>> {
        self.stats.supplied += 1;
        Some(self.authoritative_line(addr))
    }

    fn complete(&mut self, req: &TransactionRequest, obs: &BusObservation<'_>) {
        let Some((line, reaction)) = self.pending.take() else {
            return;
        };
        if line != req.addr {
            return;
        }
        let event = BusEvent::from_signals(req.signals).expect("legal parent signals");

        // Propagate the parent event into the subtree.
        match event {
            // Another cluster fetched the line: internal copies lose
            // exclusivity (and internal owners demote), exactly as if the
            // read had happened on the internal bus.
            BusEvent::CacheRead => {
                if self.any_local_copy(line) {
                    self.forward_read(line);
                }
            }
            // Another cluster read-for-modify: every internal copy dies.
            BusEvent::CacheReadInvalidate => {
                if self.any_local_copy(line) {
                    self.stats.invalidations_in += 1;
                    self.forward_invalidate(line);
                }
            }
            // Another cluster broadcast a write: patch the mirror and update
            // (or invalidate) internal copies via an internal broadcast.
            BusEvent::CacheBroadcastWrite => {
                if let Some((offset, bytes)) = obs.write_data {
                    self.stats.updates_in += 1;
                    self.forward_broadcast(line, offset, bytes);
                }
            }
            // An uncached read (a degraded cluster, or parent-bus DMA) does
            // not disturb internal copies: the data came from this subtree's
            // authority (or memory) and nobody gained a cached copy.
            BusEvent::UncachedRead => {}
            // An uncached write from a degraded cluster: patch the mirror and
            // internal copies when the payload was broadcast our way, else
            // fall back to invalidating whatever we hold — the line changed
            // under us and our copies are stale.
            BusEvent::UncachedWrite | BusEvent::UncachedBroadcastWrite => {
                if let Some((offset, bytes)) = obs.write_data {
                    if self.any_local_copy(line) {
                        self.stats.updates_in += 1;
                        self.forward_broadcast(line, offset, bytes);
                    } else {
                        // Keep the mirror in step even with no cached copies.
                        self.mirror_mut().write_bytes(line, offset, bytes);
                    }
                } else if self.any_local_copy(line) {
                    self.stats.invalidations_in += 1;
                    self.forward_invalidate(line);
                }
            }
        }

        // A filtered-off miss forwarded the event but changes no tag: a
        // snooped transaction must never allocate an inclusion entry.
        if let Some(reaction) = reaction {
            let new_ext = reaction.result.resolve(obs.ch_others);
            self.set_cluster_state(line, new_ext);
        }
    }

    fn retire(&mut self, salvage: bool) -> RetireReport {
        let mut dirty: Vec<LineAddr> = self
            .directory
            .iter()
            .filter(|(_, s)| s.is_owned())
            .map(|(&line, _)| line)
            .collect();
        dirty.sort_unstable(); // HashMap order must not leak into bus traffic
        self.stats.dirty_at_retire += dirty.len() as u64;
        let report = if salvage {
            self.stats.salvaged_lines += dirty.len() as u64;
            RetireReport {
                salvaged: dirty
                    .iter()
                    .map(|&line| (line, self.authoritative_line(line)))
                    .collect(),
                lost: Vec::new(),
            }
        } else {
            self.stats.lost_lines += dirty.len() as u64;
            RetireReport {
                salvaged: Vec::new(),
                lost: dirty,
            }
        };
        // The subtree degrades to memory-direct operation: a dead bridge can
        // no longer keep its caches coherent with the outside world, so every
        // internal copy is cold-invalidated and the directories are dropped.
        self.degraded = true;
        self.directory.clear();
        cold_invalidate(&mut self.node);
        report
    }
}
