//! §6 future work, implemented: "how one might implement a system with
//! *multiple* buses and still maintain consistency."
//!
//! The construction exploits the paper's own recursion: **a cluster is one
//! big cache**. The machine is a *fabric tree*: leaf clusters are complete
//! single-bus machines (a [`Fabric`]: caches, mirror memory, one Futurebus),
//! interior [`Segment`]s are buses whose modules are child [`Bridge`]s, and
//! each bridge attaches its subtree to the bus above as an ordinary MOESI
//! cache master — holding one cluster-level MOESI state per line in a
//! directory, asserting CA/IM/BC upward and CH/DI/SL downward exactly per
//! Tables 1 and 2:
//!
//! * a cluster-level read miss is a `CH:S/E,CA,R` on the parent bus;
//! * a write to a line other clusters share is a `CH:O/M,CA,IM,BC,W`
//!   broadcast (sibling bridges SL-connect and patch their mirrors and local
//!   caches), and a cluster-level write miss is a read-for-modify;
//! * a parent-bus read of a line this cluster owns is answered with DI, the
//!   data extracted from the internal owner; the demotion (M→O at cluster
//!   level) is propagated into the cluster as an internal bus read;
//! * the subtree's *mirror memory* (each segment bus's "main memory") plays
//!   the default-owner role inside the subtree, exactly as global memory
//!   does on the root bus.
//!
//! Because the directory records exactly which lines the subtree holds, it
//! doubles as an **inclusion-tracking snoop filter**: a bridge snooping a
//! transaction for a line absent from its directory suppresses the forward
//! entirely — nothing below it can be affected — and only tag hits descend.
//! The filter can be disabled per bridge to measure the flood it prevents
//! ([`BridgeStats`] counts `snooped`, `filter_hits`, `forwarded`,
//! `suppressed`, with `forwarded + suppressed == snooped` always).
//!
//! Intra-subtree sharing therefore never leaves its segment — the bandwidth
//! multiplication a bus hierarchy exists to provide, applied at every level
//! — while the consistency oracle's invariants keep holding globally.

use cache_array::split_line_crossers;
use futurebus::fault::InjectedFault;
use futurebus::{BusError, BusStats, Discipline, Futurebus, LineAddr, Phase, TransactionRequest};
use moesi::{LineState, MasterSignals};
use std::fmt;

mod builder;
mod node;

pub use builder::{HierarchyBuilder, TreeBuilder, TreeSpec};
pub use node::{Bridge, BridgeStats, FabricNode, Segment};

use crate::checker::{Checker, Violation};
use crate::fabric::Fabric;
use crate::metrics::CpuStats;
use crate::workload::RefStream;

/// Which parent-bus transaction a bridge was running when it failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ParentTxnKind {
    /// A cluster-level line fetch (read miss or read-for-modify).
    Fetch,
    /// A cluster-level broadcast write.
    Broadcast,
    /// A consistency-command write-back push.
    Push,
    /// An uncached read by a degraded (bridge-retired) cluster.
    DegradedRead,
    /// An uncached broadcast write by a degraded cluster.
    DegradedWrite,
    /// A snooped transaction forwarded into an interior subtree.
    Forward,
}

impl fmt::Display for ParentTxnKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ParentTxnKind::Fetch => "fetch",
            ParentTxnKind::Broadcast => "broadcast",
            ParentTxnKind::Push => "push",
            ParentTxnKind::DegradedRead => "degraded-read",
            ParentTxnKind::DegradedWrite => "degraded-write",
            ParentTxnKind::Forward => "forward",
        })
    }
}

/// A survived fabric-bus error: which child was mastering what kind of
/// transaction, the pipeline phase the failure belongs to, and the bus error
/// itself. Structured so fault campaigns can classify damage without string
/// matching; [`fmt::Display`] still renders the full story for logs.
///
/// The `phase` is always the phase of the bus where the transaction actually
/// failed: an error inside a nested segment (reached through bridge
/// re-entry) reports the *inner* bus's phase, not the phase of the root
/// transaction that triggered the descent, and `depth` says how deep that
/// bus sits (root = 0).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParentError {
    /// The child index (on its segment's bus) whose bridge mastered the
    /// failed transaction. For depth 0 this is the cluster index.
    pub cluster: usize,
    /// What the bridge was trying to do.
    pub txn: ParentTxnKind,
    /// The pipeline phase the error arises in (see [`BusError::phase`]),
    /// reported by the bus level that actually failed.
    pub phase: Phase,
    /// The underlying bus error.
    pub error: BusError,
    /// The bus level the failure occurred on: 0 is the root bus, each
    /// nested segment adds one.
    pub depth: usize,
}

impl fmt::Display for ParentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cluster {} {} failed in {}: {}",
            self.cluster, self.txn, self.phase, self.error
        )?;
        if self.depth > 0 {
            write!(f, " (depth {})", self.depth)?;
        }
        Ok(())
    }
}

/// A hierarchical multiprocessor: a fabric tree of bus segments whose root
/// bus owns true main memory. The classic shape is two levels (clusters of
/// caches joined by one parent bus), built by [`HierarchyBuilder`]; deeper
/// trees come from [`TreeBuilder`].
#[derive(Debug)]
pub struct HierarchicalSystem {
    root: Segment,
    checker: Option<Checker>,
    line_size: usize,
    parent_errors: Vec<ParentError>,
    tolerant: bool,
}

impl HierarchicalSystem {
    /// Number of root-level clusters (children of the root bus).
    #[must_use]
    pub fn clusters(&self) -> usize {
        self.root.children.len()
    }

    /// Number of leaf clusters in the whole tree (== [`clusters`] for a
    /// two-level machine).
    ///
    /// [`clusters`]: HierarchicalSystem::clusters
    #[must_use]
    pub fn leaves(&self) -> usize {
        fn count(children: &[Bridge]) -> usize {
            children
                .iter()
                .map(|b| match &b.node {
                    FabricNode::Leaf(_) => 1,
                    FabricNode::Interior(seg) => count(&seg.children),
                })
                .sum()
        }
        count(&self.root.children)
    }

    /// The number of bus levels on the longest root-to-leaf path: 2 for the
    /// classic two-level machine.
    #[must_use]
    pub fn depth(&self) -> usize {
        fn below(b: &Bridge) -> usize {
            match &b.node {
                FabricNode::Leaf(_) => 1,
                FabricNode::Interior(seg) => 1 + seg.children.iter().map(below).max().unwrap_or(0),
            }
        }
        1 + self.root.children.iter().map(below).max().unwrap_or(0)
    }

    /// The access paths of every leaf cluster, in traversal (leaf-index)
    /// order. `paths[leaf]` is what [`read_at`] / [`write_at`] expect; for a
    /// two-level machine each path is just `[cluster]`.
    ///
    /// [`read_at`]: HierarchicalSystem::read_at
    /// [`write_at`]: HierarchicalSystem::write_at
    #[must_use]
    pub fn leaf_paths(&self) -> Vec<Vec<usize>> {
        fn walk(children: &[Bridge], prefix: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
            for (i, b) in children.iter().enumerate() {
                prefix.push(i);
                match &b.node {
                    FabricNode::Leaf(_) => out.push(prefix.clone()),
                    FabricNode::Interior(seg) => walk(&seg.children, prefix, out),
                }
                prefix.pop();
            }
        }
        let mut out = Vec::new();
        walk(&self.root.children, &mut Vec::new(), &mut out);
        out
    }

    /// The `leaf`-th leaf cluster's fabric, in traversal order (== the
    /// cluster's fabric for a two-level machine).
    ///
    /// # Panics
    ///
    /// Panics when `leaf` is out of range.
    #[must_use]
    pub fn leaf_fabric(&self, leaf: usize) -> &Fabric {
        fn walk<'a>(children: &'a [Bridge], n: &mut usize, target: usize) -> Option<&'a Fabric> {
            for b in children {
                match &b.node {
                    FabricNode::Leaf(fabric) => {
                        if *n == target {
                            return Some(fabric);
                        }
                        *n += 1;
                    }
                    FabricNode::Interior(seg) => {
                        if let Some(f) = walk(&seg.children, n, target) {
                            return Some(f);
                        }
                    }
                }
            }
            None
        }
        walk(&self.root.children, &mut 0, leaf).expect("leaf index in range")
    }

    /// Mutable access to the `leaf`-th leaf cluster's fabric, for installing
    /// fault plans or tolerant-mode settings on the leaf bus.
    ///
    /// # Panics
    ///
    /// Panics when `leaf` is out of range.
    pub fn leaf_fabric_mut(&mut self, leaf: usize) -> &mut Fabric {
        fn walk<'a>(
            children: &'a mut [Bridge],
            n: &mut usize,
            target: usize,
        ) -> Option<&'a mut Fabric> {
            for b in children {
                match &mut b.node {
                    FabricNode::Leaf(fabric) => {
                        if *n == target {
                            return Some(fabric);
                        }
                        *n += 1;
                    }
                    FabricNode::Interior(seg) => {
                        if let Some(f) = walk(&mut seg.children, n, target) {
                            return Some(f);
                        }
                    }
                }
            }
            None
        }
        walk(&mut self.root.children, &mut 0, leaf).expect("leaf index in range")
    }

    /// A root-level cluster's bridge (directory, stats, fabric or segment).
    #[must_use]
    pub fn bridge(&self, cluster: usize) -> &Bridge {
        &self.root.children[cluster]
    }

    /// Mutable access to a root-level cluster's bridge.
    pub fn bridge_mut(&mut self, cluster: usize) -> &mut Bridge {
        &mut self.root.children[cluster]
    }

    /// The bridge at a tree path (`[i]` is root child `i`, `[i, j]` is its
    /// `j`-th child, …).
    ///
    /// # Panics
    ///
    /// Panics on an empty path, an out-of-range index, or a path descending
    /// below a leaf.
    #[must_use]
    pub fn bridge_at(&self, path: &[usize]) -> &Bridge {
        let mut bridge = &self.root.children[path[0]];
        for &i in &path[1..] {
            bridge = match &bridge.node {
                FabricNode::Interior(seg) => &seg.children[i],
                FabricNode::Leaf(_) => panic!("path descends below a leaf cluster"),
            };
        }
        bridge
    }

    /// Mutable access to the bridge at a tree path.
    ///
    /// # Panics
    ///
    /// Panics on an empty path, an out-of-range index, or a path descending
    /// below a leaf.
    pub fn bridge_at_mut(&mut self, path: &[usize]) -> &mut Bridge {
        let mut bridge = &mut self.root.children[path[0]];
        for &i in &path[1..] {
            bridge = match &mut bridge.node {
                FabricNode::Interior(seg) => &mut seg.children[i],
                FabricNode::Leaf(_) => panic!("path descends below a leaf cluster"),
            };
        }
        bridge
    }

    /// Every bridge in the tree, pre-order (each root child before its
    /// descendants). The position of a bridge in this list is its *flat
    /// index*, the currency of [`corrupt_inclusion_tag`] /
    /// [`scrub_inclusion_tag`]; for a two-level machine it equals the
    /// cluster index.
    ///
    /// [`corrupt_inclusion_tag`]: HierarchicalSystem::corrupt_inclusion_tag
    /// [`scrub_inclusion_tag`]: HierarchicalSystem::scrub_inclusion_tag
    #[must_use]
    pub fn bridges_preorder(&self) -> Vec<&Bridge> {
        fn walk<'a>(children: &'a [Bridge], out: &mut Vec<&'a Bridge>) {
            for b in children {
                out.push(b);
                if let FabricNode::Interior(seg) = &b.node {
                    walk(&seg.children, out);
                }
            }
        }
        let mut out = Vec::new();
        walk(&self.root.children, &mut out);
        out
    }

    /// The root (inter-cluster) bus.
    #[must_use]
    pub fn parent_bus(&self) -> &Futurebus {
        &self.root.bus
    }

    /// Mutable access to the root bus, for fault plans, retry policy and
    /// the liveness watchdog.
    pub fn parent_bus_mut(&mut self) -> &mut Futurebus {
        &mut self.root.bus
    }

    /// The consistency oracle, if enabled.
    #[must_use]
    pub fn checker(&self) -> Option<&Checker> {
        self.checker.as_ref()
    }

    /// Mutable oracle access — fault campaigns reconcile the golden image
    /// against *reported* loss through this.
    pub fn checker_mut(&mut self) -> Option<&mut Checker> {
        self.checker.as_mut()
    }

    /// Root-level clusters whose bridge the watchdog has retired, ascending.
    #[must_use]
    pub fn degraded_clusters(&self) -> Vec<usize> {
        self.root
            .children
            .iter()
            .filter(|b| b.degraded())
            .map(|b| b.id)
            .collect()
    }

    /// Switches fault-tolerant mode on or off, for every leaf cluster bus
    /// and the hierarchy itself. Tolerant mode stops the per-access oracle
    /// panics (`read`/`write` no longer call
    /// [`verify`](HierarchicalSystem::verify)); a fault campaign reconciles
    /// reported damage first and then runs the oracle explicitly, so only
    /// *unreported* corruption counts as silent.
    pub fn tolerate_faults(&mut self, on: bool) {
        self.tolerant = on;
        fn walk(children: &mut [Bridge], on: bool) {
            for b in children {
                match &mut b.node {
                    FabricNode::Leaf(fabric) => fabric.tolerate_bus_errors(on),
                    FabricNode::Interior(seg) => walk(&mut seg.children, on),
                }
            }
        }
        walk(&mut self.root.children, on);
    }

    /// Sets the arbitration discipline of every bus in the tree: the root
    /// bus, every interior segment bus, and every leaf cluster bus.
    pub fn set_discipline(&mut self, discipline: Discipline) {
        fn walk(seg: &mut Segment, discipline: Discipline) {
            seg.bus.set_discipline(discipline);
            for b in &mut seg.children {
                match &mut b.node {
                    FabricNode::Leaf(fabric) => fabric.bus_mut().set_discipline(discipline),
                    FabricNode::Interior(inner) => walk(inner, discipline),
                }
            }
        }
        walk(&mut self.root, discipline);
    }

    /// Enables or disables the inclusion snoop filter on every bridge in
    /// the tree. See [`Bridge::set_snoop_filter`].
    pub fn set_snoop_filter(&mut self, on: bool) {
        fn walk(children: &mut [Bridge], on: bool) {
            for b in children {
                b.set_snoop_filter(on);
                if let FabricNode::Interior(seg) = &mut b.node {
                    walk(&mut seg.children, on);
                }
            }
        }
        walk(&mut self.root.children, on);
    }

    /// Drains the error logs of every leaf cluster bus, each entry prefixed
    /// with its cluster path (`cluster0`, or `cluster0.1` below the root).
    pub fn drain_cluster_bus_errors(&mut self) -> Vec<String> {
        fn walk(children: &mut [Bridge], prefix: &str, out: &mut Vec<String>) {
            for b in children {
                let label = if prefix.is_empty() {
                    format!("{}", b.id)
                } else {
                    format!("{prefix}.{}", b.id)
                };
                match &mut b.node {
                    FabricNode::Leaf(fabric) => out.extend(
                        fabric
                            .drain_bus_errors()
                            .into_iter()
                            .map(|e| format!("cluster{label}: {e}")),
                    ),
                    FabricNode::Interior(seg) => walk(&mut seg.children, &label, out),
                }
            }
        }
        let mut out = Vec::new();
        walk(&mut self.root.children, "", &mut out);
        out
    }

    /// Root-bus statistics.
    #[must_use]
    pub fn parent_stats(&self) -> &BusStats {
        self.root.bus.stats()
    }

    /// A node's CPU statistics (two-level shape: `cluster` must be a leaf).
    #[must_use]
    pub fn stats(&self, cluster: usize, cpu: usize) -> &CpuStats {
        self.root.children[cluster].fabric().controller(cpu).stats()
    }

    /// The local cache state a node holds for `addr` (two-level shape).
    #[must_use]
    pub fn state_of(&self, cluster: usize, cpu: usize, addr: u64) -> LineState {
        self.root.children[cluster]
            .fabric()
            .controller(cpu)
            .state_of(addr)
    }

    /// The cluster-level state a root bridge holds for `addr`.
    #[must_use]
    pub fn cluster_state_of(&self, cluster: usize, addr: u64) -> LineState {
        self.root.children[cluster].cluster_state(self.line_addr(addr))
    }

    /// The cluster-level state the bridge at `path` holds for `addr`.
    #[must_use]
    pub fn cluster_state_at(&self, path: &[usize], addr: u64) -> LineState {
        self.bridge_at(path).cluster_state(self.line_addr(addr))
    }

    fn line_addr(&self, addr: u64) -> u64 {
        addr & !(self.line_size as u64 - 1)
    }

    /// Processor (`cluster`, `cpu`) reads `len` bytes at `addr` (two-level
    /// shape; see [`read_at`](HierarchicalSystem::read_at) for deep trees).
    ///
    /// # Panics
    ///
    /// Panics on a consistency violation when the oracle is enabled.
    pub fn read(&mut self, cluster: usize, cpu: usize, addr: u64, len: usize) -> Vec<u8> {
        self.read_at(&[cluster], cpu, addr, len)
    }

    /// Processor `cpu` of the leaf cluster at `path` reads `len` bytes at
    /// `addr`, descending one bus level per path element.
    ///
    /// # Panics
    ///
    /// Panics when `path` does not reach a leaf cluster, or on a consistency
    /// violation when the oracle is enabled.
    pub fn read_at(&mut self, path: &[usize], cpu: usize, addr: u64, len: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        for (piece_addr, piece_len) in split_line_crossers(addr, len, self.line_size) {
            let line = self.line_addr(piece_addr);
            out.extend(self.root.read_piece(
                path,
                cpu,
                piece_addr,
                piece_len,
                line,
                0,
                &mut self.parent_errors,
            ));
        }
        self.hoist_forward_errors();
        if !self.tolerant {
            if let Some(ck) = &self.checker {
                if let Err(v) = ck.check_read(cpu, addr, &out) {
                    panic!("hierarchy consistency violation: {v}");
                }
            }
        }
        self.audit();
        out
    }

    /// Processor (`cluster`, `cpu`) writes `bytes` at `addr` (two-level
    /// shape; see [`write_at`](HierarchicalSystem::write_at) for deep trees).
    ///
    /// # Panics
    ///
    /// Panics on a consistency violation when the oracle is enabled.
    pub fn write(&mut self, cluster: usize, cpu: usize, addr: u64, bytes: &[u8]) {
        self.write_at(&[cluster], cpu, addr, bytes);
    }

    /// Processor `cpu` of the leaf cluster at `path` writes `bytes` at
    /// `addr`.
    ///
    /// # Panics
    ///
    /// Panics when `path` does not reach a leaf cluster, or on a consistency
    /// violation when the oracle is enabled.
    pub fn write_at(&mut self, path: &[usize], cpu: usize, addr: u64, bytes: &[u8]) {
        let pieces = split_line_crossers(addr, bytes.len(), self.line_size);
        let mut cursor = 0;
        for (piece_addr, piece_len) in pieces {
            let piece = bytes[cursor..cursor + piece_len].to_vec();
            cursor += piece_len;
            let line = self.line_addr(piece_addr);
            if let Some(ck) = &mut self.checker {
                ck.record_write(piece_addr, &piece);
            }
            self.root.write_piece(
                path,
                cpu,
                piece_addr,
                &piece,
                line,
                0,
                &mut self.parent_errors,
            );
        }
        self.hoist_forward_errors();
        self.audit();
    }

    /// Collects forwarding errors captured inside bridges (interior-segment
    /// failures during snoop forwarding) into the system error log, in
    /// pre-order.
    fn hoist_forward_errors(&mut self) {
        fn walk(children: &mut [Bridge], out: &mut Vec<ParentError>) {
            for b in children {
                out.append(&mut b.forward_errors);
                if let FabricNode::Interior(seg) = &mut b.node {
                    walk(&mut seg.children, out);
                }
            }
        }
        walk(&mut self.root.children, &mut self.parent_errors);
    }

    /// Fabric-bus errors survived so far: each one degraded the requesting
    /// bridge to a memory-direct fallback instead of killing the simulation.
    #[must_use]
    pub fn parent_errors(&self) -> &[ParentError] {
        &self.parent_errors
    }

    /// Verifies the global shared-memory-image invariants, including the
    /// inclusion invariant the snoop filter depends on.
    ///
    /// # Errors
    ///
    /// Returns the first violation found; always `Ok` without the oracle.
    pub fn verify(&self) -> Result<(), Violation> {
        let Some(ck) = &self.checker else {
            return Ok(());
        };
        // Collect every line cached anywhere or present in a directory.
        let mut lines: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
        fn collect_lines(children: &[Bridge], lines: &mut std::collections::BTreeSet<u64>) {
            for bridge in children {
                lines.extend(bridge.directory.keys().copied());
                match &bridge.node {
                    FabricNode::Leaf(fabric) => {
                        for ctrl in fabric.controllers() {
                            if let Some(cache) = ctrl.cache() {
                                lines.extend(cache.iter().map(|(a, _)| a));
                            }
                        }
                    }
                    FabricNode::Interior(seg) => collect_lines(&seg.children, lines),
                }
            }
        }
        collect_lines(&self.root.children, &mut lines);

        for line in lines {
            let golden = ck.golden_bytes(line, self.line_size);

            // (1) Every valid cached copy anywhere equals the golden image.
            // (2) At most one local owner per leaf cluster.
            for (i, bridge) in self.root.children.iter().enumerate() {
                check_cached_copies(bridge, &format!("cluster{i}"), line, &golden)?;
            }

            // (3) At most one owning child; (4) exclusivity between
            // children; (5) unowned lines are current in segment memory;
            // (6) the owning child's authoritative data is golden — all on
            // the root segment, whose memory is true main memory.
            segment_invariants(&self.root, None, line, &golden)?;

            // The same invariants inside every interior segment, plus the
            // inclusion invariant the snoop filter is sound against.
            for (i, bridge) in self.root.children.iter().enumerate() {
                subtree_invariants(bridge, &format!("cluster{i}"), line, &golden)?;
            }
        }
        Ok(())
    }

    /// Drives one access from each stream per step, for `steps` rounds.
    /// `streams[leaf][cpu]` feeds node `cpu` of the `leaf`-th leaf cluster
    /// (for a two-level machine, leaf index == cluster index).
    ///
    /// # Panics
    ///
    /// Panics if the stream shape does not match the machine, or on a
    /// consistency violation.
    pub fn run(&mut self, streams: &mut [Vec<Box<dyn RefStream + Send>>], steps: u64) {
        let paths = self.leaf_paths();
        assert_eq!(streams.len(), paths.len(), "one stream vec per cluster");
        for (leaf, cluster_streams) in streams.iter().enumerate() {
            assert_eq!(
                cluster_streams.len(),
                self.leaf_fabric(leaf).nodes(),
                "one stream per node"
            );
        }
        let mut seq: u32 = 0;
        // The body needs `&mut self` for the access methods, so indexing is
        // clearer than restructuring around iter_mut.
        #[allow(clippy::needless_range_loop)]
        for _ in 0..steps {
            for leaf in 0..paths.len() {
                for cpu in 0..self.leaf_fabric(leaf).nodes() {
                    let access = streams[leaf][cpu].next_access();
                    if access.is_write {
                        seq = seq.wrapping_add(1);
                        let pattern = seq.to_le_bytes();
                        let bytes: Vec<u8> = (0..access.size)
                            .map(|i| pattern[i % pattern.len()])
                            .collect();
                        self.write_at(&paths[leaf], cpu, access.addr, &bytes);
                    } else {
                        let _ = self.read_at(&paths[leaf], cpu, access.addr, access.size);
                    }
                }
            }
        }
    }

    /// The §6 consistency command at global scale: pushes every owned line
    /// out of every root-level cluster (each push first syncs the owner
    /// chain below) so *root* main memory holds the complete shared image
    /// (e.g. before parent-bus DMA). Returns lines pushed.
    pub fn make_globally_consistent(&mut self) -> usize {
        let pushed = self.root.push_owned(0, &mut self.parent_errors);
        self.hoist_forward_errors();
        self.audit();
        pushed
    }

    /// Reads directly from *root* main memory, bypassing all coherence —
    /// the parent-bus DMA view. Pair with [`make_globally_consistent`].
    ///
    /// [`make_globally_consistent`]: HierarchicalSystem::make_globally_consistent
    #[must_use]
    pub fn parent_memory_peek(&self, addr: u64, len: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        let mut cur = addr;
        let mut remaining = len;
        while remaining > 0 {
            let line = self.line_addr(cur);
            let offset = (cur - line) as usize;
            let take = (self.line_size - offset).min(remaining);
            let data = self.root.bus.memory().peek_line(line);
            out.extend_from_slice(&data[offset..offset + take]);
            cur += take as u64;
            remaining -= take;
        }
        out
    }

    fn audit(&self) {
        if self.tolerant {
            return;
        }
        if let Err(v) = self.verify() {
            panic!("hierarchy consistency violation: {v}");
        }
    }

    /// Deterministically retires a root-level cluster's bridge, as if the
    /// parent-bus watchdog had timed it out: arms the one-shot stall and
    /// fires it with a harmless uncached read of an untouched line, mastered
    /// by the external (DMA) index so any cluster — including cluster 0 of a
    /// one-cluster system — can be the victim. With `salvage` the watchdog
    /// pushes the bridge's dirty lines to parent memory in synthetic push
    /// rounds; without it they are lost and every surviving copy is
    /// invalidated.
    pub fn retire_bridge(&mut self, cluster: usize, salvage: bool) {
        self.root.bus.stall_module(cluster, salvage);
        let trigger = TransactionRequest::read(
            self.root.children.len(),
            // The top line of the address space, never used by workloads.
            !(self.line_size as u64 - 1),
            MasterSignals::NONE,
        );
        if let Err(e) = self.root.execute_on_children(&trigger) {
            self.parent_errors.push(ParentError {
                cluster,
                txn: ParentTxnKind::DegradedRead,
                phase: e.phase(),
                error: e,
                depth: 0,
            });
        }
        self.hoist_forward_errors();
    }

    /// Corrupts one resident inclusion tag, driven by the root fault plan:
    /// rolls the plan's stale-tag dice and, on a hit, flips a directory
    /// entry of a plan-chosen bridge (any bridge in the tree, interior
    /// bridges included) to a plan-chosen wrong state, recording an
    /// [`InjectedFault::StaleTag`]. Returns the victim `(flat_index, line)`
    /// — see [`bridges_preorder`](HierarchicalSystem::bridges_preorder); for
    /// a two-level machine the flat index is the cluster index — so the
    /// caller can run the scrubber. `None` when the dice miss, no plan is
    /// installed, or the chosen bridge's directory is empty.
    pub fn corrupt_inclusion_tag(&mut self) -> Option<(usize, LineAddr)> {
        let bridge_count = self.bridges_preorder().len();
        let plan = self.root.bus.fault_plan_mut()?;
        if !plan.decide_stale_tag() {
            return None;
        }
        let victim = plan.gen_index(bridge_count);
        let mut keys: Vec<LineAddr> = bridge_by_flat(&self.root.children, victim)
            .expect("flat index in range")
            .directory
            .keys()
            .copied()
            .collect();
        if keys.is_empty() {
            return None;
        }
        keys.sort_unstable(); // HashMap order must not leak into the RNG draw
        let plan = self.root.bus.fault_plan_mut().expect("checked above");
        let line = keys[plan.gen_index(keys.len())];
        let from = bridge_by_flat(&self.root.children, victim)
            .expect("flat index in range")
            .cluster_state(line);
        let others: Vec<LineState> = LineState::ALL.into_iter().filter(|s| *s != from).collect();
        let plan = self.root.bus.fault_plan_mut().expect("checked above");
        let to = others[plan.gen_index(others.len())];
        bridge_by_flat_mut(&mut self.root.children, victim)
            .expect("flat index in range")
            .set_cluster_state(line, to);
        let record = InjectedFault::StaleTag {
            bridge: victim,
            addr: line,
            from: from.letter(),
            to: to.letter(),
        };
        self.root
            .bus
            .fault_plan_mut()
            .expect("checked above")
            .record(victim, line, record, 0);
        Some((victim, line))
    }

    /// The directory scrubber: reconstructs one bridge's inclusion tag for
    /// `line` from evidence — subtree states below it, mirror-vs-parent-
    /// memory divergence, and the (trusted) sibling directories on its
    /// segment — and installs the reconstructed state. `bridge` is a flat
    /// pre-order index as returned by
    /// [`corrupt_inclusion_tag`](HierarchicalSystem::corrupt_inclusion_tag).
    /// Models the ECC/parity repair a real directory RAM performs when a
    /// consultation detects a flipped tag: detection precedes use, so no
    /// coherence action ever trusts a corrupt tag.
    ///
    /// The reconstruction is conservative rather than literal: a tag the
    /// evidence cannot distinguish from a weaker-but-sound one (e.g. M whose
    /// write never changed the data) may come back as the weaker state.
    ///
    /// # Panics
    ///
    /// Panics when `bridge` is out of range.
    pub fn scrub_inclusion_tag(&mut self, bridge: usize, line: LineAddr) -> LineState {
        let mut idx = 0;
        scrub_in_segment(&mut self.root, bridge, &mut idx, line).expect("flat index in range")
    }
}

/// Invariants (1) and (2): every valid cached copy below `bridge` equals
/// the golden image, and each leaf cluster has at most one local owner.
fn check_cached_copies(
    bridge: &Bridge,
    label: &str,
    line: u64,
    golden: &[u8],
) -> Result<(), Violation> {
    match bridge.node() {
        FabricNode::Leaf(fabric) => {
            let mut local_owners = 0;
            for ctrl in fabric.controllers() {
                let state = ctrl.state_of(line);
                if state.is_owned() {
                    local_owners += 1;
                }
                if state.is_valid() {
                    let data = ctrl
                        .cache()
                        .and_then(|c| c.lookup(line))
                        .expect("valid line resident")
                        .data
                        .clone();
                    if data[..] != golden[..] {
                        return Err(Violation::StaleCopy {
                            addr: line,
                            holder: format!("{label}/{}", ctrl.name()),
                            state,
                        });
                    }
                }
            }
            if local_owners > 1 {
                return Err(Violation::MultipleOwners {
                    addr: line,
                    owners: vec![format!("{label}: {local_owners} owners")],
                });
            }
            Ok(())
        }
        FabricNode::Interior(seg) => {
            for (j, child) in seg.children().iter().enumerate() {
                check_cached_copies(child, &format!("{label}.{j}"), line, golden)?;
            }
            Ok(())
        }
    }
}

/// Invariants (3)–(6) for one segment: ownership unique among children,
/// exclusivity respected, unowned lines current in segment memory, and the
/// owning child's authoritative data golden. `prefix` is `None` at the root
/// (labels are `cluster{i}`) and the parent bridge's label below it.
fn segment_invariants(
    seg: &Segment,
    prefix: Option<&str>,
    line: u64,
    golden: &[u8],
) -> Result<(), Violation> {
    let label = |i: usize| match prefix {
        None => format!("cluster{i}"),
        Some(p) => format!("{p}.{i}"),
    };
    let owning: Vec<usize> = seg
        .children
        .iter()
        .enumerate()
        .filter(|(_, b)| b.cluster_state(line).is_owned())
        .map(|(i, _)| i)
        .collect();
    if owning.len() > 1 {
        return Err(Violation::MultipleOwners {
            addr: line,
            owners: owning.iter().map(|&i| label(i)).collect(),
        });
    }
    if let Some((excl, _)) = seg
        .children
        .iter()
        .enumerate()
        .find(|(_, b)| b.cluster_state(line).is_exclusive())
    {
        if let Some((other, _)) = seg
            .children
            .iter()
            .enumerate()
            .find(|(i, b)| *i != excl && b.cluster_state(line).is_valid())
        {
            return Err(Violation::ExclusivityViolated {
                addr: line,
                exclusive_holder: label(excl),
                other_holder: label(other),
            });
        }
    }
    if owning.is_empty() && seg.bus.memory().peek_line(line)[..] != golden[..] {
        return Err(Violation::StaleMemory { addr: line });
    }
    if let Some(&owner) = owning.first() {
        let data = seg.children[owner].authoritative_line(line);
        if data[..] != golden[..] {
            return Err(Violation::StaleCopy {
                addr: line,
                holder: format!("{} (authoritative)", label(owner)),
                state: seg.children[owner].cluster_state(line),
            });
        }
    }
    Ok(())
}

/// Recursive checks below one bridge: the inclusion invariant (no copy
/// cached below an Invalid tag — the snoop filter's soundness condition),
/// then the segment invariants of every interior segment.
fn subtree_invariants(
    bridge: &Bridge,
    label: &str,
    line: u64,
    golden: &[u8],
) -> Result<(), Violation> {
    if !bridge.cluster_state(line).is_valid() && bridge.subtree_holds_valid(line) {
        return Err(Violation::InclusionHole {
            addr: line,
            bridge: label.to_string(),
        });
    }
    if let FabricNode::Interior(seg) = bridge.node() {
        // Segment memory is only authoritative while the bridge's own tag
        // is live: once the tag is Invalid the subtree's mirror holds dead
        // data by design (the next fetch overwrites it).
        if bridge.cluster_state(line).is_valid() {
            segment_invariants(seg, Some(label), line, golden)?;
        }
        for (j, child) in seg.children().iter().enumerate() {
            subtree_invariants(child, &format!("{label}.{j}"), line, golden)?;
        }
    }
    Ok(())
}

/// The bridge at pre-order flat index `target`, if in range.
fn bridge_by_flat(children: &[Bridge], target: usize) -> Option<&Bridge> {
    fn walk<'a>(children: &'a [Bridge], idx: &mut usize, target: usize) -> Option<&'a Bridge> {
        for b in children {
            if *idx == target {
                return Some(b);
            }
            *idx += 1;
            if let FabricNode::Interior(seg) = &b.node {
                if let Some(found) = walk(&seg.children, idx, target) {
                    return Some(found);
                }
            }
        }
        None
    }
    walk(children, &mut 0, target)
}

fn bridge_by_flat_mut(children: &mut [Bridge], target: usize) -> Option<&mut Bridge> {
    fn walk<'a>(
        children: &'a mut [Bridge],
        idx: &mut usize,
        target: usize,
    ) -> Option<&'a mut Bridge> {
        for b in children {
            if *idx == target {
                return Some(b);
            }
            *idx += 1;
            if let FabricNode::Interior(seg) = &mut b.node {
                if let Some(found) = walk(&mut seg.children, idx, target) {
                    return Some(found);
                }
            }
        }
        None
    }
    walk(children, &mut 0, target)
}

/// Walks to the segment containing the flat-index `target` bridge and
/// scrubs it there (the scrub needs the victim's siblings and its segment's
/// parent memory as evidence).
fn scrub_in_segment(
    seg: &mut Segment,
    target: usize,
    idx: &mut usize,
    line: LineAddr,
) -> Option<LineState> {
    for i in 0..seg.children.len() {
        if *idx == target {
            return Some(scrub_at(seg, i, line));
        }
        *idx += 1;
        if let FabricNode::Interior(inner) = &mut seg.children[i].node {
            if let Some(state) = scrub_in_segment(inner, target, idx, line) {
                return Some(state);
            }
        }
    }
    None
}

fn scrub_at(seg: &mut Segment, victim: usize, line: LineAddr) -> LineState {
    let others_owned = seg
        .children
        .iter()
        .enumerate()
        .any(|(i, b)| i != victim && b.cluster_state(line).is_owned());
    let others_valid = seg
        .children
        .iter()
        .enumerate()
        .any(|(i, b)| i != victim && b.cluster_state(line).is_valid());
    let state = if others_owned {
        // Ownership is unique and sibling tags are sound: we can only
        // hold a shareable copy.
        LineState::Shareable
    } else {
        let bridge = &seg.children[victim];
        let internal_owner = bridge.subtree_owner_below(line);
        let mirror = bridge.mirror().peek_line(line);
        let pmem = seg.bus.memory().peek_line(line);
        // The subtree is dirty when an internal owner exists or the
        // mirror has drifted from its parent memory.
        let dirty = internal_owner || mirror[..] != pmem[..];
        match (dirty, others_valid) {
            (true, true) => LineState::Owned,
            (true, false) => LineState::Modified,
            (false, true) => LineState::Shareable,
            (false, false) => LineState::Exclusive,
        }
    };
    seg.children[victim].set_cluster_state(line, state);
    state
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_array::{CacheConfig, ReplacementKind};
    use moesi::protocols::MoesiPreferred;

    fn cfg() -> CacheConfig {
        CacheConfig::new(1024, 32, 2, ReplacementKind::Lru)
    }

    fn two_by_two() -> HierarchicalSystem {
        HierarchyBuilder::new(32)
            .cluster()
            .cache(Box::new(MoesiPreferred::new()), cfg())
            .cache(Box::new(MoesiPreferred::new()), cfg())
            .cluster()
            .cache(Box::new(MoesiPreferred::new()), cfg())
            .cache(Box::new(MoesiPreferred::new()), cfg())
            .checking(true)
            .build()
    }

    /// 2 root subtrees × 2 clusters × 2 cpus: a depth-3 fabric tree.
    fn deep_two_two_two() -> HierarchicalSystem {
        TreeBuilder::uniform(32, 2, 3, 2, 2, |_, _| {
            (
                Box::new(MoesiPreferred::new()) as Box<dyn moesi::Protocol + Send>,
                Some(cfg()),
            )
        })
        .checking(true)
        .build()
    }

    #[test]
    fn cross_cluster_read_after_write() {
        let mut sys = two_by_two();
        sys.write(0, 0, 0x1000, &[7; 4]);
        assert_eq!(sys.cluster_state_of(0, 0x1000), LineState::Modified);
        let v = sys.read(1, 0, 0x1000, 4);
        assert_eq!(v, vec![7; 4]);
        // The owning cluster demotes to O; the reader cluster is S.
        assert_eq!(sys.cluster_state_of(0, 0x1000), LineState::Owned);
        assert_eq!(sys.cluster_state_of(1, 0x1000), LineState::Shareable);
        assert_eq!(sys.bridge(0).stats().supplied, 1);
    }

    #[test]
    fn intra_cluster_sharing_stays_off_the_parent_bus() {
        let mut sys = two_by_two();
        sys.write(0, 0, 0x1000, &[1; 4]);
        let parent_before = sys.parent_stats().transactions;
        // Heavy sharing *within* cluster 0: no parent traffic at all.
        for i in 0..20u32 {
            let cpu = (i % 2) as usize;
            sys.write(0, cpu, 0x1000, &i.to_le_bytes());
            let _ = sys.read(0, 1 - cpu, 0x1000, 4);
        }
        assert_eq!(
            sys.parent_stats().transactions,
            parent_before,
            "intra-cluster traffic must not escalate"
        );
    }

    #[test]
    fn cross_cluster_write_broadcasts_and_updates() {
        let mut sys = two_by_two();
        let _ = sys.read(0, 0, 0x1000, 4);
        let _ = sys.read(1, 0, 0x1000, 4); // both clusters S
        assert_eq!(sys.cluster_state_of(0, 0x1000), LineState::Shareable);
        sys.write(0, 0, 0x1000, &[9; 4]);
        // Cluster 0 broadcast at parent level and became the owner.
        assert_eq!(sys.cluster_state_of(0, 0x1000), LineState::Owned);
        assert_eq!(sys.cluster_state_of(1, 0x1000), LineState::Shareable);
        assert_eq!(sys.bridge(1).stats().updates_in, 1);
        // Cluster 1's copy was updated in place — reading is a local hit.
        let parent_before = sys.parent_stats().transactions;
        assert_eq!(sys.read(1, 0, 0x1000, 4), vec![9; 4]);
        assert_eq!(sys.parent_stats().transactions, parent_before);
    }

    #[test]
    fn cluster_level_exclusive_upgrade_is_silent() {
        let mut sys = two_by_two();
        let _ = sys.read(0, 0, 0x1000, 4); // only cluster 0: ext E
        assert_eq!(sys.cluster_state_of(0, 0x1000), LineState::Exclusive);
        let parent_before = sys.parent_stats().transactions;
        sys.write(0, 0, 0x1000, &[3; 4]);
        assert_eq!(
            sys.parent_stats().transactions,
            parent_before,
            "silent E->M"
        );
        assert_eq!(sys.cluster_state_of(0, 0x1000), LineState::Modified);
    }

    #[test]
    fn write_miss_invalidates_other_clusters() {
        let mut sys = two_by_two();
        let _ = sys.read(1, 0, 0x1000, 4);
        let _ = sys.read(1, 1, 0x1000, 4); // cluster 1 shares internally
        sys.write(0, 0, 0x1000, &[5; 4]); // cluster 0: RWITM at parent level
        assert_eq!(sys.cluster_state_of(0, 0x1000), LineState::Modified);
        assert_eq!(sys.cluster_state_of(1, 0x1000), LineState::Invalid);
        assert_eq!(sys.state_of(1, 0, 0x1000), LineState::Invalid);
        assert_eq!(sys.state_of(1, 1, 0x1000), LineState::Invalid);
        assert_eq!(sys.bridge(1).stats().invalidations_in, 1);
        assert_eq!(sys.read(1, 1, 0x1000, 4), vec![5; 4]);
    }

    #[test]
    fn three_clusters_ownership_ring() {
        let mut sys = HierarchyBuilder::new(32)
            .cluster()
            .cache(Box::new(MoesiPreferred::new()), cfg())
            .cluster()
            .cache(Box::new(MoesiPreferred::new()), cfg())
            .cluster()
            .cache(Box::new(MoesiPreferred::new()), cfg())
            .checking(true)
            .build();
        for round in 0..9u32 {
            let cluster = (round as usize) % 3;
            sys.write(cluster, 0, 0x2000, &round.to_le_bytes());
            for reader in 0..3 {
                assert_eq!(
                    sys.read(reader, 0, 0x2000, 4),
                    round.to_le_bytes().to_vec(),
                    "round {round} reader {reader}"
                );
            }
            let owners = (0..3)
                .filter(|&c| sys.cluster_state_of(c, 0x2000).is_owned())
                .count();
            assert!(owners <= 1, "round {round}: {owners} owning clusters");
        }
    }

    #[test]
    fn randomized_hierarchy_run_stays_consistent() {
        use crate::workload::{DuboisBriggs, SharingModel};
        let mut sys = two_by_two();
        let model = SharingModel {
            shared_lines: 6,
            private_lines: 16,
            p_shared: 0.5,
            p_write: 0.4,
            p_rereference: 0.3,
            line_size: 32,
        };
        let mut streams: Vec<Vec<Box<dyn RefStream + Send>>> = (0..2)
            .map(|cluster| {
                (0..2)
                    .map(|cpu| {
                        Box::new(DuboisBriggs::new(cluster * 2 + cpu, model, 99))
                            as Box<dyn RefStream + Send>
                    })
                    .collect()
            })
            .collect();
        sys.run(&mut streams, 250);
        sys.verify().expect("hierarchy consistent");
        assert!(sys.parent_stats().transactions > 0);
    }

    #[test]
    fn heterogeneous_clusters_work() {
        use moesi::protocols::{Dragon, NonCaching, WriteThrough};
        let mut sys = HierarchyBuilder::new(32)
            .cluster()
            .cache(Box::new(MoesiPreferred::new()), cfg())
            .cache(Box::new(WriteThrough::new()), cfg())
            .cluster()
            .cache(Box::new(Dragon::new()), cfg())
            .uncached(Box::new(NonCaching::new()))
            .checking(true)
            .build();
        for i in 0..30u32 {
            let cluster = (i % 2) as usize;
            let cpu = ((i / 2) % 2) as usize;
            let addr = 0x1000 + u64::from(i % 4) * 32;
            if i % 3 == 0 {
                sys.write(cluster, cpu, addr, &i.to_le_bytes());
            } else {
                let _ = sys.read(cluster, cpu, addr, 4);
            }
        }
        sys.verify().expect("consistent");
    }

    #[test]
    fn global_sync_makes_parent_memory_current() {
        let mut sys = two_by_two();
        sys.write(0, 0, 0x1000, &[1; 4]);
        sys.write(1, 1, 0x2000, &[2; 4]);
        // Parent memory has neither value yet (cluster-level M).
        assert_eq!(sys.parent_memory_peek(0x1000, 4), vec![0; 4]);
        let pushed = sys.make_globally_consistent();
        assert_eq!(pushed, 2);
        assert_eq!(sys.parent_memory_peek(0x1000, 4), vec![1; 4]);
        assert_eq!(sys.parent_memory_peek(0x2000, 4), vec![2; 4]);
        // No cluster owns anything any more.
        for c in 0..2 {
            assert!(!sys.cluster_state_of(c, 0x1000).is_owned());
            assert!(!sys.cluster_state_of(c, 0x2000).is_owned());
        }
        assert_eq!(sys.make_globally_consistent(), 0, "idempotent");
        // The clusters kept readable copies: no parent traffic on re-read.
        let before = sys.parent_stats().transactions;
        assert_eq!(sys.read(0, 0, 0x1000, 4), vec![1; 4]);
        assert_eq!(sys.parent_stats().transactions, before);
    }

    #[test]
    #[should_panic(expected = "call .cluster() first")]
    fn nodes_require_a_cluster() {
        let _ = HierarchyBuilder::new(32).cache(Box::new(MoesiPreferred::new()), cfg());
    }

    /// A parent bus that errors every transaction: a full-rate abort storm
    /// outlasts the 16-round retry policy, so every execute() returns
    /// `TooManyRetries` deterministically.
    fn break_parent_bus(sys: &mut HierarchicalSystem) {
        use futurebus::fault::{FaultConfig, FaultPlan};
        sys.parent_bus_mut()
            .inject_faults(FaultPlan::new(FaultConfig {
                storm_rate: 1.0,
                max_storm_rounds: 32,
                ..FaultConfig::default()
            }));
    }

    #[test]
    fn faulted_parent_fetch_degrades_instead_of_panicking() {
        let mut sys = two_by_two();
        break_parent_bus(&mut sys);
        // The cluster-level fetch errors on the parent bus; the bridge falls
        // back to parent memory (zeros — which is also the golden image, so
        // the oracle stays satisfied) instead of killing the simulation.
        let v = sys.read(1, 0, 0x1000, 4);
        assert_eq!(v, vec![0; 4]);
        assert!(!sys.parent_errors().is_empty());
        let err = &sys.parent_errors()[0];
        assert_eq!(err.cluster, 1);
        assert_eq!(err.txn, ParentTxnKind::Fetch);
        assert_eq!(err.phase, Phase::AbortBackoff);
        assert_eq!(err.depth, 0);
        assert!(matches!(err.error, BusError::TooManyRetries(_)), "{err}");
        assert!(err.to_string().contains("aborted"), "{err}");
        // The degraded fetch claims conservative sharedness, never
        // exclusivity, on a bus it could not actually snoop.
        assert_eq!(sys.cluster_state_of(1, 0x1000), LineState::Shareable);
        // The machine keeps running.
        let again = sys.read(1, 0, 0x1000, 4);
        assert_eq!(again, vec![0; 4]);
    }

    #[test]
    fn faulted_parent_push_still_syncs_parent_memory() {
        let mut sys = two_by_two();
        sys.write(0, 0, 0x1000, &[1; 4]);
        assert_eq!(sys.cluster_state_of(0, 0x1000), LineState::Modified);
        break_parent_bus(&mut sys);
        // The consistency command's parent write-back errors; the push is
        // applied to parent memory directly so the command still delivers
        // its contract (parent memory holds the shared image).
        let pushed = sys.make_globally_consistent();
        assert_eq!(pushed, 1);
        assert_eq!(sys.parent_memory_peek(0x1000, 4), vec![1; 4]);
        assert_eq!(sys.parent_errors().len(), 1);
        assert_eq!(sys.parent_errors()[0].txn, ParentTxnKind::Push);
        assert_eq!(sys.parent_errors()[0].cluster, 0);
        assert_eq!(sys.cluster_state_of(0, 0x1000), LineState::Shareable);
    }

    #[test]
    fn bridge_kill_loses_dirty_lines_and_invalidates_survivors() {
        let mut sys = two_by_two();
        sys.write(0, 0, 0x1000, &[9; 4]); // cluster 0: M
        let _ = sys.read(1, 0, 0x1000, 4); // cluster 0: O, cluster 1: S
        sys.write(0, 0, 0x2000, &[8; 4]); // cluster 0: M, nobody else
                                          // The checker must accept the reported loss before the oracle runs
                                          // again, exactly as a fault campaign would.
        sys.tolerate_faults(true);
        sys.retire_bridge(0, false);
        let stats = *sys.bridge(0).stats();
        assert_eq!(stats.dirty_at_retire, 2);
        assert_eq!(stats.lost_lines, 2);
        assert_eq!(stats.salvaged_lines, 0);
        assert_eq!(
            stats.salvaged_lines + stats.lost_lines,
            stats.dirty_at_retire
        );
        assert!(sys.bridge(0).degraded());
        assert_eq!(sys.degraded_clusters(), vec![0]);
        assert_eq!(sys.parent_bus().retired(), vec![0]);
        // Cluster 1's surviving S copy of the lost line was invalidated by
        // the watchdog's synthetic invalidate round: no stale data outlives
        // the owner.
        assert_eq!(sys.cluster_state_of(1, 0x1000), LineState::Invalid);
        assert_eq!(sys.state_of(1, 0, 0x1000), LineState::Invalid);
        // Reconcile the golden image to the reported post-loss truth, then
        // the oracle is satisfied again.
        for line in [0x1000u64, 0x2000] {
            let mem = sys.parent_memory_peek(line, 32);
            sys.checker_mut().unwrap().record_write(line, &mem);
        }
        sys.verify().expect("reported loss reconciled");
    }

    #[test]
    fn bridge_stall_salvages_dirty_lines_to_parent_memory() {
        let mut sys = two_by_two();
        sys.write(0, 0, 0x1000, &[5; 4]);
        sys.write(0, 1, 0x2000, &[6; 4]);
        assert_eq!(sys.parent_memory_peek(0x1000, 4), vec![0; 4]);
        sys.retire_bridge(0, true);
        let stats = *sys.bridge(0).stats();
        assert_eq!(stats.dirty_at_retire, 2);
        assert_eq!(stats.salvaged_lines, 2);
        assert_eq!(stats.lost_lines, 0);
        // The synthetic push rounds landed the dirty data in parent memory:
        // nothing was lost, so the oracle stays green with no reconciliation.
        assert_eq!(sys.parent_memory_peek(0x1000, 4), vec![5; 4]);
        assert_eq!(sys.parent_memory_peek(0x2000, 4), vec![6; 4]);
        sys.verify().expect("salvage preserves the golden image");
    }

    #[test]
    fn degraded_cluster_keeps_running_memory_direct() {
        let mut sys = two_by_two();
        sys.write(0, 0, 0x1000, &[5; 4]);
        sys.retire_bridge(0, true);
        // The degraded cluster still reads its old data (now in parent
        // memory) and its writes stay globally visible.
        assert_eq!(sys.read(0, 0, 0x1000, 4), vec![5; 4]);
        sys.write(0, 0, 0x1000, &[7; 4]);
        assert_eq!(sys.read(1, 0, 0x1000, 4), vec![7; 4]);
        assert!(sys.bridge(0).stats().degraded_accesses >= 2);
        sys.verify().expect("degraded mode stays consistent");
    }

    #[test]
    fn degraded_write_updates_a_live_sibling_owner() {
        let mut sys = two_by_two();
        sys.write(1, 0, 0x3000, &[3; 4]); // cluster 1 owns the line (M)
        sys.retire_bridge(0, true);
        // Cluster 0's uncached broadcast write reaches cluster 1's copy via
        // SL-connection, and cluster 1's next read sees it with no extra
        // parent traffic.
        sys.write(0, 0, 0x3000, &[4; 4]);
        assert_eq!(sys.read(1, 0, 0x3000, 4), vec![4; 4]);
        // And a degraded read of a sibling-owned dirty line is served by
        // intervention, not stale memory.
        sys.write(1, 0, 0x3000, &[5; 4]);
        assert_eq!(sys.read(0, 0, 0x3000, 4), vec![5; 4]);
        sys.verify().expect("consistent across degraded traffic");
    }

    #[test]
    fn stale_tag_corruption_is_injected_and_scrubbed() {
        use futurebus::fault::{FaultConfig, FaultPlan};
        let mut sys = two_by_two();
        sys.write(0, 0, 0x1000, &[1; 4]);
        let _ = sys.read(1, 0, 0x1000, 4); // cluster 0: O, cluster 1: S
        sys.parent_bus_mut()
            .inject_faults(FaultPlan::new(FaultConfig {
                stale_tag_rate: 1.0,
                ..FaultConfig::default()
            }));
        let (cluster, line) = sys.corrupt_inclusion_tag().expect("rate 1.0 must fire");
        let record = sys.parent_bus().fault_plan().unwrap().records()[0].clone();
        assert!(
            matches!(record.fault, InjectedFault::StaleTag { .. }),
            "{record:?}"
        );
        // The scrubber reconstructs a sound tag from evidence alone, and the
        // oracle is green again.
        let restored = sys.scrub_inclusion_tag(cluster, line);
        assert!(restored.is_valid(), "a resident line must come back valid");
        sys.verify().expect("scrubbed hierarchy is consistent");
        assert_eq!(sys.read(1, 0, 0x1000, 4), vec![1; 4]);
        assert_eq!(sys.read(0, 0, 0x1000, 4), vec![1; 4]);
    }

    #[test]
    fn scrub_reconstructs_each_legitimate_tag_soundly() {
        let mut sys = two_by_two();
        sys.write(0, 0, 0x1000, &[1; 4]); // cluster 0: M
        let _ = sys.read(1, 0, 0x2000, 4); // cluster 1: E
        let _ = sys.read(0, 0, 0x3000, 4);
        let _ = sys.read(1, 0, 0x3000, 4); // both S
        sys.write(0, 0, 0x4000, &[2; 4]);
        let _ = sys.read(1, 0, 0x4000, 4); // cluster 0: O, cluster 1: S
        for (cluster, line, expect) in [
            (0usize, 0x1000u64, LineState::Modified),
            (1, 0x2000, LineState::Exclusive),
            (0, 0x3000, LineState::Shareable),
            (0, 0x4000, LineState::Owned),
            (1, 0x4000, LineState::Shareable),
        ] {
            assert_eq!(sys.cluster_state_of(cluster, line), expect);
            let rebuilt = sys.scrub_inclusion_tag(cluster, line);
            assert_eq!(rebuilt, expect, "cluster {cluster} line {line:#x}");
            sys.verify().expect("reconstruction is sound");
        }
    }

    // ------------------------------------------------------------------
    // Fabric-tree tests: depth ≥ 3, snoop filters, leaf-phase errors.
    // ------------------------------------------------------------------

    #[test]
    fn deep_tree_shape_is_reported() {
        let sys = deep_two_two_two();
        assert_eq!(sys.depth(), 3);
        assert_eq!(sys.clusters(), 2);
        assert_eq!(sys.leaves(), 4);
        assert_eq!(
            sys.leaf_paths(),
            vec![vec![0, 0], vec![0, 1], vec![1, 0], vec![1, 1]]
        );
        assert_eq!(sys.bridges_preorder().len(), 6);
        assert!(!sys.bridge(0).is_leaf());
        assert!(sys.bridge_at(&[0, 1]).is_leaf());
    }

    #[test]
    fn deep_cross_subtree_read_after_write() {
        let mut sys = deep_two_two_two();
        sys.write_at(&[0, 1], 0, 0x1000, &[7; 4]);
        // The whole chain above the writer owns the line.
        assert_eq!(sys.cluster_state_at(&[0], 0x1000), LineState::Modified);
        assert_eq!(sys.cluster_state_at(&[0, 1], 0x1000), LineState::Modified);
        assert_eq!(sys.cluster_state_at(&[0, 0], 0x1000), LineState::Invalid);
        // A reader in the far subtree pulls the data across two bus levels.
        assert_eq!(sys.read_at(&[1, 0], 1, 0x1000, 4), vec![7; 4]);
        assert_eq!(sys.cluster_state_at(&[0], 0x1000), LineState::Owned);
        assert_eq!(sys.cluster_state_at(&[0, 1], 0x1000), LineState::Owned);
        assert_eq!(sys.cluster_state_at(&[1], 0x1000), LineState::Shareable);
        // Tags are segment-scoped: [1, 0] is alone on its segment (sibling
        // [1, 1] never touched the line), so it holds E there — the global
        // sharing is the root's business, tracked by bridge [1]'s S tag.
        assert_eq!(sys.cluster_state_at(&[1, 0], 0x1000), LineState::Exclusive);
        sys.verify().expect("deep tree consistent");
    }

    #[test]
    fn deep_sibling_sharing_stays_off_the_root_bus() {
        let mut sys = deep_two_two_two();
        sys.write_at(&[0, 0], 0, 0x2000, &[1; 4]);
        let _ = sys.read_at(&[0, 1], 0, 0x2000, 4);
        let root_before = sys.parent_stats().transactions;
        // Sharing between the two clusters *inside* subtree 0 never
        // escalates to the root bus.
        for i in 0..10u32 {
            sys.write_at(&[0, (i % 2) as usize], 0, 0x2000, &i.to_le_bytes());
            let _ = sys.read_at(&[0, 1 - (i % 2) as usize], 1, 0x2000, 4);
        }
        assert_eq!(
            sys.parent_stats().transactions,
            root_before,
            "intra-subtree traffic must stay on its segment"
        );
        sys.verify().expect("consistent");
    }

    #[test]
    fn snoop_filter_counters_conserve_and_suppress() {
        let mut sys = deep_two_two_two();
        for i in 0..12u32 {
            let line = 0x1000 + u64::from(i % 3) * 32;
            sys.write_at(&[(i % 2) as usize, 0], 0, line, &i.to_le_bytes());
            let _ = sys.read_at(&[1 - (i % 2) as usize, 1], 0, line, 4);
        }
        let mut suppressed_total = 0;
        for b in sys.bridges_preorder() {
            let s = b.stats();
            assert_eq!(
                s.forwarded + s.suppressed,
                s.snooped,
                "bridge {}: forwarded {} + suppressed {} != snooped {}",
                b.id(),
                s.forwarded,
                s.suppressed,
                s.snooped
            );
            assert!(s.filter_hits <= s.forwarded);
            suppressed_total += s.suppressed;
        }
        assert!(
            suppressed_total > 0,
            "cross-subtree traffic must hit some filter"
        );
        sys.verify().expect("consistent");
    }

    #[test]
    fn disabled_filter_floods_but_stays_consistent() {
        let mut sys = TreeBuilder::uniform(32, 2, 3, 2, 2, |_, _| {
            (
                Box::new(MoesiPreferred::new()) as Box<dyn moesi::Protocol + Send>,
                Some(cfg()),
            )
        })
        .checking(true)
        .snoop_filter(false)
        .build();
        for i in 0..12u32 {
            let line = 0x1000 + u64::from(i % 3) * 32;
            sys.write_at(&[(i % 2) as usize, 0], 0, line, &i.to_le_bytes());
            let _ = sys.read_at(&[1 - (i % 2) as usize, 1], 0, line, 4);
        }
        for b in sys.bridges_preorder() {
            let s = b.stats();
            assert_eq!(s.suppressed, 0, "bridge {}: filter off", b.id());
            assert_eq!(s.forwarded, s.snooped);
        }
        sys.verify().expect("filterless tree still consistent");
    }

    #[test]
    fn nested_bus_error_reports_the_leaf_phase() {
        use futurebus::fault::{FaultConfig, FaultPlan};
        let mut sys = deep_two_two_two();
        // Subtree 1 holds the line dirty, deep inside.
        sys.write_at(&[1, 0], 0, 0x1000, &[3; 4]);
        // Break the *interior* bus of subtree 1: every transaction on it
        // errors out deterministically.
        match &mut sys.bridge_mut(1).node {
            FabricNode::Interior(seg) => seg.bus_mut().inject_faults(FaultPlan::new(FaultConfig {
                storm_rate: 1.0,
                max_storm_rounds: 32,
                ..FaultConfig::default()
            })),
            FabricNode::Leaf(_) => unreachable!("subtree 1 is interior"),
        }
        sys.tolerate_faults(true);
        // A read-for-modify from subtree 0: the root transaction succeeds
        // (bridge 1 supplies from its authority), but the forwarded
        // invalidation fails inside subtree 1's segment.
        sys.write_at(&[0, 0], 0, 0x1000, &[4; 4]);
        let forward_errs: Vec<&ParentError> = sys
            .parent_errors()
            .iter()
            .filter(|e| e.txn == ParentTxnKind::Forward)
            .collect();
        assert!(!forward_errs.is_empty(), "inner failure must be logged");
        let err = forward_errs[0];
        // The reported phase is the *inner* (leaf-segment) bus's phase, not
        // the root transaction's, and the depth says which level failed.
        assert_eq!(err.phase, Phase::AbortBackoff);
        assert_eq!(err.depth, 1);
        assert_eq!(err.cluster, 1);
        assert!(matches!(err.error, BusError::TooManyRetries(_)), "{err}");
        assert!(err.to_string().contains("(depth 1)"), "{err}");
    }

    #[test]
    fn deep_interior_retire_salvages_the_whole_subtree() {
        let mut sys = deep_two_two_two();
        sys.write_at(&[0, 0], 0, 0x1000, &[5; 4]);
        sys.write_at(&[0, 1], 1, 0x2000, &[6; 4]);
        assert_eq!(sys.parent_memory_peek(0x1000, 4), vec![0; 4]);
        // Retire the interior bridge fronting subtree 0: both dirty lines —
        // held in *different* leaf clusters below it — are salvaged.
        sys.retire_bridge(0, true);
        let stats = *sys.bridge(0).stats();
        assert_eq!(stats.dirty_at_retire, 2);
        assert_eq!(stats.salvaged_lines, 2);
        assert_eq!(sys.parent_memory_peek(0x1000, 4), vec![5; 4]);
        assert_eq!(sys.parent_memory_peek(0x2000, 4), vec![6; 4]);
        // The subtree is cold: every descendant directory and cache emptied.
        assert_eq!(sys.cluster_state_at(&[0, 0], 0x1000), LineState::Invalid);
        assert_eq!(sys.cluster_state_at(&[0, 1], 0x2000), LineState::Invalid);
        sys.verify().expect("salvage preserves the golden image");
        // Degraded accesses keep flowing memory-direct.
        assert_eq!(sys.read_at(&[0, 0], 0, 0x1000, 4), vec![5; 4]);
        sys.write_at(&[0, 1], 0, 0x2000, &[9; 4]);
        assert_eq!(sys.read_at(&[1, 0], 0, 0x2000, 4), vec![9; 4]);
        sys.verify().expect("degraded subtree stays consistent");
    }

    #[test]
    fn deep_stale_tags_scrub_at_every_level() {
        let mut sys = deep_two_two_two();
        sys.write_at(&[0, 1], 0, 0x1000, &[1; 4]);
        let _ = sys.read_at(&[1, 0], 0, 0x1000, 4);
        // Pre-order flat indices: 0 = subtree 0 (interior), 1 = [0,0],
        // 2 = [0,1], 3 = subtree 1 (interior), 4 = [1,0], 5 = [1,1].
        //
        // Reconstruction uses segment-local evidence because tags are
        // segment-scoped. [0,1] comes back M rather than its pre-corruption
        // O: within its segment the two are indistinguishable (sibling
        // [0,0] holds nothing) and equivalent — the root-level sharers are
        // tracked by the interior bridge's own O tag, which gates every
        // write descending into the subtree.
        for (flat, expect) in [
            (0usize, LineState::Owned),
            (2, LineState::Modified),
            (3, LineState::Shareable),
            (4, LineState::Exclusive),
        ] {
            let rebuilt = sys.scrub_inclusion_tag(flat, 0x1000);
            assert_eq!(rebuilt, expect, "flat index {flat}");
            sys.verify().expect("reconstruction is sound");
        }
    }

    #[test]
    fn deep_global_sync_drains_every_level() {
        let mut sys = deep_two_two_two();
        sys.write_at(&[0, 0], 0, 0x1000, &[1; 4]);
        sys.write_at(&[1, 1], 1, 0x2000, &[2; 4]);
        let pushed = sys.make_globally_consistent();
        assert_eq!(pushed, 2);
        assert_eq!(sys.parent_memory_peek(0x1000, 4), vec![1; 4]);
        assert_eq!(sys.parent_memory_peek(0x2000, 4), vec![2; 4]);
        for b in sys.bridges_preorder() {
            assert!(!b.cluster_state(0x1000).is_owned());
            assert!(!b.cluster_state(0x2000).is_owned());
        }
        assert_eq!(sys.make_globally_consistent(), 0, "idempotent");
        sys.verify().expect("post-sync tree consistent");
    }

    #[test]
    fn tree_builder_two_level_matches_hierarchy_builder() {
        // The wrapper and the general builder must produce behaviourally
        // identical two-level machines.
        let mut a = two_by_two();
        let mut b = TreeBuilder::new(32)
            .child(
                TreeSpec::leaf()
                    .cache(Box::new(MoesiPreferred::new()), cfg())
                    .cache(Box::new(MoesiPreferred::new()), cfg()),
            )
            .child(
                TreeSpec::leaf()
                    .cache(Box::new(MoesiPreferred::new()), cfg())
                    .cache(Box::new(MoesiPreferred::new()), cfg()),
            )
            .checking(true)
            .build();
        for i in 0..40u32 {
            let cluster = (i % 2) as usize;
            let cpu = ((i / 2) % 2) as usize;
            let addr = 0x1000 + u64::from(i % 5) * 32;
            if i % 3 == 0 {
                a.write(cluster, cpu, addr, &i.to_le_bytes());
                b.write(cluster, cpu, addr, &i.to_le_bytes());
            } else {
                assert_eq!(
                    a.read(cluster, cpu, addr, 4),
                    b.read(cluster, cpu, addr, 4),
                    "step {i}"
                );
            }
        }
        assert_eq!(a.parent_stats().transactions, b.parent_stats().transactions);
        a.verify().expect("consistent");
        b.verify().expect("consistent");
    }

    #[test]
    fn per_segment_disciplines_charge_arbitration() {
        use futurebus::Phase;
        let run = |discipline: Discipline| {
            let mut sys = TreeBuilder::uniform(32, 2, 3, 2, 2, |_, _| {
                (
                    Box::new(MoesiPreferred::new()) as Box<dyn moesi::Protocol + Send>,
                    Some(cfg()),
                )
            })
            .discipline(discipline)
            .build();
            for i in 0..12u32 {
                let line = 0x1000 + u64::from(i % 3) * 32;
                sys.write_at(&[(i % 2) as usize, 0], 0, line, &i.to_le_bytes());
                let _ = sys.read_at(&[1 - (i % 2) as usize, 1], 0, line, 4);
            }
            sys.parent_stats().phase_ns[Phase::Arbitrate as usize]
        };
        let priority = run(Discipline::Priority);
        let fcfs = run(Discipline::Fcfs);
        assert_eq!(priority, 0, "priority grants in a single slot");
        assert!(
            fcfs > 0,
            "queue-position slots must charge the arbitrate phase"
        );
    }
}
