//! Per-phase bus profiling: Chrome trace-event export.
//!
//! [`chrome_trace`] renders everything an instrumented bus observed — one
//! complete-duration event per pipeline phase per transaction, laid out on
//! the bus-occupancy timeline, plus instant events for the disturbances the
//! transcript logs (`GLTCH`/`RETIR`/`CORPT`) — as Chrome trace-event JSON
//! that `chrome://tracing` or Perfetto load directly.
//!
//! [`trace_run`] is the CLI's exemplar driver behind `--trace-out`: one
//! small single-bus machine with tracing and phase events enabled, driven by
//! a seeded workload, optionally under fault injection. The run is always
//! sequential and self-contained, so the emitted JSON is a pure function of
//! the configuration — `--jobs N` cannot perturb it.

use cache_array::{CacheConfig, ReplacementKind};
use futurebus::fault::{FaultConfig, FaultPlan};
use futurebus::{ChromeTraceWriter, Futurebus, Phase, TimingConfig, TraceKind};
use moesi::protocols::by_name;
use moesi::rng::SmallRng;
use moesi::CacheKind;

use crate::controller::CacheController;
use crate::fabric::Fabric;

/// Trace log capacity for [`trace_run`]: large enough that no record of a
/// CLI-sized run is evicted (eviction would desynchronise the instant-event
/// cursor from the phase events).
const TRACE_CAPACITY: usize = 1 << 20;

/// Renders the bus's phase events and transcript as Chrome trace-event JSON.
///
/// Each recorded transaction contributes one `"ph": "X"` duration event per
/// pipeline phase that consumed time, at its cumulative offset within the
/// transaction's slice `[start_ns, start_ns + duration)` of the
/// bus-occupancy timeline; `tid` is the mastering module. Disturbance
/// records in the transcript (glitches, retirements, corruptions) become
/// `"ph": "i"` instant events placed at the occupancy time of the
/// transaction they interrupted. Requires
/// [`enable_phase_events`](Futurebus::enable_phase_events) (and
/// [`enable_trace`](Futurebus::enable_trace) for the instants) to have been
/// on during the run.
#[must_use]
pub fn chrome_trace(bus: &Futurebus) -> String {
    let mut w = ChromeTraceWriter::new();
    let names: Vec<String> = Phase::PIPELINE.iter().map(|p| p.to_string()).collect();
    for ev in bus.phase_events() {
        let mut ts = ev.start_ns;
        for (name, dur) in names.iter().zip(ev.phase_ns) {
            if dur > 0 {
                w.duration(name, "phase", ev.master, ts, dur);
                ts += dur;
            }
        }
    }
    // Walk the transcript with a cursor that advances by each completed
    // transaction's duration — the same occupancy timeline the phase events
    // use. Pushes ride inside their master's slice, so they advance nothing.
    let mut cursor = 0;
    for rec in bus.trace().records() {
        match rec.kind {
            TraceKind::Read | TraceKind::Write | TraceKind::AddressOnly => {
                cursor += rec.duration;
            }
            TraceKind::Push => {}
            TraceKind::Glitch | TraceKind::Retire | TraceKind::Corrupt => {
                w.instant(&rec.kind.to_string(), "fault", rec.master, cursor);
            }
        }
    }
    w.finish()
}

/// Geometry and workload of one [`trace_run`].
#[derive(Clone, Debug, PartialEq)]
pub struct TraceRunConfig {
    /// Protocol name (see `moesi::protocols::by_name`); all nodes run it.
    pub protocol: String,
    /// Number of cached processor nodes.
    pub cpus: usize,
    /// Line size in bytes (at least one 4-byte word).
    pub line_size: usize,
    /// Per-node cache capacity in bytes.
    pub cache_bytes: usize,
    /// Accesses to drive (round-robin over the nodes).
    pub steps: u64,
    /// Distinct lines in the working set.
    pub lines: u64,
    /// Seed for the workload (and the fault plan, when present).
    pub seed: u64,
    /// Optional fault plan to install on the bus.
    pub faults: Option<FaultConfig>,
}

impl Default for TraceRunConfig {
    fn default() -> Self {
        TraceRunConfig {
            protocol: "moesi".into(),
            cpus: 4,
            line_size: 16,
            cache_bytes: 1024,
            steps: 400,
            lines: 64,
            seed: 7,
            faults: None,
        }
    }
}

/// Runs one traced exemplar machine and returns its Chrome trace JSON.
///
/// # Errors
///
/// Returns a message for an unknown protocol or an empty geometry.
pub fn trace_run(cfg: &TraceRunConfig) -> Result<String, String> {
    if cfg.cpus == 0 || cfg.steps == 0 || cfg.lines == 0 || cfg.line_size < 4 {
        return Err("trace run needs cpus, steps, lines and a >= 4-byte line".into());
    }
    let controllers: Vec<CacheController> = (0..cfg.cpus)
        .map(|id| {
            let protocol = by_name(&cfg.protocol, cfg.seed.wrapping_add(id as u64))
                .ok_or_else(|| format!("unknown protocol `{}`", cfg.protocol))?;
            let cache = (protocol.kind() != CacheKind::NonCaching)
                .then(|| CacheConfig::new(cfg.cache_bytes, cfg.line_size, 2, ReplacementKind::Lru));
            Ok(CacheController::new(
                id,
                protocol,
                cache,
                cfg.seed.wrapping_add(id as u64),
            ))
        })
        .collect::<Result<_, String>>()?;
    let mut fabric = Fabric::new(cfg.line_size, TimingConfig::default(), controllers);
    fabric.tolerate_bus_errors(true);
    fabric.bus_mut().enable_trace(TRACE_CAPACITY);
    fabric.bus_mut().enable_phase_events();
    if let Some(faults) = cfg.faults {
        fabric.bus_mut().inject_faults(FaultPlan::new(faults));
    }

    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    for step in 0..cfg.steps {
        let cpu = (step as usize) % cfg.cpus;
        let line = rng.gen_range(0..cfg.lines);
        let word = rng.gen_range(0..(cfg.line_size / 4) as u64);
        let addr = line * cfg.line_size as u64 + word * 4;
        if rng.gen_bool(0.5) {
            let bytes = vec![rng.gen_range(0u16..256) as u8; 4];
            fabric.write_with(cpu, addr, &bytes, |_, _| {});
        } else {
            let _ = fabric.read(cpu, addr, 4);
        }
    }
    let _ = fabric.drain_bus_errors();
    Ok(chrome_trace(fabric.bus()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_clean_run_emits_phase_durations_and_no_fault_instants() {
        let text = trace_run(&TraceRunConfig::default()).unwrap();
        assert!(text.starts_with("{\n"), "{text}");
        assert!(text.ends_with("\n]\n}\n"), "{text}");
        assert!(text.contains("\"displayTimeUnit\": \"ns\""));
        assert!(
            text.contains("\"name\": \"data-transfer\""),
            "every completed transaction charges its data phase"
        );
        assert!(
            text.matches("\"ph\": \"X\"").count() > 100,
            "{}",
            text.len()
        );
        assert_eq!(text.matches("\"ph\": \"i\"").count(), 0);
        assert!(!text.contains(",\n]"), "no trailing comma");
    }

    #[test]
    fn faulted_runs_place_instant_events() {
        let cfg = TraceRunConfig {
            faults: Some(FaultConfig {
                glitch_rate: 0.5,
                ..FaultConfig::default()
            }),
            ..TraceRunConfig::default()
        };
        let text = trace_run(&cfg).unwrap();
        assert!(text.contains("\"name\": \"GLTCH\""), "glitches must land");
        assert!(text.contains("\"cat\": \"fault\""));
        assert!(
            text.contains("\"name\": \"snoop-resolve\""),
            "each glitch charges a settle window to snoop-resolve"
        );
    }

    #[test]
    fn traces_are_a_pure_function_of_the_config() {
        let cfg = TraceRunConfig {
            steps: 120,
            ..TraceRunConfig::default()
        };
        assert_eq!(trace_run(&cfg).unwrap(), trace_run(&cfg).unwrap());
    }

    #[test]
    fn bad_configs_are_rejected() {
        let unknown = TraceRunConfig {
            protocol: "mesif".into(),
            ..TraceRunConfig::default()
        };
        assert!(trace_run(&unknown).unwrap_err().contains("mesif"));
        let empty = TraceRunConfig {
            steps: 0,
            ..TraceRunConfig::default()
        };
        assert!(trace_run(&empty).is_err());
    }

    #[test]
    fn phase_events_tile_the_occupancy_timeline() {
        // The last duration event of each transaction ends where the
        // transaction's slice ends; summed phase durations equal busy_ns.
        let cfg = TraceRunConfig {
            steps: 60,
            ..TraceRunConfig::default()
        };
        let fabric = {
            // Re-run the workload by hand to inspect the bus afterwards.
            let cfg = cfg.clone();
            let controllers: Vec<CacheController> = (0..cfg.cpus)
                .map(|id| {
                    let protocol = by_name(&cfg.protocol, cfg.seed + id as u64).unwrap();
                    let cache = Some(CacheConfig::new(
                        cfg.cache_bytes,
                        cfg.line_size,
                        2,
                        ReplacementKind::Lru,
                    ));
                    CacheController::new(id, protocol, cache, cfg.seed + id as u64)
                })
                .collect();
            let mut fabric = Fabric::new(cfg.line_size, TimingConfig::default(), controllers);
            fabric.bus_mut().enable_phase_events();
            let mut rng = SmallRng::seed_from_u64(cfg.seed);
            for step in 0..cfg.steps {
                let cpu = (step as usize) % cfg.cpus;
                let line = rng.gen_range(0..cfg.lines);
                let addr = line * cfg.line_size as u64;
                if rng.gen_bool(0.5) {
                    fabric.write_with(cpu, addr, &[1, 2, 3, 4], |_, _| {});
                } else {
                    let _ = fabric.read(cpu, addr, 4);
                }
            }
            fabric
        };
        let charged: u64 = fabric
            .bus()
            .phase_events()
            .iter()
            .map(|ev| ev.phase_ns.iter().sum::<u64>())
            .sum();
        assert_eq!(charged, fabric.bus().stats().busy_ns);
    }
}
