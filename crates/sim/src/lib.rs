//! # mpsim — a shared-bus multiprocessor simulator for the MOESI class
//!
//! The evaluation vehicle of the Sweazey–Smith (ISCA 1986) reproduction: it
//! assembles processors (with copy-back caches, write-through caches, or no
//! cache at all), snooping [`CacheController`]s running any `moesi::Protocol`,
//! one `futurebus::Futurebus`, and drives synthetic workloads over the whole
//! machine while a consistency oracle audits the shared memory image.
//!
//! ## Quick start
//!
//! ```
//! use cache_array::CacheConfig;
//! use moesi::protocols::{MoesiPreferred, WriteThrough};
//! use mpsim::SystemBuilder;
//!
//! let mut sys = SystemBuilder::new(32)
//!     .cache(Box::new(MoesiPreferred::new()), CacheConfig::small())
//!     .cache(Box::new(WriteThrough::new()), CacheConfig::small())
//!     .checking(true) // panic on any consistency violation
//!     .build();
//!
//! sys.write(0, 0x1000, b"abcd");
//! assert_eq!(sys.read(1, 0x1000, 4), b"abcd");
//! println!("{}", sys.bus_stats());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod campaign;
mod checker;
mod controller;
pub mod engine;
mod fabric;
pub mod faults;
pub mod hierarchy;
mod metrics;
pub mod profile;
pub mod replay;
mod system;
pub mod workload;

pub use campaign::{default_jobs, merge_phase_histograms, run_jobs, SHARD_REGIONS};
pub use checker::{Checker, Violation};
pub use controller::CacheController;
pub use fabric::Fabric;
pub use faults::{
    campaign_report_json, hierarchy_report_json, liveness_probe_json, run_campaign,
    run_hierarchy_campaign, run_liveness_probe, CampaignConfig, CampaignReport, FaultClass,
    FaultVerdict, HierarchyCampaignConfig, HierarchyReport, HierarchyRun, LivenessOutcome,
    LivenessProbe, ProtocolRun,
};
pub use metrics::{CpuStats, MachineReport, StateCensus, TimedReport};
pub use profile::{chrome_trace, trace_run, TraceRunConfig};
pub use replay::{replay, ReplayFault, ReplayOp, ReplayOutcome, Trace, TraceStep};
pub use system::{System, SystemBuilder};
pub use workload::{
    Access, DuboisBriggs, FalseSharing, Migratory, ParseTraceError, PingPong, ProducerConsumer,
    ReadMostly, RefStream, Sequential, SharingModel, TraceReplay,
};
