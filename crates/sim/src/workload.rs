//! Synthetic shared-memory reference streams.
//!
//! §5.2 grounds its protocol preferences in Archibald & Baer's simulations,
//! which "are based only on a model of program behavior \[Dubo82\]" — the
//! Dubois–Briggs model of private and shared blocks with fixed shared-access
//! and write probabilities. [`DuboisBriggs`] reproduces that model, and the
//! deterministic kernels ([`PingPong`], [`ProducerConsumer`], [`Migratory`],
//! [`ReadMostly`], [`Sequential`]) exercise the sharing patterns the
//! coherence literature names.

use moesi::rng::SmallRng;

/// One memory access issued by a processor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Access {
    /// Byte address.
    pub addr: u64,
    /// Access size in bytes.
    pub size: usize,
    /// Write (true) or read (false).
    pub is_write: bool,
}

impl Access {
    /// A read of `size` bytes.
    #[must_use]
    pub fn read(addr: u64, size: usize) -> Self {
        Access {
            addr,
            size,
            is_write: false,
        }
    }

    /// A write of `size` bytes.
    #[must_use]
    pub fn write(addr: u64, size: usize) -> Self {
        Access {
            addr,
            size,
            is_write: true,
        }
    }
}

/// An endless per-processor reference stream.
pub trait RefStream {
    /// Produces the next access for this processor.
    fn next_access(&mut self) -> Access;
}

impl std::fmt::Debug for dyn RefStream + Send {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("RefStream")
    }
}

/// Base address of the shared region used by all generators.
pub const SHARED_BASE: u64 = 0x1000_0000;
/// Base address of processor-private regions; each CPU gets 1 MiB.
pub const PRIVATE_BASE: u64 = 0x2000_0000;
/// Stride between per-CPU private regions.
pub const PRIVATE_STRIDE: u64 = 0x10_0000;

/// The private region base for a CPU.
#[must_use]
pub fn private_base(cpu: usize) -> u64 {
    PRIVATE_BASE + cpu as u64 * PRIVATE_STRIDE
}

/// Parameters of the Dubois–Briggs synthetic sharing model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SharingModel {
    /// Number of shared lines in the common pool.
    pub shared_lines: u64,
    /// Number of private lines per processor.
    pub private_lines: u64,
    /// Probability that a reference targets the shared pool.
    pub p_shared: f64,
    /// Probability that a reference is a write.
    pub p_write: f64,
    /// Probability of re-referencing the previous line (temporal locality).
    pub p_rereference: f64,
    /// Line size in bytes (addresses are spread across whole lines).
    pub line_size: u64,
}

impl Default for SharingModel {
    /// Archibald-&-Baer-flavoured defaults: a small hot shared pool, larger
    /// private working sets, 30% writes, mild locality.
    fn default() -> Self {
        SharingModel {
            shared_lines: 16,
            private_lines: 64,
            p_shared: 0.2,
            p_write: 0.3,
            p_rereference: 0.5,
            line_size: 32,
        }
    }
}

/// The Dubois–Briggs random reference generator for one processor.
#[derive(Debug)]
pub struct DuboisBriggs {
    cpu: usize,
    model: SharingModel,
    rng: SmallRng,
    last: Option<u64>,
}

impl DuboisBriggs {
    /// Creates a stream for `cpu` with the given model and seed.
    ///
    /// # Panics
    ///
    /// Panics if the model probabilities are outside `[0, 1]` or the pools
    /// are empty.
    #[must_use]
    pub fn new(cpu: usize, model: SharingModel, seed: u64) -> Self {
        assert!(
            (0.0..=1.0).contains(&model.p_shared),
            "p_shared out of range"
        );
        assert!((0.0..=1.0).contains(&model.p_write), "p_write out of range");
        assert!(
            (0.0..=1.0).contains(&model.p_rereference),
            "p_rereference out of range"
        );
        assert!(
            model.shared_lines > 0 && model.private_lines > 0,
            "empty pools"
        );
        DuboisBriggs {
            cpu,
            model,
            rng: SmallRng::seed_from_u64(seed ^ (cpu as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            last: None,
        }
    }
}

impl RefStream for DuboisBriggs {
    fn next_access(&mut self) -> Access {
        let m = self.model;
        let line = if let Some(last) = self.last.filter(|_| self.rng.gen_bool(m.p_rereference)) {
            last
        } else if self.rng.gen_bool(m.p_shared) {
            SHARED_BASE + self.rng.gen_range(0..m.shared_lines) * m.line_size
        } else {
            private_base(self.cpu) + self.rng.gen_range(0..m.private_lines) * m.line_size
        };
        self.last = Some(line);
        let offset = self.rng.gen_range(0..m.line_size / 4) * 4;
        let is_write = self.rng.gen_bool(m.p_write);
        Access {
            addr: line + offset,
            size: 4,
            is_write,
        }
    }
}

/// Two (or more) processors alternately writing one shared line — the
/// worst case for invalidation protocols, the best case for updates.
#[derive(Clone, Debug)]
pub struct PingPong {
    cpu: usize,
    line: u64,
    step: u64,
}

impl PingPong {
    /// Creates the stream for `cpu`; all participants must use the same
    /// `line` index into the shared region.
    #[must_use]
    pub fn new(cpu: usize, line: u64, line_size: u64) -> Self {
        PingPong {
            cpu,
            line: SHARED_BASE + line * line_size,
            step: 0,
        }
    }
}

impl RefStream for PingPong {
    fn next_access(&mut self) -> Access {
        self.step += 1;
        // Read then write, forever: a migratory read-modify-write per step,
        // offset by CPU so writes interleave when the system round-robins.
        if self.step % 2 == 1 {
            Access::read(self.line, 4)
        } else {
            Access::write(self.line + 4 * (self.cpu as u64 % 4), 4)
        }
    }
}

/// A producer writing a ring of shared lines that consumers read.
#[derive(Clone, Debug)]
pub struct ProducerConsumer {
    is_producer: bool,
    lines: u64,
    line_size: u64,
    cursor: u64,
}

impl ProducerConsumer {
    /// The producing stream over `lines` shared lines.
    #[must_use]
    pub fn producer(lines: u64, line_size: u64) -> Self {
        ProducerConsumer {
            is_producer: true,
            lines,
            line_size,
            cursor: 0,
        }
    }

    /// A consuming stream over the same ring.
    #[must_use]
    pub fn consumer(lines: u64, line_size: u64) -> Self {
        ProducerConsumer {
            is_producer: false,
            lines,
            line_size,
            cursor: 0,
        }
    }
}

impl RefStream for ProducerConsumer {
    fn next_access(&mut self) -> Access {
        let addr = SHARED_BASE + (self.cursor % self.lines) * self.line_size;
        self.cursor += 1;
        if self.is_producer {
            Access::write(addr, 4)
        } else {
            Access::read(addr, 4)
        }
    }
}

/// Migratory sharing: each processor performs a burst of read-modify-writes
/// on a shared block before (implicitly) passing it on.
#[derive(Clone, Debug)]
pub struct Migratory {
    cpu: usize,
    cpus: usize,
    burst: u64,
    line_size: u64,
    step: u64,
}

impl Migratory {
    /// Creates the stream for `cpu` of `cpus` with `burst` accesses per turn.
    ///
    /// # Panics
    ///
    /// Panics when `cpus` or `burst` is zero.
    #[must_use]
    pub fn new(cpu: usize, cpus: usize, burst: u64, line_size: u64) -> Self {
        assert!(cpus > 0 && burst > 0);
        Migratory {
            cpu,
            cpus,
            burst,
            line_size,
            step: 0,
        }
    }
}

impl RefStream for Migratory {
    fn next_access(&mut self) -> Access {
        let turn = (self.step / self.burst) as usize % self.cpus;
        let addr = SHARED_BASE + (self.step % 4) * self.line_size;
        let mine = turn == self.cpu;
        self.step += 1;
        if mine {
            // Read-modify-write while holding the "token".
            if self.step.is_multiple_of(2) {
                Access::write(addr, 4)
            } else {
                Access::read(addr, 4)
            }
        } else {
            // Touch private data while waiting.
            Access::read(private_base(self.cpu) + (self.step % 8) * self.line_size, 4)
        }
    }
}

/// Read-mostly sharing: everyone reads a shared table; one writer updates it
/// occasionally (every `write_period` accesses).
#[derive(Clone, Debug)]
pub struct ReadMostly {
    cpu: usize,
    writer: usize,
    lines: u64,
    line_size: u64,
    write_period: u64,
    step: u64,
}

impl ReadMostly {
    /// Creates the stream for `cpu`; `writer` is the updating processor.
    ///
    /// # Panics
    ///
    /// Panics when `lines` or `write_period` is zero.
    #[must_use]
    pub fn new(cpu: usize, writer: usize, lines: u64, line_size: u64, write_period: u64) -> Self {
        assert!(lines > 0 && write_period > 0);
        ReadMostly {
            cpu,
            writer,
            lines,
            line_size,
            write_period,
            step: 0,
        }
    }
}

impl RefStream for ReadMostly {
    fn next_access(&mut self) -> Access {
        self.step += 1;
        let addr = SHARED_BASE + (self.step.wrapping_mul(7) % self.lines) * self.line_size;
        if self.cpu == self.writer && self.step.is_multiple_of(self.write_period) {
            Access::write(addr, 4)
        } else {
            Access::read(addr, 4)
        }
    }
}

/// A private sequential sweep (uniprocessor behaviour; line-size studies).
#[derive(Clone, Debug)]
pub struct Sequential {
    cpu: usize,
    stride: u64,
    span: u64,
    p_write: f64,
    rng: SmallRng,
    cursor: u64,
}

impl Sequential {
    /// Creates a stream sweeping `span` bytes of private memory with the
    /// given stride; `p_write` of the accesses are writes.
    #[must_use]
    pub fn new(cpu: usize, stride: u64, span: u64, p_write: f64, seed: u64) -> Self {
        assert!(stride > 0 && span >= stride);
        Sequential {
            cpu,
            stride,
            span,
            p_write,
            rng: SmallRng::seed_from_u64(seed),
            cursor: 0,
        }
    }
}

impl RefStream for Sequential {
    fn next_access(&mut self) -> Access {
        let addr = private_base(self.cpu) + (self.cursor % (self.span / self.stride)) * self.stride;
        self.cursor += 1;
        let is_write = self.rng.gen_bool(self.p_write);
        Access {
            addr,
            size: 4,
            is_write,
        }
    }
}

/// False sharing: each processor owns a *different word* of the *same* line.
///
/// No data is actually shared, but the coherence protocol cannot know that:
/// every write contends for the line. A classic pathology — update protocols
/// handle it by patching words in place; invalidation protocols ping-pong
/// the whole line.
#[derive(Clone, Debug)]
pub struct FalseSharing {
    cpu: usize,
    line: u64,
    step: u64,
    p_write_period: u64,
}

impl FalseSharing {
    /// Creates the stream for `cpu`; all participants name the same shared
    /// `line` index. Every `write_period`-th access is a write to the CPU's
    /// private word.
    ///
    /// # Panics
    ///
    /// Panics when `write_period` is zero.
    #[must_use]
    pub fn new(cpu: usize, line: u64, line_size: u64, write_period: u64) -> Self {
        assert!(write_period > 0);
        assert!(
            (cpu as u64 + 1) * 4 <= line_size,
            "cpu {cpu}'s word does not fit in a {line_size}-byte line"
        );
        FalseSharing {
            cpu,
            line: SHARED_BASE + line * line_size,
            step: 0,
            p_write_period: write_period,
        }
    }
}

impl RefStream for FalseSharing {
    fn next_access(&mut self) -> Access {
        self.step += 1;
        let addr = self.line + self.cpu as u64 * 4; // this CPU's own word
        if self.step.is_multiple_of(self.p_write_period) {
            Access::write(addr, 4)
        } else {
            Access::read(addr, 4)
        }
    }
}

/// Replays a fixed access list, cycling when exhausted.
#[derive(Clone, Debug)]
pub struct TraceReplay {
    trace: Vec<Access>,
    cursor: usize,
}

/// Error parsing a textual trace line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number of the offending line (0 for an empty trace).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseTraceError {}

impl TraceReplay {
    /// Creates a replay stream.
    ///
    /// # Panics
    ///
    /// Panics on an empty trace.
    #[must_use]
    pub fn new(trace: Vec<Access>) -> Self {
        assert!(!trace.is_empty(), "trace must not be empty");
        TraceReplay { trace, cursor: 0 }
    }

    /// Parses the classic address-trace text format, one access per line:
    ///
    /// ```text
    /// # comment
    /// R 0x1000 4
    /// W 0x1004 8
    /// ```
    ///
    /// `R`/`W` (case-insensitive), an address (hex with `0x`, or decimal),
    /// and an optional size in bytes (default 4). Blank lines and `#`
    /// comments are skipped.
    ///
    /// # Errors
    ///
    /// Returns a [`ParseTraceError`] naming the offending line, or an
    /// empty-trace error when nothing remains after comment stripping.
    pub fn from_text(text: &str) -> Result<Self, ParseTraceError> {
        let mut trace = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let op = parts.next().expect("non-empty line has a token");
            let is_write = match op.to_ascii_uppercase().as_str() {
                "R" | "READ" => false,
                "W" | "WRITE" => true,
                other => {
                    return Err(ParseTraceError {
                        line: line_no,
                        message: format!("expected R or W, got `{other}`"),
                    })
                }
            };
            let addr_text = parts.next().ok_or_else(|| ParseTraceError {
                line: line_no,
                message: "missing address".to_string(),
            })?;
            let addr = parse_u64(addr_text).ok_or_else(|| ParseTraceError {
                line: line_no,
                message: format!("bad address `{addr_text}`"),
            })?;
            let size = match parts.next() {
                None => 4,
                Some(s) => parse_u64(s)
                    .filter(|&v| v > 0)
                    .ok_or_else(|| ParseTraceError {
                        line: line_no,
                        message: format!("bad size `{s}`"),
                    })? as usize,
            };
            if let Some(extra) = parts.next() {
                return Err(ParseTraceError {
                    line: line_no,
                    message: format!("unexpected trailing `{extra}`"),
                });
            }
            trace.push(Access {
                addr,
                size,
                is_write,
            });
        }
        if trace.is_empty() {
            return Err(ParseTraceError {
                line: 0,
                message: "trace contains no accesses".to_string(),
            });
        }
        Ok(TraceReplay { trace, cursor: 0 })
    }

    /// The parsed accesses.
    #[must_use]
    pub fn accesses(&self) -> &[Access] {
        &self.trace
    }
}

fn parse_u64(s: &str) -> Option<u64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

impl RefStream for TraceReplay {
    fn next_access(&mut self) -> Access {
        let a = self.trace[self.cursor % self.trace.len()];
        self.cursor += 1;
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dubois_briggs_respects_its_probabilities() {
        let model = SharingModel {
            p_shared: 0.5,
            p_write: 0.25,
            p_rereference: 0.0,
            ..SharingModel::default()
        };
        let mut s = DuboisBriggs::new(0, model, 42);
        let n = 20_000;
        let mut shared = 0;
        let mut writes = 0;
        for _ in 0..n {
            let a = s.next_access();
            if a.addr >= SHARED_BASE && a.addr < PRIVATE_BASE {
                shared += 1;
            }
            if a.is_write {
                writes += 1;
            }
        }
        let shared_frac = shared as f64 / n as f64;
        let write_frac = writes as f64 / n as f64;
        assert!(
            (shared_frac - 0.5).abs() < 0.03,
            "shared frac {shared_frac}"
        );
        assert!((write_frac - 0.25).abs() < 0.03, "write frac {write_frac}");
    }

    #[test]
    fn dubois_briggs_stays_within_its_pools() {
        let model = SharingModel::default();
        let mut s = DuboisBriggs::new(2, model, 7);
        for _ in 0..5_000 {
            let a = s.next_access();
            let in_shared = a.addr >= SHARED_BASE
                && a.addr < SHARED_BASE + model.shared_lines * model.line_size;
            let pb = private_base(2);
            let in_private = a.addr >= pb && a.addr < pb + model.private_lines * model.line_size;
            assert!(in_shared || in_private, "stray address {:#x}", a.addr);
            assert_eq!(a.size, 4);
            assert_eq!(a.addr % 4, 0, "word aligned");
        }
    }

    #[test]
    fn distinct_cpus_use_distinct_private_regions() {
        assert_ne!(private_base(0), private_base(1));
        let mut a = DuboisBriggs::new(
            0,
            SharingModel {
                p_shared: 0.0,
                ..Default::default()
            },
            1,
        );
        let mut b = DuboisBriggs::new(
            1,
            SharingModel {
                p_shared: 0.0,
                ..Default::default()
            },
            1,
        );
        for _ in 0..100 {
            let ra = a.next_access();
            let rb = b.next_access();
            assert!(ra.addr < private_base(1));
            assert!(rb.addr >= private_base(1));
        }
    }

    #[test]
    fn ping_pong_alternates_read_write_on_one_line() {
        let mut s = PingPong::new(0, 3, 32);
        let a = s.next_access();
        let b = s.next_access();
        assert!(!a.is_write);
        assert!(b.is_write);
        assert_eq!(a.addr & !31, b.addr & !31, "same line");
        assert_eq!(a.addr & !31, SHARED_BASE + 3 * 32);
    }

    #[test]
    fn producer_writes_consumer_reads_the_same_ring() {
        let mut p = ProducerConsumer::producer(4, 32);
        let mut c = ProducerConsumer::consumer(4, 32);
        for _ in 0..8 {
            let w = p.next_access();
            let r = c.next_access();
            assert!(w.is_write);
            assert!(!r.is_write);
            assert_eq!(w.addr, r.addr);
        }
    }

    #[test]
    fn migratory_writes_shared_only_on_own_turn() {
        let mut s = Migratory::new(1, 2, 4, 32);
        for step in 0..32 {
            let a = s.next_access();
            let my_turn = (step / 4) % 2 == 1;
            if a.is_write {
                assert!(my_turn, "wrote shared data off-turn at step {step}");
                assert!(a.addr >= SHARED_BASE && a.addr < PRIVATE_BASE);
            }
        }
    }

    #[test]
    fn read_mostly_writes_come_only_from_the_writer() {
        let mut w = ReadMostly::new(0, 0, 8, 32, 10);
        let mut r = ReadMostly::new(1, 0, 8, 32, 10);
        let writer_writes = (0..100).filter(|_| w.next_access().is_write).count();
        let reader_writes = (0..100).filter(|_| r.next_access().is_write).count();
        assert_eq!(writer_writes, 10);
        assert_eq!(reader_writes, 0);
    }

    #[test]
    fn sequential_cycles_through_its_span() {
        let mut s = Sequential::new(0, 16, 64, 0.0, 9);
        let addrs: Vec<u64> = (0..8).map(|_| s.next_access().addr).collect();
        let base = private_base(0);
        assert_eq!(
            addrs,
            vec![
                base,
                base + 16,
                base + 32,
                base + 48,
                base,
                base + 16,
                base + 32,
                base + 48
            ]
        );
    }

    #[test]
    fn false_sharing_stays_within_one_line_distinct_words() {
        let mut a = FalseSharing::new(0, 2, 32, 4);
        let mut b = FalseSharing::new(1, 2, 32, 4);
        for _ in 0..20 {
            let ra = a.next_access();
            let rb = b.next_access();
            assert_eq!(ra.addr & !31, rb.addr & !31, "same line");
            assert_ne!(ra.addr, rb.addr, "different words");
        }
    }

    #[test]
    fn false_sharing_write_period() {
        let mut s = FalseSharing::new(0, 0, 32, 4);
        let writes = (0..40).filter(|_| s.next_access().is_write).count();
        assert_eq!(writes, 10);
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn false_sharing_rejects_too_many_cpus() {
        let _ = FalseSharing::new(8, 0, 32, 4);
    }

    #[test]
    fn trace_text_parses_the_classic_format() {
        let t = TraceReplay::from_text("# warm-up\nR 0x1000\nW 0x1004 8  # store\n\nread 256 2\n")
            .expect("valid trace");
        assert_eq!(
            t.accesses(),
            &[
                Access::read(0x1000, 4),
                Access::write(0x1004, 8),
                Access::read(256, 2),
            ]
        );
    }

    #[test]
    fn trace_text_reports_errors_with_line_numbers() {
        let err = TraceReplay::from_text("R 0x10\nX 0x20\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("expected R or W"));

        let err = TraceReplay::from_text("R\n").unwrap_err();
        assert!(err.message.contains("missing address"));

        let err = TraceReplay::from_text("R zzz\n").unwrap_err();
        assert!(err.message.contains("bad address"));

        let err = TraceReplay::from_text("W 0x10 0\n").unwrap_err();
        assert!(err.message.contains("bad size"));

        let err = TraceReplay::from_text("W 0x10 4 junk\n").unwrap_err();
        assert!(err.message.contains("trailing"));

        let err = TraceReplay::from_text("# only comments\n").unwrap_err();
        assert_eq!(err.line, 0);
    }

    #[test]
    fn trace_replay_cycles() {
        let mut t = TraceReplay::new(vec![Access::read(0, 4), Access::write(8, 4)]);
        assert_eq!(t.next_access(), Access::read(0, 4));
        assert_eq!(t.next_access(), Access::write(8, 4));
        assert_eq!(t.next_access(), Access::read(0, 4));
    }

    #[test]
    fn same_seed_reproduces_the_stream() {
        let model = SharingModel::default();
        let mut a = DuboisBriggs::new(3, model, 77);
        let mut b = DuboisBriggs::new(3, model, 77);
        for _ in 0..100 {
            assert_eq!(a.next_access(), b.next_access());
        }
    }
}
