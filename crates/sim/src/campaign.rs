//! A zero-dependency worker pool for sharding independent simulations.
//!
//! Every campaign-style driver in this workspace — the fault campaign, the
//! verifier's protocol matrix, the benchmark sweep — has the same shape: a
//! list of *independent* jobs (a protocol name, a seed, a pair of protocols),
//! each of which builds its own seeded [`crate::System`] and runs it to
//! completion. The jobs share nothing, so they parallelise trivially; what
//! they must **not** share is the output order, which has to be a pure
//! function of the job list so that `--jobs 4` and `--jobs 1` print the same
//! report byte for byte.
//!
//! [`run_jobs`] provides exactly that contract on plain [`std::thread`]:
//!
//! * jobs are claimed off a shared atomic cursor (cheap work stealing — a
//!   slow job never strands the queue behind it);
//! * each result lands in the slot of *its own* job index, so the returned
//!   `Vec` is always in job order, regardless of worker count or scheduling;
//! * `workers == 1` degenerates to a plain in-order loop on the caller's
//!   thread (no spawn overhead, bit-identical to the sequential code it
//!   replaced).
//!
//! Jobs are plain data (`J: Send`) and systems are constructed *inside* the
//! worker closure, so `System` itself never needs to cross a thread
//! boundary.

use futurebus::PhaseHistograms;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The fixed count of address-interleaved regions a sharded run splits one
/// machine's workload into (`region = (addr / line) % SHARD_REGIONS`). A
/// shard worker count only decides how many threads run the regions, never
/// the partition itself, so a sharded result is byte-identical for every
/// worker count ≥ 1.
pub const SHARD_REGIONS: usize = 4;

/// The default worker count: the machine's available parallelism, or 1 when
/// the OS will not say.
#[must_use]
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// Runs `worker` over every job on `workers` threads, returning the results
/// **in job order** regardless of how many workers ran or how the scheduler
/// interleaved them.
///
/// `workers` is clamped to `1..=jobs.len()`; with one worker the jobs run
/// sequentially on the calling thread. The worker closure is shared by all
/// threads, so it takes `&self` state only (`Fn`, not `FnMut`).
///
/// # Panics
///
/// Propagates a panic from any worker thread (the pool joins before
/// returning, so no work is silently lost).
pub fn run_jobs<J, R, F>(jobs: Vec<J>, workers: usize, worker: F) -> Vec<R>
where
    J: Send,
    R: Send,
    F: Fn(J) -> R + Sync,
{
    let n = jobs.len();
    let workers = workers.clamp(1, n.max(1));
    if workers <= 1 {
        return jobs.into_iter().map(worker).collect();
    }

    // Each job moves into a slot; each worker claims the next unclaimed index
    // and deposits the result into the matching output slot.
    let job_slots: Vec<Mutex<Option<J>>> = jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let out_slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let cursor = AtomicUsize::new(0);

    std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            handles.push(scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let job = job_slots[i]
                    .lock()
                    .unwrap()
                    .take()
                    .expect("job claimed once");
                let result = worker(job);
                *out_slots[i].lock().unwrap() = Some(result);
            }));
        }
        for h in handles {
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });

    out_slots
        .into_iter()
        .map(|slot| slot.into_inner().unwrap().expect("every job ran"))
        .collect()
}

/// Folds per-job phase histograms into one aggregate, **in job order**.
///
/// Histogram merging is a bucket-wise sum, so the fold is commutative — but
/// campaign drivers still merge in job order so the aggregate is a pure
/// function of the job list, matching the `--jobs N` ≡ `--jobs 1` contract
/// everything else in this module honours.
#[must_use]
pub fn merge_phase_histograms<I>(parts: I) -> PhaseHistograms
where
    I: IntoIterator<Item = PhaseHistograms>,
{
    let mut total = PhaseHistograms::new();
    for part in parts {
        total.merge(&part);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use futurebus::Phase;

    #[test]
    fn merged_histograms_are_independent_of_sharding() {
        // Simulate per-job observation: each job records its own samples,
        // the driver merges the shards in job order.
        let observe = |seed: u64| {
            let mut h = PhaseHistograms::new();
            let mut phases = [0u64; Phase::PIPELINE.len()];
            for (i, slot) in phases.iter_mut().enumerate() {
                *slot = seed * 100 + i as u64;
            }
            h.record_txn(&phases);
            h
        };
        let jobs: Vec<u64> = (0..16).collect();
        let seq = merge_phase_histograms(run_jobs(jobs.clone(), 1, observe));
        let par = merge_phase_histograms(run_jobs(jobs, 5, observe));
        assert_eq!(seq, par);
        assert_eq!(seq.phase(Phase::Arbitrate).samples(), 16);
        let total: u64 = seq.sums().iter().sum();
        let want: u64 = (0..16u64)
            .map(|s| {
                (0..Phase::PIPELINE.len() as u64)
                    .map(|i| s * 100 + i)
                    .sum::<u64>()
            })
            .sum();
        assert_eq!(total, want);
    }

    #[test]
    fn results_come_back_in_job_order() {
        let jobs: Vec<usize> = (0..64).collect();
        for workers in [1, 2, 3, 8, 64, 200] {
            let got = run_jobs(jobs.clone(), workers, |j| j * j);
            let want: Vec<usize> = (0..64).map(|j| j * j).collect();
            assert_eq!(got, want, "workers={workers}");
        }
    }

    #[test]
    fn parallel_matches_sequential_for_seeded_sims() {
        // The real contract: sharded seeded simulations merge identically.
        let jobs: Vec<u64> = (0..12).collect();
        let run = |seed: u64| {
            let mut rng = moesi::rng::SmallRng::seed_from_u64(seed);
            (0..100).map(|_| rng.next_u64() & 0xFF).sum::<u64>()
        };
        let seq = run_jobs(jobs.clone(), 1, run);
        let par = run_jobs(jobs, 4, run);
        assert_eq!(seq, par);
    }

    #[test]
    fn empty_job_list_is_fine() {
        let got: Vec<u32> = run_jobs(Vec::<u32>::new(), 8, |j| j);
        assert!(got.is_empty());
    }

    #[test]
    fn single_worker_runs_on_the_calling_thread() {
        let caller = std::thread::current().id();
        let ids = run_jobs(vec![(), ()], 1, |()| std::thread::current().id());
        assert!(ids.iter().all(|id| *id == caller));
    }

    #[test]
    fn default_jobs_is_at_least_one() {
        assert!(default_jobs() >= 1);
    }
}
