//! The shared-bus multiprocessor: processors, caches, memory, one Futurebus.
//!
//! [`SystemBuilder`] assembles a heterogeneous machine — any mixture of
//! protocols per node, exactly as §3.4 promises ("different boards on the bus
//! can implement different protocols, provided that each comes from this
//! class") — and [`System`] drives it: every processor read or write becomes
//! cache lookups, protocol consultations and Futurebus transactions, with the
//! [`Checker`] oracle auditing the shared memory image after every access
//! when enabled. The access engine itself lives in [`Fabric`](crate::Fabric).

use cache_array::CacheConfig;
use futurebus::{BusStats, TimingConfig};
use moesi::{CacheKind, LineState, Protocol};

use crate::checker::{Checker, Violation};
use crate::controller::CacheController;
use crate::engine::{EventQueue, Popped};
use crate::fabric::Fabric;
use crate::metrics::{CpuStats, MachineReport};
use crate::workload::{Access, RefStream};

/// Builds a [`System`].
///
/// # Examples
///
/// ```
/// use mpsim::SystemBuilder;
/// use moesi::protocols::{Dragon, MoesiPreferred, NonCaching};
/// use cache_array::CacheConfig;
///
/// let mut sys = SystemBuilder::new(32)
///     .cache(Box::new(MoesiPreferred::new()), CacheConfig::small())
///     .cache(Box::new(Dragon::new()), CacheConfig::small())
///     .uncached(Box::new(NonCaching::new()))
///     .checking(true)
///     .build();
/// sys.write(0, 0x1000, &[1, 2, 3, 4]);
/// assert_eq!(sys.read(2, 0x1000, 4), vec![1, 2, 3, 4]);
/// ```
#[derive(Debug)]
pub struct SystemBuilder {
    line_size: usize,
    timing: TimingConfig,
    nodes: Vec<(Box<dyn Protocol + Send>, Option<CacheConfig>)>,
    checking: bool,
    seed: u64,
}

impl SystemBuilder {
    /// Starts a builder for a system with the given (standard, §5.1) line
    /// size in bytes.
    #[must_use]
    pub fn new(line_size: usize) -> Self {
        SystemBuilder {
            line_size,
            timing: TimingConfig::default(),
            nodes: Vec::new(),
            checking: false,
            seed: 0x5EED,
        }
    }

    /// Sets the bus timing model.
    #[must_use]
    pub fn timing(mut self, timing: TimingConfig) -> Self {
        self.timing = timing;
        self
    }

    /// Enables the consistency oracle (verified after every access).
    #[must_use]
    pub fn checking(mut self, on: bool) -> Self {
        self.checking = on;
        self
    }

    /// Seeds the replacement-policy RNGs.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Adds a caching node (copy-back or write-through protocol).
    ///
    /// # Panics
    ///
    /// Panics if the cache's line size differs from the system's — §5.1: "a
    /// given system \[must\] standardize on a given line size".
    #[must_use]
    pub fn cache(mut self, protocol: Box<dyn Protocol + Send>, config: CacheConfig) -> Self {
        assert_eq!(
            config.line_size, self.line_size,
            "§5.1: all caches must use the system line size ({} != {})",
            config.line_size, self.line_size
        );
        assert_ne!(
            protocol.kind(),
            CacheKind::NonCaching,
            "use `uncached` for non-caching protocols"
        );
        self.nodes.push((protocol, Some(config)));
        self
    }

    /// Adds a non-caching node (a bare processor or I/O board).
    ///
    /// # Panics
    ///
    /// Panics if the protocol is a caching one.
    #[must_use]
    pub fn uncached(mut self, protocol: Box<dyn Protocol + Send>) -> Self {
        assert_eq!(
            protocol.kind(),
            CacheKind::NonCaching,
            "use `cache` for caching protocols"
        );
        self.nodes.push((protocol, None));
        self
    }

    /// Assembles the system.
    ///
    /// # Panics
    ///
    /// Panics when no nodes were added.
    #[must_use]
    pub fn build(self) -> System {
        assert!(!self.nodes.is_empty(), "a system needs at least one node");
        let controllers: Vec<CacheController> = self
            .nodes
            .into_iter()
            .enumerate()
            .map(|(id, (protocol, cfg))| {
                CacheController::new(id, protocol, cfg, self.seed.wrapping_add(id as u64))
            })
            .collect();
        System {
            fabric: Fabric::new(self.line_size, self.timing, controllers),
            checker: if self.checking {
                Some(Checker::new(self.line_size))
            } else {
                None
            },
            write_seq: 0,
        }
    }
}

/// A running shared-bus multiprocessor.
#[derive(Debug)]
pub struct System {
    fabric: Fabric,
    checker: Option<Checker>,
    write_seq: u32,
}

impl System {
    /// Number of nodes.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.fabric.nodes()
    }

    /// The system line size.
    #[must_use]
    pub fn line_size(&self) -> usize {
        self.fabric.line_size()
    }

    /// A node's statistics.
    #[must_use]
    pub fn stats(&self, cpu: usize) -> &CpuStats {
        self.fabric.controller(cpu).stats()
    }

    /// Sum of all nodes' statistics.
    #[must_use]
    pub fn total_stats(&self) -> CpuStats {
        let mut total = CpuStats::new();
        for c in self.fabric.controllers() {
            total += *c.stats();
        }
        total
    }

    /// The bus statistics.
    #[must_use]
    pub fn bus_stats(&self) -> &BusStats {
        self.fabric.bus().stats()
    }

    /// Per-phase bus latency histograms accumulated so far.
    #[must_use]
    pub fn phase_histograms(&self) -> &futurebus::PhaseHistograms {
        self.fabric.bus().phase_histograms()
    }

    /// A node's controller (for state inspection in tests).
    #[must_use]
    pub fn controller(&self, cpu: usize) -> &CacheController {
        self.fabric.controller(cpu)
    }

    /// The underlying fabric (advanced: preloading memory, custom drivers).
    #[must_use]
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// Mutable fabric access. Writes made behind the oracle's back will be
    /// reported as violations; use [`System::write`] for checked accesses.
    pub fn fabric_mut(&mut self) -> &mut Fabric {
        &mut self.fabric
    }

    /// The consistency state node `cpu` holds for the line containing `addr`.
    #[must_use]
    pub fn state_of(&self, cpu: usize, addr: u64) -> LineState {
        self.fabric.controller(cpu).state_of(addr)
    }

    /// Verifies the shared-memory-image invariants now.
    ///
    /// # Errors
    ///
    /// Returns the first violation, if any. Always `Ok` when the oracle was
    /// not enabled.
    pub fn verify(&self) -> Result<(), Violation> {
        match &self.checker {
            Some(ck) => ck.verify(self.fabric.controllers(), self.fabric.bus().memory()),
            None => Ok(()),
        }
    }

    /// Processor `cpu` reads `len` bytes at `addr` (any alignment; line
    /// crossers become one transaction per line, §5.1).
    ///
    /// # Panics
    ///
    /// Panics on a consistency violation when the oracle is enabled.
    pub fn read(&mut self, cpu: usize, addr: u64, len: usize) -> Vec<u8> {
        let out = self.fabric.read(cpu, addr, len);
        if let Some(ck) = &self.checker {
            if let Err(v) = ck.check_read(cpu, addr, &out) {
                panic!("consistency violation: {v}");
            }
        }
        self.audit();
        out
    }

    /// Processor `cpu` writes `bytes` at `addr`.
    ///
    /// # Panics
    ///
    /// Panics on a consistency violation when the oracle is enabled.
    pub fn write(&mut self, cpu: usize, addr: u64, bytes: &[u8]) {
        let checker = &mut self.checker;
        self.fabric
            .write_with(cpu, addr, bytes, |piece_addr, piece| {
                if let Some(ck) = checker {
                    ck.record_write(piece_addr, piece);
                }
            });
        self.audit();
    }

    /// An atomic read-modify-write: reads `len` bytes at `addr`, applies `f`,
    /// writes the result back, and returns the *old* bytes.
    ///
    /// Atomicity comes from the bus itself: the Futurebus serialises
    /// transactions and the simulator runs one access at a time, so the
    /// read–modify–write triple is an indivisible bus-locked sequence — the
    /// mechanism 1980s backplanes used for test-and-set.
    ///
    /// # Panics
    ///
    /// Panics if `f` returns a different length than it was given, if the
    /// access crosses a line boundary (locked cycles cannot be split), or on
    /// a consistency violation.
    pub fn atomic_rmw<F>(&mut self, cpu: usize, addr: u64, len: usize, f: F) -> Vec<u8>
    where
        F: FnOnce(&[u8]) -> Vec<u8>,
    {
        assert_eq!(
            self.fabric.line_addr(addr),
            self.fabric.line_addr(addr + len as u64 - 1),
            "a locked read-modify-write must not cross a line"
        );
        let old = self.read(cpu, addr, len);
        let new = f(&old);
        assert_eq!(new.len(), len, "rmw must preserve the operand size");
        self.write(cpu, addr, &new);
        old
    }

    /// An atomic 32-bit little-endian fetch-and-add; returns the old value.
    ///
    /// # Panics
    ///
    /// Panics if the word crosses a line boundary or on a consistency
    /// violation.
    pub fn fetch_add_u32(&mut self, cpu: usize, addr: u64, delta: u32) -> u32 {
        let old = self.atomic_rmw(cpu, addr, 4, |bytes| {
            let v = u32::from_le_bytes(bytes.try_into().expect("4 bytes"));
            v.wrapping_add(delta).to_le_bytes().to_vec()
        });
        u32::from_le_bytes(old.try_into().expect("4 bytes"))
    }

    /// An atomic test-and-set on one byte; returns the old value (0 means the
    /// lock was acquired).
    ///
    /// # Panics
    ///
    /// Panics on a consistency violation.
    pub fn test_and_set(&mut self, cpu: usize, addr: u64) -> u8 {
        self.atomic_rmw(cpu, addr, 1, |_| vec![1])[0]
    }

    /// Releases a [`test_and_set`](System::test_and_set) lock.
    pub fn clear_lock(&mut self, cpu: usize, addr: u64) {
        self.write(cpu, addr, &[0]);
    }

    /// Pushes a dirty line to memory while keeping the copy (Table 1, note 3).
    /// No-op unless node `cpu` holds the line in an owned state.
    pub fn pass(&mut self, cpu: usize, addr: u64) -> bool {
        let did = self.fabric.pass(cpu, addr);
        self.audit();
        did
    }

    /// Flushes (pushes if dirty, then discards) the line containing `addr`
    /// from node `cpu`'s cache (Table 1, note 4). No-op when not resident.
    pub fn flush(&mut self, cpu: usize, addr: u64) -> bool {
        let did = self.fabric.flush(cpu, addr);
        self.audit();
        did
    }

    /// Reads `len` bytes at `addr` directly from main memory, bypassing the
    /// caches and the coherence machinery entirely — what a dumb DMA engine
    /// would observe. Pair with [`make_all_consistent`] first.
    ///
    /// [`make_all_consistent`]: System::make_all_consistent
    #[must_use]
    pub fn memory_peek(&self, addr: u64, len: usize) -> Vec<u8> {
        let line_size = self.fabric.line_size();
        let mut out = Vec::with_capacity(len);
        let mut cur = addr;
        let mut remaining = len;
        while remaining > 0 {
            let line = self.fabric.line_addr(cur);
            let offset = (cur - line) as usize;
            let take = (line_size - offset).min(remaining);
            let data = self.fabric.bus().memory().peek_line(line);
            out.extend_from_slice(&data[offset..offset + take]);
            cur += take as u64;
            remaining -= take;
        }
        out
    }

    /// A census of node `cpu`'s resident lines by MOESI state.
    #[must_use]
    pub fn state_census(&self, cpu: usize) -> crate::StateCensus {
        let mut census = crate::StateCensus::new();
        if let Some(cache) = self.fabric.controller(cpu).cache() {
            for (_, entry) in cache.iter() {
                census.record(entry.state);
            }
        }
        census
    }

    /// A census across all nodes.
    #[must_use]
    pub fn total_state_census(&self) -> crate::StateCensus {
        let mut census = crate::StateCensus::new();
        for cpu in 0..self.nodes() {
            census += self.state_census(cpu);
        }
        census
    }

    /// Enables bus transaction tracing, keeping the most recent `capacity`
    /// records.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.fabric.bus_mut().enable_trace(capacity);
    }

    /// The bus transaction trace (empty unless [`enable_trace`] was called).
    ///
    /// [`enable_trace`]: System::enable_trace
    #[must_use]
    pub fn trace(&self) -> &futurebus::BusTrace {
        self.fabric.bus().trace()
    }

    /// §6's consistency command: makes main memory consistent with the caches
    /// for the line containing `addr` ("issuing commands across the bus to
    /// cause other caches to become consistent with main memory").
    ///
    /// If some cache owns the line, that cache performs a `Pass` (push the
    /// dirty data, keep the copy unowned); afterwards memory holds the
    /// current data, as an I/O device doing uncached reads would need.
    /// Returns true when a push was necessary.
    pub fn make_memory_consistent(&mut self, addr: u64) -> bool {
        let line = self.fabric.line_addr(addr);
        let owner = (0..self.fabric.nodes())
            .find(|&cpu| self.fabric.controller(cpu).state_of(line).is_owned());
        match owner {
            Some(cpu) => self.pass(cpu, line),
            None => false,
        }
    }

    /// §6's consistency command over the whole machine: pushes every owned
    /// line so main memory holds the complete shared image. Returns the
    /// number of lines pushed.
    pub fn make_all_consistent(&mut self) -> usize {
        // Collect first (pushing mutates the caches' states, not residency).
        let owned: Vec<u64> = self
            .fabric
            .controllers()
            .iter()
            .filter_map(|c| c.cache())
            .flat_map(|cache| {
                cache
                    .iter()
                    .filter(|(_, e)| e.state.is_owned())
                    .map(|(addr, _)| addr)
                    .collect::<Vec<_>>()
            })
            .collect();
        let mut pushed = 0;
        for line in owned {
            if self.make_memory_consistent(line) {
                pushed += 1;
            }
        }
        pushed
    }

    /// A [`MachineReport`] snapshot of the run so far: the unit of
    /// byte-exact comparison across shard worker counts and golden traces.
    #[must_use]
    pub fn machine_report(&self) -> MachineReport {
        MachineReport {
            bus: *self.bus_stats(),
            cpus: (0..self.nodes()).map(|cpu| *self.stats(cpu)).collect(),
            trace: self.trace().render(),
        }
    }

    /// Issues one workload access: the engines' shared dispatch. Writes carry
    /// the deterministic sequence-number payload; when no oracle is attached
    /// the access takes the dataless/allocation-free fabric fast paths, which
    /// have byte-identical observable effects.
    fn dispatch_access(&mut self, cpu: usize, access: &Access) {
        if access.is_write {
            self.write_seq = self.write_seq.wrapping_add(1);
            let pattern = self.write_seq.to_le_bytes();
            if self.checker.is_none() {
                let mut buf = [0u8; 64];
                if access.size <= buf.len() {
                    for (i, b) in buf[..access.size].iter_mut().enumerate() {
                        *b = pattern[i % pattern.len()];
                    }
                    self.fabric
                        .write_fast(cpu, access.addr, &buf[..access.size]);
                } else {
                    let bytes: Vec<u8> = (0..access.size)
                        .map(|i| pattern[i % pattern.len()])
                        .collect();
                    self.fabric.write_fast(cpu, access.addr, &bytes);
                }
            } else {
                let bytes: Vec<u8> = (0..access.size)
                    .map(|i| pattern[i % pattern.len()])
                    .collect();
                self.write(cpu, access.addr, &bytes);
            }
        } else if self.checker.is_none() {
            self.fabric.read_dataless(cpu, access.addr, access.size);
        } else {
            let _ = self.read(cpu, access.addr, access.size);
        }
    }

    /// Drives one access from each stream per step, round-robin, for `steps`
    /// rounds. Writes carry a deterministic sequence-number payload so the
    /// oracle can detect lost or reordered updates.
    ///
    /// # Panics
    ///
    /// Panics if the stream count differs from the node count, or on a
    /// consistency violation.
    pub fn run(&mut self, streams: &mut [Box<dyn RefStream + Send>], steps: u64) {
        assert_eq!(streams.len(), self.nodes(), "one reference stream per node");
        self.run_event(streams, steps);
    }

    /// The untimed driver: every access costs one cycle, so the
    /// `(cycle, seq)` queue order reduces to a strict round-robin. The run
    /// ends when the queue reports itself drained — a lane whose budget is
    /// spent simply stops rescheduling.
    fn run_event(&mut self, streams: &mut [Box<dyn RefStream + Send>], steps: u64) {
        let n = self.nodes();
        let mut queue = EventQueue::new(n);
        let mut done = vec![0u64; n];
        while let Popped::Next { cycle, lane: cpu } = queue.pop() {
            if done[cpu] >= steps {
                continue;
            }
            let access = streams[cpu].next_access();
            self.dispatch_access(cpu, &access);
            done[cpu] += 1;
            queue.schedule(cpu, cycle + 1);
        }
    }

    /// A contention-aware timed run: every processor advances a private
    /// clock (`cpu_work_ns` per reference of local work), and accesses that
    /// need the bus queue for the single shared resource — the §1 saturation
    /// model. Processors are simulated in virtual-time order, so coherence
    /// interleavings follow the modelled clocks.
    ///
    /// Returns the wall time, bus occupancy and queueing totals from which
    /// the speedup and utilization curves of the bus-saturation experiment
    /// are computed.
    ///
    /// # Panics
    ///
    /// Panics if the stream count differs from the node count, or on a
    /// consistency violation when the oracle is enabled.
    pub fn run_timed(
        &mut self,
        streams: &mut [Box<dyn RefStream + Send>],
        refs_per_cpu: u64,
        cpu_work_ns: u64,
    ) -> crate::TimedReport {
        assert_eq!(streams.len(), self.nodes(), "one stream per node");
        let n = self.nodes();
        let mut done = vec![0u64; n];
        self.run_timed_event(
            EventQueue::new(n),
            |cpu| {
                if done[cpu] >= refs_per_cpu {
                    None
                } else {
                    done[cpu] += 1;
                    Some(streams[cpu].next_access())
                }
            },
            cpu_work_ns,
        )
    }

    /// A timed run over pre-materialised per-node access scripts instead of
    /// live streams — the shard workers' entry point, where the workload has
    /// already been partitioned by address region.
    ///
    /// # Panics
    ///
    /// Panics if the script count differs from the node count, or on a
    /// consistency violation when the oracle is enabled.
    pub fn run_timed_script(
        &mut self,
        scripts: &[Vec<Access>],
        cpu_work_ns: u64,
    ) -> crate::TimedReport {
        assert_eq!(scripts.len(), self.nodes(), "one script per node");
        let n = self.nodes();
        let mut done = vec![0usize; n];
        self.run_timed_event(
            EventQueue::new(n),
            |cpu| {
                let access = scripts[cpu].get(done[cpu]).copied();
                done[cpu] += access.is_some() as usize;
                access
            },
            cpu_work_ns,
        )
    }

    /// [`run_timed`](System::run_timed) on an explicitly chosen queue
    /// layout, lane count notwithstanding — the boundary tests' hook for
    /// pinning the dense queue and the heap fallback against each other on a
    /// real machine run.
    #[cfg(test)]
    fn run_timed_with_layout(
        &mut self,
        streams: &mut [Box<dyn RefStream + Send>],
        refs_per_cpu: u64,
        cpu_work_ns: u64,
        layout: crate::engine::QueueLayout,
    ) -> crate::TimedReport {
        assert_eq!(streams.len(), self.nodes(), "one stream per node");
        let n = self.nodes();
        let mut done = vec![0u64; n];
        self.run_timed_event(
            EventQueue::with_layout(n, layout),
            |cpu| {
                if done[cpu] >= refs_per_cpu {
                    None
                } else {
                    done[cpu] += 1;
                    Some(streams[cpu].next_access())
                }
            },
            cpu_work_ns,
        )
    }

    /// The timed driver. `next_access(cpu)` returns `None` when that lane's
    /// workload is exhausted. Events execute in `(clock, cpu)` virtual-time
    /// order (see [`crate::engine`]); on top of it the engine *runs ahead* —
    /// after an access, if the lane's new cycle still precedes every queued
    /// event it keeps executing the same lane, skipping the schedule/pop
    /// round-trip. The loop ends when the queue reports [`Popped::Drained`]:
    /// exhausted lanes stop rescheduling, so a stream ending mid-cycle just
    /// drains the queue — it can never panic the engine.
    fn run_timed_event<F>(
        &mut self,
        mut queue: EventQueue,
        mut next_access: F,
        cpu_work_ns: u64,
    ) -> crate::TimedReport
    where
        F: FnMut(usize) -> Option<Access>,
    {
        let mut bus_free: u64 = 0;
        let mut bus_busy: u64 = 0;
        let mut bus_wait: u64 = 0;
        let mut wall: u64 = 0;
        let mut total_refs: u64 = 0;

        while let Popped::Next {
            cycle: mut clock,
            lane: cpu,
        } = queue.pop()
        {
            loop {
                let Some(access) = next_access(cpu) else {
                    wall = wall.max(clock);
                    break;
                };
                let bus_before = self.stats(cpu).bus_ns;
                self.dispatch_access(cpu, &access);
                let bus_used = self.stats(cpu).bus_ns - bus_before;

                clock += cpu_work_ns;
                if bus_used > 0 {
                    let start = clock.max(bus_free);
                    bus_wait += start - clock;
                    bus_free = start + bus_used;
                    bus_busy += bus_used;
                    clock = bus_free;
                }
                total_refs += 1;
                wall = wall.max(clock);
                if !queue.lane_still_first(cpu, clock) {
                    queue.schedule(cpu, clock);
                    break;
                }
            }
        }

        crate::TimedReport {
            wall_ns: wall,
            bus_busy_ns: bus_busy,
            bus_wait_ns: bus_wait,
            total_refs,
            phase_hist: *self.fabric.bus().phase_histograms(),
        }
    }

    /// Drives the streams under explicit bus arbitration: in each of `slots`
    /// bus slots every node requests, the arbiter grants one, and only the
    /// winner issues its next access. Returns accesses completed per node —
    /// the fairness profile of the arbiter (a [`PriorityArbiter`] starves
    /// high-numbered boards; a [`RoundRobinArbiter`] serves everyone).
    ///
    /// [`PriorityArbiter`]: futurebus::PriorityArbiter
    /// [`RoundRobinArbiter`]: futurebus::RoundRobinArbiter
    ///
    /// # Panics
    ///
    /// Panics if the stream count differs from the node count, or on a
    /// consistency violation.
    pub fn run_arbitrated<A: futurebus::Arbiter>(
        &mut self,
        streams: &mut [Box<dyn RefStream + Send>],
        slots: u64,
        arbiter: &mut A,
    ) -> Vec<u64> {
        assert_eq!(streams.len(), self.nodes(), "one stream per node");
        let requesters: Vec<usize> = (0..self.nodes()).collect();
        let mut completed = vec![0u64; self.nodes()];
        for _ in 0..slots {
            let Some(cpu) = arbiter.grant(&requesters) else {
                break;
            };
            let access = streams[cpu].next_access();
            if access.is_write {
                self.write_seq = self.write_seq.wrapping_add(1);
                let pattern = self.write_seq.to_le_bytes();
                let bytes: Vec<u8> = (0..access.size)
                    .map(|i| pattern[i % pattern.len()])
                    .collect();
                self.write(cpu, access.addr, &bytes);
            } else {
                let _ = self.read(cpu, access.addr, access.size);
            }
            completed[cpu] += 1;
        }
        completed
    }

    fn audit(&self) {
        if let Err(v) = self.verify() {
            panic!("consistency violation: {v}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_array::ReplacementKind;
    use moesi::protocols::{
        Berkeley, Dragon, MoesiInvalidating, MoesiPreferred, NonCaching, WriteThrough,
    };

    fn cfg() -> CacheConfig {
        CacheConfig::new(1024, 32, 2, ReplacementKind::Lru)
    }

    fn two_moesi() -> System {
        SystemBuilder::new(32)
            .cache(Box::new(MoesiPreferred::new()), cfg())
            .cache(Box::new(MoesiPreferred::new()), cfg())
            .checking(true)
            .build()
    }

    #[test]
    fn cold_read_enters_exclusive() {
        let mut sys = two_moesi();
        let v = sys.read(0, 0x100, 4);
        assert_eq!(v, vec![0; 4]);
        assert_eq!(sys.state_of(0, 0x100), LineState::Exclusive);
    }

    #[test]
    fn second_reader_makes_both_shareable() {
        let mut sys = two_moesi();
        sys.read(0, 0x100, 4);
        sys.read(1, 0x100, 4);
        assert_eq!(sys.state_of(0, 0x100), LineState::Shareable);
        assert_eq!(sys.state_of(1, 0x100), LineState::Shareable);
    }

    #[test]
    fn exclusive_write_upgrades_silently() {
        let mut sys = two_moesi();
        sys.read(0, 0x100, 4);
        let before = sys.stats(0).bus_transactions;
        sys.write(0, 0x100, &[1, 2, 3, 4]);
        assert_eq!(sys.state_of(0, 0x100), LineState::Modified);
        assert_eq!(sys.stats(0).bus_transactions, before, "no bus traffic");
        assert_eq!(sys.read(0, 0x100, 4), vec![1, 2, 3, 4]);
    }

    #[test]
    fn dirty_read_by_peer_is_served_by_intervention() {
        let mut sys = two_moesi();
        sys.write(0, 0x100, &[9; 4]); // cpu0: I -> M via RWITM
        assert_eq!(sys.state_of(0, 0x100), LineState::Modified);
        let v = sys.read(1, 0x100, 4);
        assert_eq!(v, vec![9; 4]);
        assert_eq!(sys.state_of(0, 0x100), LineState::Owned);
        assert_eq!(sys.state_of(1, 0x100), LineState::Shareable);
        assert_eq!(sys.stats(0).interventions_supplied, 1);
        assert_eq!(sys.bus_stats().interventions, 1);
    }

    #[test]
    fn broadcast_write_updates_the_sharer() {
        let mut sys = two_moesi();
        sys.read(0, 0x100, 4);
        sys.read(1, 0x100, 4);
        // Preferred protocol broadcasts: cpu1's copy is updated, not killed.
        sys.write(0, 0x100, &[7; 4]);
        assert_eq!(sys.state_of(0, 0x100), LineState::Owned);
        assert_eq!(sys.state_of(1, 0x100), LineState::Shareable);
        assert_eq!(sys.stats(1).updates_received, 1);
        assert_eq!(sys.read(1, 0x100, 4), vec![7; 4]);
    }

    #[test]
    fn invalidating_write_kills_the_sharer() {
        let mut sys = SystemBuilder::new(32)
            .cache(Box::new(MoesiInvalidating::new()), cfg())
            .cache(Box::new(MoesiInvalidating::new()), cfg())
            .checking(true)
            .build();
        sys.read(0, 0x100, 4);
        sys.read(1, 0x100, 4);
        sys.write(0, 0x100, &[7; 4]);
        assert_eq!(sys.state_of(0, 0x100), LineState::Modified);
        assert_eq!(sys.state_of(1, 0x100), LineState::Invalid);
        assert_eq!(sys.stats(1).invalidations_received, 1);
        assert_eq!(
            sys.read(1, 0x100, 4),
            vec![7; 4],
            "re-fetched after invalidate"
        );
    }

    #[test]
    fn write_through_cache_keeps_memory_current() {
        let mut sys = SystemBuilder::new(32)
            .cache(Box::new(WriteThrough::new()), cfg())
            .cache(Box::new(MoesiPreferred::new()), cfg())
            .checking(true)
            .build();
        sys.read(0, 0x200, 4);
        assert_eq!(sys.state_of(0, 0x200), LineState::Shareable, "V maps to S");
        sys.write(0, 0x200, &[5; 4]);
        assert_eq!(sys.state_of(0, 0x200), LineState::Shareable);
        // Every write went to the bus.
        assert!(sys.stats(0).bus_transactions >= 2);
        assert_eq!(sys.read(1, 0x200, 4), vec![5; 4]);
    }

    #[test]
    fn non_caching_node_reads_and_writes_past() {
        let mut sys = SystemBuilder::new(32)
            .cache(Box::new(MoesiPreferred::new()), cfg())
            .uncached(Box::new(NonCaching::new()))
            .checking(true)
            .build();
        sys.write(1, 0x300, &[3; 4]);
        assert_eq!(sys.read(1, 0x300, 4), vec![3; 4]);
        assert_eq!(sys.state_of(1, 0x300), LineState::Invalid, "never caches");
        // A cache picks it up, dirties it; the uncached node still reads the
        // right data (via intervention).
        sys.write(0, 0x300, &[4; 4]);
        assert_eq!(sys.state_of(0, 0x300), LineState::Modified);
        assert_eq!(sys.read(1, 0x300, 4), vec![4; 4]);
    }

    #[test]
    fn uncached_write_is_captured_by_the_owner() {
        let mut sys = SystemBuilder::new(32)
            .cache(Box::new(MoesiPreferred::new()), cfg())
            .uncached(Box::new(NonCaching::new()))
            .checking(true)
            .build();
        sys.write(0, 0x300, &[1; 4]); // cpu0 owns the line (M)
        sys.write(1, 0x300, &[2; 4]); // uncached write: owner captures
        assert_eq!(sys.state_of(0, 0x300), LineState::Modified);
        assert_eq!(sys.stats(0).captures, 1);
        assert_eq!(sys.read(0, 0x300, 4), vec![2; 4]);
    }

    #[test]
    fn eviction_of_dirty_line_writes_back() {
        let mut sys = two_moesi();
        // cfg: 1024B, 32B lines, 2-way => 16 sets; same set stride = 512.
        sys.write(0, 0x000, &[1; 4]);
        sys.write(0, 0x200, &[2; 4]);
        sys.write(0, 0x400, &[3; 4]); // evicts 0x000 (LRU), which is dirty
        assert_eq!(sys.state_of(0, 0x000), LineState::Invalid);
        assert_eq!(sys.stats(0).write_backs, 1);
        assert_eq!(sys.read(1, 0x000, 4), vec![1; 4], "memory has it back");
    }

    #[test]
    fn pass_keeps_the_copy_flush_discards_it() {
        let mut sys = two_moesi();
        sys.write(0, 0x100, &[8; 4]);
        assert!(sys.pass(0, 0x100));
        assert_eq!(sys.state_of(0, 0x100), LineState::Exclusive, "M -Pass-> E");
        sys.write(0, 0x100, &[9; 4]); // silent upgrade
        assert!(sys.flush(0, 0x100));
        assert_eq!(sys.state_of(0, 0x100), LineState::Invalid);
        assert_eq!(sys.read(1, 0x100, 4), vec![9; 4]);
        assert!(!sys.flush(0, 0x100), "already gone");
        assert!(!sys.pass(1, 0x999), "pass requires ownership");
    }

    #[test]
    fn read_miss_write_hit_counting() {
        let mut sys = two_moesi();
        sys.read(0, 0x100, 4); // miss
        sys.read(0, 0x100, 4); // hit
        sys.write(0, 0x100, &[1; 4]); // hit (E->M)
        sys.write(0, 0x500, &[1; 4]); // miss
        let st = sys.stats(0);
        assert_eq!(st.reads, 2);
        assert_eq!(st.read_hits, 1);
        assert_eq!(st.writes, 2);
        assert_eq!(st.write_hits, 1);
    }

    #[test]
    fn line_crossing_accesses_are_split() {
        let mut sys = two_moesi();
        let bytes: Vec<u8> = (0..40).collect();
        sys.write(0, 0x100 - 8, &bytes); // crosses two line boundaries
        assert_eq!(sys.read(1, 0x100 - 8, 40), bytes);
        // cpu0 made one access but touched 2 lines => 2 write pieces.
        assert_eq!(sys.stats(0).writes, 2);
    }

    #[test]
    fn mixed_protocol_system_stays_consistent() {
        let mut sys = SystemBuilder::new(32)
            .cache(Box::new(MoesiPreferred::new()), cfg())
            .cache(Box::new(Berkeley::new()), cfg())
            .cache(Box::new(Dragon::new()), cfg())
            .cache(Box::new(WriteThrough::new()), cfg())
            .uncached(Box::new(NonCaching::new()))
            .checking(true)
            .build();
        // Interleave writers and readers over a few shared lines; the oracle
        // panics on any violation.
        for i in 0u64..50 {
            let cpu = (i % 5) as usize;
            let addr = 0x1000 + (i % 4) * 32;
            if i % 3 == 0 {
                sys.write(cpu, addr, &[i as u8; 4]);
            } else {
                let _ = sys.read(cpu, addr, 4);
            }
        }
        assert!(sys.verify().is_ok());
    }

    #[test]
    fn run_drives_streams_and_stays_consistent() {
        use crate::workload::{DuboisBriggs, SharingModel};
        let mut sys = two_moesi();
        let model = SharingModel {
            line_size: 32,
            ..SharingModel::default()
        };
        let mut streams: Vec<Box<dyn RefStream + Send>> = vec![
            Box::new(DuboisBriggs::new(0, model, 1)),
            Box::new(DuboisBriggs::new(1, model, 2)),
        ];
        sys.run(&mut streams, 200);
        let total = sys.total_stats();
        // 2 cpus x 200 steps, one single-line word access each.
        assert_eq!(total.references(), 400);
        assert!(total.hits() > 0, "locality produces hits");
    }

    #[test]
    #[should_panic(expected = "§5.1")]
    fn mismatched_line_sizes_are_rejected() {
        let _ = SystemBuilder::new(32).cache(
            Box::new(MoesiPreferred::new()),
            CacheConfig::new(1024, 16, 2, ReplacementKind::Lru),
        );
    }

    /// A homogeneous MOESI machine with `n` nodes plus its per-node
    /// Dubois–Briggs streams, for the queue-layout boundary tests.
    fn wide_machine(n: usize, seed: u64) -> (System, Vec<Box<dyn RefStream + Send>>) {
        use crate::workload::{DuboisBriggs, SharingModel};
        let mut b = SystemBuilder::new(32);
        for _ in 0..n {
            b = b.cache(Box::new(MoesiPreferred::new()), cfg());
        }
        let model = SharingModel {
            line_size: 32,
            ..SharingModel::default()
        };
        let streams: Vec<Box<dyn RefStream + Send>> = (0..n)
            .map(|cpu| {
                Box::new(DuboisBriggs::new(cpu, model, seed.wrapping_add(cpu as u64)))
                    as Box<dyn RefStream + Send>
            })
            .collect();
        (b.seed(seed).build(), streams)
    }

    /// Runs the same `n`-lane machine once per queue layout and demands
    /// byte-identical timed results — the flat/heap boundary is a layout
    /// choice, never a semantics choice.
    fn assert_layouts_run_identically(n: usize, seed: u64) {
        use crate::engine::QueueLayout;
        let mut reports = Vec::new();
        let mut machines = Vec::new();
        for layout in [QueueLayout::Flat, QueueLayout::Heap] {
            let (mut sys, mut streams) = wide_machine(n, seed);
            reports.push(sys.run_timed_with_layout(&mut streams, 60, 50, layout));
            machines.push(sys.machine_report());
        }
        assert_eq!(reports[0], reports[1], "TimedReport diverged at {n} lanes");
        assert_eq!(
            machines[0], machines[1],
            "MachineReport diverged at {n} lanes"
        );
    }

    #[test]
    fn dense_and_heap_queues_agree_at_exactly_64_lanes() {
        // 64 lanes is the last machine the dense queue serves by default.
        assert_layouts_run_identically(64, 0xB0B);
    }

    #[test]
    fn dense_and_heap_queues_agree_at_65_lanes() {
        // 65 lanes is the first machine that falls back to the heap; forcing
        // the dense layout onto it must not change a single byte.
        assert_layouts_run_identically(65, 0xB0B);
    }
}
