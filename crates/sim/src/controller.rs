//! The snooping cache controller: one node's cache + protocol + bus port.
//!
//! A [`CacheController`] binds a [`Protocol`] policy to a
//! [`CacheArray`] and implements the Futurebus [`BusModule`] callbacks. The
//! *snoop* callback consults the protocol's bus-event table and answers with
//! response lines; the *complete* callback commits the chosen reaction once
//! the wired-OR CH observation is known (the paper's `CH:O/M` and `CH:S/E`
//! results need it); *supply* and *push* serve intervention and BS aborts.
//!
//! Master-side sequencing (what to do on a local read or write, including
//! victim write-backs and `Read>Write` two-transaction cells) lives in
//! [`System`](crate::System), which owns the bus and all controllers.

use cache_array::{CacheArray, CacheConfig, Victim};
use futurebus::{BusModule, BusObservation, LineAddr, PushWrite, RetireReport, TransactionRequest};
use moesi::protocols::NonCaching;
use moesi::{
    BusEvent, BusReaction, CacheKind, IllegalCell, LineState, LocalAction, LocalCtx, LocalEvent,
    Protocol, ResponseSignals, SnoopCtx,
};

use crate::metrics::CpuStats;

/// One bus node: a processor port with (optionally) a cache, driven by a
/// consistency protocol.
#[derive(Debug)]
pub struct CacheController {
    id: usize,
    name: String,
    protocol: Box<dyn Protocol + Send>,
    cache: Option<CacheArray<LineState>>,
    stats: CpuStats,
    pending: Option<PendingSnoop>,
}

#[derive(Clone, Copy, Debug)]
struct PendingSnoop {
    addr: LineAddr,
    reaction: BusReaction,
    had_valid_copy: bool,
}

impl CacheController {
    /// Creates a controller. Non-caching protocols take no cache
    /// configuration; caching ones require it.
    ///
    /// # Panics
    ///
    /// Panics when a caching protocol is given no cache, or a non-caching
    /// one is given a cache.
    #[must_use]
    pub fn new(
        id: usize,
        protocol: Box<dyn Protocol + Send>,
        cache: Option<CacheConfig>,
        seed: u64,
    ) -> Self {
        let caching = protocol.kind() != CacheKind::NonCaching;
        assert_eq!(
            caching,
            cache.is_some(),
            "protocol `{}` {} a cache configuration",
            protocol.name(),
            if caching { "requires" } else { "must not have" }
        );
        let name = format!("cpu{id}:{}", protocol.name());
        CacheController {
            id,
            name,
            protocol,
            cache: cache.map(|cfg| CacheArray::new(cfg, seed)),
            stats: CpuStats::new(),
            pending: None,
        }
    }

    /// The controller's module index on the bus.
    #[must_use]
    pub fn id(&self) -> usize {
        self.id
    }

    /// A display name, `cpu<id>:<protocol>`.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The protocol's client kind.
    #[must_use]
    pub fn kind(&self) -> CacheKind {
        self.protocol.kind()
    }

    /// Whether the protocol needs the BS line.
    #[must_use]
    pub fn requires_bs(&self) -> bool {
        self.protocol.requires_bs()
    }

    /// This node's statistics.
    #[must_use]
    pub fn stats(&self) -> &CpuStats {
        &self.stats
    }

    /// Mutable statistics (the system updates master-side counters).
    pub fn stats_mut(&mut self) -> &mut CpuStats {
        &mut self.stats
    }

    /// The cache array, if this node has one (checker and tests).
    #[must_use]
    pub fn cache(&self) -> Option<&CacheArray<LineState>> {
        self.cache.as_ref()
    }

    /// The consistency state of the line containing `addr` (Invalid when
    /// absent or cacheless).
    #[must_use]
    pub fn state_of(&self, addr: u64) -> LineState {
        self.cache
            .as_ref()
            .and_then(|c| c.state_of(addr))
            .unwrap_or(LineState::Invalid)
    }

    /// Consults the protocol for a local event on `addr`.
    ///
    /// # Panics
    ///
    /// Panics on a `—` cell; [`CacheController::try_decide_local`] is the
    /// fallible form the fabric uses.
    #[must_use]
    pub fn decide_local(&mut self, addr: u64, event: LocalEvent) -> LocalAction {
        self.try_decide_local(addr, event)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`CacheController::decide_local`]: a `—` cell is a structured
    /// [`IllegalCell`] error instead of a panic.
    pub fn try_decide_local(
        &mut self,
        addr: u64,
        event: LocalEvent,
    ) -> Result<LocalAction, IllegalCell> {
        let (state, recency_rank) = match self.cache.as_ref().and_then(|c| c.state_and_rank(addr)) {
            Some((state, rank)) => (state, Some(rank)),
            None => (LineState::Invalid, None),
        };
        let ctx = LocalCtx {
            recency_rank,
            ways: self
                .cache
                .as_ref()
                .map_or(0, |c| c.config().associativity as u32),
            line_addr: Some(self.line_addr(addr)),
        };
        self.protocol.try_on_local(state, event, &ctx)
    }

    /// Consults the protocol for an event on a line in an explicit state —
    /// used for victims that have already left the cache.
    ///
    /// # Panics
    ///
    /// Panics on a `—` cell; [`CacheController::try_decide_for`] is the
    /// fallible form the fabric uses.
    #[must_use]
    pub fn decide_for(&mut self, state: LineState, event: LocalEvent) -> LocalAction {
        self.try_decide_for(state, event)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Fallible [`CacheController::decide_for`].
    pub fn try_decide_for(
        &mut self,
        state: LineState,
        event: LocalEvent,
    ) -> Result<LocalAction, IllegalCell> {
        self.protocol
            .try_on_local(state, event, &LocalCtx::default())
    }

    /// Reads bytes from the resident line (hit path).
    #[must_use]
    pub fn read_cached(&mut self, addr: u64, len: usize) -> Option<Vec<u8>> {
        let cache = self.cache.as_mut()?;
        let data = cache.read(addr, len)?;
        cache.touch(addr);
        Some(data)
    }

    /// The dataless hit probe: if the line containing `addr` is resident,
    /// marks it most-recently-used (same recency effect as
    /// [`CacheController::read_cached`], no copy) and reports the hit in a
    /// single tag scan. Resident lines are always in a valid state — the
    /// fabric removes a line whenever its state becomes Invalid — so
    /// residency alone decides the hit.
    pub fn probe_touch(&mut self, addr: u64) -> bool {
        match self.cache.as_mut() {
            Some(cache) => match cache.touch_state(addr) {
                Some(state) => {
                    debug_assert!(state.is_valid(), "resident lines are valid");
                    true
                }
                None => false,
            },
            None => false,
        }
    }

    /// Writes bytes into the resident line (hit path); false on a miss.
    pub fn write_cached(&mut self, addr: u64, bytes: &[u8]) -> bool {
        match self.cache.as_mut() {
            Some(cache) => cache.write_touch(addr, bytes),
            None => false,
        }
    }

    /// Installs a line, returning the evicted victim if any.
    ///
    /// # Panics
    ///
    /// Panics when called on a cacheless node.
    pub fn fill(
        &mut self,
        addr: u64,
        state: LineState,
        data: Box<[u8]>,
    ) -> Option<Victim<LineState>> {
        self.cache
            .as_mut()
            .expect("fill on a cacheless node")
            .fill(addr, state, data)
    }

    /// Sets a resident line's state; on `Invalid`, removes the line.
    pub fn apply_state(&mut self, addr: u64, state: LineState) {
        let Some(cache) = self.cache.as_mut() else {
            return;
        };
        if state == LineState::Invalid {
            cache.invalidate(addr);
        } else {
            cache.set_state(addr, state);
        }
    }

    fn line_addr(&self, addr: u64) -> u64 {
        self.cache
            .as_ref()
            .map_or(addr, |c| c.map().line_addr(addr))
    }
}

impl BusModule for CacheController {
    fn snoop(&mut self, req: &TransactionRequest) -> ResponseSignals {
        self.pending = None;
        let Some(cache) = self.cache.as_ref() else {
            // "A non-caching unit never responds to bus events."
            return ResponseSignals::NONE;
        };
        let Some((state, rank)) = cache.state_and_rank(req.addr) else {
            return ResponseSignals::NONE;
        };
        debug_assert!(state.is_valid(), "resident lines are valid");
        let Some(event) = BusEvent::from_signals(req.signals) else {
            return ResponseSignals::NONE;
        };
        let ctx = SnoopCtx {
            recency_rank: Some(rank),
            ways: cache.config().associativity as u32,
            line_addr: Some(cache.map().line_addr(req.addr)),
        };
        let reaction = match self.protocol.try_on_bus(state, event, &ctx) {
            Ok(r) => r,
            Err(_) => {
                // An error-condition cell (`—` in Table 2) reached
                // mid-transaction: the protocol defines no reaction, so a
                // fault (or bug) put this line in a state the event should
                // never meet. Assert BS with no push staged; the bus's push
                // phase then reports a recoverable ProtocolError naming this
                // module, instead of the process dying inside the snooper.
                return ResponseSignals {
                    ch: false,
                    di: false,
                    sl: false,
                    bs: true,
                };
            }
        };
        self.pending = Some(PendingSnoop {
            addr: req.addr,
            reaction,
            had_valid_copy: true,
        });
        ResponseSignals {
            ch: reaction.ch && reaction.busy.is_none(),
            di: reaction.di && reaction.busy.is_none(),
            sl: reaction.sl && reaction.busy.is_none(),
            bs: reaction.busy.is_some(),
        }
    }

    fn supply_line(&mut self, addr: LineAddr) -> Option<Box<[u8]>> {
        // A cacheless node, or a non-resident line, means this controller
        // asserted DI it cannot honour (or a fault ate the line since the
        // snoop); declining lets the bus report a ProtocolError the fault
        // campaign records as *detected*, instead of killing the process.
        let entry = self.cache.as_ref()?.lookup(addr)?;
        self.stats.interventions_supplied += 1;
        Some(entry.data.clone())
    }

    fn prepare_push(&mut self, addr: LineAddr) -> Option<PushWrite> {
        // Any of these being absent means this controller asserted BS it
        // cannot honour; declining lets the bus report a ProtocolError
        // instead of crashing the whole machine.
        let pending = self.pending.take()?;
        if pending.addr != addr {
            return None;
        }
        let push = pending.reaction.busy?;
        let cache = self.cache.as_mut()?;
        let data = cache.lookup(addr)?.data.clone();
        if push.result == LineState::Invalid {
            cache.invalidate(addr);
        } else {
            cache.set_state(addr, push.result);
        }
        self.stats.pushes += 1;
        self.stats.write_backs += 1;
        Some(PushWrite {
            data,
            signals: push.signals,
        })
    }

    fn retire(&mut self, salvage: bool) -> RetireReport {
        self.pending = None;
        let mut report = RetireReport::default();
        if let Some(cache) = self.cache.take() {
            // Only the owned (M/O) lines matter: memory already has an
            // up-to-date copy of everything else.
            for (addr, entry) in cache.iter() {
                if entry.state.is_owned() {
                    if salvage {
                        report.salvaged.push((addr, entry.data.clone()));
                    } else {
                        report.lost.push(addr);
                    }
                }
            }
        }
        report.salvaged.sort_by_key(|(addr, _)| *addr);
        report.lost.sort_unstable();
        // The board is degraded to a non-caching client from here on — the
        // class explicitly accommodates those (§3.3), so the survivors keep
        // running the same protocol around it.
        self.protocol = Box::new(NonCaching::new());
        self.name.push_str("[retired]");
        self.stats.retired = true;
        report
    }

    fn complete(&mut self, req: &TransactionRequest, obs: &BusObservation<'_>) {
        let Some(pending) = self.pending.take() else {
            return;
        };
        if pending.addr != req.addr {
            return;
        }
        debug_assert!(
            pending.reaction.busy.is_none(),
            "{}: BS reactions are consumed by prepare_push",
            self.name
        );
        // Apply the delivered data first (SL connect or DI capture), then the
        // state transition.
        if let Some((offset, bytes)) = obs.write_data {
            let cache = self.cache.as_mut().expect("snooped with no cache");
            let line_addr = req.addr + offset as u64;
            if cache.write(line_addr, bytes) {
                if pending.reaction.di {
                    self.stats.captures += 1;
                } else {
                    self.stats.updates_received += 1;
                }
            }
        }
        let result = pending.reaction.result.resolve(obs.ch_others);
        if result == LineState::Invalid && pending.had_valid_copy {
            self.stats.invalidations_received += 1;
        }
        self.apply_state(req.addr, result);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use moesi::protocols::{MoesiPreferred, NonCaching, WriteOnce};
    use moesi::MasterSignals;

    fn cfg() -> CacheConfig {
        CacheConfig::new(1024, 16, 2, cache_array::ReplacementKind::Lru)
    }

    fn moesi_ctrl(id: usize) -> CacheController {
        CacheController::new(id, Box::new(MoesiPreferred::new()), Some(cfg()), 1)
    }

    fn read_req(addr: u64) -> TransactionRequest {
        TransactionRequest::read(9, addr, MasterSignals::CA)
    }

    #[test]
    fn snoop_miss_responds_nothing() {
        let mut c = moesi_ctrl(0);
        assert_eq!(c.snoop(&read_req(0x100)), ResponseSignals::NONE);
    }

    #[test]
    fn snoop_hit_in_modified_asserts_ch_and_di_then_downgrades() {
        let mut c = moesi_ctrl(0);
        c.fill(0x100, LineState::Modified, vec![5; 16].into());
        let r = c.snoop(&read_req(0x100));
        assert!(r.ch && r.di && !r.bs);
        assert_eq!(&c.supply_line(0x100).unwrap()[..], &[5; 16]);
        c.complete(
            &read_req(0x100),
            &BusObservation {
                ch_others: false,
                write_data: None,
            },
        );
        assert_eq!(c.state_of(0x100), LineState::Owned);
        assert_eq!(c.stats().interventions_supplied, 1);
    }

    #[test]
    fn snooped_invalidate_counts_and_removes() {
        let mut c = moesi_ctrl(0);
        c.fill(0x100, LineState::Shareable, vec![0; 16].into());
        let req = TransactionRequest::read(9, 0x100, MasterSignals::CA_IM);
        let r = c.snoop(&req);
        assert!(!r.ch && !r.di);
        c.complete(
            &req,
            &BusObservation {
                ch_others: false,
                write_data: None,
            },
        );
        assert_eq!(c.state_of(0x100), LineState::Invalid);
        assert_eq!(c.stats().invalidations_received, 1);
    }

    #[test]
    fn snooped_broadcast_write_updates_the_copy() {
        let mut c = moesi_ctrl(0);
        c.fill(0x100, LineState::Shareable, vec![0; 16].into());
        let req = TransactionRequest::write(9, 0x100, MasterSignals::CA_IM_BC, 4, vec![7, 7]);
        let r = c.snoop(&req);
        assert!(r.sl && r.ch);
        c.complete(
            &req,
            &BusObservation {
                ch_others: false,
                write_data: Some((4, &[7, 7])),
            },
        );
        assert_eq!(c.state_of(0x100), LineState::Shareable);
        assert_eq!(c.read_cached(0x104, 2), Some(vec![7, 7]));
        assert_eq!(c.stats().updates_received, 1);
    }

    #[test]
    fn ch_resolution_uses_other_caches() {
        // An O-state holder snooping an uncached read regains M only when no
        // other cache claims a copy.
        let mut c = moesi_ctrl(0);
        c.fill(0x100, LineState::Owned, vec![1; 16].into());
        let req = TransactionRequest::read(9, 0x100, MasterSignals::NONE);
        let _ = c.snoop(&req);
        c.complete(
            &req,
            &BusObservation {
                ch_others: true,
                write_data: None,
            },
        );
        assert_eq!(c.state_of(0x100), LineState::Owned);

        let _ = c.snoop(&req);
        c.complete(
            &req,
            &BusObservation {
                ch_others: false,
                write_data: None,
            },
        );
        assert_eq!(c.state_of(0x100), LineState::Modified);
    }

    #[test]
    fn write_once_dirty_snoop_asserts_bs_then_pushes() {
        let mut c = CacheController::new(0, Box::new(WriteOnce::new()), Some(cfg()), 1);
        c.fill(0x100, LineState::Modified, vec![9; 16].into());
        let r = c.snoop(&read_req(0x100));
        assert!(r.bs);
        assert!(!r.di && !r.ch, "BS suppresses the other lines this pass");
        let push = c.prepare_push(0x100).expect("BS snoop must yield a push");
        assert_eq!(&push.data[..], &[9; 16]);
        assert!(push.signals.ca);
        assert_eq!(c.state_of(0x100), LineState::Shareable);
        assert_eq!(c.stats().pushes, 1);
        // The retried transaction snoops again from S.
        let r2 = c.snoop(&read_req(0x100));
        assert!(r2.ch && !r2.bs);
    }

    #[test]
    fn supplying_a_non_resident_line_declines_instead_of_panicking() {
        let mut c = moesi_ctrl(0);
        assert!(c.supply_line(0x100).is_none(), "nothing resident");
        let mut cacheless = CacheController::new(1, Box::new(NonCaching::new()), None, 1);
        assert!(cacheless.supply_line(0x100).is_none());
        assert_eq!(c.stats().interventions_supplied, 0);
    }

    #[test]
    fn a_wrongly_asserted_intervention_is_a_reported_bus_error() {
        // End-to-end: a controller holding M answers DI, but the line is
        // invalidated before the data phase (here: by reaching straight into
        // the cache, standing in for a mid-transaction fault). The bus must
        // surface a ProtocolError, not abort the process.
        use futurebus::{BusError, Futurebus, TimingConfig};
        let mut bus = Futurebus::new(16, TimingConfig::default());
        let mut c = moesi_ctrl(0);
        c.fill(0x100, LineState::Modified, vec![5; 16].into());
        struct Saboteur<'a>(&'a mut CacheController);
        impl BusModule for Saboteur<'_> {
            fn snoop(&mut self, req: &TransactionRequest) -> ResponseSignals {
                let r = self.0.snoop(req);
                self.0.apply_state(req.addr, LineState::Invalid);
                r
            }
            fn supply_line(&mut self, addr: LineAddr) -> Option<Box<[u8]>> {
                self.0.supply_line(addr)
            }
            fn complete(&mut self, req: &TransactionRequest, obs: &BusObservation<'_>) {
                self.0.complete(req, obs);
            }
        }
        let mut s = Saboteur(&mut c);
        let mut mods: Vec<&mut dyn BusModule> = vec![&mut s];
        let req = TransactionRequest::read(1, 0x100, MasterSignals::CA);
        let err = bus.execute(&req, &mut mods).unwrap_err();
        assert!(
            matches!(err, BusError::ProtocolError { module: 0, .. }),
            "{err:?}"
        );
        assert_eq!(c.stats().interventions_supplied, 0);
    }

    #[test]
    fn an_illegal_snoop_cell_surfaces_as_a_bus_error_not_a_panic() {
        // Synapse's E row is all `—` cells (the protocol never uses E); a
        // fault standing a line in E mid-run must not crash the snooper. The
        // controller asserts BS with no push staged, so the bus reports a
        // ProtocolError against this module.
        use futurebus::{BusError, Futurebus, TimingConfig};
        use moesi::protocols::Synapse;
        let mut bus = Futurebus::new(16, TimingConfig::default());
        let mut c = CacheController::new(0, Box::new(Synapse::new()), Some(cfg()), 1);
        c.fill(0x100, LineState::Exclusive, vec![5; 16].into());
        let mut mods: Vec<&mut dyn BusModule> = vec![&mut c];
        let req = TransactionRequest::read(1, 0x100, MasterSignals::CA);
        let err = bus.execute(&req, &mut mods).unwrap_err();
        assert!(
            matches!(err, BusError::ProtocolError { module: 0, .. }),
            "{err:?}"
        );
    }

    #[test]
    fn non_caching_controller_never_responds() {
        let mut c = CacheController::new(0, Box::new(NonCaching::new()), None, 1);
        assert_eq!(c.snoop(&read_req(0)), ResponseSignals::NONE);
        assert_eq!(c.state_of(0), LineState::Invalid);
        c.complete(
            &read_req(0),
            &BusObservation {
                ch_others: true,
                write_data: None,
            },
        );
        assert_eq!(c.stats().invalidations_received, 0);
    }

    #[test]
    #[should_panic(expected = "requires a cache")]
    fn caching_protocol_without_cache_is_rejected() {
        let _ = CacheController::new(0, Box::new(MoesiPreferred::new()), None, 1);
    }

    #[test]
    #[should_panic(expected = "must not have")]
    fn non_caching_protocol_with_cache_is_rejected() {
        let _ = CacheController::new(0, Box::new(NonCaching::new()), Some(cfg()), 1);
    }

    #[test]
    fn retire_salvages_owned_lines_and_degrades_to_non_caching() {
        let mut c = moesi_ctrl(0);
        c.fill(0x100, LineState::Modified, vec![3; 16].into());
        c.fill(0x200, LineState::Shareable, vec![4; 16].into());
        let report = c.retire(true);
        // Only the owned line is salvaged; the S copy is already in memory.
        assert_eq!(report.salvaged.len(), 1);
        assert_eq!(report.salvaged[0].0, 0x100);
        assert_eq!(&report.salvaged[0].1[..], &[3; 16]);
        assert!(report.lost.is_empty());
        assert_eq!(c.kind(), CacheKind::NonCaching);
        assert!(c.cache().is_none());
        assert!(c.name().ends_with("[retired]"));
        assert!(c.stats().retired);
        // A retired node behaves like any non-caching client.
        assert_eq!(c.snoop(&read_req(0x100)), ResponseSignals::NONE);
    }

    #[test]
    fn retire_without_salvage_reports_owned_lines_lost() {
        let mut c = moesi_ctrl(0);
        c.fill(0x100, LineState::Owned, vec![1; 16].into());
        c.fill(0x300, LineState::Modified, vec![2; 16].into());
        let report = c.retire(false);
        assert!(report.salvaged.is_empty());
        assert_eq!(report.lost, vec![0x100, 0x300]);
        assert!(c.stats().retired);
    }

    #[test]
    fn decide_local_passes_recency_context() {
        let mut c = moesi_ctrl(0);
        c.fill(0x000, LineState::Shareable, vec![0; 16].into());
        c.fill(0x200, LineState::Shareable, vec![0; 16].into()); // same set
                                                                 // 0x000 is now LRU of a 2-way set.
        let a = c.decide_local(0x000, LocalEvent::Read);
        assert_eq!(a.to_string(), "S");
        assert_eq!(c.cache().unwrap().recency_rank(0x000), Some(1));
    }
}
