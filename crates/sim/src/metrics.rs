//! Per-processor statistics and state-occupancy censuses.

use futurebus::{BusStats, Nanos, PhaseHistograms};
use moesi::LineState;
use std::fmt;
use std::ops::AddAssign;

/// A snapshot of how many resident lines sit in each MOESI state — the
/// Figure-3 taxonomy applied to a live machine.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StateCensus {
    counts: [u64; 5],
}

impl StateCensus {
    /// An empty census.
    #[must_use]
    pub fn new() -> Self {
        StateCensus::default()
    }

    /// Adds one line in `state` to the census.
    pub fn record(&mut self, state: LineState) {
        self.counts[Self::index(state)] += 1;
    }

    /// Lines counted in `state`.
    #[must_use]
    pub fn count(&self, state: LineState) -> u64 {
        self.counts[Self::index(state)]
    }

    /// Total valid lines counted (Invalid is never resident, but counted if
    /// recorded).
    #[must_use]
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Lines in an owned state (M or O) — the write-back exposure.
    #[must_use]
    pub fn owned(&self) -> u64 {
        self.count(LineState::Modified) + self.count(LineState::Owned)
    }

    fn index(state: LineState) -> usize {
        match state {
            LineState::Modified => 0,
            LineState::Owned => 1,
            LineState::Exclusive => 2,
            LineState::Shareable => 3,
            LineState::Invalid => 4,
        }
    }
}

impl AddAssign for StateCensus {
    fn add_assign(&mut self, rhs: StateCensus) {
        for (a, b) in self.counts.iter_mut().zip(rhs.counts) {
            *a += b;
        }
    }
}

impl fmt::Display for StateCensus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "M:{} O:{} E:{} S:{} I:{}",
            self.counts[0], self.counts[1], self.counts[2], self.counts[3], self.counts[4]
        )
    }
}

/// The result of a contention-aware timed run
/// ([`System::run_timed`](crate::System::run_timed)).
///
/// The paper's §1 argument in numbers: "no feasible bus design can provide
/// adequate bandwidth to memory for any reasonable number of high
/// performance processors" — unless caches absorb the references.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TimedReport {
    /// Wall-clock nanoseconds until the last processor finished.
    pub wall_ns: Nanos,
    /// Nanoseconds the (single) bus was occupied.
    pub bus_busy_ns: Nanos,
    /// Total nanoseconds processors spent queued waiting for the bus.
    pub bus_wait_ns: Nanos,
    /// References completed across all processors.
    pub total_refs: u64,
    /// Per-phase bus latency histograms observed by the bus during the run —
    /// which pipeline phases the occupancy actually went to.
    pub phase_hist: PhaseHistograms,
}

impl TimedReport {
    /// Fraction of wall time the bus was occupied (the saturation measure).
    #[must_use]
    pub fn bus_utilization(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.bus_busy_ns as f64 / self.wall_ns as f64
        }
    }

    /// Aggregate throughput in references per microsecond.
    #[must_use]
    pub fn refs_per_us(&self) -> f64 {
        if self.wall_ns == 0 {
            0.0
        } else {
            self.total_refs as f64 * 1000.0 / self.wall_ns as f64
        }
    }
}

impl fmt::Display for TimedReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} refs in {} ns ({:.2} refs/us), bus {:.0}% utilised, {} ns queued",
            self.total_refs,
            self.wall_ns,
            self.refs_per_us(),
            self.bus_utilization() * 100.0,
            self.bus_wait_ns,
        )
    }
}

/// A complete, comparable snapshot of everything a run observably produced:
/// the bus counters, every node's counters, and the rendered bus trace.
///
/// This is the unit of byte-exact comparison across queue layouts, shard
/// worker counts and golden traces — two runs are equivalent exactly when
/// their `MachineReport`s compare equal after the same workload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MachineReport {
    /// Final bus counters.
    pub bus: BusStats,
    /// Per-node counters, in node order.
    pub cpus: Vec<CpuStats>,
    /// The rendered bus trace (empty when tracing was off).
    pub trace: String,
}

/// Everything one processor/cache node did and had done to it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CpuStats {
    /// Processor reads issued.
    pub reads: u64,
    /// Processor writes issued.
    pub writes: u64,
    /// Reads satisfied without a bus transaction.
    pub read_hits: u64,
    /// Writes satisfied without a bus transaction.
    pub write_hits: u64,
    /// Bus transactions this node mastered (including write-throughs,
    /// invalidates and write-backs).
    pub bus_transactions: u64,
    /// Bus time consumed by this node's transactions.
    pub bus_ns: Nanos,
    /// Lines this node invalidated because of snooped traffic.
    pub invalidations_received: u64,
    /// Snooped broadcast updates applied to this node's lines (SL connects).
    pub updates_received: u64,
    /// Reads this node served by intervention (DI on a read).
    pub interventions_supplied: u64,
    /// Foreign writes this node captured as owner (DI on a write).
    pub captures: u64,
    /// Dirty lines written back (evictions + explicit flushes + passes).
    pub write_backs: u64,
    /// BS abort-and-push sequences this node performed.
    pub pushes: u64,
    /// Aborts this node's own transactions suffered.
    pub aborts_suffered: u64,
    /// True once the bus watchdog retired this node from the snoop set and
    /// degraded it to a non-caching client.
    pub retired: bool,
}

impl CpuStats {
    /// A zeroed counter set.
    #[must_use]
    pub fn new() -> Self {
        CpuStats::default()
    }

    /// Total processor references.
    #[must_use]
    pub fn references(&self) -> u64 {
        self.reads + self.writes
    }

    /// References that needed no bus transaction.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.read_hits + self.write_hits
    }

    /// Fraction of references satisfied locally (0 when idle).
    #[must_use]
    pub fn hit_ratio(&self) -> f64 {
        let refs = self.references();
        if refs == 0 {
            0.0
        } else {
            self.hits() as f64 / refs as f64
        }
    }

    /// Bus transactions per reference — the traffic figure of merit the
    /// paper's §1 motivates ("the cache also cuts the memory bandwidth
    /// requirement").
    #[must_use]
    pub fn transactions_per_ref(&self) -> f64 {
        let refs = self.references();
        if refs == 0 {
            0.0
        } else {
            self.bus_transactions as f64 / refs as f64
        }
    }
}

impl AddAssign for CpuStats {
    fn add_assign(&mut self, r: CpuStats) {
        self.reads += r.reads;
        self.writes += r.writes;
        self.read_hits += r.read_hits;
        self.write_hits += r.write_hits;
        self.bus_transactions += r.bus_transactions;
        self.bus_ns += r.bus_ns;
        self.invalidations_received += r.invalidations_received;
        self.updates_received += r.updates_received;
        self.interventions_supplied += r.interventions_supplied;
        self.captures += r.captures;
        self.write_backs += r.write_backs;
        self.pushes += r.pushes;
        self.aborts_suffered += r.aborts_suffered;
        self.retired |= r.retired;
    }
}

impl fmt::Display for CpuStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} refs ({:.1}% hit), {} bus txns ({} ns), {} inv-recv, {} upd-recv, {} interv, {} capt, {} wb, {} push, {} aborted",
            self.references(),
            self.hit_ratio() * 100.0,
            self.bus_transactions,
            self.bus_ns,
            self.invalidations_received,
            self.updates_received,
            self.interventions_supplied,
            self.captures,
            self.write_backs,
            self.pushes,
            self.aborts_suffered,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn census_counts_and_sums() {
        let mut c = StateCensus::new();
        c.record(LineState::Modified);
        c.record(LineState::Owned);
        c.record(LineState::Owned);
        c.record(LineState::Shareable);
        assert_eq!(c.count(LineState::Owned), 2);
        assert_eq!(c.owned(), 3);
        assert_eq!(c.total(), 4);
        assert_eq!(c.count(LineState::Invalid), 0);
        assert_eq!(c.to_string(), "M:1 O:2 E:0 S:1 I:0");
        let mut d = StateCensus::new();
        d.record(LineState::Exclusive);
        c += d;
        assert_eq!(c.count(LineState::Exclusive), 1);
    }

    #[test]
    fn ratios_handle_idle_nodes() {
        let s = CpuStats::new();
        assert_eq!(s.hit_ratio(), 0.0);
        assert_eq!(s.transactions_per_ref(), 0.0);
    }

    #[test]
    fn ratios_compute() {
        let s = CpuStats {
            reads: 6,
            writes: 4,
            read_hits: 5,
            write_hits: 3,
            bus_transactions: 2,
            ..CpuStats::new()
        };
        assert_eq!(s.references(), 10);
        assert_eq!(s.hits(), 8);
        assert!((s.hit_ratio() - 0.8).abs() < 1e-12);
        assert!((s.transactions_per_ref() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn add_assign_sums() {
        let mut a = CpuStats {
            reads: 1,
            pushes: 2,
            ..CpuStats::new()
        };
        a += CpuStats {
            reads: 3,
            captures: 1,
            ..CpuStats::new()
        };
        assert_eq!(a.reads, 4);
        assert_eq!(a.pushes, 2);
        assert_eq!(a.captures, 1);
    }

    #[test]
    fn display_reports_percentages() {
        let s = CpuStats {
            reads: 2,
            read_hits: 1,
            ..CpuStats::new()
        };
        assert!(s.to_string().contains("50.0% hit"));
    }
}
