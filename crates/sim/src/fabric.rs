//! The access engine shared by [`System`](crate::System) and the §6
//! multi-bus [`hierarchy`](crate::hierarchy): one Futurebus plus its attached
//! controllers, and the master-side sequencing that turns processor accesses
//! into protocol consultations and bus transactions.
//!
//! `Fabric` is deliberately oracle-free and workload-free — it is the
//! machine, not the experiment. `System` wraps it with the consistency
//! checker; a [`Bridge`](crate::hierarchy::Bridge) wraps it with a cluster
//! directory.

use cache_array::{split_line_crossers, Victim};
use futurebus::{Futurebus, TimingConfig, TransactionOutcome, TransactionRequest};
use moesi::{BusOp, LineState, LocalAction, LocalEvent, MasterSignals};

use crate::controller::CacheController;

/// One bus with its controllers and the access sequencing logic.
#[derive(Debug)]
pub struct Fabric {
    bus: Futurebus,
    controllers: Vec<CacheController>,
    line_size: usize,
    tolerate: bool,
    errors: Vec<String>,
}

impl Fabric {
    /// Assembles a fabric from a bus-line size, timing model and controllers.
    #[must_use]
    pub fn new(line_size: usize, timing: TimingConfig, controllers: Vec<CacheController>) -> Self {
        Fabric {
            bus: Futurebus::new(line_size, timing),
            controllers,
            line_size,
            tolerate: false,
            errors: Vec::new(),
        }
    }

    /// Switches between panicking on bus errors (the default — they indicate
    /// protocol bugs in clean runs) and degrading: logging the error and
    /// completing the access memory-direct, so a fault campaign records a
    /// *detected* error instead of aborting the whole process.
    pub fn tolerate_bus_errors(&mut self, on: bool) {
        self.tolerate = on;
    }

    /// Takes the bus errors survived since the last drain (tolerant mode).
    pub fn drain_bus_errors(&mut self) -> Vec<String> {
        std::mem::take(&mut self.errors)
    }

    /// The line size in bytes.
    #[must_use]
    pub fn line_size(&self) -> usize {
        self.line_size
    }

    /// Number of controllers attached.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.controllers.len()
    }

    /// The bus (stats, memory, trace).
    #[must_use]
    pub fn bus(&self) -> &Futurebus {
        &self.bus
    }

    /// Mutable bus access (preloading memory, enabling traces).
    pub fn bus_mut(&mut self) -> &mut Futurebus {
        &mut self.bus
    }

    /// A controller by index.
    #[must_use]
    pub fn controller(&self, cpu: usize) -> &CacheController {
        &self.controllers[cpu]
    }

    /// Mutable controller access.
    pub fn controller_mut(&mut self, cpu: usize) -> &mut CacheController {
        &mut self.controllers[cpu]
    }

    /// All controllers (for the oracle).
    #[must_use]
    pub fn controllers(&self) -> &[CacheController] {
        &self.controllers
    }

    /// The line-aligned address containing `addr`.
    #[must_use]
    pub fn line_addr(&self, addr: u64) -> u64 {
        addr & !(self.line_size as u64 - 1)
    }

    /// The module index used for transactions issued by the fabric's owner
    /// itself (a bus bridge): one past the last controller, so every
    /// controller snoops.
    #[must_use]
    pub fn external_master(&self) -> usize {
        self.controllers.len()
    }

    /// Runs a transaction mastered by `cpu` (or by
    /// [`external_master`](Fabric::external_master)), updating that node's
    /// stats when it is a controller.
    ///
    /// # Panics
    ///
    /// Panics on bus errors — they indicate protocol bugs, not user error —
    /// unless [`tolerate_bus_errors`](Fabric::tolerate_bus_errors) is on, in
    /// which case the error is logged and the access degrades to a
    /// memory-direct fallback.
    pub fn run_txn(&mut self, req: &TransactionRequest) -> TransactionOutcome {
        // The controllers are passed as a flat component array: the bus
        // pipeline monomorphises over `CacheController`, so there is no
        // per-transaction `Vec<&mut dyn BusModule>` and no virtual dispatch
        // in the snoop fan-out.
        let out = match self.bus.execute_components(req, &mut self.controllers) {
            Ok(out) => out,
            Err(e) if self.tolerate => {
                self.errors.push(format!("{req}: {e}"));
                self.degraded_outcome(req)
            }
            Err(e) => panic!("bus error on {req}: {e}"),
        };
        if let Some(ctrl) = self.controllers.get_mut(req.master) {
            let st = ctrl.stats_mut();
            st.bus_transactions += 1;
            st.bus_ns += out.duration;
            st.aborts_suffered += u64::from(out.aborts);
        }
        out
    }

    /// Consults `cpu`'s protocol for `event` on `line`, treating a `—` cell
    /// (an [`moesi::IllegalCell`]) like a bus error: panic in strict mode —
    /// reaching an error-condition cell is a protocol bug — or, in tolerant
    /// mode, log it and return `None` so the caller degrades memory-direct.
    fn try_decide(&mut self, cpu: usize, line: u64, event: LocalEvent) -> Option<LocalAction> {
        match self.controllers[cpu].try_decide_local(line, event) {
            Ok(action) => Some(action),
            Err(e) if self.tolerate => {
                self.errors.push(format!("cpu {cpu}: {e}"));
                None
            }
            Err(e) => panic!("{e}"),
        }
    }

    /// Completes a failed transaction memory-direct: reads are served from
    /// main memory, writes are absorbed by it, and no snooper is involved
    /// (they already saw the failing passes). Whatever staleness the skipped
    /// snoops cause is the campaign checker's to detect and report.
    fn degraded_outcome(&mut self, req: &TransactionRequest) -> TransactionOutcome {
        use futurebus::{DataSource, TransactionKind};
        let line = self.line_addr(req.addr);
        let data = match &req.kind {
            TransactionKind::Read => Some(self.bus.memory().peek_line(line)),
            TransactionKind::Write { offset, bytes } => {
                let bytes = bytes.clone();
                self.bus.memory_mut().write_bytes(line, *offset, &bytes);
                None
            }
            TransactionKind::AddressOnly => None,
        };
        TransactionOutcome {
            data,
            responses: moesi::ResponseSignals::NONE,
            // Conservative: the wired-OR never resolved, and claiming
            // exclusivity after a failed snoop round would be worse than
            // assuming sharers exist.
            ch_seen: true,
            source: DataSource::Memory,
            duration: 0,
            aborts: 0,
        }
    }

    /// Reads `len` bytes at `addr` for processor `cpu`, splitting line
    /// crossers (§5.1).
    pub fn read(&mut self, cpu: usize, addr: u64, len: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        for (piece_addr, piece_len) in split_line_crossers(addr, len, self.line_size) {
            out.extend(self.read_piece(cpu, piece_addr, piece_len));
        }
        out
    }

    /// Writes `bytes` at `addr` for processor `cpu`, splitting line crossers.
    /// Calls `on_piece(line_addr, piece)` before each per-line write — the
    /// checker's serialisation hook.
    pub fn write_with<F: FnMut(u64, &[u8])>(
        &mut self,
        cpu: usize,
        addr: u64,
        bytes: &[u8],
        mut on_piece: F,
    ) {
        let pieces = split_line_crossers(addr, bytes.len(), self.line_size);
        let mut cursor = 0;
        for (piece_addr, piece_len) in pieces {
            let piece = &bytes[cursor..cursor + piece_len];
            cursor += piece_len;
            on_piece(piece_addr, piece);
            self.write_piece(cpu, piece_addr, piece);
        }
    }

    /// Pushes a dirty line to memory while keeping the copy (Table 1,
    /// note 3). No-op unless node `cpu` holds the line in an owned state.
    pub fn pass(&mut self, cpu: usize, addr: u64) -> bool {
        let line = self.line_addr(addr);
        let state = self.controllers[cpu].state_of(line);
        if !state.is_owned() {
            return false;
        }
        let Some(action) = self.try_decide(cpu, line, LocalEvent::Pass) else {
            return false;
        };
        debug_assert_eq!(action.bus_op, BusOp::Write);
        let data = self.controllers[cpu]
            .read_cached(line, self.line_size)
            .expect("owned line is resident");
        let req = TransactionRequest::write(cpu, line, action.signals, 0, data);
        let out = self.run_txn(&req);
        let result = action.result.resolve(out.ch_seen);
        self.controllers[cpu].apply_state(line, result);
        self.controllers[cpu].stats_mut().write_backs += 1;
        true
    }

    /// Flushes (pushes if dirty, then discards) the line containing `addr`
    /// from node `cpu`'s cache (Table 1, note 4). No-op when not resident.
    pub fn flush(&mut self, cpu: usize, addr: u64) -> bool {
        let line = self.line_addr(addr);
        let state = self.controllers[cpu].state_of(line);
        if !state.is_valid() {
            return false;
        }
        let Some(action) = self.try_decide(cpu, line, LocalEvent::Flush) else {
            return false;
        };
        if action.bus_op == BusOp::Write {
            let data = self.controllers[cpu]
                .read_cached(line, self.line_size)
                .expect("resident");
            let req = TransactionRequest::write(cpu, line, action.signals, 0, data);
            self.run_txn(&req);
            self.controllers[cpu].stats_mut().write_backs += 1;
        }
        self.controllers[cpu].apply_state(line, LineState::Invalid);
        true
    }

    /// Issues a bus read mastered by the fabric owner (bridge), letting every
    /// controller snoop — used to extract the current line from an internal
    /// owner on behalf of an external requester.
    pub fn external_read(&mut self, line: u64, signals: MasterSignals) -> TransactionOutcome {
        let req = TransactionRequest::read(self.external_master(), line, signals);
        self.run_txn(&req)
    }

    /// Issues an address-only invalidate mastered by the fabric owner.
    pub fn external_invalidate(&mut self, line: u64) -> TransactionOutcome {
        let req =
            TransactionRequest::address_only(self.external_master(), line, MasterSignals::CA_IM);
        self.run_txn(&req)
    }

    /// Issues a broadcast write mastered by the fabric owner — propagating an
    /// external update into this fabric (memory and SL-connected caches).
    pub fn external_broadcast_write(
        &mut self,
        line: u64,
        offset: usize,
        bytes: Vec<u8>,
    ) -> TransactionOutcome {
        let req = TransactionRequest::write(
            self.external_master(),
            line,
            MasterSignals::IM_BC,
            offset,
            bytes,
        );
        self.run_txn(&req)
    }

    /// [`Fabric::read`] without materialising the bytes: the event engine's
    /// hot path for workload driving, where the caller discards the data
    /// anyway. Stats, LRU recency, cache state, memory image and bus traffic
    /// are byte-identical to [`Fabric::read`] — the only difference is that
    /// no `Vec` is built for the result and a hit copies nothing.
    pub fn read_dataless(&mut self, cpu: usize, addr: u64, len: usize) {
        let line = self.line_addr(addr);
        // Single-line accesses (the overwhelmingly common case) skip the
        // crosser split entirely.
        if addr - line + len as u64 <= self.line_size as u64 {
            self.read_piece_dataless(cpu, addr, len);
            return;
        }
        for (piece_addr, piece_len) in split_line_crossers(addr, len, self.line_size) {
            self.read_piece_dataless(cpu, piece_addr, piece_len);
        }
    }

    /// [`Fabric::write_with`] without the serialisation hook, with the
    /// single-line case short-circuited: the event engine's hot path when no
    /// checker is recording writes. Byte-identical side effects.
    pub fn write_fast(&mut self, cpu: usize, addr: u64, bytes: &[u8]) {
        let line = self.line_addr(addr);
        if addr - line + bytes.len() as u64 <= self.line_size as u64 {
            self.write_piece(cpu, addr, bytes);
            return;
        }
        self.write_with(cpu, addr, bytes, |_, _| {});
    }

    fn read_piece_dataless(&mut self, cpu: usize, addr: u64, len: usize) {
        let _ = len;
        let ctrl = &mut self.controllers[cpu];
        ctrl.stats_mut().reads += 1;
        // Single-pass hit probe: same residency check and LRU effect as the
        // copying hit path, minus the copy and the second tag scan.
        if ctrl.probe_touch(addr) {
            ctrl.stats_mut().read_hits += 1;
            return;
        }
        let line = self.line_addr(addr);
        let Some(action) = self.try_decide(cpu, line, LocalEvent::Read) else {
            // Degraded: the copying path serves from memory without caching;
            // with nobody consuming the bytes there is nothing to do.
            return;
        };
        self.execute_read_action_dataless(cpu, line, &action);
    }

    fn read_piece(&mut self, cpu: usize, addr: u64, len: usize) -> Vec<u8> {
        self.controllers[cpu].stats_mut().reads += 1;
        let line = self.line_addr(addr);
        if self.controllers[cpu].state_of(line).is_valid() {
            self.controllers[cpu].stats_mut().read_hits += 1;
            return self.controllers[cpu]
                .read_cached(addr, len)
                .expect("valid line is resident");
        }
        let offset = (addr - line) as usize;
        let Some(action) = self.try_decide(cpu, line, LocalEvent::Read) else {
            // Degraded: serve from memory without caching the line.
            let data = self.bus.memory().peek_line(line);
            return data[offset..offset + len].to_vec();
        };
        let data = self.execute_read_action(cpu, line, &action);
        data[offset..offset + len].to_vec()
    }

    /// Runs a read-typed local action (a miss): the bus read, the fill, and
    /// any victim write-back. Returns the full line.
    fn execute_read_action(&mut self, cpu: usize, line: u64, action: &LocalAction) -> Box<[u8]> {
        debug_assert_eq!(action.bus_op, BusOp::Read, "read path expects an R action");
        let req = TransactionRequest::read(cpu, line, action.signals);
        let out = self.run_txn(&req);
        let data = out.data.expect("reads return data");
        let result = action.result.resolve(out.ch_seen);
        if result.is_valid() {
            let victim = self.controllers[cpu].fill(line, result, data.clone());
            if let Some(v) = victim {
                self.write_back_victim(cpu, v);
            }
        }
        data
    }

    /// [`Fabric::execute_read_action`] for callers that discard the line:
    /// the fill takes the bus data by move instead of cloning it.
    fn execute_read_action_dataless(&mut self, cpu: usize, line: u64, action: &LocalAction) {
        debug_assert_eq!(action.bus_op, BusOp::Read, "read path expects an R action");
        let req = TransactionRequest::read(cpu, line, action.signals);
        let out = self.run_txn(&req);
        let data = out.data.expect("reads return data");
        let result = action.result.resolve(out.ch_seen);
        if result.is_valid() {
            let victim = self.controllers[cpu].fill(line, result, data);
            if let Some(v) = victim {
                self.write_back_victim(cpu, v);
            }
        }
    }

    fn write_back_victim(&mut self, cpu: usize, victim: Victim<LineState>) {
        if !victim.state.is_owned() {
            return; // clean victims are dropped silently
        }
        let action = match self.controllers[cpu].try_decide_for(victim.state, LocalEvent::Flush) {
            Ok(action) => action,
            Err(e) if self.tolerate => {
                // Degraded: push the dirty data memory-direct so it survives.
                self.errors.push(format!("cpu {cpu}: {e}"));
                self.bus
                    .memory_mut()
                    .write_bytes(victim.addr, 0, &victim.data);
                return;
            }
            Err(e) => panic!("{e}"),
        };
        debug_assert_eq!(action.bus_op, BusOp::Write, "dirty victims must write back");
        let req =
            TransactionRequest::write(cpu, victim.addr, action.signals, 0, victim.data.into_vec());
        self.run_txn(&req);
        self.controllers[cpu].stats_mut().write_backs += 1;
    }

    fn write_piece(&mut self, cpu: usize, addr: u64, bytes: &[u8]) {
        self.controllers[cpu].stats_mut().writes += 1;
        let line = self.line_addr(addr);
        if self.controllers[cpu].state_of(line).is_valid() {
            self.controllers[cpu].stats_mut().write_hits += 1;
        }
        self.write_piece_inner(cpu, addr, bytes);
    }

    fn write_piece_inner(&mut self, cpu: usize, addr: u64, bytes: &[u8]) {
        let line = self.line_addr(addr);
        let offset = (addr - line) as usize;
        let Some(action) = self.try_decide(cpu, line, LocalEvent::Write) else {
            // Degraded: absorb the write into memory, bypassing the cache.
            self.bus.memory_mut().write_bytes(line, offset, bytes);
            return;
        };
        match action.bus_op {
            // A silent write: M stays M, E upgrades to M.
            BusOp::None => {
                let ok = self.controllers[cpu].write_cached(addr, bytes);
                assert!(ok, "silent write requires a resident line");
                self.controllers[cpu].apply_state(line, action.result.resolve(false));
            }
            // Write-through, broadcast update, or write-past.
            BusOp::Write => {
                let req =
                    TransactionRequest::write(cpu, line, action.signals, offset, bytes.to_vec());
                let out = self.run_txn(&req);
                let result = action.result.resolve(out.ch_seen);
                if self.controllers[cpu].write_cached(addr, bytes) {
                    self.controllers[cpu].apply_state(line, result);
                }
            }
            // Address-only invalidate, then write locally (O/S → M).
            BusOp::AddressOnly => {
                let req = TransactionRequest::address_only(cpu, line, action.signals);
                let out = self.run_txn(&req);
                let result = action.result.resolve(out.ch_seen);
                let ok = self.controllers[cpu].write_cached(addr, bytes);
                assert!(ok, "invalidate-write requires a resident line");
                self.controllers[cpu].apply_state(line, result);
            }
            // Read-for-modify: one transaction reads the line and invalidates
            // other copies, then the write happens locally.
            BusOp::Read => {
                let _ = self.execute_read_action(cpu, line, &action);
                let ok = self.controllers[cpu].write_cached(addr, bytes);
                assert!(ok, "read-for-modify must have filled the line");
            }
            // Two transactions: a read per the protocol's I/Read row, then
            // the write is re-decided from the new state.
            BusOp::ReadThenWrite => {
                let Some(read_action) = self.try_decide(cpu, line, LocalEvent::Read) else {
                    self.bus.memory_mut().write_bytes(line, offset, bytes);
                    return;
                };
                let _ = self.execute_read_action(cpu, line, &read_action);
                self.write_piece_inner(cpu, addr, bytes);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cache_array::{CacheConfig, ReplacementKind};
    use moesi::protocols::MoesiPreferred;

    fn fabric(n: usize) -> Fabric {
        let cfg = CacheConfig::new(1024, 32, 2, ReplacementKind::Lru);
        let controllers = (0..n)
            .map(|id| CacheController::new(id, Box::new(MoesiPreferred::new()), Some(cfg), 1))
            .collect();
        Fabric::new(32, TimingConfig::default(), controllers)
    }

    #[test]
    fn external_master_snoops_everyone() {
        let mut f = fabric(2);
        f.write_with(0, 0x100, &[7; 4], |_, _| {});
        assert_eq!(f.controller(0).state_of(0x100), LineState::Modified);
        // An external (bridge) read demotes the owner and extracts the line.
        let out = f.external_read(0x100, MasterSignals::CA);
        assert_eq!(&out.data.unwrap()[..4], &[7; 4]);
        assert_eq!(f.controller(0).state_of(0x100), LineState::Owned);
        assert!(out.ch_seen);
    }

    #[test]
    fn external_invalidate_clears_all_copies() {
        let mut f = fabric(3);
        let _ = f.read(0, 0x100, 4);
        let _ = f.read(1, 0x100, 4);
        let out = f.external_invalidate(0x100);
        assert_eq!(out.aborts, 0);
        for cpu in 0..3 {
            assert_eq!(f.controller(cpu).state_of(0x100), LineState::Invalid);
        }
    }

    #[test]
    fn external_broadcast_write_updates_copies_and_memory() {
        let mut f = fabric(2);
        let _ = f.read(0, 0x100, 4);
        let _ = f.read(1, 0x100, 4);
        f.external_broadcast_write(0x100, 0, vec![9; 4]);
        assert_eq!(f.read(0, 0x100, 4), vec![9; 4]);
        assert_eq!(f.read(1, 0x100, 4), vec![9; 4]);
        assert_eq!(&f.bus().memory().peek_line(0x100)[..4], &[9; 4]);
    }

    #[test]
    fn tolerated_bus_errors_degrade_to_memory_instead_of_panicking() {
        use futurebus::fault::{FaultConfig, FaultPlan};
        let mut f = fabric(2);
        f.bus_mut().memory_mut().write_bytes(0x100, 0, &[7; 4]);
        f.tolerate_bus_errors(true);
        // A full-rate abort storm outlasting the 16-round retry policy makes
        // every transaction fail with TooManyRetries, deterministically.
        f.bus_mut().inject_faults(FaultPlan::new(FaultConfig {
            storm_rate: 1.0,
            max_storm_rounds: 32,
            ..FaultConfig::default()
        }));
        assert_eq!(f.read(0, 0x100, 4), vec![7; 4], "memory-direct fallback");
        f.write_with(1, 0x200, &[9; 4], |_, _| {});
        assert_eq!(f.read(1, 0x200, 4), vec![9; 4]);
        let errors = f.drain_bus_errors();
        assert!(!errors.is_empty());
        assert!(errors[0].contains("aborted"), "{errors:?}");
        assert!(f.drain_bus_errors().is_empty(), "drain empties the log");
    }

    #[test]
    #[should_panic(expected = "bus error")]
    fn untolerated_bus_errors_still_panic() {
        use futurebus::fault::{FaultConfig, FaultPlan};
        let mut f = fabric(1);
        f.bus_mut().inject_faults(FaultPlan::new(FaultConfig {
            storm_rate: 1.0,
            max_storm_rounds: 32,
            ..FaultConfig::default()
        }));
        let _ = f.read(0, 0x100, 4);
    }

    /// A preferred table with the whole Invalid row blown away: every miss
    /// lands on a `—` cell. Stands in for a corrupted or mis-built policy.
    fn holey_fabric() -> Fabric {
        use moesi::{CacheKind, PolicyTable, TablePolicy};
        let mut table = PolicyTable::preferred("holey", CacheKind::CopyBack);
        table.clear_state(LineState::Invalid);
        let cfg = CacheConfig::new(1024, 32, 2, ReplacementKind::Lru);
        let ctrl = CacheController::new(0, Box::new(TablePolicy::new(table)), Some(cfg), 1);
        Fabric::new(32, TimingConfig::default(), vec![ctrl])
    }

    #[test]
    fn tolerated_illegal_cells_degrade_to_memory_instead_of_panicking() {
        let mut f = holey_fabric();
        f.bus_mut().memory_mut().write_bytes(0x100, 0, &[7; 4]);
        f.tolerate_bus_errors(true);
        assert_eq!(f.read(0, 0x100, 4), vec![7; 4], "memory-direct read");
        f.write_with(0, 0x200, &[9; 4], |_, _| {});
        assert_eq!(f.read(0, 0x200, 4), vec![9; 4], "memory absorbed the write");
        let errors = f.drain_bus_errors();
        assert!(errors.len() >= 2, "{errors:?}");
        assert!(errors[0].contains("no action"), "{errors:?}");
        assert_eq!(
            f.controller(0).state_of(0x100),
            LineState::Invalid,
            "degraded accesses must not cache the line"
        );
    }

    #[test]
    #[should_panic(expected = "no action")]
    fn untolerated_illegal_cells_still_panic() {
        let mut f = holey_fabric();
        let _ = f.read(0, 0x100, 4);
    }

    #[test]
    fn write_with_hook_sees_each_piece() {
        let mut f = fabric(1);
        let mut pieces = Vec::new();
        let bytes: Vec<u8> = (0..40).collect();
        f.write_with(0, 0x100 - 8, &bytes, |addr, piece| {
            pieces.push((addr, piece.len()));
        });
        assert_eq!(pieces, vec![(0x100 - 8, 8), (0x100, 32)]);
    }
}
