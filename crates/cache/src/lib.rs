//! # cache-array — set-associative cache arrays for the MOESI simulator
//!
//! The tag/data substrate under every snooping cache controller in the
//! Sweazey–Smith (ISCA 1986) reproduction:
//!
//! * [`CacheArray`] — a set-associative array generic over the per-line
//!   consistency state, with LRU/FIFO/random replacement and the §5.2
//!   *recency rank* the Puzak refinement consults;
//! * [`split_line_crossers`] — the §5.1 rule that an access overlapping two
//!   or more lines becomes one transaction per line;
//! * [`SectorCache`] — a sector (sub-block) cache with consistency state per
//!   transfer subsector, as §5.1 concludes is necessary.
//!
//! ## Quick start
//!
//! ```
//! use cache_array::{CacheArray, CacheConfig, ReplacementKind};
//! use moesi::LineState;
//!
//! let cfg = CacheConfig::new(8192, 32, 4, ReplacementKind::Lru);
//! let mut cache: CacheArray<LineState> = CacheArray::new(cfg, 42);
//! cache.fill(0x80, LineState::Exclusive, vec![0; 32].into());
//! assert_eq!(cache.state_of(0x80), Some(LineState::Exclusive));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod address;
mod array;
mod config;
mod sector;

pub use address::{split_line_crossers, AddressMap};
pub use array::{CacheArray, Entry, Victim};
pub use config::{CacheConfig, ReplacementKind};
pub use sector::{SectorCache, SectorProbe};
