//! The set-associative cache array: tags, data, per-line consistency state.

use crate::address::AddressMap;
use crate::config::{CacheConfig, ReplacementKind};
use moesi::rng::SmallRng;

/// One resident line: its tag, protocol state and data.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Entry<S> {
    /// The address tag.
    pub tag: u64,
    /// The consistency state attached to the line (e.g. `moesi::LineState`).
    pub state: S,
    /// The line contents.
    pub data: Box<[u8]>,
}

/// A line evicted to make room for a fill.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Victim<S> {
    /// The line-aligned address the victim occupied.
    pub addr: u64,
    /// Its state at eviction (the controller turns M/O victims into flushes).
    pub state: S,
    /// Its data.
    pub data: Box<[u8]>,
}

#[derive(Clone, Debug)]
struct CacheSet<S> {
    ways: Vec<Option<Entry<S>>>,
    /// Occupied way indices; front = most recent (LRU) or newest (FIFO).
    order: Vec<usize>,
}

impl<S> CacheSet<S> {
    fn new(ways: usize) -> Self {
        CacheSet {
            ways: (0..ways).map(|_| None).collect(),
            order: Vec::with_capacity(ways),
        }
    }

    fn way_of(&self, tag: u64) -> Option<usize> {
        self.ways
            .iter()
            .position(|w| w.as_ref().is_some_and(|e| e.tag == tag))
    }
}

/// A set-associative cache array, generic over the per-line state type.
///
/// The array is a passive tag/data store: *it makes no protocol decisions*.
/// The snooping controller in `mpsim` owns the policy; this type owns
/// geometry, residency, replacement and the §5.2 recency ranks.
///
/// # Examples
///
/// ```
/// use cache_array::{CacheArray, CacheConfig};
///
/// let mut cache: CacheArray<char> = CacheArray::new(CacheConfig::small(), 1);
/// assert!(cache.fill(0x1000, 'S', vec![0; 32].into()).is_none());
/// assert_eq!(cache.state_of(0x1010), Some('S')); // same line
/// assert_eq!(cache.state_of(0x2000), None);
/// ```
#[derive(Clone, Debug)]
pub struct CacheArray<S> {
    config: CacheConfig,
    map: AddressMap,
    sets: Vec<CacheSet<S>>,
    rng: SmallRng,
    resident: usize,
}

impl<S> CacheArray<S> {
    /// Creates an empty array; `seed` drives random replacement (if chosen).
    #[must_use]
    pub fn new(config: CacheConfig, seed: u64) -> Self {
        let map = AddressMap::new(config.line_size, config.sets());
        CacheArray {
            config,
            map,
            sets: (0..config.sets())
                .map(|_| CacheSet::new(config.associativity))
                .collect(),
            rng: SmallRng::seed_from_u64(seed),
            resident: 0,
        }
    }

    /// The geometry this array was built with.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// The address decomposition in force.
    #[must_use]
    pub fn map(&self) -> &AddressMap {
        &self.map
    }

    /// Number of resident lines.
    #[must_use]
    pub fn len(&self) -> usize {
        self.resident
    }

    /// True when no line is resident.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.resident == 0
    }

    /// Looks a line up without touching replacement state.
    #[must_use]
    pub fn lookup(&self, addr: u64) -> Option<&Entry<S>> {
        let (tag, set, _) = self.map.split(addr);
        let set = &self.sets[set];
        set.way_of(tag).and_then(|w| set.ways[w].as_ref())
    }

    /// Mutable lookup (data writes); does not touch replacement state.
    pub fn lookup_mut(&mut self, addr: u64) -> Option<&mut Entry<S>> {
        let (tag, set_idx, _) = self.map.split(addr);
        let set = &mut self.sets[set_idx];
        let way = set.way_of(tag)?;
        set.ways[way].as_mut()
    }

    /// Marks the line most-recently-used (a hit, for LRU; FIFO and random
    /// ignore touches).
    pub fn touch(&mut self, addr: u64) {
        if self.config.replacement != ReplacementKind::Lru {
            return;
        }
        let (tag, set_idx, _) = self.map.split(addr);
        let set = &mut self.sets[set_idx];
        if let Some(way) = set.way_of(tag) {
            Self::make_mru(set, way);
        }
    }

    /// Moves `way` to the front of the set's recency order unless it is
    /// already there (the common case in access streaks).
    fn make_mru(set: &mut CacheSet<S>, way: usize) {
        if set.order.first() == Some(&way) {
            return;
        }
        if let Some(pos) = set.order.iter().position(|&w| w == way) {
            set.order.remove(pos);
        }
        set.order.insert(0, way);
    }

    /// The line's recency rank in its set: 0 = most recent, `ways-1` =
    /// next victim. `None` when not resident.
    #[must_use]
    pub fn recency_rank(&self, addr: u64) -> Option<u32> {
        let (tag, set_idx, _) = self.map.split(addr);
        let set = &self.sets[set_idx];
        let way = set.way_of(tag)?;
        set.order.iter().position(|&w| w == way).map(|p| p as u32)
    }

    /// Fills (or overwrites) a line, evicting a victim if the set is full.
    ///
    /// # Panics
    ///
    /// Panics if `data` is not exactly one line.
    pub fn fill(&mut self, addr: u64, state: S, data: Box<[u8]>) -> Option<Victim<S>> {
        assert_eq!(
            data.len(),
            self.config.line_size,
            "fill must provide a full line"
        );
        let (tag, set_idx, _) = self.map.split(addr);
        // Already resident: overwrite in place.
        if let Some(way) = self.sets[set_idx].way_of(tag) {
            self.sets[set_idx].ways[way] = Some(Entry { tag, state, data });
            self.promote(set_idx, way);
            return None;
        }
        // Free way available?
        if let Some(way) = self.sets[set_idx].ways.iter().position(Option::is_none) {
            self.sets[set_idx].ways[way] = Some(Entry { tag, state, data });
            self.sets[set_idx].order.insert(0, way);
            self.resident += 1;
            return None;
        }
        // Evict per policy.
        let way = self.pick_victim(set_idx);
        let old = self.sets[set_idx].ways[way]
            .take()
            .expect("victim way must be occupied");
        let victim = Victim {
            addr: self.map.reassemble(old.tag, set_idx),
            state: old.state,
            data: old.data,
        };
        self.sets[set_idx].ways[way] = Some(Entry { tag, state, data });
        let set = &mut self.sets[set_idx];
        if let Some(pos) = set.order.iter().position(|&w| w == way) {
            set.order.remove(pos);
        }
        set.order.insert(0, way);
        Some(victim)
    }

    /// Removes a line, returning it.
    pub fn invalidate(&mut self, addr: u64) -> Option<Entry<S>> {
        let (tag, set_idx, _) = self.map.split(addr);
        let set = &mut self.sets[set_idx];
        let way = set.way_of(tag)?;
        if let Some(pos) = set.order.iter().position(|&w| w == way) {
            set.order.remove(pos);
        }
        self.resident -= 1;
        set.ways[way].take()
    }

    /// Iterates over resident lines as `(line_addr, &entry)`.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &Entry<S>)> + '_ {
        self.sets
            .iter()
            .enumerate()
            .flat_map(move |(set_idx, set)| {
                set.ways.iter().filter_map(move |w| {
                    w.as_ref().map(|e| (self.map.reassemble(e.tag, set_idx), e))
                })
            })
    }

    fn promote(&mut self, set_idx: usize, way: usize) {
        if self.config.replacement != ReplacementKind::Lru {
            return;
        }
        Self::make_mru(&mut self.sets[set_idx], way);
    }

    fn pick_victim(&mut self, set_idx: usize) -> usize {
        let set = &self.sets[set_idx];
        match self.config.replacement {
            // LRU: the back of the order is least recent. FIFO: the back is
            // the oldest insertion (hits never reorder).
            ReplacementKind::Lru | ReplacementKind::Fifo => {
                *set.order.last().expect("full set has order entries")
            }
            ReplacementKind::Random => {
                let occupied: Vec<usize> = (0..set.ways.len())
                    .filter(|&w| set.ways[w].is_some())
                    .collect();
                occupied[self.rng.gen_range(0..occupied.len())]
            }
        }
    }
}

impl<S: Copy> CacheArray<S> {
    /// The state of the line containing `addr`, if resident.
    #[must_use]
    pub fn state_of(&self, addr: u64) -> Option<S> {
        self.lookup(addr).map(|e| e.state)
    }

    /// Replaces the state of a resident line; returns false if not resident.
    pub fn set_state(&mut self, addr: u64, state: S) -> bool {
        match self.lookup_mut(addr) {
            Some(e) => {
                e.state = state;
                true
            }
            None => false,
        }
    }

    /// Single-pass hit probe: if the line containing `addr` is resident,
    /// marks it most-recently-used and returns its state. Equivalent to
    /// `state_of` followed by `touch`, in one tag scan — the engine's
    /// dataless read-hit path.
    pub fn touch_state(&mut self, addr: u64) -> Option<S> {
        let (tag, set_idx, _) = self.map.split(addr);
        let set = &mut self.sets[set_idx];
        let way = set.way_of(tag)?;
        let state = set.ways[way].as_ref()?.state;
        if self.config.replacement == ReplacementKind::Lru {
            Self::make_mru(set, way);
        }
        Some(state)
    }

    /// Single-pass `state_of` + `recency_rank`: one tag scan for the
    /// protocol-consultation paths that need both.
    #[must_use]
    pub fn state_and_rank(&self, addr: u64) -> Option<(S, u32)> {
        let (tag, set_idx, _) = self.map.split(addr);
        let set = &self.sets[set_idx];
        let way = set.way_of(tag)?;
        let state = set.ways[way].as_ref()?.state;
        let rank = set.order.iter().position(|&w| w == way)? as u32;
        Some((state, rank))
    }
}

impl<S> CacheArray<S> {
    /// Reads `len` bytes at `addr` from a resident line; `None` on a miss.
    ///
    /// # Panics
    ///
    /// Panics if the access crosses the end of the line — split line
    /// crossers first ([`split_line_crossers`](crate::split_line_crossers)).
    #[must_use]
    pub fn read(&self, addr: u64, len: usize) -> Option<Vec<u8>> {
        let (_, _, offset) = self.map.split(addr);
        assert!(
            offset + len <= self.config.line_size,
            "read crosses line boundary; split it first"
        );
        self.lookup(addr)
            .map(|e| e.data[offset..offset + len].to_vec())
    }

    /// Writes bytes at `addr` into a resident line; false on a miss.
    ///
    /// # Panics
    ///
    /// Panics if the access crosses the end of the line.
    pub fn write(&mut self, addr: u64, bytes: &[u8]) -> bool {
        let (_, _, offset) = self.map.split(addr);
        assert!(
            offset + bytes.len() <= self.config.line_size,
            "write crosses line boundary; split it first"
        );
        match self.lookup_mut(addr) {
            Some(e) => {
                e.data[offset..offset + bytes.len()].copy_from_slice(bytes);
                true
            }
            None => false,
        }
    }

    /// [`CacheArray::write`] followed by [`CacheArray::touch`], in one tag
    /// scan — the write-hit path.
    ///
    /// # Panics
    ///
    /// Panics if the access crosses the end of the line.
    pub fn write_touch(&mut self, addr: u64, bytes: &[u8]) -> bool {
        let (tag, set_idx, offset) = self.map.split(addr);
        assert!(
            offset + bytes.len() <= self.config.line_size,
            "write crosses line boundary; split it first"
        );
        let set = &mut self.sets[set_idx];
        let Some(way) = set.way_of(tag) else {
            return false;
        };
        let entry = set.ways[way]
            .as_mut()
            .expect("way_of returns occupied ways");
        entry.data[offset..offset + bytes.len()].copy_from_slice(bytes);
        if self.config.replacement == ReplacementKind::Lru {
            Self::make_mru(set, way);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> CacheArray<char> {
        // 4 sets, 2 ways, 16B lines.
        CacheArray::new(CacheConfig::new(128, 16, 2, ReplacementKind::Lru), 1)
    }

    fn line(v: u8) -> Box<[u8]> {
        vec![v; 16].into_boxed_slice()
    }

    #[test]
    fn fill_lookup_round_trip() {
        let mut c = small();
        assert!(c.fill(0x100, 'M', line(1)).is_none());
        assert_eq!(c.state_of(0x100), Some('M'));
        assert_eq!(c.state_of(0x10F), Some('M'), "same line");
        assert_eq!(c.read(0x104, 4), Some(vec![1; 4]));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn refill_overwrites_without_eviction() {
        let mut c = small();
        c.fill(0x100, 'S', line(1));
        assert!(c.fill(0x100, 'M', line(2)).is_none());
        assert_eq!(c.len(), 1);
        assert_eq!(c.read(0x100, 1), Some(vec![2]));
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut c = small();
        // 0x000 and 0x040 map to set 0 (16B lines, 4 sets -> set stride 64).
        c.fill(0x000, 'a', line(0));
        c.fill(0x040, 'b', line(1));
        c.touch(0x000); // make 0x000 MRU
        let victim = c.fill(0x080, 'c', line(2)).expect("set is full");
        assert_eq!(victim.addr, 0x040);
        assert_eq!(victim.state, 'b');
        assert_eq!(&victim.data[..], &[1; 16]);
        assert_eq!(c.state_of(0x000), Some('a'));
        assert_eq!(c.state_of(0x080), Some('c'));
    }

    #[test]
    fn fifo_ignores_touches() {
        let mut c = CacheArray::new(CacheConfig::new(128, 16, 2, ReplacementKind::Fifo), 1);
        c.fill(0x000, 'a', line(0));
        c.fill(0x040, 'b', line(1));
        c.touch(0x000); // should not help under FIFO
        let victim = c.fill(0x080, 'c', line(2)).unwrap();
        assert_eq!(victim.addr, 0x000, "oldest insertion evicted");
    }

    #[test]
    fn random_evicts_an_occupied_way() {
        let mut c = CacheArray::new(CacheConfig::new(128, 16, 2, ReplacementKind::Random), 7);
        c.fill(0x000, 'a', line(0));
        c.fill(0x040, 'b', line(1));
        let victim = c.fill(0x080, 'c', line(2)).unwrap();
        assert!(victim.addr == 0x000 || victim.addr == 0x040);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn recency_ranks_follow_touches() {
        let mut c = small();
        c.fill(0x000, 'a', line(0));
        c.fill(0x040, 'b', line(1));
        assert_eq!(c.recency_rank(0x040), Some(0), "just filled = MRU");
        assert_eq!(c.recency_rank(0x000), Some(1));
        c.touch(0x000);
        assert_eq!(c.recency_rank(0x000), Some(0));
        assert_eq!(c.recency_rank(0x040), Some(1));
        assert_eq!(c.recency_rank(0x999), None);
    }

    #[test]
    fn invalidate_removes_and_returns() {
        let mut c = small();
        c.fill(0x100, 'O', line(9));
        let e = c.invalidate(0x100).expect("resident");
        assert_eq!(e.state, 'O');
        assert!(c.is_empty());
        assert!(c.invalidate(0x100).is_none());
        assert_eq!(c.recency_rank(0x100), None);
    }

    #[test]
    fn writes_update_data_in_place() {
        let mut c = small();
        c.fill(0x200, 'M', line(0));
        assert!(c.write(0x204, &[0xAA, 0xBB]));
        assert_eq!(c.read(0x204, 2), Some(vec![0xAA, 0xBB]));
        assert!(!c.write(0x300, &[1]), "miss returns false");
    }

    #[test]
    fn iter_visits_every_resident_line() {
        let mut c = small();
        c.fill(0x000, 'a', line(0));
        c.fill(0x050, 'b', line(1));
        c.fill(0x0A0, 'c', line(2));
        let mut addrs: Vec<u64> = c.iter().map(|(a, _)| a).collect();
        addrs.sort_unstable();
        assert_eq!(addrs, vec![0x000, 0x050, 0x0A0]);
    }

    #[test]
    fn distinct_sets_do_not_interfere() {
        let mut c = small();
        for i in 0..4u64 {
            assert!(c.fill(i * 16, 'x', line(i as u8)).is_none());
        }
        assert_eq!(c.len(), 4);
    }

    #[test]
    #[should_panic(expected = "full line")]
    fn short_fills_are_rejected() {
        let mut c = small();
        c.fill(0, 'x', vec![0; 8].into_boxed_slice());
    }

    #[test]
    #[should_panic(expected = "crosses line boundary")]
    fn crossing_reads_are_rejected() {
        let mut c = small();
        c.fill(0, 'x', line(0));
        let _ = c.read(12, 8);
    }
}
