//! Cache geometry configuration.

use std::fmt;

/// Which replacement policy a cache uses.
///
/// The §5.2 refinement reads the *replacement status* of a line, so policies
/// expose a recency rank as well as a victim choice.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ReplacementKind {
    /// Least-recently-used.
    Lru,
    /// First-in-first-out: insertion order, untouched by hits.
    Fifo,
    /// Uniform random victim among occupied ways (seeded, reproducible).
    Random,
}

impl fmt::Display for ReplacementKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ReplacementKind::Lru => "LRU",
            ReplacementKind::Fifo => "FIFO",
            ReplacementKind::Random => "random",
        };
        f.write_str(s)
    }
}

/// Geometry and policy of one cache.
///
/// # Examples
///
/// ```
/// use cache_array::{CacheConfig, ReplacementKind};
///
/// let cfg = CacheConfig::new(4096, 32, 2, ReplacementKind::Lru);
/// assert_eq!(cfg.sets(), 64);
/// assert_eq!(cfg.lines(), 128);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: usize,
    /// Line (block) size in bytes. §5.1 requires this to be uniform across a
    /// system; the `mpsim` system builder enforces that.
    pub line_size: usize,
    /// Ways per set (1 = direct-mapped).
    pub associativity: usize,
    /// Victim-selection policy.
    pub replacement: ReplacementKind,
}

impl CacheConfig {
    /// Creates and validates a configuration.
    ///
    /// # Panics
    ///
    /// Panics when the geometry is inconsistent: sizes not powers of two,
    /// capacity not divisible into `associativity` ways of whole lines, or a
    /// zero anywhere.
    #[must_use]
    pub fn new(
        size_bytes: usize,
        line_size: usize,
        associativity: usize,
        replacement: ReplacementKind,
    ) -> Self {
        assert!(
            line_size.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(
            size_bytes.is_power_of_two(),
            "cache size must be a power of two"
        );
        assert!(associativity > 0, "associativity must be non-zero");
        let lines = size_bytes / line_size;
        assert!(lines >= associativity, "fewer lines than ways");
        assert_eq!(
            lines % associativity,
            0,
            "lines ({lines}) must divide evenly into {associativity} ways"
        );
        let sets = lines / associativity;
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        CacheConfig {
            size_bytes,
            line_size,
            associativity,
            replacement,
        }
    }

    /// A small default useful in tests and examples: 4 KiB, 32 B lines,
    /// 2-way, LRU.
    #[must_use]
    pub fn small() -> Self {
        CacheConfig::new(4096, 32, 2, ReplacementKind::Lru)
    }

    /// Number of sets.
    #[must_use]
    pub fn sets(&self) -> usize {
        self.size_bytes / self.line_size / self.associativity
    }

    /// Total number of lines.
    #[must_use]
    pub fn lines(&self) -> usize {
        self.size_bytes / self.line_size
    }
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig::small()
    }
}

impl fmt::Display for CacheConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}B, {}B lines, {}-way, {}",
            self.size_bytes, self.line_size, self.associativity, self.replacement
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_math() {
        let cfg = CacheConfig::new(8192, 64, 4, ReplacementKind::Fifo);
        assert_eq!(cfg.lines(), 128);
        assert_eq!(cfg.sets(), 32);
    }

    #[test]
    fn direct_mapped_is_allowed() {
        let cfg = CacheConfig::new(1024, 16, 1, ReplacementKind::Lru);
        assert_eq!(cfg.sets(), 64);
    }

    #[test]
    fn fully_associative_is_allowed() {
        let cfg = CacheConfig::new(512, 16, 32, ReplacementKind::Random);
        assert_eq!(cfg.sets(), 1);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_line_rejected() {
        let _ = CacheConfig::new(4096, 48, 2, ReplacementKind::Lru);
    }

    #[test]
    #[should_panic(expected = "fewer lines than ways")]
    fn too_many_ways_rejected() {
        let _ = CacheConfig::new(64, 32, 4, ReplacementKind::Lru);
    }

    #[test]
    fn display_summarises() {
        assert_eq!(
            CacheConfig::small().to_string(),
            "4096B, 32B lines, 2-way, LRU"
        );
    }
}
