//! Address decomposition and line-crosser splitting.

/// Splits byte addresses into (tag, set index, line offset) for a given
/// geometry, and line-aligns addresses.
///
/// # Examples
///
/// ```
/// use cache_array::AddressMap;
///
/// let map = AddressMap::new(32, 64);
/// let (tag, set, offset) = map.split(0x12345);
/// assert_eq!(offset, 0x5);
/// assert_eq!(set, (0x12345 >> 5) as usize & 63);
/// assert_eq!(tag, 0x12345 >> 11);
/// assert_eq!(map.line_addr(0x12345), 0x12340);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AddressMap {
    line_size: usize,
    sets: usize,
    offset_bits: u32,
    set_bits: u32,
}

impl AddressMap {
    /// Creates a map for the given line size and set count (both powers of
    /// two).
    ///
    /// # Panics
    ///
    /// Panics if either argument is not a power of two.
    #[must_use]
    pub fn new(line_size: usize, sets: usize) -> Self {
        assert!(
            line_size.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(sets.is_power_of_two(), "set count must be a power of two");
        AddressMap {
            line_size,
            sets,
            offset_bits: line_size.trailing_zeros(),
            set_bits: sets.trailing_zeros(),
        }
    }

    /// The line size in bytes.
    #[must_use]
    pub fn line_size(&self) -> usize {
        self.line_size
    }

    /// Decomposes an address into `(tag, set index, offset)`.
    #[must_use]
    pub fn split(&self, addr: u64) -> (u64, usize, usize) {
        let offset = (addr & (self.line_size as u64 - 1)) as usize;
        let set = ((addr >> self.offset_bits) & (self.sets as u64 - 1)) as usize;
        let tag = addr >> (self.offset_bits + self.set_bits);
        (tag, set, offset)
    }

    /// The line-aligned address containing `addr`.
    #[must_use]
    pub fn line_addr(&self, addr: u64) -> u64 {
        addr & !(self.line_size as u64 - 1)
    }

    /// Reassembles a line address from its tag and set index.
    #[must_use]
    pub fn reassemble(&self, tag: u64, set: usize) -> u64 {
        (tag << (self.offset_bits + self.set_bits)) | ((set as u64) << self.offset_bits)
    }
}

/// Splits an access of `size` bytes at `addr` into per-line pieces.
///
/// §5.1: "a processor operation which makes a reference which overlaps 2 or
/// more lines ... the processor/cache interface must be able to treat this as
/// a separate transaction for each line involved."
///
/// Returns `(piece_addr, piece_len)` pairs covering the access, each entirely
/// inside one line.
///
/// # Examples
///
/// ```
/// use cache_array::split_line_crossers;
///
/// // An 8-byte access starting 4 bytes before a 16-byte line boundary.
/// let pieces = split_line_crossers(12, 8, 16);
/// assert_eq!(pieces, vec![(12, 4), (16, 4)]);
/// ```
///
/// # Panics
///
/// Panics if `line_size` is not a power of two.
#[must_use]
pub fn split_line_crossers(addr: u64, size: usize, line_size: usize) -> Vec<(u64, usize)> {
    assert!(
        line_size.is_power_of_two(),
        "line size must be a power of two"
    );
    if size == 0 {
        return Vec::new();
    }
    let mut pieces = Vec::new();
    let mut cur = addr;
    let mut remaining = size;
    while remaining > 0 {
        let line_end = (cur & !(line_size as u64 - 1)) + line_size as u64;
        let in_line = ((line_end - cur) as usize).min(remaining);
        pieces.push((cur, in_line));
        cur += in_line as u64;
        remaining -= in_line;
    }
    pieces
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_round_trips_through_reassemble() {
        let map = AddressMap::new(64, 128);
        for addr in [0u64, 0x40, 0x12345678, u64::from(u32::MAX)] {
            let (tag, set, offset) = map.split(addr);
            assert_eq!(map.reassemble(tag, set) + offset as u64, addr);
            assert_eq!(map.reassemble(tag, set), map.line_addr(addr));
        }
    }

    #[test]
    fn single_set_caches_have_no_set_bits() {
        let map = AddressMap::new(16, 1);
        let (tag, set, _) = map.split(0xABCDE);
        assert_eq!(set, 0);
        assert_eq!(tag, 0xABCDE >> 4);
    }

    #[test]
    fn aligned_access_does_not_split() {
        assert_eq!(split_line_crossers(32, 8, 16), vec![(32, 8)]);
        assert_eq!(split_line_crossers(0, 16, 16), vec![(0, 16)]);
    }

    #[test]
    fn crossers_split_at_every_boundary() {
        // 40 bytes spanning three 16-byte lines.
        assert_eq!(
            split_line_crossers(8, 40, 16),
            vec![(8, 8), (16, 16), (32, 16)]
        );
    }

    #[test]
    fn zero_size_access_is_empty() {
        assert!(split_line_crossers(5, 0, 16).is_empty());
    }

    #[test]
    fn pieces_cover_exactly_the_access() {
        for addr in 0..64u64 {
            for size in 1..48usize {
                let pieces = split_line_crossers(addr, size, 16);
                let total: usize = pieces.iter().map(|&(_, l)| l).sum();
                assert_eq!(total, size);
                let mut cur = addr;
                for &(a, l) in &pieces {
                    assert_eq!(a, cur, "pieces must be contiguous");
                    assert_eq!(a / 16, (a + l as u64 - 1) / 16, "piece crosses a line");
                    cur += l as u64;
                }
            }
        }
    }
}
