//! Sector (sub-block) caches — the §5.1 design question.
//!
//! "There is also the problem of supporting sector caches \[Hill84\] ... it
//! is undetermined whether the address sector size, the transfer subsector
//! size or both must be standardized. (The latter almost certainly needs to
//! be fixed ... Consistency status also appears to be necessarily associated
//! with the transfer subsector, rather than the address sector.)"
//!
//! [`SectorCache`] implements exactly that conclusion: one tag per *address
//! sector*, with the consistency state held per *transfer subsector*, so a
//! subsector can be invalidated or transferred independently.

use crate::address::AddressMap;

/// The result of probing a sector cache.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SectorProbe {
    /// Sector tag and subsector both present.
    Hit,
    /// The sector tag matches but the subsector has no valid state — only
    /// the subsector needs to be transferred.
    SubsectorMiss,
    /// No matching sector tag — a sector frame must be (re)allocated.
    SectorMiss,
}

#[derive(Clone, Debug)]
struct SectorFrame<S> {
    tag: u64,
    subsectors: Vec<Option<S>>,
}

/// A fully-associative sector cache with per-subsector consistency state.
///
/// # Examples
///
/// ```
/// use cache_array::{SectorCache, SectorProbe};
///
/// // 4 sector frames of 64 bytes, 16-byte transfer subsectors.
/// let mut sc: SectorCache<char> = SectorCache::new(4, 64, 16);
/// assert_eq!(sc.probe(0x100), SectorProbe::SectorMiss);
/// sc.install(0x100, 'S');
/// assert_eq!(sc.probe(0x100), SectorProbe::Hit);
/// // Same sector, different subsector: only the subsector misses.
/// assert_eq!(sc.probe(0x110), SectorProbe::SubsectorMiss);
/// ```
#[derive(Clone, Debug)]
pub struct SectorCache<S> {
    frames: Vec<Option<SectorFrame<S>>>,
    /// LRU order of frame indices, most recent first.
    order: Vec<usize>,
    sector_map: AddressMap,
    subsectors_per_sector: usize,
    subsector_size: usize,
}

impl<S: Copy> SectorCache<S> {
    /// Creates a sector cache with `frames` address sectors of `sector_size`
    /// bytes, transferred in `subsector_size` units.
    ///
    /// # Panics
    ///
    /// Panics unless both sizes are powers of two and the subsector divides
    /// the sector.
    #[must_use]
    pub fn new(frames: usize, sector_size: usize, subsector_size: usize) -> Self {
        assert!(sector_size.is_power_of_two() && subsector_size.is_power_of_two());
        assert!(
            subsector_size <= sector_size,
            "subsector larger than sector"
        );
        assert!(frames > 0, "need at least one sector frame");
        SectorCache {
            frames: (0..frames).map(|_| None).collect(),
            order: Vec::with_capacity(frames),
            sector_map: AddressMap::new(sector_size, 1),
            subsectors_per_sector: sector_size / subsector_size,
            subsector_size,
        }
    }

    /// The transfer subsector size in bytes — the unit consistency state is
    /// attached to, and the unit that §5.1 says must be standardised.
    #[must_use]
    pub fn subsector_size(&self) -> usize {
        self.subsector_size
    }

    fn subsector_index(&self, addr: u64) -> usize {
        let (_, _, offset) = self.sector_map.split(addr);
        offset / self.subsector_size
    }

    fn frame_of(&self, addr: u64) -> Option<usize> {
        let (tag, _, _) = self.sector_map.split(addr);
        self.frames
            .iter()
            .position(|f| f.as_ref().is_some_and(|f| f.tag == tag))
    }

    /// Classifies an access (see [`SectorProbe`]).
    #[must_use]
    pub fn probe(&self, addr: u64) -> SectorProbe {
        match self.frame_of(addr) {
            None => SectorProbe::SectorMiss,
            Some(f) => {
                let sub = self.subsector_index(addr);
                let frame = self.frames[f].as_ref().expect("frame_of found it");
                if frame.subsectors[sub].is_some() {
                    SectorProbe::Hit
                } else {
                    SectorProbe::SubsectorMiss
                }
            }
        }
    }

    /// The consistency state of the subsector containing `addr`.
    #[must_use]
    pub fn state_of(&self, addr: u64) -> Option<S> {
        let f = self.frame_of(addr)?;
        let sub = self.subsector_index(addr);
        self.frames[f].as_ref().and_then(|fr| fr.subsectors[sub])
    }

    /// Installs (or updates) the subsector containing `addr` with `state`,
    /// allocating or evicting a sector frame if needed. Returns the tag of an
    /// evicted sector, whose valid subsectors the caller must flush.
    pub fn install(&mut self, addr: u64, state: S) -> Option<u64> {
        let (tag, _, _) = self.sector_map.split(addr);
        let sub = self.subsector_index(addr);
        if let Some(f) = self.frame_of(addr) {
            self.frames[f].as_mut().expect("resident").subsectors[sub] = Some(state);
            self.promote(f);
            return None;
        }
        let (frame_idx, evicted) = match self.frames.iter().position(Option::is_none) {
            Some(free) => (free, None),
            None => {
                let lru = *self.order.last().expect("full cache has an order");
                let old = self.frames[lru].take().expect("occupied");
                (
                    lru,
                    Some(old.tag << self.sector_map.line_size().trailing_zeros()),
                )
            }
        };
        let mut subsectors = vec![None; self.subsectors_per_sector];
        subsectors[sub] = Some(state);
        self.frames[frame_idx] = Some(SectorFrame { tag, subsectors });
        self.promote(frame_idx);
        evicted
    }

    /// Drops the state of a single subsector (e.g. on a snooped invalidate),
    /// leaving the rest of the sector resident — the point of associating
    /// consistency status with the transfer subsector.
    pub fn invalidate_subsector(&mut self, addr: u64) -> Option<S> {
        let f = self.frame_of(addr)?;
        let sub = self.subsector_index(addr);
        self.frames[f]
            .as_mut()
            .and_then(|fr| fr.subsectors[sub].take())
    }

    /// Number of valid subsectors across all frames.
    #[must_use]
    pub fn valid_subsectors(&self) -> usize {
        self.frames
            .iter()
            .flatten()
            .map(|f| f.subsectors.iter().flatten().count())
            .sum()
    }

    fn promote(&mut self, frame: usize) {
        if let Some(pos) = self.order.iter().position(|&f| f == frame) {
            self.order.remove(pos);
        }
        self.order.insert(0, frame);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn subsector_states_are_independent() {
        let mut sc: SectorCache<char> = SectorCache::new(2, 64, 16);
        sc.install(0x100, 'M');
        sc.install(0x110, 'S');
        assert_eq!(sc.state_of(0x100), Some('M'));
        assert_eq!(sc.state_of(0x110), Some('S'));
        assert_eq!(sc.state_of(0x120), None);
        assert_eq!(sc.probe(0x120), SectorProbe::SubsectorMiss);
        assert_eq!(sc.valid_subsectors(), 2);
    }

    #[test]
    fn invalidating_one_subsector_keeps_the_sector() {
        let mut sc: SectorCache<char> = SectorCache::new(2, 64, 16);
        sc.install(0x100, 'S');
        sc.install(0x110, 'S');
        assert_eq!(sc.invalidate_subsector(0x100), Some('S'));
        assert_eq!(
            sc.probe(0x100),
            SectorProbe::SubsectorMiss,
            "sector survives"
        );
        assert_eq!(sc.state_of(0x110), Some('S'));
    }

    #[test]
    fn full_cache_evicts_lru_sector() {
        let mut sc: SectorCache<char> = SectorCache::new(2, 64, 16);
        sc.install(0x000, 'a');
        sc.install(0x040, 'b');
        sc.install(0x000, 'a'); // touch sector 0
        let evicted = sc.install(0x080, 'c').expect("must evict");
        assert_eq!(evicted, 0x040);
        assert_eq!(sc.probe(0x040), SectorProbe::SectorMiss);
        assert_eq!(sc.probe(0x000), SectorProbe::Hit);
    }

    #[test]
    fn addresses_in_the_same_subsector_share_state() {
        let mut sc: SectorCache<char> = SectorCache::new(1, 64, 16);
        sc.install(0x104, 'E');
        assert_eq!(sc.state_of(0x10F), Some('E'));
        assert_eq!(sc.probe(0x10F), SectorProbe::Hit);
    }

    #[test]
    #[should_panic(expected = "subsector larger than sector")]
    fn oversized_subsector_rejected() {
        let _: SectorCache<char> = SectorCache::new(1, 16, 64);
    }
}
