//! Model-based testing of `CacheArray`: random operation sequences are
//! checked against a trivially-correct reference model (a bounded map), so
//! residency, data, state and LRU behaviour can never silently drift.

use cache_array::{CacheArray, CacheConfig, ReplacementKind};
use proptest::prelude::*;
use std::collections::HashMap;

const LINE: usize = 16;

/// A reference model: line -> (state, data), plus an LRU list per set.
#[derive(Debug, Default)]
struct Reference {
    lines: HashMap<u64, (u8, Vec<u8>)>,
    /// Per set: line addresses, most recent first.
    lru: HashMap<usize, Vec<u64>>,
}

impl Reference {
    fn set_of(addr: u64, sets: usize) -> usize {
        ((addr / LINE as u64) % sets as u64) as usize
    }

    fn touch(&mut self, addr: u64, sets: usize) {
        let set = Self::set_of(addr, sets);
        let order = self.lru.entry(set).or_default();
        order.retain(|&a| a != addr);
        order.insert(0, addr);
    }

    fn fill(
        &mut self,
        addr: u64,
        state: u8,
        data: Vec<u8>,
        sets: usize,
        ways: usize,
    ) -> Option<u64> {
        let set = Self::set_of(addr, sets);
        let mut victim = None;
        if !self.lines.contains_key(&addr) {
            let order = self.lru.entry(set).or_default();
            if order.len() == ways {
                let evicted = order.pop().expect("full set");
                self.lines.remove(&evicted);
                victim = Some(evicted);
            }
        }
        self.lines.insert(addr, (state, data));
        self.touch(addr, sets);
        victim
    }

    fn invalidate(&mut self, addr: u64, sets: usize) -> bool {
        let set = Self::set_of(addr, sets);
        if let Some(order) = self.lru.get_mut(&set) {
            order.retain(|&a| a != addr);
        }
        self.lines.remove(&addr).is_some()
    }
}

#[derive(Clone, Debug)]
enum Op {
    Fill { line: u64, state: u8, byte: u8 },
    Touch { line: u64 },
    Invalidate { line: u64 },
    Write { line: u64, offset: usize, byte: u8 },
    Read { line: u64, offset: usize },
    SetState { line: u64, state: u8 },
}

fn op_strategy(lines: u64) -> impl Strategy<Value = Op> {
    let line = 0..lines;
    prop_oneof![
        (line.clone(), any::<u8>(), any::<u8>()).prop_map(|(line, state, byte)| Op::Fill {
            line,
            state,
            byte
        }),
        line.clone().prop_map(|line| Op::Touch { line }),
        line.clone().prop_map(|line| Op::Invalidate { line }),
        (line.clone(), 0..LINE, any::<u8>()).prop_map(|(line, offset, byte)| Op::Write {
            line,
            offset,
            byte
        }),
        (line.clone(), 0..LINE).prop_map(|(line, offset)| Op::Read { line, offset }),
        (line, any::<u8>()).prop_map(|(line, state)| Op::SetState { line, state }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cache_array_agrees_with_the_reference_model(
        ops in proptest::collection::vec(op_strategy(24), 1..200),
    ) {
        // 8 sets x 2 ways of 16B lines.
        let cfg = CacheConfig::new(256, LINE, 2, ReplacementKind::Lru);
        let sets = cfg.sets();
        let ways = cfg.associativity;
        let mut cache: CacheArray<u8> = CacheArray::new(cfg, 7);
        let mut model = Reference::default();

        for op in ops {
            match op {
                Op::Fill { line, state, byte } => {
                    let addr = line * LINE as u64;
                    let data = vec![byte; LINE];
                    let victim = cache.fill(addr, state, data.clone().into());
                    let model_victim = model.fill(addr, state, data, sets, ways);
                    prop_assert_eq!(victim.as_ref().map(|v| v.addr), model_victim);
                    if let (Some(v), Some(mv)) = (victim, model_victim) {
                        prop_assert_eq!(v.addr, mv);
                    }
                }
                Op::Touch { line } => {
                    let addr = line * LINE as u64;
                    if model.lines.contains_key(&addr) {
                        cache.touch(addr);
                        model.touch(addr, sets);
                    }
                }
                Op::Invalidate { line } => {
                    let addr = line * LINE as u64;
                    let was = cache.invalidate(addr).is_some();
                    prop_assert_eq!(was, model.invalidate(addr, sets));
                }
                Op::Write { line, offset, byte } => {
                    let addr = line * LINE as u64 + offset as u64;
                    let ok = cache.write(addr, &[byte]);
                    let base = line * LINE as u64;
                    match model.lines.get_mut(&base) {
                        Some((_, data)) => {
                            prop_assert!(ok);
                            data[offset] = byte;
                        }
                        None => prop_assert!(!ok),
                    }
                }
                Op::Read { line, offset } => {
                    let addr = line * LINE as u64 + offset as u64;
                    let got = cache.read(addr, 1);
                    let base = line * LINE as u64;
                    let expect = model.lines.get(&base).map(|(_, d)| vec![d[offset]]);
                    prop_assert_eq!(got, expect);
                }
                Op::SetState { line, state } => {
                    let addr = line * LINE as u64;
                    let ok = cache.set_state(addr, state);
                    prop_assert_eq!(ok, model.lines.contains_key(&addr));
                    if let Some((s, _)) = model.lines.get_mut(&addr) {
                        *s = state;
                    }
                }
            }
            // Global agreement after every operation.
            prop_assert_eq!(cache.len(), model.lines.len());
            for (&addr, (state, data)) in &model.lines {
                prop_assert_eq!(cache.state_of(addr), Some(*state));
                let cached = cache.read(addr, LINE);
                prop_assert_eq!(cached.as_deref(), Some(data.as_slice()));
            }
            // Recency ranks agree with the reference LRU order.
            for (set, order) in &model.lru {
                for (rank, &addr) in order.iter().enumerate() {
                    prop_assert_eq!(
                        cache.recency_rank(addr),
                        Some(rank as u32),
                        "set {} order {:?}", set, order
                    );
                }
            }
        }
    }

    #[test]
    fn sector_cache_state_matches_a_flat_map(
        ops in proptest::collection::vec((0u64..64, any::<bool>(), any::<u8>()), 1..120),
    ) {
        use cache_array::SectorCache;
        // Fully-associative, large enough never to evict: behaviour must
        // match a flat (subsector -> state) map exactly.
        let mut sc: SectorCache<u8> = SectorCache::new(64, 64, 16);
        let mut model: HashMap<u64, u8> = HashMap::new();
        for (sub, install, state) in ops {
            let addr = sub * 16;
            if install {
                prop_assert_eq!(sc.install(addr, state), None, "no evictions expected");
                model.insert(addr, state);
            } else {
                let dropped = sc.invalidate_subsector(addr);
                prop_assert_eq!(dropped, model.remove(&addr));
            }
            prop_assert_eq!(sc.valid_subsectors(), model.len());
            for (&a, &s) in &model {
                prop_assert_eq!(sc.state_of(a), Some(s));
            }
        }
    }
}
