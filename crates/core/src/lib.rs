//! # moesi — the Sweazey–Smith class of compatible cache consistency protocols
//!
//! This crate implements the protocol layer of *"A Class of Compatible Cache
//! Consistency Protocols and their Support by the IEEE Futurebus"* (Sweazey &
//! Smith, ISCA 1986): the five MOESI line states, the master and response
//! signal lines, Tables 1 and 2 as data (the full permitted-action sets that
//! define the compatible class), and every protocol the paper discusses —
//! the preferred MOESI policy, write-through and non-caching clients,
//! Berkeley, Dragon, the adapted Write-Once/Illinois/Firefly, the §5.2
//! replacement-status refinement, and the §3.4 random policy.
//!
//! The crate is pure: no bus, no cache array, no simulator — just state
//! machines. The `futurebus`, `cache-array` and `mpsim` crates build the rest
//! of the system on top of it.
//!
//! ## Quick start
//!
//! ```
//! use moesi::protocols::MoesiPreferred;
//! use moesi::{LineState, LocalCtx, LocalEvent, Protocol};
//!
//! let mut cache = MoesiPreferred::new();
//!
//! // A read miss: Table 1, row I, column Read — `CH:S/E,CA,R`.
//! let action = cache.on_local(LineState::Invalid, LocalEvent::Read, &LocalCtx::default());
//! assert_eq!(action.to_string(), "CH:S/E,CA,R");
//!
//! // If another cache answered CH, the line is loaded Shareable.
//! assert_eq!(action.result.resolve(true), LineState::Shareable);
//! // Otherwise it is Exclusive, and a later write upgrades silently.
//! assert_eq!(action.result.resolve(false), LineState::Exclusive);
//! ```
//!
//! ## Checking class membership
//!
//! ```
//! use moesi::compat::check_protocol;
//! use moesi::protocols::{Dragon, Illinois};
//!
//! assert!(check_protocol(&mut Dragon::new()).is_class_member());
//! // Illinois needs the BS abort: supported by the bus, but outside the class.
//! assert!(!check_protocol(&mut Illinois::new()).is_class_member());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod action;
pub mod compat;
pub mod dot;
mod event;
pub mod json;
pub mod policy;
mod protocol;
pub mod protocols;
pub mod rng;
pub mod serialize;
mod signals;
mod state;
pub mod table;

pub use action::{BusOp, BusReaction, BusyPush, LocalAction, ResultState};
pub use event::{BusEvent, LocalEvent};
pub use policy::{CellEvent, DynamicPolicy, IllegalCell, PolicyTable, TablePolicy};
pub use protocol::{CacheKind, LocalCtx, Protocol, SnoopCtx};
pub use serialize::{parse_member_tables, parse_table, parse_tables, TableParseError};
pub use signals::{ConsistencyLine, MasterSignals, ResponseSignals};
pub use state::{Characteristics, LineState, ParseLineStateError};

#[cfg(test)]
mod lib_tests {
    use super::*;

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LineState>();
        assert_send_sync::<MasterSignals>();
        assert_send_sync::<ResponseSignals>();
        assert_send_sync::<LocalAction>();
        assert_send_sync::<BusReaction>();
        assert_send_sync::<BusEvent>();
        assert_send_sync::<LocalEvent>();
        assert_send_sync::<CacheKind>();
    }
}
