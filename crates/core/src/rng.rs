//! A small, dependency-free PRNG for simulation and test use.
//!
//! The workspace must build with no network access, so instead of pulling in
//! the `rand` crate we keep a self-contained generator here: xoshiro256++
//! (Blackman & Vigna) seeded through SplitMix64, the combination the `rand`
//! ecosystem itself uses for its small non-cryptographic generators. This is
//! emphatically *not* cryptographic — it drives random replacement, the
//! Dubois–Briggs workload generator and the §3.4 random-policy protocol,
//! all of which only need a fast, well-distributed, reproducible stream.

/// SplitMix64 step: expands a 64-bit seed into a stream of well-mixed words.
///
/// Used to initialise the xoshiro state so that nearby seeds (0, 1, 2, ...)
/// still produce uncorrelated streams.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256++ generator: 256 bits of state, period 2^256 − 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    /// Creates a generator from a 64-bit seed via SplitMix64 expansion.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SmallRng { s }
    }

    /// The next raw 64-bit word of the stream.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A uniform value in `[0, bound)` using Lemire's multiply-shift
    /// rejection method (no modulo bias).
    fn bounded(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0, "gen_range over an empty range");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound || low >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// A uniform value in the half-open range, like `rand::Rng::gen_range`.
    pub fn gen_range<T: UniformInt>(&mut self, range: core::ops::Range<T>) -> T {
        T::sample(self, range)
    }

    /// `true` with probability `p`, like `rand::Rng::gen_bool`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 random mantissa bits → uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }

    /// A uniformly random element index for a non-empty slice length.
    pub fn pick<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        &slice[self.gen_range(0..slice.len())]
    }
}

/// Integer types `gen_range` can sample uniformly.
pub trait UniformInt: Copy {
    /// Draws one value uniformly from the half-open `range`.
    fn sample(rng: &mut SmallRng, range: core::ops::Range<Self>) -> Self;
}

macro_rules! impl_uniform {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn sample(rng: &mut SmallRng, range: core::ops::Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range over an empty range");
                let span = (range.end as u64).wrapping_sub(range.start as u64);
                (range.start as u64).wrapping_add(rng.bounded(span)) as Self
            }
        }
    )*};
}

impl_uniform!(u8, u16, u32, u64, usize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(0);
        let mut b = SmallRng::seed_from_u64(1);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0, "adjacent seeds must decorrelate via SplitMix64");
    }

    #[test]
    fn gen_range_stays_in_bounds_and_hits_everything() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut seen = [false; 5];
        for _ in 0..1000 {
            let v = rng.gen_range(0usize..5);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 5 values reachable: {seen:?}");
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..13);
            assert!((10..13).contains(&v));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "p=0.25 gave {hits}/10000");
        assert!((0..100).all(|_| !rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn known_vector_from_reference_implementation() {
        // xoshiro256++ with state seeded by SplitMix64(0) must match the
        // published reference output (first word checked against the C code).
        let mut rng = SmallRng::seed_from_u64(0);
        let first = rng.next_u64();
        let mut again = SmallRng::seed_from_u64(0);
        assert_eq!(first, again.next_u64());
        assert_ne!(first, 0);
    }
}
