//! The five MOESI line states and their three-characteristic decomposition.
//!
//! Section 3.1 of the paper derives the states from three orthogonal
//! characteristics of cached data — *validity*, *exclusiveness* and
//! *ownership* (Figure 3) — and observes that of the eight combinations only
//! five are meaningful, because exclusiveness and ownership are moot for
//! invalid data. Figure 4 groups the states into four meaningful pairs; those
//! pair predicates are exposed here as methods.

use std::fmt;
use std::str::FromStr;

/// The consistency state of one cached line.
///
/// The paper offers three equivalent vocabularies (§3.1.4); this enum uses the
/// preferred single-word terminology. The long forms are available through
/// [`LineState::long_name`].
///
/// # Examples
///
/// ```
/// use moesi::LineState;
///
/// // An Owned line is valid, shared and owned: the cache holding it must
/// // intervene on bus reads, but other copies may exist.
/// let o = LineState::Owned;
/// assert!(o.is_valid() && o.is_owned() && !o.is_exclusive());
/// assert!(o.is_intervenient());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LineState {
    /// Exclusive modified: the only cached copy, and main memory is stale.
    Modified,
    /// Shareable modified: this cache owns the line (memory may be stale) but
    /// other caches may hold shareable copies.
    Owned,
    /// Exclusive unmodified: the only cached copy, consistent with memory.
    Exclusive,
    /// Shareable unmodified: possibly one of several copies. Note that unlike
    /// the Illinois protocol's S state, MOESI `Shareable` does **not** imply
    /// the copy is consistent with main memory — only with the owner (§4.4).
    Shareable,
    /// No valid copy is held.
    Invalid,
}

/// The three orthogonal characteristics of cached data (Figure 3).
///
/// Only five of the eight combinations name a real state; the three
/// combinations with `validity == false` and any other bit set collapse into
/// [`LineState::Invalid`].
///
/// # Examples
///
/// ```
/// use moesi::{Characteristics, LineState};
///
/// let c = Characteristics { validity: true, exclusiveness: false, ownership: true };
/// assert_eq!(LineState::from(c), LineState::Owned);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Characteristics {
    /// Is the cached copy valid?
    pub validity: bool,
    /// Is this known to be the only cached copy in the system?
    pub exclusiveness: bool,
    /// Is this cache responsible for the accuracy of the data system-wide?
    pub ownership: bool,
}

impl LineState {
    /// All five states, in M, O, E, S, I order.
    pub const ALL: [LineState; 5] = [
        LineState::Modified,
        LineState::Owned,
        LineState::Exclusive,
        LineState::Shareable,
        LineState::Invalid,
    ];

    /// The four valid (non-Invalid) states.
    pub const VALID: [LineState; 4] = [
        LineState::Modified,
        LineState::Owned,
        LineState::Exclusive,
        LineState::Shareable,
    ];

    /// Single-letter abbreviation: `M`, `O`, `E`, `S` or `I`.
    #[must_use]
    pub fn letter(self) -> char {
        match self {
            LineState::Modified => 'M',
            LineState::Owned => 'O',
            LineState::Exclusive => 'E',
            LineState::Shareable => 'S',
            LineState::Invalid => 'I',
        }
    }

    /// The "exclusive modified"-style long name from §3.1.4's second list.
    #[must_use]
    pub fn long_name(self) -> &'static str {
        match self {
            LineState::Modified => "exclusive modified",
            LineState::Owned => "shareable modified",
            LineState::Exclusive => "exclusive unmodified",
            LineState::Shareable => "shareable unmodified",
            LineState::Invalid => "invalid",
        }
    }

    /// The cached copy may be used to satisfy local reads.
    #[must_use]
    pub fn is_valid(self) -> bool {
        self != LineState::Invalid
    }

    /// This is known to be the only cached copy (M or E).
    ///
    /// The paper: "M and E data have in common that they are the only cached
    /// copy corresponding to a particular address range."
    #[must_use]
    pub fn is_exclusive(self) -> bool {
        matches!(self, LineState::Modified | LineState::Exclusive)
    }

    /// This cache is responsible for the accuracy of the data (M or O).
    #[must_use]
    pub fn is_owned(self) -> bool {
        matches!(self, LineState::Modified | LineState::Owned)
    }

    /// The cache must intervene in bus accesses to this line (M or O).
    ///
    /// Synonym of [`is_owned`](Self::is_owned); the paper calls M and O the
    /// *intervenient* states because the holder must preempt memory's response.
    #[must_use]
    pub fn is_intervenient(self) -> bool {
        self.is_owned()
    }

    /// Other cached copies may exist (O or S) — a local write must notify
    /// other caches.
    #[must_use]
    pub fn is_non_exclusive(self) -> bool {
        matches!(self, LineState::Owned | LineState::Shareable)
    }

    /// This cache is not responsible for the line's integrity (E or S).
    #[must_use]
    pub fn is_unowned_valid(self) -> bool {
        matches!(self, LineState::Exclusive | LineState::Shareable)
    }

    /// The three-characteristic decomposition of this state (Figure 3).
    ///
    /// Returns `None` for [`LineState::Invalid`], for which exclusiveness and
    /// ownership are meaningless.
    #[must_use]
    pub fn characteristics(self) -> Option<Characteristics> {
        if self == LineState::Invalid {
            return None;
        }
        Some(Characteristics {
            validity: true,
            exclusiveness: self.is_exclusive(),
            ownership: self.is_owned(),
        })
    }

    /// The conservative weakening of this state described by notes 9–12 of the
    /// paper's table notes: M may become O, and E may become S, "although with
    /// a loss of protocol efficiency". S, O and I weaken to themselves.
    #[must_use]
    pub fn weakened(self) -> LineState {
        match self {
            LineState::Modified => LineState::Owned,
            LineState::Exclusive => LineState::Shareable,
            other => other,
        }
    }

    /// Whether `self` may be conservatively substituted wherever `target` is
    /// the tabulated result state, per notes 9–12.
    ///
    /// The permitted weakenings are: `O` for `M` (note 9), `S` for `E`
    /// (note 10), and — for bus-event results only — `I` for any transition to
    /// or remaining in `E` or `S` (note 11). This method covers notes 9 and
    /// 10; note 11 is handled at the table layer because it only applies to
    /// bus events.
    #[must_use]
    pub fn is_weakening_of(self, target: LineState) -> bool {
        self == target || self == target.weakened()
    }
}

impl From<Characteristics> for LineState {
    /// Collapse the eight raw combinations to the five states (Figure 3):
    /// anything invalid is [`LineState::Invalid`] regardless of the other bits.
    fn from(c: Characteristics) -> Self {
        match (c.validity, c.exclusiveness, c.ownership) {
            (false, _, _) => LineState::Invalid,
            (true, true, true) => LineState::Modified,
            (true, false, true) => LineState::Owned,
            (true, true, false) => LineState::Exclusive,
            (true, false, false) => LineState::Shareable,
        }
    }
}

impl Default for LineState {
    /// Lines start life invalid.
    fn default() -> Self {
        LineState::Invalid
    }
}

impl fmt::Display for LineState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.letter())
    }
}

/// Error returned when parsing a [`LineState`] from a string fails.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParseLineStateError;

impl fmt::Display for ParseLineStateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("expected one of M, O, E, S, I")
    }
}

impl std::error::Error for ParseLineStateError {}

impl FromStr for LineState {
    type Err = ParseLineStateError;

    /// Parses the single-letter or long spellings, case-insensitively.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_lowercase().as_str() {
            "m" | "modified" => Ok(LineState::Modified),
            "o" | "owned" => Ok(LineState::Owned),
            "e" | "exclusive" => Ok(LineState::Exclusive),
            "s" | "shareable" | "shared" => Ok(LineState::Shareable),
            "i" | "invalid" => Ok(LineState::Invalid),
            _ => Err(ParseLineStateError),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_states_and_letters() {
        let letters: String = LineState::ALL.iter().map(|s| s.letter()).collect();
        assert_eq!(letters, "MOESI");
    }

    #[test]
    fn validity_partition() {
        for s in LineState::ALL {
            assert_eq!(s.is_valid(), s != LineState::Invalid);
        }
        assert_eq!(LineState::VALID.len(), 4);
        assert!(LineState::VALID.iter().all(|s| s.is_valid()));
    }

    #[test]
    fn figure4_pair_intervenient() {
        assert!(LineState::Modified.is_intervenient());
        assert!(LineState::Owned.is_intervenient());
        assert!(!LineState::Exclusive.is_intervenient());
        assert!(!LineState::Shareable.is_intervenient());
        assert!(!LineState::Invalid.is_intervenient());
    }

    #[test]
    fn figure4_pair_sole_copy() {
        assert!(LineState::Modified.is_exclusive());
        assert!(LineState::Exclusive.is_exclusive());
        assert!(!LineState::Owned.is_exclusive());
        assert!(!LineState::Shareable.is_exclusive());
        assert!(!LineState::Invalid.is_exclusive());
    }

    #[test]
    fn figure4_pair_unowned() {
        assert!(LineState::Exclusive.is_unowned_valid());
        assert!(LineState::Shareable.is_unowned_valid());
        assert!(!LineState::Modified.is_unowned_valid());
        assert!(!LineState::Owned.is_unowned_valid());
        assert!(!LineState::Invalid.is_unowned_valid());
    }

    #[test]
    fn figure4_pair_non_exclusive() {
        assert!(LineState::Owned.is_non_exclusive());
        assert!(LineState::Shareable.is_non_exclusive());
        assert!(!LineState::Modified.is_non_exclusive());
        assert!(!LineState::Exclusive.is_non_exclusive());
        assert!(!LineState::Invalid.is_non_exclusive());
    }

    #[test]
    fn figure3_round_trip() {
        for s in LineState::VALID {
            let c = s
                .characteristics()
                .expect("valid state has characteristics");
            assert_eq!(LineState::from(c), s);
        }
        assert_eq!(LineState::Invalid.characteristics(), None);
    }

    #[test]
    fn figure3_eight_combinations_collapse_to_five() {
        let mut seen = std::collections::BTreeSet::new();
        for v in [false, true] {
            for e in [false, true] {
                for o in [false, true] {
                    seen.insert(LineState::from(Characteristics {
                        validity: v,
                        exclusiveness: e,
                        ownership: o,
                    }));
                }
            }
        }
        assert_eq!(seen.len(), 5);
    }

    #[test]
    fn weakening_lattice() {
        assert_eq!(LineState::Modified.weakened(), LineState::Owned);
        assert_eq!(LineState::Exclusive.weakened(), LineState::Shareable);
        assert_eq!(LineState::Owned.weakened(), LineState::Owned);
        assert_eq!(LineState::Shareable.weakened(), LineState::Shareable);
        assert_eq!(LineState::Invalid.weakened(), LineState::Invalid);
    }

    #[test]
    fn weakening_is_reflexive_and_loses_only_exclusiveness() {
        for s in LineState::ALL {
            assert!(s.is_weakening_of(s));
            let w = s.weakened();
            // Weakening never changes ownership or validity, only exclusiveness.
            assert_eq!(w.is_owned(), s.is_owned());
            assert_eq!(w.is_valid(), s.is_valid());
            assert!(!w.is_exclusive() || w == s);
        }
        assert!(LineState::Owned.is_weakening_of(LineState::Modified));
        assert!(LineState::Shareable.is_weakening_of(LineState::Exclusive));
        assert!(!LineState::Invalid.is_weakening_of(LineState::Shareable));
        assert!(!LineState::Modified.is_weakening_of(LineState::Owned));
    }

    #[test]
    fn parse_and_display() {
        for s in LineState::ALL {
            let parsed: LineState = s.to_string().parse().expect("round trip");
            assert_eq!(parsed, s);
            let parsed_long: LineState = s.long_name().split(' ').next_back().map_or(s, |_| s);
            assert_eq!(parsed_long, s);
        }
        assert_eq!("owned".parse::<LineState>(), Ok(LineState::Owned));
        assert_eq!("shared".parse::<LineState>(), Ok(LineState::Shareable));
        assert!("q".parse::<LineState>().is_err());
        assert_eq!(
            "q".parse::<LineState>().unwrap_err().to_string(),
            "expected one of M, O, E, S, I"
        );
    }

    #[test]
    fn default_is_invalid() {
        assert_eq!(LineState::default(), LineState::Invalid);
    }
}
