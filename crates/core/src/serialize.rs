//! Parsing [`PolicyTable`]s back from their rendered form.
//!
//! [`PolicyTable::render`](crate::PolicyTable::render) prints a table in the
//! paper's Tables 3–7 layout; this module inverts it, so a rendered table is
//! also the *serialised* form — the same text the `moesi-sim table`
//! subcommand prints, the fixtures pin, and the synth subsystem emits can be
//! loaded back and executed. The round trip is exact in both directions:
//! `parse_table(t.render()) == t` and `parse_table(text).render() == text`
//! for any rendered `text`.
//!
//! Grammar per cell (all whitespace-free, which is what makes the layout
//! parseable by column splitting):
//!
//! * local cells — `Read>Write`, or `{result}[,{signals}][,{op}]` where
//!   `result` is a state letter or `CH:{x}/{y}`, `signals` is a comma-joined
//!   subset of `CA,IM,BC`, and `op` is `R`, `W` or `A`;
//! * bus cells — `BS;{state},{signals},W` for an abort-and-push, otherwise
//!   `{result}[,CH][,DI][,SL]`;
//! * `-` — an unpopulated (`—`) cell.
//!
//! A fixture file may hold several tables separated by blank lines, with
//! `#`-prefixed comment lines between them ([`parse_tables`]). Parsing
//! accepts *any* grammatical table — including deliberately out-of-class
//! ones, which the mutation audit needs — while [`parse_member_tables`]
//! additionally rejects tables outside the compatible class with a
//! structured error naming the first offending cell.

use crate::action::{BusOp, BusReaction, LocalAction, ResultState};
use crate::event::{BusEvent, LocalEvent};
use crate::policy::PolicyTable;
use crate::protocol::CacheKind;
use crate::signals::MasterSignals;
use crate::state::LineState;
use std::fmt;
use std::str::FromStr;

/// A structured parse error: the 1-based line the problem is on and what
/// went wrong (malformed header, unknown state letter, malformed cell — the
/// message names the `(state, event)` cell and the offending token).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TableParseError {
    /// 1-based line number in the parsed text.
    pub line: usize,
    /// What is wrong with that line.
    pub message: String,
}

impl TableParseError {
    fn new(line: usize, message: impl Into<String>) -> Self {
        TableParseError {
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for TableParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "policy table, line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TableParseError {}

/// Lines in one rendered table: header, two section titles, two column
/// headers, and five rows per section.
const TABLE_LINES: usize = 15;

/// Parses exactly one rendered table.
///
/// # Errors
///
/// Returns a [`TableParseError`] for malformed input, or when the text holds
/// zero or several tables.
pub fn parse_table(text: &str) -> Result<PolicyTable, TableParseError> {
    let tables = parse_tables(text)?;
    match tables.len() {
        1 => Ok(tables.into_iter().next().expect("length checked")),
        n => Err(TableParseError::new(
            1,
            format!("expected exactly one table, found {n}"),
        )),
    }
}

/// Parses every table in `text`, in order. Blank lines and `#` comment lines
/// *between* tables are skipped.
///
/// # Errors
///
/// Returns a [`TableParseError`] naming the first offending line.
pub fn parse_tables(text: &str) -> Result<Vec<PolicyTable>, TableParseError> {
    let lines: Vec<&str> = text.lines().collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < lines.len() {
        let line = lines[i].trim_end();
        if line.is_empty() || line.starts_with('#') {
            i += 1;
            continue;
        }
        if !line.contains(" protocol, ") {
            return Err(TableParseError::new(
                i + 1,
                format!(
                    "expected a table header (`<name> protocol, <kind> client: ...`), got `{line}`"
                ),
            ));
        }
        if i + TABLE_LINES > lines.len() {
            return Err(TableParseError::new(
                i + 1,
                format!("truncated table: expected {TABLE_LINES} lines"),
            ));
        }
        out.push(parse_block(&lines[i..i + TABLE_LINES], i + 1)?);
        i += TABLE_LINES;
    }
    Ok(out)
}

/// [`parse_tables`], additionally requiring every table to be a member of
/// the compatible class ([`PolicyTable::is_class_member`]).
///
/// # Errors
///
/// Returns a [`TableParseError`] for malformed input, or one anchored at a
/// table's header line when that table carries an out-of-class cell.
pub fn parse_member_tables(text: &str) -> Result<Vec<PolicyTable>, TableParseError> {
    let lines: Vec<&str> = text.lines().collect();
    let tables = parse_tables(text)?;
    let mut headers = lines
        .iter()
        .enumerate()
        .filter(|(_, l)| l.contains(" protocol, "))
        .map(|(i, _)| i + 1);
    for table in &tables {
        let header = headers.next().unwrap_or(1);
        let violations = table.class_violations();
        if let Some(first) = violations.first() {
            let more = violations.len() - 1;
            let suffix = if more == 0 {
                String::new()
            } else {
                format!(" (+{more} more)")
            };
            return Err(TableParseError::new(
                header,
                format!(
                    "table `{}` is not a class member: {first}{suffix}",
                    table.name()
                ),
            ));
        }
    }
    Ok(tables)
}

fn parse_block(lines: &[&str], first: usize) -> Result<PolicyTable, TableParseError> {
    let (name, kind) = parse_header(lines[0], first)?;
    // Parsed tables are built at runtime, but `PolicyTable` carries a
    // `&'static str` name (every shipped table is a constant). Leak the
    // parsed name: tables are loaded once per process, from CLI flags,
    // fixtures and tests.
    let name: &'static str = Box::leak(name.into_boxed_str());
    let mut table = PolicyTable::empty(name, kind);
    expect_title(lines[1], first + 1, "Local events")?;
    expect_column_header(lines[2], first + 2)?;
    let mut uses_bs = false;
    for (offset, row) in lines[3..8].iter().enumerate() {
        let line_no = first + 3 + offset;
        let tokens: Vec<&str> = row.split_whitespace().collect();
        let state = parse_row_state(&tokens, line_no, 1 + LocalEvent::ALL.len())?;
        for (event, token) in LocalEvent::ALL.into_iter().zip(&tokens[1..]) {
            if *token == "-" {
                continue;
            }
            let action = parse_local_action(token).map_err(|msg| {
                TableParseError::new(
                    line_no,
                    format!("local ({state}, {event}): malformed cell `{token}`: {msg}"),
                )
            })?;
            table.set_local_unchecked(state, event, action);
        }
    }
    expect_title(lines[8], first + 8, "Snooped bus events")?;
    expect_column_header(lines[9], first + 9)?;
    for (offset, row) in lines[10..15].iter().enumerate() {
        let line_no = first + 10 + offset;
        let tokens: Vec<&str> = row.split_whitespace().collect();
        let state = parse_row_state(&tokens, line_no, 1 + BusEvent::ALL.len())?;
        for (event, token) in BusEvent::ALL.into_iter().zip(&tokens[1..]) {
            if *token == "-" {
                continue;
            }
            let reaction = parse_bus_reaction(token).map_err(|msg| {
                TableParseError::new(
                    line_no,
                    format!("bus ({state}, {event}): malformed cell `{token}`: {msg}"),
                )
            })?;
            uses_bs |= reaction.busy.is_some();
            table.set_bus_unchecked(state, event, reaction);
        }
    }
    if uses_bs {
        table = table.with_bs();
    }
    Ok(table)
}

fn parse_header(line: &str, line_no: usize) -> Result<(String, CacheKind), TableParseError> {
    let (name, rest) = line
        .split_once(" protocol, ")
        .ok_or_else(|| TableParseError::new(line_no, "missing ` protocol, ` in header"))?;
    let (kind_str, _) = rest
        .split_once(" client:")
        .ok_or_else(|| TableParseError::new(line_no, "missing ` client:` in header"))?;
    let kind = match kind_str {
        "copy-back" => CacheKind::CopyBack,
        "write-through" => CacheKind::WriteThrough,
        "non-caching" => CacheKind::NonCaching,
        other => {
            return Err(TableParseError::new(
                line_no,
                format!("unknown client kind `{other}`"),
            ))
        }
    };
    if name.is_empty() {
        return Err(TableParseError::new(line_no, "empty protocol name"));
    }
    Ok((name.to_string(), kind))
}

fn expect_title(line: &str, line_no: usize, want: &str) -> Result<(), TableParseError> {
    if line.starts_with(want) {
        Ok(())
    } else {
        Err(TableParseError::new(
            line_no,
            format!("expected the `{want}` section title, got `{line}`"),
        ))
    }
}

fn expect_column_header(line: &str, line_no: usize) -> Result<(), TableParseError> {
    if line.starts_with("State") {
        Ok(())
    } else {
        Err(TableParseError::new(
            line_no,
            format!("expected a `State ...` column header, got `{line}`"),
        ))
    }
}

fn parse_row_state(
    tokens: &[&str],
    line_no: usize,
    want: usize,
) -> Result<LineState, TableParseError> {
    if tokens.len() != want {
        return Err(TableParseError::new(
            line_no,
            format!(
                "expected a state letter and {} cells, found {} tokens",
                want - 1,
                tokens.len()
            ),
        ));
    }
    LineState::from_str(tokens[0])
        .map_err(|_| TableParseError::new(line_no, format!("unknown state letter `{}`", tokens[0])))
}

fn parse_result_state(token: &str) -> Result<ResultState, String> {
    if let Some(rest) = token.strip_prefix("CH:") {
        let (if_ch, if_not) = rest
            .split_once('/')
            .ok_or_else(|| format!("conditional result `CH:{rest}` needs the form `CH:x/y`"))?;
        let if_ch = LineState::from_str(if_ch).map_err(|_| format!("unknown state `{if_ch}`"))?;
        let if_not =
            LineState::from_str(if_not).map_err(|_| format!("unknown state `{if_not}`"))?;
        Ok(ResultState::OnCh { if_ch, if_not })
    } else {
        LineState::from_str(token)
            .map(ResultState::Fixed)
            .map_err(|_| format!("unknown state `{token}`"))
    }
}

fn parse_local_action(token: &str) -> Result<LocalAction, String> {
    if token == "Read>Write" {
        return Ok(LocalAction::read_then_write());
    }
    let mut parts = token.split(',');
    let result = parse_result_state(parts.next().expect("split yields at least one part"))?;
    let mut signals = MasterSignals::NONE;
    let mut bus_op = BusOp::None;
    for part in parts {
        if bus_op != BusOp::None {
            return Err(format!("`{part}` after the bus operation"));
        }
        match part {
            "CA" => signals.ca = true,
            "IM" => signals.im = true,
            "BC" => signals.bc = true,
            "R" => bus_op = BusOp::Read,
            "W" => bus_op = BusOp::Write,
            "A" => bus_op = BusOp::AddressOnly,
            other => return Err(format!("unknown token `{other}`")),
        }
    }
    Ok(LocalAction {
        result,
        signals,
        bus_op,
    })
}

fn parse_bus_reaction(token: &str) -> Result<BusReaction, String> {
    if let Some(rest) = token.strip_prefix("BS;") {
        let parts: Vec<&str> = rest.split(',').collect();
        if parts.len() < 2 || *parts.last().expect("non-empty") != "W" {
            return Err("a busy push has the form `BS;state,signals,W`".to_string());
        }
        let result =
            LineState::from_str(parts[0]).map_err(|_| format!("unknown state `{}`", parts[0]))?;
        let mut signals = MasterSignals::NONE;
        for part in &parts[1..parts.len() - 1] {
            match *part {
                "-" => {}
                "CA" => signals.ca = true,
                "IM" => signals.im = true,
                "BC" => signals.bc = true,
                other => return Err(format!("unknown push signal `{other}`")),
            }
        }
        return Ok(BusReaction::busy_push(result, signals));
    }
    let mut parts = token.split(',');
    let result = parse_result_state(parts.next().expect("split yields at least one part"))?;
    let mut reaction = BusReaction::quiet(result);
    for part in parts {
        match part {
            "CH" => reaction.ch = true,
            "DI" => reaction.di = true,
            "SL" => reaction.sl = true,
            other => return Err(format!("unknown response signal `{other}`")),
        }
    }
    Ok(reaction)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocols;

    /// Every shipped exact table round-trips: parse(render) == table and
    /// render(parse(text)) == text, byte for byte.
    #[test]
    fn shipped_tables_round_trip_byte_identically() {
        for p in protocols::all_protocols(0) {
            let name = p.name().to_string();
            let Some(table) = p.policy_table() else {
                continue;
            };
            let text = table.render();
            let parsed = parse_table(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(&parsed, table, "{name}: parse(render) differs");
            assert_eq!(parsed.render(), text, "{name}: render not stable");
            assert_eq!(parsed.name(), table.name(), "{name}");
            assert_eq!(parsed.kind(), table.kind(), "{name}");
            assert_eq!(parsed.requires_bs(), table.requires_bs(), "{name}");
        }
    }

    #[test]
    fn multi_table_documents_with_comments_parse() {
        let a = PolicyTable::preferred("alpha", CacheKind::CopyBack);
        let b = PolicyTable::preferred("beta", CacheKind::WriteThrough);
        let text = format!(
            "# workload: general\n{}\n# workload: ping-pong\n{}",
            a.render(),
            b.render()
        );
        let tables = parse_tables(&text).unwrap();
        assert_eq!(tables.len(), 2);
        assert_eq!(tables[0], a);
        assert_eq!(tables[1], b);
    }

    #[test]
    fn malformed_cells_are_structured_errors() {
        let good = PolicyTable::preferred("p", CacheKind::CopyBack).render();
        let bad = good.replacen("CH:S/E,CA,R", "CH:S/E,CA,Q", 1);
        let err = parse_tables(&bad).unwrap_err();
        assert_eq!(err.line, 8, "{err}");
        assert!(err.message.contains("local (I, Read)"), "{err}");
        assert!(err.message.contains("unknown token `Q`"), "{err}");

        let bad = good.replacen("O,CH,DI", "O,CH,DX", 1);
        let err = parse_tables(&bad).unwrap_err();
        assert!(err.message.contains("bus (M, CA (col 5))"), "{err}");
        assert!(
            err.message.contains("unknown response signal `DX`"),
            "{err}"
        );

        let bad = good.replacen("MOESI", "", 0); // no-op: keep `good` valid
        assert!(parse_tables(&bad).is_ok());
    }

    #[test]
    fn bad_headers_states_and_counts_are_reported() {
        let err = parse_tables("garbage\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("table header"), "{err}");

        let good = PolicyTable::preferred("p", CacheKind::CopyBack).render();
        let err = parse_tables(&good.replacen("copy-back", "look-aside", 1)).unwrap_err();
        assert!(err.message.contains("unknown client kind"), "{err}");

        let first_row = good.lines().nth(3).unwrap().to_string();
        let err = parse_tables(&good.replacen(&first_row, "X  A  B  C  D", 1)).unwrap_err();
        assert!(err.message.contains("unknown state letter `X`"), "{err}");

        let err = parse_tables(&good.replacen(&first_row, "M  M", 1)).unwrap_err();
        assert!(err.message.contains("found 2 tokens"), "{err}");

        let truncated: String = good.lines().take(9).collect::<Vec<_>>().join("\n");
        let err = parse_tables(&truncated).unwrap_err();
        assert!(err.message.contains("truncated"), "{err}");
    }

    #[test]
    fn member_parsing_rejects_out_of_class_tables() {
        let mut t = PolicyTable::preferred("rogue", CacheKind::CopyBack);
        t.set_local_unchecked(
            LineState::Shareable,
            LocalEvent::Write,
            LocalAction::silent(LineState::Modified),
        );
        let text = t.render();
        // The grammar accepts it (the mutation audit needs that)...
        assert_eq!(parse_table(&text).unwrap(), t);
        // ...the member parser rejects it with the offending cell named.
        let err = parse_member_tables(&text).unwrap_err();
        assert_eq!(err.line, 1);
        assert!(
            err.message.contains("`rogue` is not a class member"),
            "{err}"
        );
        assert!(err.message.contains("(S, Write)"), "{err}");
    }

    #[test]
    fn busy_push_cells_round_trip_and_set_requires_bs() {
        let write_once = protocols::by_name("write-once", 0).expect("shipped");
        let table = write_once.policy_table().expect("exact table");
        assert!(table.requires_bs());
        let parsed = parse_table(&table.render()).unwrap();
        assert!(parsed.requires_bs());
        assert_eq!(&parsed, table);
    }

    #[test]
    fn single_table_parse_rejects_zero_or_many() {
        assert!(parse_table("").unwrap_err().message.contains("found 0"));
        let one = PolicyTable::preferred("p", CacheKind::CopyBack).render();
        let two = format!("{one}{one}");
        assert!(parse_table(&two).unwrap_err().message.contains("found 2"));
    }
}
