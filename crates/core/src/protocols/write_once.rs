//! The Write-Once protocol (Goodman 1983) — Table 5.

use crate::action::{BusOp, BusReaction, LocalAction};
use crate::event::{BusEvent, LocalEvent};
use crate::policy::{PolicyTable, TablePolicy};
use crate::protocol::CacheKind;
use crate::signals::MasterSignals;
use crate::state::LineState;

/// The Write-Once protocol, adapted to the Futurebus with BS (Table 5).
///
/// "The write-once protocol requires that on an intervenient action, memory
/// be updated at the same time that the intervenient cache supplies the data
/// to the active cache. This is not possible with Futurebus, so an exact
/// implementation is not possible. We replace intervention with an abort
/// (BS), followed by an immediate write back ('push') to main memory; when
/// the transaction is restarted, memory is up to date and intervention is no
/// longer required" (§4.3).
///
/// States: M, E, S, I (no O — dirty data never stays shared). The name comes
/// from the first write to an S line being written through (`E,CA,IM,W`),
/// invalidating other copies; subsequent writes are local (E → M).
///
/// The paper notes the original definition is ambiguous for the M column-6
/// cell ("I,DI or BS;S,CA,W"); [`WriteOnce::new`] takes the first (direct
/// intervention), [`WriteOnce::always_pushing`] the second.
///
/// This protocol is **not** a member of the MOESI compatible class: its S
/// state means "consistent with memory", it relies on writes-through updating
/// memory beneath CA,IM signalling, and it needs BS — so its table is built
/// with the unchecked setters and `class_violations` reports the
/// out-of-class cells. It is safe among caches running Write-Once (and with
/// non-caching masters via the completion cells below), which is how §4
/// frames all of Tables 3–7.
#[derive(Debug)]
pub struct WriteOnce {
    inner: TablePolicy,
}

fn push() -> BusReaction {
    BusReaction::busy_push(LineState::Shareable, MasterSignals::CA)
}

/// Table 5 as data. `push_on_read_invalidate` picks the second alternative of
/// the ambiguous M column-6 cell.
fn write_once_table(push_on_read_invalidate: bool) -> PolicyTable {
    use LineState::{Exclusive, Invalid, Modified, Shareable};
    let mut t = PolicyTable::empty("Write-Once", CacheKind::CopyBack).with_bs();
    for s in [Modified, Exclusive, Shareable] {
        t.set_local_unchecked(s, LocalEvent::Read, LocalAction::silent(s));
    }
    // `S,CA,R`: read misses enter S (Goodman's Valid).
    t.set_local_unchecked(
        Invalid,
        LocalEvent::Read,
        LocalAction::new(Shareable, MasterSignals::CA, BusOp::Read),
    );
    t.set_local_unchecked(Modified, LocalEvent::Write, LocalAction::silent(Modified));
    t.set_local_unchecked(Exclusive, LocalEvent::Write, LocalAction::silent(Modified));
    // The eponymous write-once: write through, invalidating other copies
    // (CA,IM without BC), and reserve the line (E).
    t.set_local_unchecked(
        Shareable,
        LocalEvent::Write,
        LocalAction::new(Exclusive, MasterSignals::CA_IM, BusOp::Write),
    );
    // `M,CA,IM,R or Read>Write` — prefer the single transaction.
    t.set_local_unchecked(
        Invalid,
        LocalEvent::Write,
        LocalAction::new(Modified, MasterSignals::CA_IM, BusOp::Read),
    );
    // Pushes: dirty lines write back; Table 5 does not tabulate them.
    t.set_local_unchecked(
        Modified,
        LocalEvent::Pass,
        LocalAction::new(Exclusive, MasterSignals::CA, BusOp::Write),
    );
    t.set_local_unchecked(
        Modified,
        LocalEvent::Flush,
        LocalAction::new(Invalid, MasterSignals::NONE, BusOp::Write),
    );
    t.set_local_unchecked(Exclusive, LocalEvent::Flush, LocalAction::silent(Invalid));
    t.set_local_unchecked(Shareable, LocalEvent::Flush, LocalAction::silent(Invalid));

    // Table 5, column 5: abort, push, resume — memory then supplies.
    t.set_bus_unchecked(Modified, BusEvent::CacheRead, push());
    // Table 5, column 6: `I,DI or BS;S,CA,W`.
    t.set_bus_unchecked(
        Modified,
        BusEvent::CacheReadInvalidate,
        if push_on_read_invalidate {
            push()
        } else {
            BusReaction::quiet(Invalid).with_di()
        },
    );
    for s in [Exclusive, Shareable] {
        t.set_bus_unchecked(s, BusEvent::CacheRead, BusReaction::hit(Shareable));
        t.set_bus_unchecked(s, BusEvent::CacheReadInvalidate, BusReaction::IGNORE);
    }
    for ev in BusEvent::ALL {
        t.set_bus_unchecked(Invalid, ev, BusReaction::IGNORE);
    }
    // Completion cells for foreign masters: dirty data is pushed so memory
    // can serve or accept the access; clean copies behave as an invalidation
    // protocol.
    for ev in [
        BusEvent::UncachedRead,
        BusEvent::UncachedWrite,
        BusEvent::CacheBroadcastWrite,
        BusEvent::UncachedBroadcastWrite,
    ] {
        t.set_bus_unchecked(Modified, ev, push());
    }
    t.set_bus_unchecked(
        Exclusive,
        BusEvent::UncachedRead,
        BusReaction::quiet(Exclusive),
    );
    t.set_bus_unchecked(
        Shareable,
        BusEvent::UncachedRead,
        BusReaction::hit(Shareable),
    );
    for s in [Exclusive, Shareable] {
        for ev in [
            BusEvent::UncachedWrite,
            BusEvent::CacheBroadcastWrite,
            BusEvent::UncachedBroadcastWrite,
        ] {
            t.set_bus_unchecked(s, ev, BusReaction::IGNORE);
        }
    }
    t
}

impl WriteOnce {
    /// Creates the protocol with direct intervention on read-for-modify
    /// (`I,DI`, the first alternative of the ambiguous cell).
    #[must_use]
    pub fn new() -> Self {
        WriteOnce {
            inner: TablePolicy::new(write_once_table(false)),
        }
    }

    /// Creates the variant that aborts and pushes on read-for-modify as well
    /// (`BS;S,CA,W`, the second alternative).
    #[must_use]
    pub fn always_pushing() -> Self {
        WriteOnce {
            inner: TablePolicy::new(write_once_table(true)),
        }
    }
}

impl Default for WriteOnce {
    fn default() -> Self {
        WriteOnce::new()
    }
}

delegate_to_table!(WriteOnce);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compat;
    use crate::protocol::{LocalCtx, Protocol, SnoopCtx};
    use LineState::{Exclusive, Invalid, Modified, Shareable};

    fn local(state: LineState, event: LocalEvent) -> String {
        WriteOnce::new()
            .on_local(state, event, &LocalCtx::default())
            .to_string()
    }

    fn bus(state: LineState, event: BusEvent) -> String {
        WriteOnce::new()
            .on_bus(state, event, &SnoopCtx::default())
            .to_string()
    }

    #[test]
    fn table5_local_cells() {
        assert_eq!(local(Modified, LocalEvent::Read), "M");
        assert_eq!(local(Exclusive, LocalEvent::Read), "E");
        assert_eq!(local(Shareable, LocalEvent::Read), "S");
        assert_eq!(local(Invalid, LocalEvent::Read), "S,CA,R");
        assert_eq!(local(Modified, LocalEvent::Write), "M");
        assert_eq!(local(Exclusive, LocalEvent::Write), "M");
        assert_eq!(local(Shareable, LocalEvent::Write), "E,CA,IM,W");
        assert_eq!(local(Invalid, LocalEvent::Write), "M,CA,IM,R");
    }

    #[test]
    fn table5_bus_cells() {
        assert_eq!(bus(Modified, BusEvent::CacheRead), "BS;S,CA,W");
        assert_eq!(bus(Exclusive, BusEvent::CacheRead), "S,CH");
        assert_eq!(bus(Shareable, BusEvent::CacheRead), "S,CH");
        assert_eq!(bus(Invalid, BusEvent::CacheRead), "I");
        assert_eq!(bus(Modified, BusEvent::CacheReadInvalidate), "I,DI");
        assert_eq!(bus(Exclusive, BusEvent::CacheReadInvalidate), "I");
        assert_eq!(bus(Shareable, BusEvent::CacheReadInvalidate), "I");
    }

    #[test]
    fn ambiguous_cell_alternative() {
        let mut p = WriteOnce::always_pushing();
        let r = p.on_bus(
            Modified,
            BusEvent::CacheReadInvalidate,
            &SnoopCtx::default(),
        );
        assert_eq!(r.to_string(), "BS;S,CA,W");
    }

    #[test]
    fn requires_bs() {
        assert!(WriteOnce::new().requires_bs());
    }

    #[test]
    fn write_once_is_not_a_class_member() {
        // Its signature S/Write action (`E,CA,IM,W`) is not a Table 1 cell,
        // and its M/CacheRead reaction needs BS.
        let report = compat::check_protocol(&mut WriteOnce::new());
        assert!(!report.is_class_member());
        assert!(
            report.violations().iter().any(|v| v.contains("(S, Write)")),
            "{report}"
        );
        assert!(
            report.violations().iter().any(|v| v.contains("BS")),
            "{report}"
        );
    }

    #[test]
    fn the_table_agrees_it_is_out_of_class() {
        let p = WriteOnce::new();
        assert!(p.table_is_exact());
        let t = p.policy_table().unwrap();
        assert!(!t.is_class_member());
        assert!(t.requires_bs());
        // No O row: Write-Once dirty data never stays shared.
        for ev in LocalEvent::ALL {
            assert_eq!(t.local(LineState::Owned, ev), None);
        }
        for ev in BusEvent::ALL {
            assert_eq!(t.bus(LineState::Owned, ev), None);
        }
    }

    #[test]
    fn first_write_goes_through_the_bus_second_is_silent() {
        let mut p = WriteOnce::new();
        let first = p.on_local(Shareable, LocalEvent::Write, &LocalCtx::default());
        assert_eq!(first.bus_op, BusOp::Write);
        assert!(
            !first.signals.bc,
            "write-once invalidates, it does not broadcast"
        );
        let second = p.on_local(Exclusive, LocalEvent::Write, &LocalCtx::default());
        assert!(!second.bus_op.uses_bus());
    }

    #[test]
    fn dirty_lines_push_for_foreign_masters() {
        assert_eq!(bus(Modified, BusEvent::UncachedRead), "BS;S,CA,W");
        assert_eq!(bus(Modified, BusEvent::UncachedWrite), "BS;S,CA,W");
    }
}
