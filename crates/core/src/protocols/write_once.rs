//! The Write-Once protocol (Goodman 1983) — Table 5.

use crate::action::{BusOp, BusReaction, LocalAction};
use crate::event::{BusEvent, LocalEvent};
use crate::protocol::{CacheKind, LocalCtx, Protocol, SnoopCtx};
use crate::signals::MasterSignals;
use crate::state::LineState;

/// The Write-Once protocol, adapted to the Futurebus with BS (Table 5).
///
/// "The write-once protocol requires that on an intervenient action, memory
/// be updated at the same time that the intervenient cache supplies the data
/// to the active cache. This is not possible with Futurebus, so an exact
/// implementation is not possible. We replace intervention with an abort
/// (BS), followed by an immediate write back ('push') to main memory; when
/// the transaction is restarted, memory is up to date and intervention is no
/// longer required" (§4.3).
///
/// States: M, E, S, I (no O — dirty data never stays shared). The name comes
/// from the first write to an S line being written through (`E,CA,IM,W`),
/// invalidating other copies; subsequent writes are local (E → M).
///
/// The paper notes the original definition is ambiguous for the M column-6
/// cell ("I,DI or BS;S,CA,W"); [`WriteOnce::new`] takes the first (direct
/// intervention), [`WriteOnce::always_pushing`] the second.
///
/// This protocol is **not** a member of the MOESI compatible class: its S
/// state means "consistent with memory", it relies on writes-through updating
/// memory beneath CA,IM signalling, and it needs BS. It is safe among caches
/// running Write-Once (and with non-caching masters via the completion cells
/// below), which is how §4 frames all of Tables 3–7.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WriteOnce {
    push_on_read_invalidate: bool,
}

impl WriteOnce {
    /// Creates the protocol with direct intervention on read-for-modify
    /// (`I,DI`, the first alternative of the ambiguous cell).
    #[must_use]
    pub fn new() -> Self {
        WriteOnce {
            push_on_read_invalidate: false,
        }
    }

    /// Creates the variant that aborts and pushes on read-for-modify as well
    /// (`BS;S,CA,W`, the second alternative).
    #[must_use]
    pub fn always_pushing() -> Self {
        WriteOnce {
            push_on_read_invalidate: true,
        }
    }

    fn push() -> BusReaction {
        BusReaction::busy_push(LineState::Shareable, MasterSignals::CA)
    }
}

impl Default for WriteOnce {
    fn default() -> Self {
        WriteOnce::new()
    }
}

impl Protocol for WriteOnce {
    fn name(&self) -> &str {
        "Write-Once"
    }

    fn kind(&self) -> CacheKind {
        CacheKind::CopyBack
    }

    fn requires_bs(&self) -> bool {
        true
    }

    fn on_local(&mut self, state: LineState, event: LocalEvent, _ctx: &LocalCtx) -> LocalAction {
        use LineState::{Exclusive, Invalid, Modified, Shareable};
        match (state, event) {
            (Modified | Exclusive | Shareable, LocalEvent::Read) => LocalAction::silent(state),
            // `S,CA,R`: read misses enter S (Goodman's Valid).
            (Invalid, LocalEvent::Read) => {
                LocalAction::new(Shareable, MasterSignals::CA, BusOp::Read)
            }
            (Modified, LocalEvent::Write) => LocalAction::silent(Modified),
            (Exclusive, LocalEvent::Write) => LocalAction::silent(Modified),
            // The eponymous write-once: write through, invalidating other
            // copies (CA,IM without BC), and reserve the line (E).
            (Shareable, LocalEvent::Write) => {
                LocalAction::new(Exclusive, MasterSignals::CA_IM, BusOp::Write)
            }
            // `M,CA,IM,R or Read>Write` — prefer the single transaction.
            (Invalid, LocalEvent::Write) => {
                LocalAction::new(Modified, MasterSignals::CA_IM, BusOp::Read)
            }
            // Pushes: dirty lines write back; Table 5 does not tabulate them.
            (Modified, LocalEvent::Pass) => {
                LocalAction::new(Exclusive, MasterSignals::CA, BusOp::Write)
            }
            (Modified, LocalEvent::Flush) => {
                LocalAction::new(Invalid, MasterSignals::NONE, BusOp::Write)
            }
            (Exclusive | Shareable, LocalEvent::Flush) => LocalAction::silent(Invalid),
            _ => panic!("Write-Once: no action for ({state}, {event})"),
        }
    }

    fn on_bus(&mut self, state: LineState, event: BusEvent, _ctx: &SnoopCtx) -> BusReaction {
        use LineState::{Exclusive, Invalid, Modified, Shareable};
        match (state, event) {
            (LineState::Owned, _) => {
                unreachable!("{} has no O state", self.name())
            }
            // Table 5, column 5: abort, push, resume — memory then supplies.
            (Modified, BusEvent::CacheRead) => Self::push(),
            (Exclusive | Shareable, BusEvent::CacheRead) => BusReaction::hit(Shareable),
            // Table 5, column 6: `I,DI or BS;S,CA,W`.
            (Modified, BusEvent::CacheReadInvalidate) => {
                if self.push_on_read_invalidate {
                    Self::push()
                } else {
                    BusReaction::quiet(Invalid).with_di()
                }
            }
            (Exclusive | Shareable, BusEvent::CacheReadInvalidate) => BusReaction::IGNORE,
            (Invalid, _) => BusReaction::IGNORE,
            // Completion cells for foreign masters: dirty data is pushed so
            // memory can serve or accept the access; clean copies behave as
            // an invalidation protocol.
            (Modified, BusEvent::UncachedRead | BusEvent::UncachedWrite) => Self::push(),
            (Exclusive, BusEvent::UncachedRead) => BusReaction::quiet(Exclusive),
            (Shareable, BusEvent::UncachedRead) => BusReaction::hit(Shareable),
            (Modified, BusEvent::CacheBroadcastWrite | BusEvent::UncachedBroadcastWrite) => {
                Self::push()
            }
            (Exclusive | Shareable, BusEvent::UncachedWrite) => BusReaction::IGNORE,
            (
                Exclusive | Shareable,
                BusEvent::CacheBroadcastWrite | BusEvent::UncachedBroadcastWrite,
            ) => BusReaction::IGNORE,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compat;
    use LineState::{Exclusive, Invalid, Modified, Shareable};

    fn local(state: LineState, event: LocalEvent) -> String {
        WriteOnce::new()
            .on_local(state, event, &LocalCtx::default())
            .to_string()
    }

    fn bus(state: LineState, event: BusEvent) -> String {
        WriteOnce::new()
            .on_bus(state, event, &SnoopCtx::default())
            .to_string()
    }

    #[test]
    fn table5_local_cells() {
        assert_eq!(local(Modified, LocalEvent::Read), "M");
        assert_eq!(local(Exclusive, LocalEvent::Read), "E");
        assert_eq!(local(Shareable, LocalEvent::Read), "S");
        assert_eq!(local(Invalid, LocalEvent::Read), "S,CA,R");
        assert_eq!(local(Modified, LocalEvent::Write), "M");
        assert_eq!(local(Exclusive, LocalEvent::Write), "M");
        assert_eq!(local(Shareable, LocalEvent::Write), "E,CA,IM,W");
        assert_eq!(local(Invalid, LocalEvent::Write), "M,CA,IM,R");
    }

    #[test]
    fn table5_bus_cells() {
        assert_eq!(bus(Modified, BusEvent::CacheRead), "BS;S,CA,W");
        assert_eq!(bus(Exclusive, BusEvent::CacheRead), "S,CH");
        assert_eq!(bus(Shareable, BusEvent::CacheRead), "S,CH");
        assert_eq!(bus(Invalid, BusEvent::CacheRead), "I");
        assert_eq!(bus(Modified, BusEvent::CacheReadInvalidate), "I,DI");
        assert_eq!(bus(Exclusive, BusEvent::CacheReadInvalidate), "I");
        assert_eq!(bus(Shareable, BusEvent::CacheReadInvalidate), "I");
    }

    #[test]
    fn ambiguous_cell_alternative() {
        let mut p = WriteOnce::always_pushing();
        let r = p.on_bus(
            Modified,
            BusEvent::CacheReadInvalidate,
            &SnoopCtx::default(),
        );
        assert_eq!(r.to_string(), "BS;S,CA,W");
    }

    #[test]
    fn requires_bs() {
        assert!(WriteOnce::new().requires_bs());
    }

    #[test]
    fn write_once_is_not_a_class_member() {
        // Its signature S/Write action (`E,CA,IM,W`) is not a Table 1 cell,
        // and its M/CacheRead reaction needs BS.
        let report = compat::check_protocol(&mut WriteOnce::new());
        assert!(!report.is_class_member());
        assert!(
            report.violations().iter().any(|v| v.contains("(S, Write)")),
            "{report}"
        );
        assert!(
            report.violations().iter().any(|v| v.contains("BS")),
            "{report}"
        );
    }

    #[test]
    fn first_write_goes_through_the_bus_second_is_silent() {
        let mut p = WriteOnce::new();
        let first = p.on_local(Shareable, LocalEvent::Write, &LocalCtx::default());
        assert_eq!(first.bus_op, BusOp::Write);
        assert!(
            !first.signals.bc,
            "write-once invalidates, it does not broadcast"
        );
        let second = p.on_local(Exclusive, LocalEvent::Write, &LocalCtx::default());
        assert!(!second.bus_op.uses_bus());
    }

    #[test]
    fn dirty_lines_push_for_foreign_masters() {
        assert_eq!(bus(Modified, BusEvent::UncachedRead), "BS;S,CA,W");
        assert_eq!(bus(Modified, BusEvent::UncachedWrite), "BS;S,CA,W");
    }
}
