//! The Firefly protocol (DEC SRC) — Table 7.

use crate::action::{BusOp, BusReaction, LocalAction, ResultState};
use crate::event::{BusEvent, LocalEvent};
use crate::policy::{PolicyTable, TablePolicy};
use crate::protocol::CacheKind;
use crate::signals::MasterSignals;
use crate::state::LineState;

/// The Firefly update protocol, adapted to the Futurebus with BS (Table 7).
///
/// Firefly broadcasts writes to shared lines and relies on memory being
/// updated by the broadcast (which the Futurebus does), so a shared write
/// leaves the writer clean: `CH:S/E,CA,IM,BC,W`. When an intervenient cache
/// would have to provide data, memory must be updated at the same time, which
/// the Futurebus cannot do — so M holders abort with BS, push, and let the
/// restarted transaction be served by memory (§4.5). After the push the
/// holder is in E (`BS;E,CA,W`); the restarted read then demotes it to S
/// through the normal E-row reaction.
///
/// Not a member of the MOESI compatible class (requires BS, and its S/E
/// states are defined as consistent with memory); the table is built with
/// the unchecked setters.
#[derive(Debug)]
pub struct Firefly {
    inner: TablePolicy,
}

fn push() -> BusReaction {
    BusReaction::busy_push(LineState::Exclusive, MasterSignals::CA)
}

/// Table 7 as data.
fn firefly_table() -> PolicyTable {
    use LineState::{Exclusive, Invalid, Modified, Shareable};
    let mut t = PolicyTable::empty("Firefly", CacheKind::CopyBack).with_bs();
    for s in [Modified, Exclusive, Shareable] {
        t.set_local_unchecked(s, LocalEvent::Read, LocalAction::silent(s));
    }
    // `CH:S/E,CA,R`.
    t.set_local_unchecked(
        Invalid,
        LocalEvent::Read,
        LocalAction::new(ResultState::CH_S_E, MasterSignals::CA, BusOp::Read),
    );
    t.set_local_unchecked(Modified, LocalEvent::Write, LocalAction::silent(Modified));
    t.set_local_unchecked(Exclusive, LocalEvent::Write, LocalAction::silent(Modified));
    // `CH:S/E,CA,IM,BC,W`: broadcast update; the Futurebus updates memory
    // too, so the writer stays clean and may regain E when no other cache
    // answers CH.
    t.set_local_unchecked(
        Shareable,
        LocalEvent::Write,
        LocalAction::new(ResultState::CH_S_E, MasterSignals::CA_IM_BC, BusOp::Write),
    );
    // `Read>Write`.
    t.set_local_unchecked(Invalid, LocalEvent::Write, LocalAction::read_then_write());
    t.set_local_unchecked(
        Modified,
        LocalEvent::Pass,
        LocalAction::new(Exclusive, MasterSignals::CA, BusOp::Write),
    );
    t.set_local_unchecked(
        Modified,
        LocalEvent::Flush,
        LocalAction::new(Invalid, MasterSignals::NONE, BusOp::Write),
    );
    t.set_local_unchecked(Exclusive, LocalEvent::Flush, LocalAction::silent(Invalid));
    t.set_local_unchecked(Shareable, LocalEvent::Flush, LocalAction::silent(Invalid));

    // Table 7, column 5 is `BS;E,CA,W`; the completion cells (§4 leaves them
    // open) push dirty data for any foreign access, update clean copies on
    // broadcasts, and invalidate them on non-broadcast modifies.
    for ev in BusEvent::ALL {
        t.set_bus_unchecked(Modified, ev, push());
        t.set_bus_unchecked(Invalid, ev, BusReaction::IGNORE);
    }
    for s in [Exclusive, Shareable] {
        t.set_bus_unchecked(s, BusEvent::CacheRead, BusReaction::hit(Shareable));
        t.set_bus_unchecked(s, BusEvent::CacheReadInvalidate, BusReaction::IGNORE);
        t.set_bus_unchecked(s, BusEvent::UncachedWrite, BusReaction::IGNORE);
    }
    t.set_bus_unchecked(
        Exclusive,
        BusEvent::UncachedRead,
        BusReaction::quiet(Exclusive),
    );
    t.set_bus_unchecked(
        Shareable,
        BusEvent::UncachedRead,
        BusReaction::hit(Shareable),
    );
    // Table 7, column 8: holders connect and update, staying S.
    t.set_bus_unchecked(
        Shareable,
        BusEvent::CacheBroadcastWrite,
        BusReaction::hit(Shareable).with_sl(),
    );
    t.set_bus_unchecked(
        Shareable,
        BusEvent::UncachedBroadcastWrite,
        BusReaction::hit(Shareable).with_sl(),
    );
    t.set_bus_unchecked(
        Exclusive,
        BusEvent::UncachedBroadcastWrite,
        BusReaction::quiet(Exclusive).with_sl(),
    );
    t.set_bus_unchecked(
        Exclusive,
        BusEvent::CacheBroadcastWrite,
        BusReaction::IGNORE,
    );
    t
}

impl Firefly {
    /// Creates the protocol.
    #[must_use]
    pub fn new() -> Self {
        Firefly {
            inner: TablePolicy::new(firefly_table()),
        }
    }
}

impl Default for Firefly {
    fn default() -> Self {
        Firefly::new()
    }
}

delegate_to_table!(Firefly);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compat;
    use crate::protocol::{LocalCtx, Protocol, SnoopCtx};
    use LineState::{Exclusive, Invalid, Modified, Shareable};

    fn local(state: LineState, event: LocalEvent) -> String {
        Firefly::new()
            .on_local(state, event, &LocalCtx::default())
            .to_string()
    }

    fn bus(state: LineState, event: BusEvent) -> String {
        Firefly::new()
            .on_bus(state, event, &SnoopCtx::default())
            .to_string()
    }

    #[test]
    fn table7_local_cells() {
        assert_eq!(local(Modified, LocalEvent::Read), "M");
        assert_eq!(local(Exclusive, LocalEvent::Read), "E");
        assert_eq!(local(Shareable, LocalEvent::Read), "S");
        assert_eq!(local(Invalid, LocalEvent::Read), "CH:S/E,CA,R");
        assert_eq!(local(Modified, LocalEvent::Write), "M");
        assert_eq!(local(Exclusive, LocalEvent::Write), "M");
        assert_eq!(local(Shareable, LocalEvent::Write), "CH:S/E,CA,IM,BC,W");
        assert_eq!(local(Invalid, LocalEvent::Write), "Read>Write");
    }

    #[test]
    fn table7_bus_cells() {
        assert_eq!(bus(Modified, BusEvent::CacheRead), "BS;E,CA,W");
        assert_eq!(bus(Exclusive, BusEvent::CacheRead), "S,CH");
        assert_eq!(bus(Shareable, BusEvent::CacheRead), "S,CH");
        assert_eq!(bus(Shareable, BusEvent::CacheBroadcastWrite), "S,CH,SL");
        for ev in BusEvent::ALL {
            assert_eq!(bus(Invalid, ev), "I");
        }
    }

    #[test]
    fn shared_write_stays_clean_because_memory_is_updated() {
        // The writer ends in S or E — never M or O — after a broadcast write.
        let mut p = Firefly::new();
        let a = p.on_local(Shareable, LocalEvent::Write, &LocalCtx::default());
        for r in a.result.possible() {
            assert!(!r.is_owned(), "{r}");
        }
        assert!(a.signals.bc);
    }

    #[test]
    fn push_lands_in_e_so_the_retried_read_demotes_to_s() {
        let mut p = Firefly::new();
        let r = p.on_bus(Modified, BusEvent::CacheRead, &SnoopCtx::default());
        let push = r.busy.expect("Firefly M/CacheRead aborts");
        assert_eq!(push.result, Exclusive);
        // After the push the retried read hits the E row: S,CH.
        let retry = p.on_bus(Exclusive, BusEvent::CacheRead, &SnoopCtx::default());
        assert_eq!(retry.to_string(), "S,CH");
    }

    #[test]
    fn firefly_is_not_a_class_member() {
        let report = compat::check_protocol(&mut Firefly::new());
        assert!(!report.is_class_member());
        assert!(!Firefly::new().policy_table().unwrap().is_class_member());
    }

    #[test]
    fn requires_bs() {
        assert!(Firefly::new().requires_bs());
    }
}
