//! The Firefly protocol (DEC SRC) — Table 7.

use crate::action::{BusOp, BusReaction, LocalAction, ResultState};
use crate::event::{BusEvent, LocalEvent};
use crate::protocol::{CacheKind, LocalCtx, Protocol, SnoopCtx};
use crate::signals::MasterSignals;
use crate::state::LineState;

/// The Firefly update protocol, adapted to the Futurebus with BS (Table 7).
///
/// Firefly broadcasts writes to shared lines and relies on memory being
/// updated by the broadcast (which the Futurebus does), so a shared write
/// leaves the writer clean: `CH:S/E,CA,IM,BC,W`. When an intervenient cache
/// would have to provide data, memory must be updated at the same time, which
/// the Futurebus cannot do — so M holders abort with BS, push, and let the
/// restarted transaction be served by memory (§4.5). After the push the
/// holder is in E (`BS;E,CA,W`); the restarted read then demotes it to S
/// through the normal E-row reaction.
///
/// Not a member of the MOESI compatible class (requires BS, and its S/E
/// states are defined as consistent with memory).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Firefly;

impl Firefly {
    /// Creates the protocol.
    #[must_use]
    pub fn new() -> Self {
        Firefly
    }

    fn push() -> BusReaction {
        BusReaction::busy_push(LineState::Exclusive, MasterSignals::CA)
    }
}

impl Protocol for Firefly {
    fn name(&self) -> &str {
        "Firefly"
    }

    fn kind(&self) -> CacheKind {
        CacheKind::CopyBack
    }

    fn requires_bs(&self) -> bool {
        true
    }

    fn on_local(&mut self, state: LineState, event: LocalEvent, _ctx: &LocalCtx) -> LocalAction {
        use LineState::{Exclusive, Invalid, Modified, Shareable};
        match (state, event) {
            (Modified | Exclusive | Shareable, LocalEvent::Read) => LocalAction::silent(state),
            // `CH:S/E,CA,R`.
            (Invalid, LocalEvent::Read) => {
                LocalAction::new(ResultState::CH_S_E, MasterSignals::CA, BusOp::Read)
            }
            (Modified, LocalEvent::Write) => LocalAction::silent(Modified),
            (Exclusive, LocalEvent::Write) => LocalAction::silent(Modified),
            // `CH:S/E,CA,IM,BC,W`: broadcast update; the Futurebus updates
            // memory too, so the writer stays clean and may regain E when no
            // other cache answers CH.
            (Shareable, LocalEvent::Write) => {
                LocalAction::new(ResultState::CH_S_E, MasterSignals::CA_IM_BC, BusOp::Write)
            }
            // `Read>Write`.
            (Invalid, LocalEvent::Write) => LocalAction::read_then_write(),
            (Modified, LocalEvent::Pass) => {
                LocalAction::new(Exclusive, MasterSignals::CA, BusOp::Write)
            }
            (Modified, LocalEvent::Flush) => {
                LocalAction::new(Invalid, MasterSignals::NONE, BusOp::Write)
            }
            (Exclusive | Shareable, LocalEvent::Flush) => LocalAction::silent(Invalid),
            _ => panic!("Firefly: no action for ({state}, {event})"),
        }
    }

    fn on_bus(&mut self, state: LineState, event: BusEvent, _ctx: &SnoopCtx) -> BusReaction {
        use LineState::{Exclusive, Invalid, Modified, Shareable};
        match (state, event) {
            (LineState::Owned, _) => {
                unreachable!("{} has no O state", self.name())
            }
            // Table 7, column 5: `BS;E,CA,W`.
            (Modified, BusEvent::CacheRead) => Self::push(),
            (Exclusive | Shareable, BusEvent::CacheRead) => BusReaction::hit(Shareable),
            // Table 7, column 8: holders connect and update, staying S.
            (Shareable, BusEvent::CacheBroadcastWrite) => BusReaction::hit(Shareable).with_sl(),
            (Invalid, _) => BusReaction::IGNORE,
            // Completion cells (§4 leaves them open): dirty data pushes for
            // any foreign access; clean copies update on broadcasts and
            // invalidate on non-broadcast modifies.
            (Modified, _) => Self::push(),
            (Exclusive, BusEvent::UncachedRead) => BusReaction::quiet(Exclusive),
            (Shareable, BusEvent::UncachedRead) => BusReaction::hit(Shareable),
            (Shareable, BusEvent::UncachedBroadcastWrite) => BusReaction::hit(Shareable).with_sl(),
            (Exclusive, BusEvent::UncachedBroadcastWrite) => {
                BusReaction::quiet(Exclusive).with_sl()
            }
            (Exclusive | Shareable, BusEvent::CacheReadInvalidate | BusEvent::UncachedWrite) => {
                BusReaction::IGNORE
            }
            (Exclusive, BusEvent::CacheBroadcastWrite) => BusReaction::IGNORE,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compat;
    use LineState::{Exclusive, Invalid, Modified, Shareable};

    fn local(state: LineState, event: LocalEvent) -> String {
        Firefly::new()
            .on_local(state, event, &LocalCtx::default())
            .to_string()
    }

    fn bus(state: LineState, event: BusEvent) -> String {
        Firefly::new()
            .on_bus(state, event, &SnoopCtx::default())
            .to_string()
    }

    #[test]
    fn table7_local_cells() {
        assert_eq!(local(Modified, LocalEvent::Read), "M");
        assert_eq!(local(Exclusive, LocalEvent::Read), "E");
        assert_eq!(local(Shareable, LocalEvent::Read), "S");
        assert_eq!(local(Invalid, LocalEvent::Read), "CH:S/E,CA,R");
        assert_eq!(local(Modified, LocalEvent::Write), "M");
        assert_eq!(local(Exclusive, LocalEvent::Write), "M");
        assert_eq!(local(Shareable, LocalEvent::Write), "CH:S/E,CA,IM,BC,W");
        assert_eq!(local(Invalid, LocalEvent::Write), "Read>Write");
    }

    #[test]
    fn table7_bus_cells() {
        assert_eq!(bus(Modified, BusEvent::CacheRead), "BS;E,CA,W");
        assert_eq!(bus(Exclusive, BusEvent::CacheRead), "S,CH");
        assert_eq!(bus(Shareable, BusEvent::CacheRead), "S,CH");
        assert_eq!(bus(Shareable, BusEvent::CacheBroadcastWrite), "S,CH,SL");
        for ev in BusEvent::ALL {
            assert_eq!(bus(Invalid, ev), "I");
        }
    }

    #[test]
    fn shared_write_stays_clean_because_memory_is_updated() {
        // The writer ends in S or E — never M or O — after a broadcast write.
        let mut p = Firefly::new();
        let a = p.on_local(Shareable, LocalEvent::Write, &LocalCtx::default());
        for r in a.result.possible() {
            assert!(!r.is_owned(), "{r}");
        }
        assert!(a.signals.bc);
    }

    #[test]
    fn push_lands_in_e_so_the_retried_read_demotes_to_s() {
        let mut p = Firefly::new();
        let r = p.on_bus(Modified, BusEvent::CacheRead, &SnoopCtx::default());
        let push = r.busy.expect("Firefly M/CacheRead aborts");
        assert_eq!(push.result, Exclusive);
        // After the push the retried read hits the E row: S,CH.
        let retry = p.on_bus(Exclusive, BusEvent::CacheRead, &SnoopCtx::default());
        assert_eq!(retry.to_string(), "S,CH");
    }

    #[test]
    fn firefly_is_not_a_class_member() {
        let report = compat::check_protocol(&mut Firefly::new());
        assert!(!report.is_class_member());
    }

    #[test]
    fn requires_bs() {
        assert!(Firefly::new().requires_bs());
    }
}
