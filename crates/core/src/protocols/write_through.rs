//! The write-through cache member of the class (§3.3, items 6–8).

use crate::event::LocalEvent;
use crate::policy::{PolicyTable, TablePolicy};
use crate::protocol::CacheKind;
use crate::state::LineState;
use crate::table;

/// A write-through cache: two states, V (≡ S) and I.
///
/// "A write through cache is not capable of ownership" (§3.3); it writes
/// through on every write, asserts CA on reads, and invalidates on any
/// non-broadcast write it snoops. On snooped broadcast writes it may either
/// update itself or invalidate; this implementation updates.
///
/// Two flavours differ in whether writes assert BC:
/// [`WriteThrough::new`] broadcasts its writes (column 10 for snoopers,
/// letting them update), [`WriteThrough::non_broadcasting`] does not
/// (column 9, forcing them to invalidate).
#[derive(Debug)]
pub struct WriteThrough {
    inner: TablePolicy,
}

/// The write-through table: the preferred write-through-kind table with the
/// write cells picked by the `broadcast` / `allocate_on_write` flags.
fn write_through_table(broadcast: bool, allocate_on_write: bool) -> PolicyTable {
    let mut t = PolicyTable::preferred("write-through", CacheKind::WriteThrough);
    // `S,IM,BC,W` (index 0) or `S,IM,W` (index 1).
    let shared = table::permitted_local(
        LineState::Shareable,
        LocalEvent::Write,
        CacheKind::WriteThrough,
    );
    t.set_local(
        LineState::Shareable,
        LocalEvent::Write,
        shared[usize::from(!broadcast)],
    );
    let miss = table::permitted_local(
        LineState::Invalid,
        LocalEvent::Write,
        CacheKind::WriteThrough,
    );
    let pick = if allocate_on_write {
        2 // Read>Write (§3.3 item 6)
    } else {
        usize::from(!broadcast)
    };
    t.set_local(LineState::Invalid, LocalEvent::Write, miss[pick]);
    t
}

impl WriteThrough {
    /// A write-through cache that broadcasts its writes (`S,IM,BC,W`).
    #[must_use]
    pub fn new() -> Self {
        WriteThrough {
            inner: TablePolicy::new(write_through_table(true, false)),
        }
    }

    /// A write-through cache whose writes are not broadcast (`S,IM,W`).
    #[must_use]
    pub fn non_broadcasting() -> Self {
        WriteThrough {
            inner: TablePolicy::new(write_through_table(false, false)),
        }
    }

    /// Enables write-allocate: a write miss reads the line first
    /// (`Read>Write`, §3.3 item 6).
    #[must_use]
    pub fn with_write_allocate(self) -> Self {
        let broadcast = self
            .inner
            .table()
            .local(LineState::Shareable, LocalEvent::Write)
            .is_some_and(|a| a.signals.bc);
        WriteThrough {
            inner: TablePolicy::new(write_through_table(broadcast, true)),
        }
    }
}

impl Default for WriteThrough {
    fn default() -> Self {
        WriteThrough::new()
    }
}

delegate_to_table!(WriteThrough);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{BusOp, LocalAction, ResultState};
    use crate::event::BusEvent;
    use crate::protocol::{LocalCtx, Protocol, SnoopCtx};
    use crate::signals::MasterSignals;
    use LineState::{Invalid, Shareable};

    #[test]
    fn writes_go_through_retaining_the_copy() {
        let mut p = WriteThrough::new();
        let a = p.on_local(Shareable, LocalEvent::Write, &LocalCtx::default());
        assert_eq!(a.to_string(), "S,IM,BC,W");
        assert!(!a.signals.ca, "write-through writes do not assert CA");
        let mut q = WriteThrough::non_broadcasting();
        let a = q.on_local(Shareable, LocalEvent::Write, &LocalCtx::default());
        assert_eq!(a.to_string(), "S,IM,W");
    }

    #[test]
    fn read_miss_asserts_ca_and_enters_v() {
        let mut p = WriteThrough::new();
        let a = p.on_local(Invalid, LocalEvent::Read, &LocalCtx::default());
        assert_eq!(a.signals, MasterSignals::CA);
        assert_eq!(a.result, ResultState::Fixed(Shareable));
        assert_eq!(a.bus_op, BusOp::Read);
    }

    #[test]
    fn write_miss_writes_past_unless_allocating() {
        let mut p = WriteThrough::new();
        let a = p.on_local(Invalid, LocalEvent::Write, &LocalCtx::default());
        assert_eq!(a.to_string(), "I,IM,BC,W");

        let mut alloc = WriteThrough::new().with_write_allocate();
        let a = alloc.on_local(Invalid, LocalEvent::Write, &LocalCtx::default());
        assert_eq!(a.bus_op, BusOp::ReadThenWrite);
    }

    #[test]
    fn non_broadcasting_allocate_keeps_the_read_then_write() {
        let mut alloc = WriteThrough::non_broadcasting().with_write_allocate();
        let a = alloc.on_local(Invalid, LocalEvent::Write, &LocalCtx::default());
        assert_eq!(a.bus_op, BusOp::ReadThenWrite);
        let a = alloc.on_local(Shareable, LocalEvent::Write, &LocalCtx::default());
        assert_eq!(a.to_string(), "S,IM,W", "broadcast flag survives");
    }

    #[test]
    fn snooped_non_broadcast_writes_invalidate() {
        // §3.3 item 8: "On a non-broadcast write (cols. 6, 9), it must become
        // invalid, since it is not capable of intervention or ownership."
        let mut p = WriteThrough::new();
        for ev in [BusEvent::CacheReadInvalidate, BusEvent::UncachedWrite] {
            let r = p.on_bus(Shareable, ev, &SnoopCtx::default());
            assert_eq!(r.result, ResultState::Fixed(Invalid), "{ev}");
            assert!(!r.di);
        }
    }

    #[test]
    fn snooped_reads_leave_the_copy_valid() {
        let mut p = WriteThrough::new();
        for ev in [BusEvent::CacheRead, BusEvent::UncachedRead] {
            let r = p.on_bus(Shareable, ev, &SnoopCtx::default());
            assert_eq!(r.result, ResultState::Fixed(Shareable), "{ev}");
            assert!(r.ch);
        }
    }

    #[test]
    fn snooped_broadcast_writes_update() {
        let mut p = WriteThrough::new();
        for ev in [
            BusEvent::CacheBroadcastWrite,
            BusEvent::UncachedBroadcastWrite,
        ] {
            let r = p.on_bus(Shareable, ev, &SnoopCtx::default());
            assert!(r.sl, "{ev}");
            assert_eq!(r.result, ResultState::Fixed(Shareable));
        }
    }

    #[test]
    fn flush_is_silent() {
        let mut p = WriteThrough::new();
        let a = p.on_local(Shareable, LocalEvent::Flush, &LocalCtx::default());
        assert_eq!(a, LocalAction::silent(Invalid));
    }

    #[test]
    fn every_flavour_is_an_exact_class_member_table() {
        for p in [
            WriteThrough::new(),
            WriteThrough::non_broadcasting(),
            WriteThrough::new().with_write_allocate(),
        ] {
            assert!(p.table_is_exact());
            assert!(p.policy_table().unwrap().is_class_member());
        }
    }
}
