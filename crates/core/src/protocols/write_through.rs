//! The write-through cache member of the class (§3.3, items 6–8).

use crate::action::{BusReaction, LocalAction};
use crate::event::{BusEvent, LocalEvent};
use crate::protocol::{CacheKind, LocalCtx, Protocol, SnoopCtx};
use crate::state::LineState;
use crate::table;

/// A write-through cache: two states, V (≡ S) and I.
///
/// "A write through cache is not capable of ownership" (§3.3); it writes
/// through on every write, asserts CA on reads, and invalidates on any
/// non-broadcast write it snoops. On snooped broadcast writes it may either
/// update itself or invalidate; this implementation updates.
///
/// Two flavours differ in whether writes assert BC:
/// [`WriteThrough::new`] broadcasts its writes (column 10 for snoopers,
/// letting them update), [`WriteThrough::non_broadcasting`] does not
/// (column 9, forcing them to invalidate).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WriteThrough {
    broadcast: bool,
    allocate_on_write: bool,
}

impl WriteThrough {
    /// A write-through cache that broadcasts its writes (`S,IM,BC,W`).
    #[must_use]
    pub fn new() -> Self {
        WriteThrough {
            broadcast: true,
            allocate_on_write: false,
        }
    }

    /// A write-through cache whose writes are not broadcast (`S,IM,W`).
    #[must_use]
    pub fn non_broadcasting() -> Self {
        WriteThrough {
            broadcast: false,
            allocate_on_write: false,
        }
    }

    /// Enables write-allocate: a write miss reads the line first
    /// (`Read>Write`, §3.3 item 6).
    #[must_use]
    pub fn with_write_allocate(mut self) -> Self {
        self.allocate_on_write = true;
        self
    }
}

impl Default for WriteThrough {
    fn default() -> Self {
        WriteThrough::new()
    }
}

impl Protocol for WriteThrough {
    fn name(&self) -> &str {
        "write-through"
    }

    fn kind(&self) -> CacheKind {
        CacheKind::WriteThrough
    }

    fn on_local(&mut self, state: LineState, event: LocalEvent, _ctx: &LocalCtx) -> LocalAction {
        let permitted = table::permitted_local(state, event, CacheKind::WriteThrough);
        let pick = match (state, event) {
            // `S,IM,BC,W` (index 0) or `S,IM,W` (index 1).
            (LineState::Shareable, LocalEvent::Write) => usize::from(!self.broadcast),
            (LineState::Invalid, LocalEvent::Write) => {
                if self.allocate_on_write {
                    2 // Read>Write
                } else {
                    usize::from(!self.broadcast)
                }
            }
            _ => 0,
        };
        *permitted
            .get(pick)
            .unwrap_or_else(|| panic!("write-through: no action for ({state}, {event})"))
    }

    fn on_bus(&mut self, state: LineState, event: BusEvent, _ctx: &SnoopCtx) -> BusReaction {
        debug_assert!(
            matches!(state, LineState::Shareable | LineState::Invalid),
            "a write-through cache cannot hold {state}"
        );
        table::preferred_bus(state, event)
            .unwrap_or_else(|| panic!("write-through: error cell ({state}, {event})"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{BusOp, ResultState};
    use crate::signals::MasterSignals;
    use LineState::{Invalid, Shareable};

    #[test]
    fn writes_go_through_retaining_the_copy() {
        let mut p = WriteThrough::new();
        let a = p.on_local(Shareable, LocalEvent::Write, &LocalCtx::default());
        assert_eq!(a.to_string(), "S,IM,BC,W");
        assert!(!a.signals.ca, "write-through writes do not assert CA");
        let mut q = WriteThrough::non_broadcasting();
        let a = q.on_local(Shareable, LocalEvent::Write, &LocalCtx::default());
        assert_eq!(a.to_string(), "S,IM,W");
    }

    #[test]
    fn read_miss_asserts_ca_and_enters_v() {
        let mut p = WriteThrough::new();
        let a = p.on_local(Invalid, LocalEvent::Read, &LocalCtx::default());
        assert_eq!(a.signals, MasterSignals::CA);
        assert_eq!(a.result, ResultState::Fixed(Shareable));
        assert_eq!(a.bus_op, BusOp::Read);
    }

    #[test]
    fn write_miss_writes_past_unless_allocating() {
        let mut p = WriteThrough::new();
        let a = p.on_local(Invalid, LocalEvent::Write, &LocalCtx::default());
        assert_eq!(a.to_string(), "I,IM,BC,W");

        let mut alloc = WriteThrough::new().with_write_allocate();
        let a = alloc.on_local(Invalid, LocalEvent::Write, &LocalCtx::default());
        assert_eq!(a.bus_op, BusOp::ReadThenWrite);
    }

    #[test]
    fn snooped_non_broadcast_writes_invalidate() {
        // §3.3 item 8: "On a non-broadcast write (cols. 6, 9), it must become
        // invalid, since it is not capable of intervention or ownership."
        let mut p = WriteThrough::new();
        for ev in [BusEvent::CacheReadInvalidate, BusEvent::UncachedWrite] {
            let r = p.on_bus(Shareable, ev, &SnoopCtx::default());
            assert_eq!(r.result, ResultState::Fixed(Invalid), "{ev}");
            assert!(!r.di);
        }
    }

    #[test]
    fn snooped_reads_leave_the_copy_valid() {
        let mut p = WriteThrough::new();
        for ev in [BusEvent::CacheRead, BusEvent::UncachedRead] {
            let r = p.on_bus(Shareable, ev, &SnoopCtx::default());
            assert_eq!(r.result, ResultState::Fixed(Shareable), "{ev}");
            assert!(r.ch);
        }
    }

    #[test]
    fn snooped_broadcast_writes_update() {
        let mut p = WriteThrough::new();
        for ev in [
            BusEvent::CacheBroadcastWrite,
            BusEvent::UncachedBroadcastWrite,
        ] {
            let r = p.on_bus(Shareable, ev, &SnoopCtx::default());
            assert!(r.sl, "{ev}");
            assert_eq!(r.result, ResultState::Fixed(Shareable));
        }
    }

    #[test]
    fn flush_is_silent() {
        let mut p = WriteThrough::new();
        let a = p.on_local(Shareable, LocalEvent::Flush, &LocalCtx::default());
        assert_eq!(a, LocalAction::silent(Invalid));
    }
}
