//! Concrete consistency protocols.
//!
//! * In-class (members of the Tables 1–2 compatible class, §3.3–3.4):
//!   [`MoesiPreferred`], [`MoesiInvalidating`], [`PuzakRefinement`],
//!   [`WriteThrough`], [`NonCaching`], [`Berkeley`] (Table 3), [`Dragon`]
//!   (Table 4), and [`RandomPolicy`] — the paper's "extreme case" that picks a
//!   permitted action at random on every event.
//! * Adapted (require the BS abort-and-push mechanism, §4.3–4.5):
//!   [`WriteOnce`] (Table 5), [`Illinois`] (Table 6), [`Firefly`] (Table 7),
//!   and [`Synapse`] — the sixth protocol of the Archibald & Baer comparison
//!   §5.2 builds on, reached through the paper's \[Fran84\] reference.
//!
//! §4 of the paper defines Tables 3–7 "only to the extent necessary to define
//! the algorithm relative to the Futurebus facilities and to its interaction
//! with other caches using the same protocol", leaving reactions to
//! foreign-master bus events (uncached reads/writes, broadcast writes the
//! protocol itself never issues) unspecified. Our implementations complete
//! those cells — each file documents its completion policy — so every
//! protocol can run on a shared bus next to any other.

mod berkeley;
mod dragon;
mod firefly;
mod illinois;
mod moesi_invalidating;
mod moesi_preferred;
mod non_caching;
mod puzak;
mod random_policy;
mod scripted;
mod synapse;
mod write_once;
mod write_through;

pub use berkeley::Berkeley;
pub use dragon::Dragon;
pub use firefly::Firefly;
pub use illinois::Illinois;
pub use moesi_invalidating::MoesiInvalidating;
pub use moesi_preferred::MoesiPreferred;
pub use non_caching::NonCaching;
pub use puzak::PuzakRefinement;
pub use random_policy::RandomPolicy;
pub use scripted::{ScriptHandle, Scripted};
pub use synapse::Synapse;
pub use write_once::WriteOnce;
pub use write_through::WriteThrough;

use crate::action::{BusReaction, LocalAction};
use crate::event::{BusEvent, LocalEvent};
use crate::protocol::CacheKind;
use crate::state::LineState;
use crate::table;

/// Every built-in protocol, boxed, for exhaustive testing and benchmarking.
///
/// The list is deterministic; random-policy members are seeded with `seed`.
#[must_use]
pub fn all_protocols(seed: u64) -> Vec<Box<dyn crate::Protocol + Send>> {
    vec![
        Box::new(MoesiPreferred::new()),
        Box::new(MoesiInvalidating::new()),
        Box::new(PuzakRefinement::new()),
        Box::new(WriteThrough::new()),
        Box::new(WriteThrough::non_broadcasting()),
        Box::new(NonCaching::new()),
        Box::new(NonCaching::broadcasting()),
        Box::new(Berkeley::new()),
        Box::new(Dragon::new()),
        Box::new(WriteOnce::new()),
        Box::new(Illinois::new()),
        Box::new(Firefly::new()),
        Box::new(Synapse::new()),
        Box::new(RandomPolicy::new(CacheKind::CopyBack, seed)),
    ]
}

/// The in-class protocols only (safe to mix arbitrarily on one bus).
#[must_use]
pub fn class_member_protocols(seed: u64) -> Vec<Box<dyn crate::Protocol + Send>> {
    vec![
        Box::new(MoesiPreferred::new()),
        Box::new(MoesiInvalidating::new()),
        Box::new(PuzakRefinement::new()),
        Box::new(WriteThrough::new()),
        Box::new(WriteThrough::non_broadcasting()),
        Box::new(NonCaching::new()),
        Box::new(NonCaching::broadcasting()),
        Box::new(Berkeley::new()),
        Box::new(Dragon::new()),
        Box::new(RandomPolicy::new(CacheKind::CopyBack, seed)),
        Box::new(RandomPolicy::new(
            CacheKind::WriteThrough,
            seed.wrapping_add(1),
        )),
        Box::new(RandomPolicy::new(
            CacheKind::NonCaching,
            seed.wrapping_add(2),
        )),
    ]
}

/// Looks a protocol up by (case-insensitive) name, for CLI harnesses.
///
/// Recognised names: `moesi`, `moesi-invalidating`, `puzak`, `write-through`,
/// `non-caching`, `berkeley`, `dragon`, `write-once`, `illinois`, `firefly`,
/// `synapse`, `random`.
#[must_use]
pub fn by_name(name: &str, seed: u64) -> Option<Box<dyn crate::Protocol + Send>> {
    let p: Box<dyn crate::Protocol + Send> = match name.to_ascii_lowercase().as_str() {
        "moesi" | "moesi-preferred" => Box::new(MoesiPreferred::new()),
        "moesi-invalidating" => Box::new(MoesiInvalidating::new()),
        "puzak" => Box::new(PuzakRefinement::new()),
        "write-through" | "wt" => Box::new(WriteThrough::new()),
        "non-caching" | "none" => Box::new(NonCaching::new()),
        "berkeley" => Box::new(Berkeley::new()),
        "dragon" => Box::new(Dragon::new()),
        "write-once" => Box::new(WriteOnce::new()),
        "illinois" => Box::new(Illinois::new()),
        "firefly" => Box::new(Firefly::new()),
        "synapse" => Box::new(Synapse::new()),
        "random" => Box::new(RandomPolicy::new(CacheKind::CopyBack, seed)),
        _ => return None,
    };
    Some(p)
}

/// The MOESI-preferred local action, used by the protocol tables as the
/// fallback for cells §4 leaves unspecified.
///
/// # Panics
///
/// Panics on `—` cells; callers only use it for legal combinations.
pub(crate) fn moesi_fallback_local(state: LineState, event: LocalEvent) -> LocalAction {
    table::preferred_local(state, event, CacheKind::CopyBack)
        .unwrap_or_else(|| panic!("no MOESI action for ({state}, {event})"))
}

/// The MOESI-preferred bus reaction, used as the fallback for unspecified
/// foreign-master cells.
///
/// # Panics
///
/// Panics on error-condition cells.
pub(crate) fn moesi_fallback_bus(state: LineState, event: BusEvent) -> BusReaction {
    table::preferred_bus(state, event)
        .unwrap_or_else(|| panic!("error-condition bus cell ({state}, {event})"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_protocols_have_distinct_names() {
        let protocols = all_protocols(7);
        let mut names: Vec<String> = protocols.iter().map(|p| p.name().to_string()).collect();
        let before = names.len();
        names.sort();
        names.dedup();
        // WriteThrough and NonCaching appear in two flavours with the same
        // name; everything else is unique.
        assert!(names.len() >= before - 2);
    }

    #[test]
    fn by_name_finds_every_published_protocol() {
        for name in [
            "moesi",
            "moesi-invalidating",
            "puzak",
            "write-through",
            "non-caching",
            "berkeley",
            "dragon",
            "write-once",
            "illinois",
            "firefly",
            "synapse",
            "random",
        ] {
            assert!(by_name(name, 1).is_some(), "{name} not found");
        }
        assert!(by_name("MOESI", 1).is_some(), "lookup is case-insensitive");
        assert!(by_name("goodman-1984", 1).is_none());
    }

    #[test]
    fn adapted_protocols_require_bs_and_class_members_do_not() {
        for p in class_member_protocols(3) {
            assert!(!p.requires_bs(), "{} should not need BS", p.name());
        }
        for name in ["write-once", "illinois", "firefly", "synapse"] {
            assert!(by_name(name, 1).unwrap().requires_bs(), "{name} needs BS");
        }
    }
}
