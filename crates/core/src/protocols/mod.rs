//! Concrete consistency protocols — every one a [`PolicyTable`] constructor.
//!
//! * In-class (members of the Tables 1–2 compatible class, §3.3–3.4):
//!   [`MoesiPreferred`], [`MoesiInvalidating`], [`PuzakRefinement`],
//!   [`HybridUpdateInvalidate`], [`WriteThrough`], [`NonCaching`],
//!   [`Berkeley`] (Table 3), [`Dragon`] (Table 4), and [`RandomPolicy`] — the
//!   paper's "extreme case" that picks a permitted action at random on every
//!   event.
//! * Adapted (require the BS abort-and-push mechanism, §4.3–4.5):
//!   [`WriteOnce`] (Table 5), [`Illinois`] (Table 6), [`Firefly`] (Table 7),
//!   and [`Synapse`] — the sixth protocol of the Archibald & Baer comparison
//!   §5.2 builds on, reached through the paper's \[Fran84\] reference.
//!
//! §4 of the paper defines Tables 3–7 "only to the extent necessary to define
//! the algorithm relative to the Futurebus facilities and to its interaction
//! with other caches using the same protocol", leaving reactions to
//! foreign-master bus events (uncached reads/writes, broadcast writes the
//! protocol itself never issues) unspecified. Our tables complete those cells
//! — each file documents its completion policy — so every protocol can run on
//! a shared bus next to any other.
//!
//! Since the table-driven refactor each protocol is **data**: a
//! [`PolicyTable`](crate::policy::PolicyTable) built once in the constructor
//! and interpreted by [`TablePolicy`](crate::policy::TablePolicy). The public
//! structs remain (they document provenance and carry variant constructors);
//! [`delegate_to_table!`] generates their [`Protocol`](crate::Protocol) impls.
//! Stateful selectors ([`RandomPolicy`], [`PuzakRefinement`], [`Scripted`],
//! [`HybridUpdateInvalidate`]) layer a
//! [`DynamicPolicy`](crate::policy::DynamicPolicy) hook over their base table.

/// Implements [`Protocol`](crate::Protocol) for a wrapper struct whose
/// `inner` field is a [`TablePolicy`](crate::policy::TablePolicy), forwarding
/// every method — including the fallible and introspection forms.
macro_rules! delegate_to_table {
    ($ty:ty) => {
        impl crate::Protocol for $ty {
            fn name(&self) -> &str {
                crate::Protocol::name(&self.inner)
            }

            fn kind(&self) -> crate::CacheKind {
                crate::Protocol::kind(&self.inner)
            }

            fn requires_bs(&self) -> bool {
                crate::Protocol::requires_bs(&self.inner)
            }

            fn on_local(
                &mut self,
                state: crate::LineState,
                event: crate::LocalEvent,
                ctx: &crate::LocalCtx,
            ) -> crate::LocalAction {
                self.inner.on_local(state, event, ctx)
            }

            fn on_bus(
                &mut self,
                state: crate::LineState,
                event: crate::BusEvent,
                ctx: &crate::SnoopCtx,
            ) -> crate::BusReaction {
                self.inner.on_bus(state, event, ctx)
            }

            fn try_on_local(
                &mut self,
                state: crate::LineState,
                event: crate::LocalEvent,
                ctx: &crate::LocalCtx,
            ) -> Result<crate::LocalAction, crate::IllegalCell> {
                self.inner.try_on_local(state, event, ctx)
            }

            fn try_on_bus(
                &mut self,
                state: crate::LineState,
                event: crate::BusEvent,
                ctx: &crate::SnoopCtx,
            ) -> Result<crate::BusReaction, crate::IllegalCell> {
                self.inner.try_on_bus(state, event, ctx)
            }

            fn policy_table(&self) -> Option<&crate::PolicyTable> {
                crate::Protocol::policy_table(&self.inner)
            }

            fn table_is_exact(&self) -> bool {
                crate::Protocol::table_is_exact(&self.inner)
            }
        }
    };
}

mod berkeley;
mod dragon;
mod firefly;
mod hybrid;
mod illinois;
mod moesi_invalidating;
mod moesi_preferred;
mod non_caching;
mod puzak;
mod random_policy;
mod scripted;
mod synapse;
mod write_once;
mod write_through;

pub use berkeley::Berkeley;
pub use dragon::Dragon;
pub use firefly::Firefly;
pub use hybrid::HybridUpdateInvalidate;
pub use illinois::Illinois;
pub use moesi_invalidating::MoesiInvalidating;
pub use moesi_preferred::MoesiPreferred;
pub use non_caching::NonCaching;
pub use puzak::PuzakRefinement;
pub use random_policy::RandomPolicy;
pub use scripted::{ScriptHandle, Scripted};
pub use synapse::Synapse;
pub use write_once::WriteOnce;
pub use write_through::WriteThrough;

use crate::protocol::CacheKind;

/// Every built-in protocol, boxed, for exhaustive testing and benchmarking.
///
/// The list is deterministic; random-policy members are seeded with `seed`.
#[must_use]
pub fn all_protocols(seed: u64) -> Vec<Box<dyn crate::Protocol + Send>> {
    vec![
        Box::new(MoesiPreferred::new()),
        Box::new(MoesiInvalidating::new()),
        Box::new(PuzakRefinement::new()),
        Box::new(HybridUpdateInvalidate::new()),
        Box::new(WriteThrough::new()),
        Box::new(WriteThrough::non_broadcasting()),
        Box::new(NonCaching::new()),
        Box::new(NonCaching::broadcasting()),
        Box::new(Berkeley::new()),
        Box::new(Dragon::new()),
        Box::new(WriteOnce::new()),
        Box::new(Illinois::new()),
        Box::new(Firefly::new()),
        Box::new(Synapse::new()),
        Box::new(RandomPolicy::new(CacheKind::CopyBack, seed)),
    ]
}

/// The in-class protocols only (safe to mix arbitrarily on one bus).
#[must_use]
pub fn class_member_protocols(seed: u64) -> Vec<Box<dyn crate::Protocol + Send>> {
    vec![
        Box::new(MoesiPreferred::new()),
        Box::new(MoesiInvalidating::new()),
        Box::new(PuzakRefinement::new()),
        Box::new(HybridUpdateInvalidate::new()),
        Box::new(WriteThrough::new()),
        Box::new(WriteThrough::non_broadcasting()),
        Box::new(NonCaching::new()),
        Box::new(NonCaching::broadcasting()),
        Box::new(Berkeley::new()),
        Box::new(Dragon::new()),
        Box::new(RandomPolicy::new(CacheKind::CopyBack, seed)),
        Box::new(RandomPolicy::new(
            CacheKind::WriteThrough,
            seed.wrapping_add(1),
        )),
        Box::new(RandomPolicy::new(
            CacheKind::NonCaching,
            seed.wrapping_add(2),
        )),
    ]
}

/// Looks a protocol up by (case-insensitive) name, for CLI harnesses.
///
/// Recognised names: `moesi`, `moesi-invalidating`, `puzak`, `hybrid`,
/// `write-through`, `non-caching`, `berkeley`, `dragon`, `write-once`,
/// `illinois`, `firefly`, `synapse`, `random`.
#[must_use]
pub fn by_name(name: &str, seed: u64) -> Option<Box<dyn crate::Protocol + Send>> {
    let p: Box<dyn crate::Protocol + Send> = match name.to_ascii_lowercase().as_str() {
        "moesi" | "moesi-preferred" => Box::new(MoesiPreferred::new()),
        "moesi-invalidating" => Box::new(MoesiInvalidating::new()),
        "puzak" => Box::new(PuzakRefinement::new()),
        "hybrid" | "moesi-hybrid" => Box::new(HybridUpdateInvalidate::new()),
        "write-through" | "wt" => Box::new(WriteThrough::new()),
        "non-caching" | "none" => Box::new(NonCaching::new()),
        "berkeley" => Box::new(Berkeley::new()),
        "dragon" => Box::new(Dragon::new()),
        "write-once" => Box::new(WriteOnce::new()),
        "illinois" => Box::new(Illinois::new()),
        "firefly" => Box::new(Firefly::new()),
        "synapse" => Box::new(Synapse::new()),
        "random" => Box::new(RandomPolicy::new(CacheKind::CopyBack, seed)),
        _ => return None,
    };
    Some(p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_protocols_have_distinct_names() {
        let protocols = all_protocols(7);
        let mut names: Vec<String> = protocols.iter().map(|p| p.name().to_string()).collect();
        let before = names.len();
        names.sort();
        names.dedup();
        // WriteThrough and NonCaching appear in two flavours with the same
        // name; everything else is unique.
        assert!(names.len() >= before - 2);
    }

    #[test]
    fn by_name_finds_every_published_protocol() {
        for name in [
            "moesi",
            "moesi-invalidating",
            "puzak",
            "hybrid",
            "write-through",
            "non-caching",
            "berkeley",
            "dragon",
            "write-once",
            "illinois",
            "firefly",
            "synapse",
            "random",
        ] {
            assert!(by_name(name, 1).is_some(), "{name} not found");
        }
        assert!(by_name("MOESI", 1).is_some(), "lookup is case-insensitive");
        assert!(by_name("goodman-1984", 1).is_none());
    }

    #[test]
    fn adapted_protocols_require_bs_and_class_members_do_not() {
        for p in class_member_protocols(3) {
            assert!(!p.requires_bs(), "{} should not need BS", p.name());
        }
        for name in ["write-once", "illinois", "firefly", "synapse"] {
            assert!(by_name(name, 1).unwrap().requires_bs(), "{name} needs BS");
        }
    }

    #[test]
    fn every_protocol_exposes_its_policy_table() {
        for p in all_protocols(7) {
            let table = p.policy_table().unwrap_or_else(|| {
                panic!("{} has no policy table", p.name());
            });
            assert_eq!(table.name(), p.name());
            assert_eq!(table.kind(), p.kind());
            assert_eq!(table.requires_bs(), p.requires_bs());
            assert!(table.populated_cells() > 0, "{} is empty", p.name());
        }
    }

    #[test]
    fn static_protocols_are_exact_and_stateful_ones_are_not() {
        for name in [
            "moesi",
            "moesi-invalidating",
            "write-through",
            "non-caching",
            "berkeley",
            "dragon",
            "write-once",
            "illinois",
            "firefly",
            "synapse",
        ] {
            assert!(
                by_name(name, 1).unwrap().table_is_exact(),
                "{name} should be a pure table"
            );
        }
        for name in ["puzak", "hybrid", "random"] {
            assert!(
                !by_name(name, 1).unwrap().table_is_exact(),
                "{name} has a dynamic hook"
            );
        }
    }
}
