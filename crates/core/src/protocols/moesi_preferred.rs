//! The preferred MOESI protocol: the first entry of every cell of Tables 1–2.

use crate::policy::{PolicyTable, TablePolicy};
use crate::protocol::CacheKind;

/// A copy-back cache that always takes the paper's preferred action.
///
/// "The preferred protocol choice (from Tables 1, 2) was always the first
/// entry in a given box. That preference is based on results from
/// \[Arch85\]" (§5.2). In particular it broadcasts writes to shared lines
/// rather than invalidating, and uses the one-transaction read-for-modify on
/// write misses.
///
/// As a table this is exactly [`PolicyTable::preferred`] — the base every
/// other class member overrides cell by cell.
///
/// # Examples
///
/// ```
/// use moesi::protocols::MoesiPreferred;
/// use moesi::{BusEvent, LineState, Protocol, SnoopCtx};
///
/// let mut p = MoesiPreferred::new();
/// let r = p.on_bus(LineState::Modified, BusEvent::CacheRead, &SnoopCtx::default());
/// assert_eq!(r.to_string(), "O,CH,DI");
/// ```
#[derive(Debug)]
pub struct MoesiPreferred {
    inner: TablePolicy,
}

impl MoesiPreferred {
    /// Creates the protocol.
    #[must_use]
    pub fn new() -> Self {
        MoesiPreferred {
            inner: TablePolicy::new(PolicyTable::preferred("MOESI", CacheKind::CopyBack)),
        }
    }
}

impl Default for MoesiPreferred {
    fn default() -> Self {
        MoesiPreferred::new()
    }
}

delegate_to_table!(MoesiPreferred);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{BusOp, BusReaction, LocalAction, ResultState};
    use crate::event::{BusEvent, LocalEvent};
    use crate::protocol::{LocalCtx, Protocol, SnoopCtx};
    use crate::signals::MasterSignals;
    use crate::state::LineState;
    use LineState::{Exclusive, Invalid, Modified, Owned, Shareable};

    fn local(state: LineState, event: LocalEvent) -> LocalAction {
        MoesiPreferred::new().on_local(state, event, &LocalCtx::default())
    }

    fn bus(state: LineState, event: BusEvent) -> BusReaction {
        MoesiPreferred::new().on_bus(state, event, &SnoopCtx::default())
    }

    #[test]
    fn read_miss_uses_ch_to_pick_s_or_e() {
        let a = local(Invalid, LocalEvent::Read);
        assert_eq!(a.result, ResultState::CH_S_E);
        assert_eq!(a.bus_op, BusOp::Read);
        assert_eq!(a.signals, MasterSignals::CA);
    }

    #[test]
    fn write_miss_is_one_read_for_modify_transaction() {
        let a = local(Invalid, LocalEvent::Write);
        assert_eq!(a.result, ResultState::Fixed(Modified));
        assert_eq!(a.bus_op, BusOp::Read);
        assert_eq!(a.signals, MasterSignals::CA_IM);
    }

    #[test]
    fn shared_write_prefers_broadcast_update() {
        for s in [Owned, Shareable] {
            let a = local(s, LocalEvent::Write);
            assert_eq!(a.signals, MasterSignals::CA_IM_BC);
            assert_eq!(a.bus_op, BusOp::Write);
            assert_eq!(a.result, ResultState::CH_O_M);
        }
    }

    #[test]
    fn exclusive_write_is_silent() {
        assert_eq!(
            local(Exclusive, LocalEvent::Write),
            LocalAction::silent(Modified)
        );
        assert_eq!(
            local(Modified, LocalEvent::Write),
            LocalAction::silent(Modified)
        );
    }

    #[test]
    fn snooped_read_downgrades_and_intervenes() {
        let r = bus(Modified, BusEvent::CacheRead);
        assert!(r.di && r.ch);
        assert_eq!(r.result, ResultState::Fixed(Owned));
        let r = bus(Exclusive, BusEvent::CacheRead);
        assert!(!r.di && r.ch);
        assert_eq!(r.result, ResultState::Fixed(Shareable));
    }

    #[test]
    fn owner_regains_exclusivity_after_uncached_read_with_no_other_sharers() {
        let r = bus(Owned, BusEvent::UncachedRead);
        assert_eq!(r.result.resolve(false), Modified);
        assert_eq!(r.result.resolve(true), Owned);
        assert!(r.di && !r.ch, "the owner listens rather than asserting CH");
    }

    #[test]
    fn broadcast_write_updates_snoopers() {
        for s in [Owned, Shareable] {
            let r = bus(s, BusEvent::CacheBroadcastWrite);
            assert!(r.sl && r.ch);
            assert_eq!(r.result, ResultState::Fixed(Shareable));
        }
    }

    #[test]
    #[should_panic(expected = "error-condition")]
    fn snooping_broadcast_write_in_modified_is_an_error() {
        bus(Modified, BusEvent::CacheBroadcastWrite);
    }

    #[test]
    #[should_panic(expected = "no action")]
    fn pass_from_invalid_is_an_error() {
        local(Invalid, LocalEvent::Pass);
    }

    #[test]
    fn never_requires_bs() {
        assert!(!MoesiPreferred::new().requires_bs());
        assert_eq!(MoesiPreferred::new().kind(), CacheKind::CopyBack);
        assert_eq!(MoesiPreferred::new().name(), "MOESI");
    }

    #[test]
    fn is_an_exact_table() {
        let p = MoesiPreferred::new();
        assert!(p.table_is_exact());
        let t = p.policy_table().unwrap();
        assert!(t.is_class_member());
        assert_eq!(t.populated_cells(), 16 + 28);
    }
}
