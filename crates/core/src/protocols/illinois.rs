//! The Illinois protocol (Papamarcos & Patel 1984) — Table 6.

use crate::action::{BusOp, BusReaction, LocalAction, ResultState};
use crate::event::{BusEvent, LocalEvent};
use crate::policy::{PolicyTable, TablePolicy};
use crate::protocol::CacheKind;
use crate::signals::MasterSignals;
use crate::state::LineState;

/// The Illinois (MESI) protocol, adapted to the Futurebus with BS (Table 6).
///
/// Two adaptations were necessary (§4.4): dirty lines passed between caches
/// must update memory — done here by aborting with BS, pushing, and
/// restarting — and the original's "all caches respond, bus priority
/// resolves" cannot be permitted, so only an intervenient cache or memory
/// responds.
///
/// "It is possible to map the states of the Illinois protocol into our
/// states, but we note that the S state has a different meaning. The Illinois
/// protocol defines the S state as consistent with memory; that is not the
/// case for the protocol as we have defined it."
///
/// Not a member of the MOESI compatible class (requires BS): the table is
/// built with the unchecked setters and `class_violations` reports the BS
/// cells.
#[derive(Debug)]
pub struct Illinois {
    inner: TablePolicy,
}

fn push() -> BusReaction {
    BusReaction::busy_push(LineState::Shareable, MasterSignals::CA)
}

/// Table 6 as data.
fn illinois_table() -> PolicyTable {
    use LineState::{Exclusive, Invalid, Modified, Shareable};
    let mut t = PolicyTable::empty("Illinois", CacheKind::CopyBack).with_bs();
    for s in [Modified, Exclusive, Shareable] {
        t.set_local_unchecked(s, LocalEvent::Read, LocalAction::silent(s));
    }
    // `CH:S/E,CA,R` (printed "CU:S/E" in the paper — a typo).
    t.set_local_unchecked(
        Invalid,
        LocalEvent::Read,
        LocalAction::new(ResultState::CH_S_E, MasterSignals::CA, BusOp::Read),
    );
    t.set_local_unchecked(Modified, LocalEvent::Write, LocalAction::silent(Modified));
    t.set_local_unchecked(Exclusive, LocalEvent::Write, LocalAction::silent(Modified));
    // `M,CA,IM`: address-only invalidate.
    t.set_local_unchecked(
        Shareable,
        LocalEvent::Write,
        LocalAction::new(Modified, MasterSignals::CA_IM, BusOp::AddressOnly),
    );
    // `M,CA,IM,R`.
    t.set_local_unchecked(
        Invalid,
        LocalEvent::Write,
        LocalAction::new(Modified, MasterSignals::CA_IM, BusOp::Read),
    );
    t.set_local_unchecked(
        Modified,
        LocalEvent::Pass,
        LocalAction::new(Exclusive, MasterSignals::CA, BusOp::Write),
    );
    t.set_local_unchecked(
        Modified,
        LocalEvent::Flush,
        LocalAction::new(Invalid, MasterSignals::NONE, BusOp::Write),
    );
    t.set_local_unchecked(Exclusive, LocalEvent::Flush, LocalAction::silent(Invalid));
    t.set_local_unchecked(Shareable, LocalEvent::Flush, LocalAction::silent(Invalid));

    // Table 6, columns 5 and 6: dirty data aborts and pushes — every M
    // reaction uses BS, never DI (memory must always end up current).
    for ev in BusEvent::ALL {
        t.set_bus_unchecked(Modified, ev, push());
        t.set_bus_unchecked(Invalid, ev, BusReaction::IGNORE);
    }
    for s in [Exclusive, Shareable] {
        t.set_bus_unchecked(s, BusEvent::CacheRead, BusReaction::hit(Shareable));
        t.set_bus_unchecked(s, BusEvent::CacheReadInvalidate, BusReaction::IGNORE);
    }
    // Completion cells for foreign masters (§4 leaves them open).
    t.set_bus_unchecked(
        Exclusive,
        BusEvent::UncachedRead,
        BusReaction::quiet(Exclusive),
    );
    t.set_bus_unchecked(
        Shareable,
        BusEvent::UncachedRead,
        BusReaction::hit(Shareable),
    );
    for s in [Exclusive, Shareable] {
        for ev in [
            BusEvent::UncachedWrite,
            BusEvent::CacheBroadcastWrite,
            BusEvent::UncachedBroadcastWrite,
        ] {
            t.set_bus_unchecked(s, ev, BusReaction::IGNORE);
        }
    }
    t
}

impl Illinois {
    /// Creates the protocol.
    #[must_use]
    pub fn new() -> Self {
        Illinois {
            inner: TablePolicy::new(illinois_table()),
        }
    }
}

impl Default for Illinois {
    fn default() -> Self {
        Illinois::new()
    }
}

delegate_to_table!(Illinois);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compat;
    use crate::protocol::{LocalCtx, Protocol, SnoopCtx};
    use LineState::{Exclusive, Invalid, Modified, Shareable};

    fn local(state: LineState, event: LocalEvent) -> String {
        Illinois::new()
            .on_local(state, event, &LocalCtx::default())
            .to_string()
    }

    fn bus(state: LineState, event: BusEvent) -> String {
        Illinois::new()
            .on_bus(state, event, &SnoopCtx::default())
            .to_string()
    }

    #[test]
    fn table6_local_cells() {
        assert_eq!(local(Modified, LocalEvent::Read), "M");
        assert_eq!(local(Exclusive, LocalEvent::Read), "E");
        assert_eq!(local(Shareable, LocalEvent::Read), "S");
        assert_eq!(local(Invalid, LocalEvent::Read), "CH:S/E,CA,R");
        assert_eq!(local(Modified, LocalEvent::Write), "M");
        assert_eq!(local(Exclusive, LocalEvent::Write), "M");
        assert_eq!(local(Shareable, LocalEvent::Write), "M,CA,IM,A");
        assert_eq!(local(Invalid, LocalEvent::Write), "M,CA,IM,R");
    }

    #[test]
    fn table6_bus_cells() {
        assert_eq!(bus(Modified, BusEvent::CacheRead), "BS;S,CA,W");
        assert_eq!(bus(Modified, BusEvent::CacheReadInvalidate), "BS;S,CA,W");
        assert_eq!(bus(Exclusive, BusEvent::CacheRead), "S,CH");
        assert_eq!(bus(Shareable, BusEvent::CacheRead), "S,CH");
        assert_eq!(bus(Exclusive, BusEvent::CacheReadInvalidate), "I");
        assert_eq!(bus(Shareable, BusEvent::CacheReadInvalidate), "I");
        for ev in BusEvent::ALL {
            assert_eq!(bus(Invalid, ev), "I");
        }
    }

    #[test]
    fn illinois_is_not_a_class_member() {
        let report = compat::check_protocol(&mut Illinois::new());
        assert!(!report.is_class_member());
        assert!(!Illinois::new().policy_table().unwrap().is_class_member());
    }

    #[test]
    fn dirty_lines_never_intervene_directly() {
        // Unlike MOESI, Illinois memory must always end up current: every
        // reaction from M uses BS, never DI.
        let mut p = Illinois::new();
        for ev in BusEvent::ALL {
            let r = p.on_bus(Modified, ev, &SnoopCtx::default());
            assert!(r.busy.is_some(), "({ev}): {r}");
            assert!(!r.di);
        }
    }

    #[test]
    fn requires_bs() {
        assert!(Illinois::new().requires_bs());
    }
}
