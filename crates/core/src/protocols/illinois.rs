//! The Illinois protocol (Papamarcos & Patel 1984) — Table 6.

use crate::action::{BusOp, BusReaction, LocalAction, ResultState};
use crate::event::{BusEvent, LocalEvent};
use crate::protocol::{CacheKind, LocalCtx, Protocol, SnoopCtx};
use crate::signals::MasterSignals;
use crate::state::LineState;

/// The Illinois (MESI) protocol, adapted to the Futurebus with BS (Table 6).
///
/// Two adaptations were necessary (§4.4): dirty lines passed between caches
/// must update memory — done here by aborting with BS, pushing, and
/// restarting — and the original's "all caches respond, bus priority
/// resolves" cannot be permitted, so only an intervenient cache or memory
/// responds.
///
/// "It is possible to map the states of the Illinois protocol into our
/// states, but we note that the S state has a different meaning. The Illinois
/// protocol defines the S state as consistent with memory; that is not the
/// case for the protocol as we have defined it."
///
/// Not a member of the MOESI compatible class (requires BS).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Illinois;

impl Illinois {
    /// Creates the protocol.
    #[must_use]
    pub fn new() -> Self {
        Illinois
    }

    fn push() -> BusReaction {
        BusReaction::busy_push(LineState::Shareable, MasterSignals::CA)
    }
}

impl Protocol for Illinois {
    fn name(&self) -> &str {
        "Illinois"
    }

    fn kind(&self) -> CacheKind {
        CacheKind::CopyBack
    }

    fn requires_bs(&self) -> bool {
        true
    }

    fn on_local(&mut self, state: LineState, event: LocalEvent, _ctx: &LocalCtx) -> LocalAction {
        use LineState::{Exclusive, Invalid, Modified, Shareable};
        match (state, event) {
            (Modified | Exclusive | Shareable, LocalEvent::Read) => LocalAction::silent(state),
            // `CH:S/E,CA,R` (printed "CU:S/E" in the paper — a typo).
            (Invalid, LocalEvent::Read) => {
                LocalAction::new(ResultState::CH_S_E, MasterSignals::CA, BusOp::Read)
            }
            (Modified, LocalEvent::Write) => LocalAction::silent(Modified),
            (Exclusive, LocalEvent::Write) => LocalAction::silent(Modified),
            // `M,CA,IM`: address-only invalidate.
            (Shareable, LocalEvent::Write) => {
                LocalAction::new(Modified, MasterSignals::CA_IM, BusOp::AddressOnly)
            }
            // `M,CA,IM,R`.
            (Invalid, LocalEvent::Write) => {
                LocalAction::new(Modified, MasterSignals::CA_IM, BusOp::Read)
            }
            (Modified, LocalEvent::Pass) => {
                LocalAction::new(Exclusive, MasterSignals::CA, BusOp::Write)
            }
            (Modified, LocalEvent::Flush) => {
                LocalAction::new(Invalid, MasterSignals::NONE, BusOp::Write)
            }
            (Exclusive | Shareable, LocalEvent::Flush) => LocalAction::silent(Invalid),
            _ => panic!("Illinois: no action for ({state}, {event})"),
        }
    }

    fn on_bus(&mut self, state: LineState, event: BusEvent, _ctx: &SnoopCtx) -> BusReaction {
        use LineState::{Exclusive, Invalid, Modified, Shareable};
        match (state, event) {
            (LineState::Owned, _) => {
                unreachable!("{} has no O state", self.name())
            }
            // Table 6, columns 5 and 6: dirty data aborts and pushes.
            (Modified, BusEvent::CacheRead | BusEvent::CacheReadInvalidate) => Self::push(),
            (Exclusive | Shareable, BusEvent::CacheRead) => BusReaction::hit(Shareable),
            (Exclusive | Shareable, BusEvent::CacheReadInvalidate) => BusReaction::IGNORE,
            (Invalid, _) => BusReaction::IGNORE,
            // Completion cells for foreign masters (§4 leaves them open).
            (Modified, _) => Self::push(),
            (Exclusive, BusEvent::UncachedRead) => BusReaction::quiet(Exclusive),
            (Shareable, BusEvent::UncachedRead) => BusReaction::hit(Shareable),
            (Exclusive | Shareable, _) => BusReaction::IGNORE,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compat;
    use LineState::{Exclusive, Invalid, Modified, Shareable};

    fn local(state: LineState, event: LocalEvent) -> String {
        Illinois::new()
            .on_local(state, event, &LocalCtx::default())
            .to_string()
    }

    fn bus(state: LineState, event: BusEvent) -> String {
        Illinois::new()
            .on_bus(state, event, &SnoopCtx::default())
            .to_string()
    }

    #[test]
    fn table6_local_cells() {
        assert_eq!(local(Modified, LocalEvent::Read), "M");
        assert_eq!(local(Exclusive, LocalEvent::Read), "E");
        assert_eq!(local(Shareable, LocalEvent::Read), "S");
        assert_eq!(local(Invalid, LocalEvent::Read), "CH:S/E,CA,R");
        assert_eq!(local(Modified, LocalEvent::Write), "M");
        assert_eq!(local(Exclusive, LocalEvent::Write), "M");
        assert_eq!(local(Shareable, LocalEvent::Write), "M,CA,IM,A");
        assert_eq!(local(Invalid, LocalEvent::Write), "M,CA,IM,R");
    }

    #[test]
    fn table6_bus_cells() {
        assert_eq!(bus(Modified, BusEvent::CacheRead), "BS;S,CA,W");
        assert_eq!(bus(Modified, BusEvent::CacheReadInvalidate), "BS;S,CA,W");
        assert_eq!(bus(Exclusive, BusEvent::CacheRead), "S,CH");
        assert_eq!(bus(Shareable, BusEvent::CacheRead), "S,CH");
        assert_eq!(bus(Exclusive, BusEvent::CacheReadInvalidate), "I");
        assert_eq!(bus(Shareable, BusEvent::CacheReadInvalidate), "I");
        for ev in BusEvent::ALL {
            assert_eq!(bus(Invalid, ev), "I");
        }
    }

    #[test]
    fn illinois_is_not_a_class_member() {
        let report = compat::check_protocol(&mut Illinois::new());
        assert!(!report.is_class_member());
    }

    #[test]
    fn dirty_lines_never_intervene_directly() {
        // Unlike MOESI, Illinois memory must always end up current: every
        // reaction from M uses BS, never DI.
        let mut p = Illinois::new();
        for ev in BusEvent::ALL {
            let r = p.on_bus(Modified, ev, &SnoopCtx::default());
            assert!(r.busy.is_some(), "({ev}): {r}");
            assert!(!r.di);
        }
    }

    #[test]
    fn requires_bs() {
        assert!(Illinois::new().requires_bs());
    }
}
