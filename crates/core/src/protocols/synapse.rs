//! The Synapse protocol (Frank 1984, the Synapse N+1) — the sixth protocol
//! of the Archibald & Baer comparison the paper's §5.2 builds on.

use crate::action::{BusOp, BusReaction, LocalAction};
use crate::event::{BusEvent, LocalEvent};
use crate::protocol::{CacheKind, LocalCtx, Protocol, SnoopCtx};
use crate::signals::MasterSignals;
use crate::state::LineState;

/// The Synapse ownership protocol, adapted to the Futurebus with BS.
///
/// Synapse N+1 \[Fran84\] is the simplest of the classic ownership protocols:
/// three states (Invalid, Valid ≡ S, Dirty ≡ M), no cache-to-cache
/// transfers, and no invalidate-only transaction. Its two signature
/// behaviours:
///
/// * a dirty holder never supplies data — it rejects the access (the N+1's
///   bus NAK, our BS abort), writes back, and lets memory serve the retry;
/// * a write to a *Valid* line cannot simply invalidate the other copies —
///   lacking an invalidation transaction, the cache performs a full
///   read-for-ownership on the bus even though it already holds the data,
///   which is Synapse's well-known inefficiency in the Archibald & Baer
///   results.
///
/// Not a member of the MOESI compatible class: it needs BS, and its
/// V-write re-fetch is not a Table 1 entry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Synapse;

impl Synapse {
    /// Creates the protocol.
    #[must_use]
    pub fn new() -> Self {
        Synapse
    }

    /// On a snooped read: NAK, write back, keep the copy as Valid.
    fn push_to_valid() -> BusReaction {
        BusReaction::busy_push(LineState::Shareable, MasterSignals::CA)
    }

    /// On a snooped read-for-ownership: NAK, write back, invalidate.
    fn push_to_invalid() -> BusReaction {
        BusReaction::busy_push(LineState::Invalid, MasterSignals::NONE)
    }
}

impl Protocol for Synapse {
    fn name(&self) -> &str {
        "Synapse"
    }

    fn kind(&self) -> CacheKind {
        CacheKind::CopyBack
    }

    fn requires_bs(&self) -> bool {
        true
    }

    fn on_local(&mut self, state: LineState, event: LocalEvent, _ctx: &LocalCtx) -> LocalAction {
        use LineState::{Invalid, Modified, Shareable};
        match (state, event) {
            (Modified | Shareable, LocalEvent::Read) => LocalAction::silent(state),
            // Read misses always enter Valid; Synapse has no E state.
            (Invalid, LocalEvent::Read) => {
                LocalAction::new(Shareable, MasterSignals::CA, BusOp::Read)
            }
            (Modified, LocalEvent::Write) => LocalAction::silent(Modified),
            // The signature inefficiency: no invalidation transaction exists,
            // so a write to Valid data is a full read-for-ownership.
            (Shareable | Invalid, LocalEvent::Write) => {
                LocalAction::new(Modified, MasterSignals::CA_IM, BusOp::Read)
            }
            // Pushes: only Dirty data writes back; Valid data drops silently.
            (Modified, LocalEvent::Pass) => {
                LocalAction::new(Shareable, MasterSignals::CA, BusOp::Write)
            }
            (Modified, LocalEvent::Flush) => {
                LocalAction::new(Invalid, MasterSignals::NONE, BusOp::Write)
            }
            (Shareable, LocalEvent::Flush) => LocalAction::silent(Invalid),
            _ => panic!("Synapse: no action for ({state}, {event})"),
        }
    }

    fn on_bus(&mut self, state: LineState, event: BusEvent, _ctx: &SnoopCtx) -> BusReaction {
        use LineState::{Invalid, Modified, Shareable};
        match (state, event) {
            (Invalid, _) => BusReaction::IGNORE,
            // Dirty data NAKs everything: memory must be made current first.
            (Modified, BusEvent::CacheRead | BusEvent::UncachedRead) => Self::push_to_valid(),
            (
                Modified,
                BusEvent::CacheReadInvalidate
                | BusEvent::UncachedWrite
                | BusEvent::CacheBroadcastWrite
                | BusEvent::UncachedBroadcastWrite,
            ) => Self::push_to_invalid(),
            // Valid copies: stay on reads (CH for compatibility), die on any
            // modification — Synapse has no update path.
            (Shareable, BusEvent::CacheRead | BusEvent::UncachedRead) => {
                BusReaction::hit(Shareable)
            }
            (
                Shareable,
                BusEvent::CacheReadInvalidate
                | BusEvent::UncachedWrite
                | BusEvent::CacheBroadcastWrite
                | BusEvent::UncachedBroadcastWrite,
            ) => BusReaction::IGNORE,
            (LineState::Owned | LineState::Exclusive, _) => {
                unreachable!("Synapse has neither O nor E states")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compat;
    use LineState::{Invalid, Modified, Shareable};

    fn local(state: LineState, event: LocalEvent) -> String {
        Synapse::new()
            .on_local(state, event, &LocalCtx::default())
            .to_string()
    }

    fn bus(state: LineState, event: BusEvent) -> String {
        Synapse::new()
            .on_bus(state, event, &SnoopCtx::default())
            .to_string()
    }

    #[test]
    fn three_states_only() {
        let reachable = compat::reachable_states(&mut Synapse::new());
        assert!(reachable.contains(&Modified));
        assert!(reachable.contains(&Shareable));
        assert!(reachable.contains(&Invalid));
        assert!(!reachable.contains(&LineState::Owned));
        assert!(!reachable.contains(&LineState::Exclusive));
    }

    #[test]
    fn local_cells() {
        assert_eq!(local(Modified, LocalEvent::Read), "M");
        assert_eq!(local(Shareable, LocalEvent::Read), "S");
        assert_eq!(local(Invalid, LocalEvent::Read), "S,CA,R");
        assert_eq!(local(Modified, LocalEvent::Write), "M");
        // The signature inefficiency: a hit-write still re-reads the line.
        assert_eq!(local(Shareable, LocalEvent::Write), "M,CA,IM,R");
        assert_eq!(local(Invalid, LocalEvent::Write), "M,CA,IM,R");
    }

    #[test]
    fn dirty_holders_nak_and_push() {
        assert_eq!(bus(Modified, BusEvent::CacheRead), "BS;S,CA,W");
        assert_eq!(bus(Modified, BusEvent::CacheReadInvalidate), "BS;I,-,W");
        assert_eq!(bus(Modified, BusEvent::UncachedRead), "BS;S,CA,W");
    }

    #[test]
    fn valid_copies_die_on_any_modification() {
        for ev in [
            BusEvent::CacheReadInvalidate,
            BusEvent::UncachedWrite,
            BusEvent::CacheBroadcastWrite,
            BusEvent::UncachedBroadcastWrite,
        ] {
            assert_eq!(bus(Shareable, ev), "I", "{ev}");
        }
        assert_eq!(bus(Shareable, BusEvent::CacheRead), "S,CH");
    }

    #[test]
    fn synapse_is_not_a_class_member() {
        let report = compat::check_protocol(&mut Synapse::new());
        assert!(!report.is_class_member());
        // Its V-write action is outside Table 1 as well as needing BS.
        assert!(
            report.violations().iter().any(|v| v.contains("(S, Write)")),
            "{report}"
        );
    }

    #[test]
    fn requires_bs() {
        assert!(Synapse::new().requires_bs());
    }
}
