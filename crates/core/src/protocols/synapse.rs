//! The Synapse protocol (Frank 1984, the Synapse N+1) — the sixth protocol
//! of the Archibald & Baer comparison the paper's §5.2 builds on.

use crate::action::{BusOp, BusReaction, LocalAction};
use crate::event::{BusEvent, LocalEvent};
use crate::policy::{PolicyTable, TablePolicy};
use crate::protocol::CacheKind;
use crate::signals::MasterSignals;
use crate::state::LineState;

/// The Synapse ownership protocol, adapted to the Futurebus with BS.
///
/// Synapse N+1 \[Fran84\] is the simplest of the classic ownership protocols:
/// three states (Invalid, Valid ≡ S, Dirty ≡ M), no cache-to-cache
/// transfers, and no invalidate-only transaction. Its two signature
/// behaviours:
///
/// * a dirty holder never supplies data — it rejects the access (the N+1's
///   bus NAK, our BS abort), writes back, and lets memory serve the retry;
/// * a write to a *Valid* line cannot simply invalidate the other copies —
///   lacking an invalidation transaction, the cache performs a full
///   read-for-ownership on the bus even though it already holds the data,
///   which is Synapse's well-known inefficiency in the Archibald & Baer
///   results.
///
/// Not a member of the MOESI compatible class: it needs BS, and its
/// V-write re-fetch is not a Table 1 entry — the table is built with the
/// unchecked setters, and both the O and E rows are empty.
#[derive(Debug)]
pub struct Synapse {
    inner: TablePolicy,
}

/// On a snooped read: NAK, write back, keep the copy as Valid.
fn push_to_valid() -> BusReaction {
    BusReaction::busy_push(LineState::Shareable, MasterSignals::CA)
}

/// On a snooped read-for-ownership: NAK, write back, invalidate.
fn push_to_invalid() -> BusReaction {
    BusReaction::busy_push(LineState::Invalid, MasterSignals::NONE)
}

/// The Synapse table as data: M, S and I rows only.
fn synapse_table() -> PolicyTable {
    use LineState::{Invalid, Modified, Shareable};
    let mut t = PolicyTable::empty("Synapse", CacheKind::CopyBack).with_bs();
    t.set_local_unchecked(Modified, LocalEvent::Read, LocalAction::silent(Modified));
    t.set_local_unchecked(Shareable, LocalEvent::Read, LocalAction::silent(Shareable));
    // Read misses always enter Valid; Synapse has no E state.
    t.set_local_unchecked(
        Invalid,
        LocalEvent::Read,
        LocalAction::new(Shareable, MasterSignals::CA, BusOp::Read),
    );
    t.set_local_unchecked(Modified, LocalEvent::Write, LocalAction::silent(Modified));
    // The signature inefficiency: no invalidation transaction exists, so a
    // write to Valid data is a full read-for-ownership.
    for s in [Shareable, Invalid] {
        t.set_local_unchecked(
            s,
            LocalEvent::Write,
            LocalAction::new(Modified, MasterSignals::CA_IM, BusOp::Read),
        );
    }
    // Pushes: only Dirty data writes back; Valid data drops silently.
    t.set_local_unchecked(
        Modified,
        LocalEvent::Pass,
        LocalAction::new(Shareable, MasterSignals::CA, BusOp::Write),
    );
    t.set_local_unchecked(
        Modified,
        LocalEvent::Flush,
        LocalAction::new(Invalid, MasterSignals::NONE, BusOp::Write),
    );
    t.set_local_unchecked(Shareable, LocalEvent::Flush, LocalAction::silent(Invalid));

    for ev in BusEvent::ALL {
        t.set_bus_unchecked(Invalid, ev, BusReaction::IGNORE);
    }
    // Dirty data NAKs everything: memory must be made current first.
    for ev in [BusEvent::CacheRead, BusEvent::UncachedRead] {
        t.set_bus_unchecked(Modified, ev, push_to_valid());
        // Valid copies: stay on reads (CH for compatibility)...
        t.set_bus_unchecked(Shareable, ev, BusReaction::hit(Shareable));
    }
    for ev in [
        BusEvent::CacheReadInvalidate,
        BusEvent::UncachedWrite,
        BusEvent::CacheBroadcastWrite,
        BusEvent::UncachedBroadcastWrite,
    ] {
        t.set_bus_unchecked(Modified, ev, push_to_invalid());
        // ...and die on any modification — Synapse has no update path.
        t.set_bus_unchecked(Shareable, ev, BusReaction::IGNORE);
    }
    t
}

impl Synapse {
    /// Creates the protocol.
    #[must_use]
    pub fn new() -> Self {
        Synapse {
            inner: TablePolicy::new(synapse_table()),
        }
    }
}

impl Default for Synapse {
    fn default() -> Self {
        Synapse::new()
    }
}

delegate_to_table!(Synapse);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compat;
    use crate::protocol::{LocalCtx, Protocol, SnoopCtx};
    use LineState::{Invalid, Modified, Shareable};

    fn local(state: LineState, event: LocalEvent) -> String {
        Synapse::new()
            .on_local(state, event, &LocalCtx::default())
            .to_string()
    }

    fn bus(state: LineState, event: BusEvent) -> String {
        Synapse::new()
            .on_bus(state, event, &SnoopCtx::default())
            .to_string()
    }

    #[test]
    fn three_states_only() {
        let reachable = compat::reachable_states(&mut Synapse::new());
        assert!(reachable.contains(&Modified));
        assert!(reachable.contains(&Shareable));
        assert!(reachable.contains(&Invalid));
        assert!(!reachable.contains(&LineState::Owned));
        assert!(!reachable.contains(&LineState::Exclusive));
    }

    #[test]
    fn local_cells() {
        assert_eq!(local(Modified, LocalEvent::Read), "M");
        assert_eq!(local(Shareable, LocalEvent::Read), "S");
        assert_eq!(local(Invalid, LocalEvent::Read), "S,CA,R");
        assert_eq!(local(Modified, LocalEvent::Write), "M");
        // The signature inefficiency: a hit-write still re-reads the line.
        assert_eq!(local(Shareable, LocalEvent::Write), "M,CA,IM,R");
        assert_eq!(local(Invalid, LocalEvent::Write), "M,CA,IM,R");
    }

    #[test]
    fn dirty_holders_nak_and_push() {
        assert_eq!(bus(Modified, BusEvent::CacheRead), "BS;S,CA,W");
        assert_eq!(bus(Modified, BusEvent::CacheReadInvalidate), "BS;I,-,W");
        assert_eq!(bus(Modified, BusEvent::UncachedRead), "BS;S,CA,W");
    }

    #[test]
    fn valid_copies_die_on_any_modification() {
        for ev in [
            BusEvent::CacheReadInvalidate,
            BusEvent::UncachedWrite,
            BusEvent::CacheBroadcastWrite,
            BusEvent::UncachedBroadcastWrite,
        ] {
            assert_eq!(bus(Shareable, ev), "I", "{ev}");
        }
        assert_eq!(bus(Shareable, BusEvent::CacheRead), "S,CH");
    }

    #[test]
    fn synapse_is_not_a_class_member() {
        let report = compat::check_protocol(&mut Synapse::new());
        assert!(!report.is_class_member());
        // Its V-write action is outside Table 1 as well as needing BS.
        assert!(
            report.violations().iter().any(|v| v.contains("(S, Write)")),
            "{report}"
        );
    }

    #[test]
    fn the_o_and_e_rows_are_empty() {
        let p = Synapse::new();
        assert!(p.table_is_exact());
        let t = p.policy_table().unwrap();
        assert!(!t.is_class_member());
        for s in [LineState::Owned, LineState::Exclusive] {
            for ev in LocalEvent::ALL {
                assert_eq!(t.local(s, ev), None);
            }
            for ev in BusEvent::ALL {
                assert_eq!(t.bus(s, ev), None);
            }
        }
    }

    #[test]
    fn requires_bs() {
        assert!(Synapse::new().requires_bs());
    }
}
