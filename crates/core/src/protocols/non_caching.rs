//! The non-caching processor member of the class (§3.3, `**` entries).

use crate::action::{BusReaction, LocalAction};
use crate::event::{BusEvent, LocalEvent};
use crate::protocol::{CacheKind, LocalCtx, Protocol, SnoopCtx};
use crate::state::LineState;
use crate::table;

/// A processor (or I/O device) without a cache.
///
/// "Such a processor writes with or without broadcast (as with a write
/// through cache), and reads without asserting CA. A non-caching unit never
/// responds to bus events" (§3.3).
///
/// [`NonCaching::new`] writes without broadcast (column 9 to snoopers);
/// [`NonCaching::broadcasting`] asserts BC so caching snoopers can update
/// instead of invalidating (column 10).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NonCaching {
    broadcast: bool,
}

impl NonCaching {
    /// A non-caching unit whose writes are not broadcast (`I,IM,W`).
    #[must_use]
    pub fn new() -> Self {
        NonCaching { broadcast: false }
    }

    /// A non-caching unit that broadcasts its writes (`I,IM,BC,W`).
    #[must_use]
    pub fn broadcasting() -> Self {
        NonCaching { broadcast: true }
    }
}

impl Default for NonCaching {
    fn default() -> Self {
        NonCaching::new()
    }
}

impl Protocol for NonCaching {
    fn name(&self) -> &str {
        "non-caching"
    }

    fn kind(&self) -> CacheKind {
        CacheKind::NonCaching
    }

    fn on_local(&mut self, state: LineState, event: LocalEvent, _ctx: &LocalCtx) -> LocalAction {
        let permitted = table::permitted_local(state, event, CacheKind::NonCaching);
        let pick = match event {
            LocalEvent::Write => usize::from(!self.broadcast),
            _ => 0,
        };
        *permitted
            .get(pick)
            .unwrap_or_else(|| panic!("non-caching: no action for ({state}, {event})"))
    }

    fn on_bus(&mut self, _state: LineState, _event: BusEvent, _ctx: &SnoopCtx) -> BusReaction {
        // "A non-caching unit never responds to bus events."
        BusReaction::IGNORE
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use LineState::Invalid;

    #[test]
    fn reads_do_not_assert_ca() {
        let mut p = NonCaching::new();
        let a = p.on_local(Invalid, LocalEvent::Read, &LocalCtx::default());
        assert_eq!(a.to_string(), "I,R");
        assert!(!a.signals.ca && !a.signals.im);
    }

    #[test]
    fn writes_with_and_without_broadcast() {
        let mut plain = NonCaching::new();
        assert_eq!(
            plain
                .on_local(Invalid, LocalEvent::Write, &LocalCtx::default())
                .to_string(),
            "I,IM,W"
        );
        let mut bcast = NonCaching::broadcasting();
        assert_eq!(
            bcast
                .on_local(Invalid, LocalEvent::Write, &LocalCtx::default())
                .to_string(),
            "I,IM,BC,W"
        );
    }

    #[test]
    fn never_responds_to_bus_events() {
        let mut p = NonCaching::new();
        for ev in BusEvent::ALL {
            assert_eq!(
                p.on_bus(Invalid, ev, &SnoopCtx::default()),
                BusReaction::IGNORE
            );
        }
    }

    #[test]
    #[should_panic(expected = "no action")]
    fn flush_makes_no_sense_without_a_cache() {
        NonCaching::new().on_local(Invalid, LocalEvent::Flush, &LocalCtx::default());
    }
}
