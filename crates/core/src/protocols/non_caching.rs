//! The non-caching processor member of the class (§3.3, `**` entries).

use crate::event::LocalEvent;
use crate::policy::{PolicyTable, TablePolicy};
use crate::protocol::CacheKind;
use crate::state::LineState;
use crate::table;

/// A processor (or I/O device) without a cache.
///
/// "Such a processor writes with or without broadcast (as with a write
/// through cache), and reads without asserting CA. A non-caching unit never
/// responds to bus events" (§3.3) — its only populated bus row is the
/// Invalid one, and every cell of it is `I` (ignore).
///
/// [`NonCaching::new`] writes without broadcast (column 9 to snoopers);
/// [`NonCaching::broadcasting`] asserts BC so caching snoopers can update
/// instead of invalidating (column 10).
#[derive(Debug)]
pub struct NonCaching {
    inner: TablePolicy,
}

/// The non-caching table: only the Invalid row exists; the `broadcast` flag
/// picks which write entry (`I,IM,BC,W` vs `I,IM,W`) is used.
fn non_caching_table(broadcast: bool) -> PolicyTable {
    let mut t = PolicyTable::preferred("non-caching", CacheKind::NonCaching);
    let writes =
        table::permitted_local(LineState::Invalid, LocalEvent::Write, CacheKind::NonCaching);
    t.set_local(
        LineState::Invalid,
        LocalEvent::Write,
        writes[usize::from(!broadcast)],
    );
    t
}

impl NonCaching {
    /// A non-caching unit whose writes are not broadcast (`I,IM,W`).
    #[must_use]
    pub fn new() -> Self {
        NonCaching {
            inner: TablePolicy::new(non_caching_table(false)),
        }
    }

    /// A non-caching unit that broadcasts its writes (`I,IM,BC,W`).
    #[must_use]
    pub fn broadcasting() -> Self {
        NonCaching {
            inner: TablePolicy::new(non_caching_table(true)),
        }
    }
}

impl Default for NonCaching {
    fn default() -> Self {
        NonCaching::new()
    }
}

delegate_to_table!(NonCaching);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::BusReaction;
    use crate::event::BusEvent;
    use crate::protocol::{LocalCtx, Protocol, SnoopCtx};
    use LineState::Invalid;

    #[test]
    fn reads_do_not_assert_ca() {
        let mut p = NonCaching::new();
        let a = p.on_local(Invalid, LocalEvent::Read, &LocalCtx::default());
        assert_eq!(a.to_string(), "I,R");
        assert!(!a.signals.ca && !a.signals.im);
    }

    #[test]
    fn writes_with_and_without_broadcast() {
        let mut plain = NonCaching::new();
        assert_eq!(
            plain
                .on_local(Invalid, LocalEvent::Write, &LocalCtx::default())
                .to_string(),
            "I,IM,W"
        );
        let mut bcast = NonCaching::broadcasting();
        assert_eq!(
            bcast
                .on_local(Invalid, LocalEvent::Write, &LocalCtx::default())
                .to_string(),
            "I,IM,BC,W"
        );
    }

    #[test]
    fn never_responds_to_bus_events() {
        let mut p = NonCaching::new();
        for ev in BusEvent::ALL {
            assert_eq!(
                p.on_bus(Invalid, ev, &SnoopCtx::default()),
                BusReaction::IGNORE
            );
        }
    }

    #[test]
    #[should_panic(expected = "no action")]
    fn flush_makes_no_sense_without_a_cache() {
        NonCaching::new().on_local(Invalid, LocalEvent::Flush, &LocalCtx::default());
    }

    #[test]
    fn the_table_only_populates_the_invalid_row() {
        let p = NonCaching::new();
        assert!(p.table_is_exact());
        let t = p.policy_table().unwrap();
        assert!(t.is_class_member());
        for state in LineState::ALL {
            if state != Invalid {
                for ev in BusEvent::ALL {
                    assert_eq!(t.bus(state, ev), None, "({state}, {ev})");
                }
            }
        }
    }
}
