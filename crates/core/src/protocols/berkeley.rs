//! The Berkeley protocol (Katz et al., SPUR) — Table 3.

use crate::action::{BusOp, BusReaction, LocalAction};
use crate::event::{BusEvent, LocalEvent};
use crate::policy::{PolicyTable, TablePolicy};
use crate::protocol::CacheKind;
use crate::signals::MasterSignals;
use crate::state::LineState;

/// The Berkeley ownership protocol as mapped onto the Futurebus (Table 3).
///
/// "The states in that protocol map into M, O, S and I; there is no state
/// that corresponds to E. The facilities of Futurebus are sufficient to
/// implement the Berkeley Protocol" (§4.1). Every cell below is an entry of
/// Tables 1–2 (using the note 10 weakening `S` for `CH:S/E`), so Berkeley
/// is a member of the compatible class; the CH signal is generated for
/// compatibility with the MOESI mechanism even though \[Katz85\] does not use
/// it.
///
/// Cells Table 3 leaves unspecified (events from write-through and non-caching
/// masters, columns 7–10) are completed in the protocol's invalidation-based
/// spirit: reads are answered per the MOESI preferred entries, snooped
/// broadcast writes discard unowned copies, and owners capture or update as
/// Table 2 requires. The E row is cleared — Berkeley can never reach it.
#[derive(Debug)]
pub struct Berkeley {
    inner: TablePolicy,
}

/// Table 3 as data: the preferred table, minus the E row, with Berkeley's
/// invalidation-flavoured choices.
fn berkeley_table() -> PolicyTable {
    use LineState::{Exclusive, Invalid, Modified, Owned, Shareable};
    let mut t = PolicyTable::preferred("Berkeley", CacheKind::CopyBack);
    t.clear_state(Exclusive);
    // `S,CA,R`: read misses always enter S (no E state).
    t.set_local(
        Invalid,
        LocalEvent::Read,
        LocalAction::new(Shareable, MasterSignals::CA, BusOp::Read),
    );
    // `M,CA,IM`: invalidate other copies, address-only.
    for s in [Owned, Shareable] {
        t.set_local(
            s,
            LocalEvent::Write,
            LocalAction::new(Modified, MasterSignals::CA_IM, BusOp::AddressOnly),
        );
    }
    // Pushes are not tabulated in Table 3; keep the copy in S (the note 10
    // weakening of the MOESI `CH:S/E` result, since Berkeley has no E state).
    for s in [Modified, Owned] {
        t.set_local(
            s,
            LocalEvent::Pass,
            LocalAction::new(Shareable, MasterSignals::CA, BusOp::Write),
        );
    }
    // Completion: unowned copies discard on any snooped broadcast write
    // (invalidation-based protocol; the `I` alternative of the Table 2 cells).
    t.set_bus(
        Shareable,
        BusEvent::CacheBroadcastWrite,
        BusReaction::IGNORE,
    );
    t.set_bus(
        Shareable,
        BusEvent::UncachedBroadcastWrite,
        BusReaction::IGNORE,
    );
    t.set_bus(Owned, BusEvent::CacheBroadcastWrite, BusReaction::IGNORE);
    t
}

impl Berkeley {
    /// Creates the protocol.
    #[must_use]
    pub fn new() -> Self {
        Berkeley {
            inner: TablePolicy::new(berkeley_table()),
        }
    }
}

impl Default for Berkeley {
    fn default() -> Self {
        Berkeley::new()
    }
}

delegate_to_table!(Berkeley);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::ResultState;
    use crate::compat;
    use crate::protocol::{LocalCtx, Protocol, SnoopCtx};
    use LineState::{Invalid, Modified, Owned, Shareable};

    fn local(state: LineState, event: LocalEvent) -> String {
        Berkeley::new()
            .on_local(state, event, &LocalCtx::default())
            .to_string()
    }

    fn bus(state: LineState, event: BusEvent) -> String {
        Berkeley::new()
            .on_bus(state, event, &SnoopCtx::default())
            .to_string()
    }

    #[test]
    fn table3_local_cells() {
        assert_eq!(local(Modified, LocalEvent::Read), "M");
        assert_eq!(local(Owned, LocalEvent::Read), "O");
        assert_eq!(local(Shareable, LocalEvent::Read), "S");
        assert_eq!(local(Invalid, LocalEvent::Read), "S,CA,R");
        assert_eq!(local(Modified, LocalEvent::Write), "M");
        assert_eq!(local(Owned, LocalEvent::Write), "M,CA,IM,A");
        assert_eq!(local(Shareable, LocalEvent::Write), "M,CA,IM,A");
        assert_eq!(local(Invalid, LocalEvent::Write), "M,CA,IM,R");
    }

    #[test]
    fn table3_bus_cells() {
        assert_eq!(bus(Modified, BusEvent::CacheRead), "O,CH,DI");
        assert_eq!(bus(Owned, BusEvent::CacheRead), "O,CH,DI");
        assert_eq!(bus(Shareable, BusEvent::CacheRead), "S,CH");
        assert_eq!(bus(Invalid, BusEvent::CacheRead), "I");
        assert_eq!(bus(Modified, BusEvent::CacheReadInvalidate), "I,DI");
        assert_eq!(bus(Owned, BusEvent::CacheReadInvalidate), "I,DI");
        assert_eq!(bus(Shareable, BusEvent::CacheReadInvalidate), "I");
        assert_eq!(bus(Invalid, BusEvent::CacheReadInvalidate), "I");
    }

    #[test]
    fn never_reads_into_exclusive() {
        // Berkeley has no E state: a read miss lands in S even when no other
        // cache holds the line.
        let a = Berkeley::new().on_local(Invalid, LocalEvent::Read, &LocalCtx::default());
        assert_eq!(a.result, ResultState::Fixed(Shareable));
    }

    #[test]
    fn berkeley_is_a_class_member() {
        let report = compat::check_protocol(&mut Berkeley::new());
        assert!(report.is_class_member(), "{report}");
    }

    #[test]
    fn completion_cells_discard_on_broadcast_writes() {
        assert_eq!(bus(Shareable, BusEvent::CacheBroadcastWrite), "I");
        assert_eq!(bus(Shareable, BusEvent::UncachedBroadcastWrite), "I");
        assert_eq!(bus(Owned, BusEvent::CacheBroadcastWrite), "I");
    }

    #[test]
    fn owners_still_serve_uncached_masters() {
        assert_eq!(bus(Modified, BusEvent::UncachedRead), "M,DI");
        assert_eq!(bus(Owned, BusEvent::UncachedWrite), "O,DI");
    }

    #[test]
    fn the_exclusive_row_is_cleared() {
        let p = Berkeley::new();
        assert!(p.table_is_exact());
        let t = p.policy_table().unwrap();
        assert!(t.is_class_member());
        for ev in LocalEvent::ALL {
            assert_eq!(t.local(LineState::Exclusive, ev), None);
        }
        for ev in BusEvent::ALL {
            assert_eq!(t.bus(LineState::Exclusive, ev), None);
        }
    }
}
