//! The Berkeley protocol (Katz et al., SPUR) — Table 3.

use crate::action::{BusOp, BusReaction, LocalAction};
use crate::event::{BusEvent, LocalEvent};
use crate::protocol::{CacheKind, LocalCtx, Protocol, SnoopCtx};
use crate::signals::MasterSignals;
use crate::state::LineState;

use super::{moesi_fallback_bus, moesi_fallback_local};

/// The Berkeley ownership protocol as mapped onto the Futurebus (Table 3).
///
/// "The states in that protocol map into M, O, S and I; there is no state
/// that corresponds to E. The facilities of Futurebus are sufficient to
/// implement the Berkeley Protocol" (§4.1). Every transition below is a cell
/// of Tables 1–2 (using the note 10 weakening `S` for `CH:S/E`), so Berkeley
/// is a member of the compatible class; the CH signal is generated for
/// compatibility with the MOESI mechanism even though \[Katz85\] does not use
/// it.
///
/// Cells Table 3 leaves unspecified (events from write-through and non-caching
/// masters, columns 7–10) are completed in the protocol's invalidation-based
/// spirit: reads are answered per the MOESI preferred entries, snooped
/// broadcast writes discard unowned copies, and owners capture or update as
/// Table 2 requires.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Berkeley;

impl Berkeley {
    /// Creates the protocol.
    #[must_use]
    pub fn new() -> Self {
        Berkeley
    }
}

impl Protocol for Berkeley {
    fn name(&self) -> &str {
        "Berkeley"
    }

    fn kind(&self) -> CacheKind {
        CacheKind::CopyBack
    }

    fn on_local(&mut self, state: LineState, event: LocalEvent, _ctx: &LocalCtx) -> LocalAction {
        use LineState::{Invalid, Modified, Owned, Shareable};
        match (state, event) {
            (Modified | Owned | Shareable, LocalEvent::Read) => LocalAction::silent(state),
            // `S,CA,R`: read misses always enter S (no E state).
            (Invalid, LocalEvent::Read) => {
                LocalAction::new(Shareable, MasterSignals::CA, BusOp::Read)
            }
            (Modified, LocalEvent::Write) => LocalAction::silent(Modified),
            // `M,CA,IM`: invalidate other copies, address-only.
            (Owned | Shareable, LocalEvent::Write) => {
                LocalAction::new(Modified, MasterSignals::CA_IM, BusOp::AddressOnly)
            }
            // `M,CA,IM,R`: read-for-modify.
            (Invalid, LocalEvent::Write) => {
                LocalAction::new(Modified, MasterSignals::CA_IM, BusOp::Read)
            }
            // Pushes are not tabulated in Table 3; keep the copy in S (the
            // note 10 weakening of the MOESI `CH:S/E` result, since Berkeley
            // has no E state).
            (Modified | Owned, LocalEvent::Pass) => {
                LocalAction::new(Shareable, MasterSignals::CA, BusOp::Write)
            }
            _ => moesi_fallback_local(state, event),
        }
    }

    fn on_bus(&mut self, state: LineState, event: BusEvent, _ctx: &SnoopCtx) -> BusReaction {
        use LineState::{Invalid, Modified, Owned, Shareable};
        debug_assert_ne!(state, LineState::Exclusive, "Berkeley has no E state");
        match (state, event) {
            // Table 3, column 5.
            (Modified | Owned, BusEvent::CacheRead) => BusReaction::hit(Owned).with_di(),
            (Shareable, BusEvent::CacheRead) => BusReaction::hit(Shareable),
            // Table 3, column 6.
            (Modified | Owned, BusEvent::CacheReadInvalidate) => {
                BusReaction::quiet(Invalid).with_di()
            }
            (Shareable, BusEvent::CacheReadInvalidate) => BusReaction::IGNORE,
            (Invalid, _) => BusReaction::IGNORE,
            // Completion: unowned copies discard on any snooped broadcast
            // write (invalidation-based protocol; the `I` alternative of the
            // Table 2 cells).
            (Shareable, BusEvent::CacheBroadcastWrite | BusEvent::UncachedBroadcastWrite) => {
                BusReaction::IGNORE
            }
            (Owned, BusEvent::CacheBroadcastWrite) => BusReaction::IGNORE,
            _ => moesi_fallback_bus(state, event),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::ResultState;
    use crate::compat;
    use LineState::{Invalid, Modified, Owned, Shareable};

    fn local(state: LineState, event: LocalEvent) -> String {
        Berkeley::new()
            .on_local(state, event, &LocalCtx::default())
            .to_string()
    }

    fn bus(state: LineState, event: BusEvent) -> String {
        Berkeley::new()
            .on_bus(state, event, &SnoopCtx::default())
            .to_string()
    }

    #[test]
    fn table3_local_cells() {
        assert_eq!(local(Modified, LocalEvent::Read), "M");
        assert_eq!(local(Owned, LocalEvent::Read), "O");
        assert_eq!(local(Shareable, LocalEvent::Read), "S");
        assert_eq!(local(Invalid, LocalEvent::Read), "S,CA,R");
        assert_eq!(local(Modified, LocalEvent::Write), "M");
        assert_eq!(local(Owned, LocalEvent::Write), "M,CA,IM,A");
        assert_eq!(local(Shareable, LocalEvent::Write), "M,CA,IM,A");
        assert_eq!(local(Invalid, LocalEvent::Write), "M,CA,IM,R");
    }

    #[test]
    fn table3_bus_cells() {
        assert_eq!(bus(Modified, BusEvent::CacheRead), "O,CH,DI");
        assert_eq!(bus(Owned, BusEvent::CacheRead), "O,CH,DI");
        assert_eq!(bus(Shareable, BusEvent::CacheRead), "S,CH");
        assert_eq!(bus(Invalid, BusEvent::CacheRead), "I");
        assert_eq!(bus(Modified, BusEvent::CacheReadInvalidate), "I,DI");
        assert_eq!(bus(Owned, BusEvent::CacheReadInvalidate), "I,DI");
        assert_eq!(bus(Shareable, BusEvent::CacheReadInvalidate), "I");
        assert_eq!(bus(Invalid, BusEvent::CacheReadInvalidate), "I");
    }

    #[test]
    fn never_reads_into_exclusive() {
        // Berkeley has no E state: a read miss lands in S even when no other
        // cache holds the line.
        let a = Berkeley::new().on_local(Invalid, LocalEvent::Read, &LocalCtx::default());
        assert_eq!(a.result, ResultState::Fixed(Shareable));
    }

    #[test]
    fn berkeley_is_a_class_member() {
        let report = compat::check_protocol(&mut Berkeley::new());
        assert!(report.is_class_member(), "{report}");
    }

    #[test]
    fn completion_cells_discard_on_broadcast_writes() {
        assert_eq!(bus(Shareable, BusEvent::CacheBroadcastWrite), "I");
        assert_eq!(bus(Shareable, BusEvent::UncachedBroadcastWrite), "I");
        assert_eq!(bus(Owned, BusEvent::CacheBroadcastWrite), "I");
    }

    #[test]
    fn owners_still_serve_uncached_masters() {
        assert_eq!(bus(Modified, BusEvent::UncachedRead), "M,DI");
        assert_eq!(bus(Owned, BusEvent::UncachedWrite), "O,DI");
    }
}
