//! The §5.2 replacement-status refinement (after Puzak, Rechtschaffen & So).

use crate::action::{BusReaction, LocalAction, ResultState};
use crate::event::{BusEvent, LocalEvent};
use crate::policy::{DynamicPolicy, PolicyTable, TablePolicy};
use crate::protocol::{CacheKind, LocalCtx, SnoopCtx};
use crate::state::LineState;

/// A MOESI cache that chooses update-versus-invalidate by replacement status.
///
/// §5.2: "A refinement ... is to have a cache examine the replacement status
/// of a line written by another cache. If the line is quite recently used
/// (e.g. most recently used element of two element set), it can be updated,
/// and if it is nearing time for replacement (e.g. least recently used element
/// of two element set), it can be discarded."
///
/// Both choices are listed alternatives of the same Table 2 cells, so the
/// refinement is itself a class member. Locally it behaves like the preferred
/// protocol (broadcasting writes to shared lines). As a table policy the
/// preferred table is the base and the recency check is a [`DynamicPolicy`]
/// hook over the snoop side only.
#[derive(Debug)]
pub struct PuzakRefinement {
    inner: TablePolicy,
}

/// The recency hook: on a snooped broadcast to an unowned valid line that is
/// nearing replacement, take the trailing `I` alternative of the permitted
/// set instead of the preferred update.
#[derive(Debug)]
struct RecencyHook;

impl DynamicPolicy for RecencyHook {
    fn pick_local(
        &mut self,
        _state: LineState,
        _event: LocalEvent,
        _ctx: &LocalCtx,
        _permitted: &[LocalAction],
    ) -> Option<LocalAction> {
        None // local side: always the preferred table cell
    }

    fn pick_bus(
        &mut self,
        state: LineState,
        event: BusEvent,
        ctx: &SnoopCtx,
        permitted: &[BusReaction],
    ) -> Option<BusReaction> {
        if event.is_broadcast() && state.is_valid() && !state.is_owned() && ctx.near_replacement() {
            // The line is about to be evicted anyway: take the `I` alternative
            // instead of spending an update on it.
            return permitted
                .iter()
                .rev()
                .find(|r| r.result == ResultState::Fixed(LineState::Invalid) && !r.di)
                .copied();
        }
        None
    }
}

impl PuzakRefinement {
    /// Creates the protocol.
    #[must_use]
    pub fn new() -> Self {
        PuzakRefinement {
            inner: TablePolicy::with_dynamic(
                PolicyTable::preferred("MOESI-puzak", CacheKind::CopyBack),
                Box::new(RecencyHook),
            ),
        }
    }
}

impl Default for PuzakRefinement {
    fn default() -> Self {
        PuzakRefinement::new()
    }
}

delegate_to_table!(PuzakRefinement);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Protocol;
    use LineState::{Invalid, Shareable};

    #[test]
    fn mru_lines_are_updated() {
        let mut p = PuzakRefinement::new();
        let ctx = SnoopCtx {
            recency_rank: Some(0),
            ways: 2,
            line_addr: None,
        };
        let r = p.on_bus(Shareable, BusEvent::CacheBroadcastWrite, &ctx);
        assert!(r.sl, "MRU line should connect and update");
        assert_eq!(r.result, ResultState::Fixed(Shareable));
    }

    #[test]
    fn lru_lines_are_discarded() {
        let mut p = PuzakRefinement::new();
        let ctx = SnoopCtx {
            recency_rank: Some(1),
            ways: 2,
            line_addr: None,
        };
        let r = p.on_bus(Shareable, BusEvent::CacheBroadcastWrite, &ctx);
        assert!(!r.sl);
        assert_eq!(r.result, ResultState::Fixed(Invalid));
    }

    #[test]
    fn owners_never_discard_on_uncached_broadcasts() {
        // An O holder snooping column 10 must keep updating: it stays the
        // owner. The refinement only applies to unowned copies.
        let mut p = PuzakRefinement::new();
        let ctx = SnoopCtx {
            recency_rank: Some(3),
            ways: 4,
            line_addr: None,
        };
        let r = p.on_bus(LineState::Owned, BusEvent::UncachedBroadcastWrite, &ctx);
        assert!(r.sl);
        assert_eq!(r.result, ResultState::Fixed(LineState::Owned));
    }

    #[test]
    fn non_broadcast_events_are_unaffected() {
        let mut p = PuzakRefinement::new();
        let lru = SnoopCtx {
            recency_rank: Some(1),
            ways: 2,
            line_addr: None,
        };
        let r = p.on_bus(Shareable, BusEvent::CacheRead, &lru);
        assert!(r.ch);
        assert_eq!(r.result, ResultState::Fixed(Shareable));
    }

    #[test]
    fn the_base_table_is_preferred_but_not_exact() {
        let p = PuzakRefinement::new();
        assert!(!p.table_is_exact(), "the recency hook is stateful");
        let t = p.policy_table().unwrap();
        assert!(t.is_class_member());
        assert_eq!(t.name(), "MOESI-puzak");
    }
}
