//! The §5.2 replacement-status refinement (after Puzak, Rechtschaffen & So).

use crate::action::{BusReaction, LocalAction, ResultState};
use crate::event::{BusEvent, LocalEvent};
use crate::protocol::{CacheKind, LocalCtx, Protocol, SnoopCtx};
use crate::state::LineState;
use crate::table;

/// A MOESI cache that chooses update-versus-invalidate by replacement status.
///
/// §5.2: "A refinement ... is to have a cache examine the replacement status
/// of a line written by another cache. If the line is quite recently used
/// (e.g. most recently used element of two element set), it can be updated,
/// and if it is nearing time for replacement (e.g. least recently used element
/// of two element set), it can be discarded."
///
/// Both choices are listed alternatives of the same Table 2 cells, so the
/// refinement is itself a class member. Locally it behaves like the preferred
/// protocol (broadcasting writes to shared lines).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PuzakRefinement;

impl PuzakRefinement {
    /// Creates the protocol.
    #[must_use]
    pub fn new() -> Self {
        PuzakRefinement
    }
}

impl Protocol for PuzakRefinement {
    fn name(&self) -> &str {
        "MOESI-puzak"
    }

    fn kind(&self) -> CacheKind {
        CacheKind::CopyBack
    }

    fn on_local(&mut self, state: LineState, event: LocalEvent, _ctx: &LocalCtx) -> LocalAction {
        table::preferred_local(state, event, CacheKind::CopyBack)
            .unwrap_or_else(|| panic!("MOESI-puzak: no action for ({state}, {event})"))
    }

    fn on_bus(&mut self, state: LineState, event: BusEvent, ctx: &SnoopCtx) -> BusReaction {
        let permitted = table::permitted_bus(state, event);
        if event.is_broadcast() && state.is_valid() && !state.is_owned() && ctx.near_replacement() {
            // The line is about to be evicted anyway: take the `I` alternative
            // instead of spending an update on it.
            if let Some(inv) = permitted
                .iter()
                .rev()
                .find(|r| r.result == ResultState::Fixed(LineState::Invalid) && !r.di)
            {
                return *inv;
            }
        }
        permitted
            .into_iter()
            .next()
            .unwrap_or_else(|| panic!("MOESI-puzak: error-condition cell ({state}, {event})"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use LineState::{Invalid, Shareable};

    #[test]
    fn mru_lines_are_updated() {
        let mut p = PuzakRefinement::new();
        let ctx = SnoopCtx {
            recency_rank: Some(0),
            ways: 2,
        };
        let r = p.on_bus(Shareable, BusEvent::CacheBroadcastWrite, &ctx);
        assert!(r.sl, "MRU line should connect and update");
        assert_eq!(r.result, ResultState::Fixed(Shareable));
    }

    #[test]
    fn lru_lines_are_discarded() {
        let mut p = PuzakRefinement::new();
        let ctx = SnoopCtx {
            recency_rank: Some(1),
            ways: 2,
        };
        let r = p.on_bus(Shareable, BusEvent::CacheBroadcastWrite, &ctx);
        assert!(!r.sl);
        assert_eq!(r.result, ResultState::Fixed(Invalid));
    }

    #[test]
    fn owners_never_discard_on_uncached_broadcasts() {
        // An O holder snooping column 10 must keep updating: it stays the
        // owner. The refinement only applies to unowned copies.
        let mut p = PuzakRefinement::new();
        let ctx = SnoopCtx {
            recency_rank: Some(3),
            ways: 4,
        };
        let r = p.on_bus(LineState::Owned, BusEvent::UncachedBroadcastWrite, &ctx);
        assert!(r.sl);
        assert_eq!(r.result, ResultState::Fixed(LineState::Owned));
    }

    #[test]
    fn non_broadcast_events_are_unaffected() {
        let mut p = PuzakRefinement::new();
        let lru = SnoopCtx {
            recency_rank: Some(1),
            ways: 2,
        };
        let r = p.on_bus(Shareable, BusEvent::CacheRead, &lru);
        assert!(r.ch);
        assert_eq!(r.result, ResultState::Fixed(Shareable));
    }
}
