//! The Dragon protocol (Xerox PARC) — Table 4.

use crate::action::LocalAction;
use crate::event::LocalEvent;
use crate::policy::{PolicyTable, TablePolicy};
use crate::protocol::CacheKind;
use crate::state::LineState;

/// The Dragon update protocol as mapped onto the Futurebus (Table 4).
///
/// "The Dragon protocol is implementable almost exactly using the Futurebus
/// features. The one exception is that when a broadcast write is done on the
/// Futurebus, it affects all caches holding the line and also main memory
/// ... Extra memory updates, however, cause no incompatibility" (§4.2).
///
/// Dragon never invalidates: writes to shared lines are broadcast and every
/// holder updates. All its transitions are cells of Tables 1–2, so it is a
/// member of the compatible class. Cells Table 4 leaves unspecified (columns
/// 6, 7, 9, 10) are completed with the MOESI preferred entries, except that
/// snooped uncached broadcast writes update rather than discard, keeping the
/// protocol's update-everywhere character.
///
/// As a table, Dragon *is* the preferred table except for one cell: the write
/// miss uses the two-transaction `Read>Write` instead of read-for-modify —
/// the Dragon write miss first obtains the line like any read miss, then
/// performs the (possibly broadcast) write.
#[derive(Debug)]
pub struct Dragon {
    inner: TablePolicy,
}

/// Table 4 as data.
fn dragon_table() -> PolicyTable {
    let mut t = PolicyTable::preferred("Dragon", CacheKind::CopyBack);
    // `Read>Write`: a write miss is a read miss followed by a write.
    t.set_local(
        LineState::Invalid,
        LocalEvent::Write,
        LocalAction::read_then_write(),
    );
    t
}

impl Dragon {
    /// Creates the protocol.
    #[must_use]
    pub fn new() -> Self {
        Dragon {
            inner: TablePolicy::new(dragon_table()),
        }
    }
}

impl Default for Dragon {
    fn default() -> Self {
        Dragon::new()
    }
}

delegate_to_table!(Dragon);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::BusOp;
    use crate::compat;
    use crate::event::BusEvent;
    use crate::protocol::{LocalCtx, Protocol, SnoopCtx};
    use LineState::{Exclusive, Invalid, Modified, Owned, Shareable};

    fn local(state: LineState, event: LocalEvent) -> String {
        Dragon::new()
            .on_local(state, event, &LocalCtx::default())
            .to_string()
    }

    fn bus(state: LineState, event: BusEvent) -> String {
        Dragon::new()
            .on_bus(state, event, &SnoopCtx::default())
            .to_string()
    }

    #[test]
    fn table4_local_cells() {
        assert_eq!(local(Modified, LocalEvent::Read), "M");
        assert_eq!(local(Owned, LocalEvent::Read), "O");
        assert_eq!(local(Exclusive, LocalEvent::Read), "E");
        assert_eq!(local(Shareable, LocalEvent::Read), "S");
        assert_eq!(local(Invalid, LocalEvent::Read), "CH:S/E,CA,R");
        assert_eq!(local(Modified, LocalEvent::Write), "M");
        assert_eq!(local(Owned, LocalEvent::Write), "CH:O/M,CA,IM,BC,W");
        assert_eq!(local(Exclusive, LocalEvent::Write), "M");
        assert_eq!(local(Shareable, LocalEvent::Write), "CH:O/M,CA,IM,BC,W");
        assert_eq!(local(Invalid, LocalEvent::Write), "Read>Write");
    }

    #[test]
    fn table4_bus_cells() {
        assert_eq!(bus(Modified, BusEvent::CacheRead), "O,CH,DI");
        assert_eq!(bus(Owned, BusEvent::CacheRead), "O,CH,DI");
        assert_eq!(bus(Exclusive, BusEvent::CacheRead), "S,CH");
        assert_eq!(bus(Shareable, BusEvent::CacheRead), "S,CH");
        assert_eq!(bus(Owned, BusEvent::CacheBroadcastWrite), "S,CH,SL");
        assert_eq!(bus(Shareable, BusEvent::CacheBroadcastWrite), "S,CH,SL");
        for ev in BusEvent::ALL {
            assert_eq!(bus(Invalid, ev), "I");
        }
    }

    #[test]
    fn dragon_never_invalidates_other_caches_on_a_write() {
        // Every local write either stays silent or broadcasts (BC asserted);
        // no address-only invalidates, no read-for-modify.
        let mut p = Dragon::new();
        for s in LineState::ALL {
            let a = p.on_local(s, LocalEvent::Write, &LocalCtx::default());
            if a.bus_op.uses_bus() && a.bus_op != BusOp::ReadThenWrite {
                assert!(a.signals.bc, "({s}, Write): {a} does not broadcast");
            }
        }
    }

    #[test]
    fn dragon_is_a_class_member() {
        let report = compat::check_protocol(&mut Dragon::new());
        assert!(report.is_class_member(), "{report}");
    }

    #[test]
    fn snooped_updates_keep_copies_alive() {
        assert_eq!(bus(Shareable, BusEvent::UncachedBroadcastWrite), "S,CH,SL");
    }

    #[test]
    fn the_table_is_exact_and_in_class() {
        let p = Dragon::new();
        assert!(p.table_is_exact());
        assert!(p.policy_table().unwrap().is_class_member());
    }
}
