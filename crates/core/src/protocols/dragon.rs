//! The Dragon protocol (Xerox PARC) — Table 4.

use crate::action::{BusOp, BusReaction, LocalAction, ResultState};
use crate::event::{BusEvent, LocalEvent};
use crate::protocol::{CacheKind, LocalCtx, Protocol, SnoopCtx};
use crate::signals::MasterSignals;
use crate::state::LineState;

use super::{moesi_fallback_bus, moesi_fallback_local};

/// The Dragon update protocol as mapped onto the Futurebus (Table 4).
///
/// "The Dragon protocol is implementable almost exactly using the Futurebus
/// features. The one exception is that when a broadcast write is done on the
/// Futurebus, it affects all caches holding the line and also main memory
/// ... Extra memory updates, however, cause no incompatibility" (§4.2).
///
/// Dragon never invalidates: writes to shared lines are broadcast and every
/// holder updates. All its transitions are cells of Tables 1–2, so it is a
/// member of the compatible class. Cells Table 4 leaves unspecified (columns
/// 6, 7, 9, 10) are completed with the MOESI preferred entries, except that
/// snooped uncached broadcast writes update rather than discard, keeping the
/// protocol's update-everywhere character.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Dragon;

impl Dragon {
    /// Creates the protocol.
    #[must_use]
    pub fn new() -> Self {
        Dragon
    }
}

impl Protocol for Dragon {
    fn name(&self) -> &str {
        "Dragon"
    }

    fn kind(&self) -> CacheKind {
        CacheKind::CopyBack
    }

    fn on_local(&mut self, state: LineState, event: LocalEvent, _ctx: &LocalCtx) -> LocalAction {
        use LineState::{Exclusive, Invalid, Modified, Owned, Shareable};
        match (state, event) {
            (Modified | Owned | Exclusive | Shareable, LocalEvent::Read) => {
                LocalAction::silent(state)
            }
            // `CH:S/E,CA,R`.
            (Invalid, LocalEvent::Read) => {
                LocalAction::new(ResultState::CH_S_E, MasterSignals::CA, BusOp::Read)
            }
            (Modified, LocalEvent::Write) => LocalAction::silent(Modified),
            (Exclusive, LocalEvent::Write) => LocalAction::silent(Modified),
            // `CH:O/M,CA,IM,BC,W`: broadcast the word; holders update.
            (Owned | Shareable, LocalEvent::Write) => {
                LocalAction::new(ResultState::CH_O_M, MasterSignals::CA_IM_BC, BusOp::Write)
            }
            // `Read>Write`: a write miss is a read miss followed by a write.
            (Invalid, LocalEvent::Write) => LocalAction::read_then_write(),
            _ => moesi_fallback_local(state, event),
        }
    }

    fn on_bus(&mut self, state: LineState, event: BusEvent, _ctx: &SnoopCtx) -> BusReaction {
        use LineState::{Exclusive, Invalid, Modified, Owned, Shareable};
        match (state, event) {
            // Table 4, column 5.
            (Modified | Owned, BusEvent::CacheRead) => BusReaction::hit(Owned).with_di(),
            (Exclusive | Shareable, BusEvent::CacheRead) => BusReaction::hit(Shareable),
            // Table 4, column 8: holders connect and update.
            (Owned | Shareable, BusEvent::CacheBroadcastWrite) => {
                BusReaction::hit(Shareable).with_sl()
            }
            (Invalid, _) => BusReaction::IGNORE,
            // Completion: stay an updater on uncached broadcast writes.
            (Shareable, BusEvent::UncachedBroadcastWrite) => BusReaction::hit(Shareable).with_sl(),
            _ => moesi_fallback_bus(state, event),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compat;
    use LineState::{Exclusive, Invalid, Modified, Owned, Shareable};

    fn local(state: LineState, event: LocalEvent) -> String {
        Dragon::new()
            .on_local(state, event, &LocalCtx::default())
            .to_string()
    }

    fn bus(state: LineState, event: BusEvent) -> String {
        Dragon::new()
            .on_bus(state, event, &SnoopCtx::default())
            .to_string()
    }

    #[test]
    fn table4_local_cells() {
        assert_eq!(local(Modified, LocalEvent::Read), "M");
        assert_eq!(local(Owned, LocalEvent::Read), "O");
        assert_eq!(local(Exclusive, LocalEvent::Read), "E");
        assert_eq!(local(Shareable, LocalEvent::Read), "S");
        assert_eq!(local(Invalid, LocalEvent::Read), "CH:S/E,CA,R");
        assert_eq!(local(Modified, LocalEvent::Write), "M");
        assert_eq!(local(Owned, LocalEvent::Write), "CH:O/M,CA,IM,BC,W");
        assert_eq!(local(Exclusive, LocalEvent::Write), "M");
        assert_eq!(local(Shareable, LocalEvent::Write), "CH:O/M,CA,IM,BC,W");
        assert_eq!(local(Invalid, LocalEvent::Write), "Read>Write");
    }

    #[test]
    fn table4_bus_cells() {
        assert_eq!(bus(Modified, BusEvent::CacheRead), "O,CH,DI");
        assert_eq!(bus(Owned, BusEvent::CacheRead), "O,CH,DI");
        assert_eq!(bus(Exclusive, BusEvent::CacheRead), "S,CH");
        assert_eq!(bus(Shareable, BusEvent::CacheRead), "S,CH");
        assert_eq!(bus(Owned, BusEvent::CacheBroadcastWrite), "S,CH,SL");
        assert_eq!(bus(Shareable, BusEvent::CacheBroadcastWrite), "S,CH,SL");
        for ev in BusEvent::ALL {
            assert_eq!(bus(Invalid, ev), "I");
        }
    }

    #[test]
    fn dragon_never_invalidates_other_caches_on_a_write() {
        // Every local write either stays silent or broadcasts (BC asserted);
        // no address-only invalidates, no read-for-modify.
        let mut p = Dragon::new();
        for s in LineState::ALL {
            let a = p.on_local(s, LocalEvent::Write, &LocalCtx::default());
            if a.bus_op.uses_bus() && a.bus_op != BusOp::ReadThenWrite {
                assert!(a.signals.bc, "({s}, Write): {a} does not broadcast");
            }
        }
    }

    #[test]
    fn dragon_is_a_class_member() {
        let report = compat::check_protocol(&mut Dragon::new());
        assert!(report.is_class_member(), "{report}");
    }

    #[test]
    fn snooped_updates_keep_copies_alive() {
        assert_eq!(bus(Shareable, BusEvent::UncachedBroadcastWrite), "S,CH,SL");
    }
}
