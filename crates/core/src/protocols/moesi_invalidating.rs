//! An invalidation-flavoured member of the MOESI class.

use crate::action::ResultState;
use crate::event::{BusEvent, LocalEvent};
use crate::policy::{PolicyTable, TablePolicy};
use crate::protocol::CacheKind;
use crate::state::LineState;
use crate::table;

/// A copy-back MOESI cache that invalidates rather than updates.
///
/// Where [`MoesiPreferred`](crate::protocols::MoesiPreferred) broadcasts
/// writes to shared lines (`CH:O/M,CA,IM,BC,W`), this protocol takes the
/// listed alternative `M,CA,IM` — an address-only invalidate — and, when
/// snooping another master's broadcast write, takes the `I` alternative
/// instead of updating. Both choices are cells of Tables 1–2, so this protocol
/// is a class member and can share a bus with updating caches; §5.2's
/// discussion of invalidate-versus-broadcast is exactly the comparison between
/// this protocol and the preferred one.
#[derive(Debug)]
pub struct MoesiInvalidating {
    inner: TablePolicy,
}

/// The invalidating table: the preferred table with the `M,CA,IM` write
/// alternative on non-exclusive states and the trailing `I` alternative on
/// snooped broadcasts. (An O holder snooping an uncached broadcast has no `I`
/// alternative — it must stay the owner — so that cell keeps the preferred
/// entry.)
fn invalidating_table() -> PolicyTable {
    let mut t = PolicyTable::preferred("MOESI-inv", CacheKind::CopyBack);
    for state in LineState::ALL {
        if state.is_non_exclusive() {
            let permitted = table::permitted_local(state, LocalEvent::Write, CacheKind::CopyBack);
            t.set_local(state, LocalEvent::Write, permitted[1]);
        }
        for event in BusEvent::ALL {
            if !(event.is_broadcast() && state.is_valid()) {
                continue;
            }
            let permitted = table::permitted_bus(state, event);
            if let Some(inv) = permitted
                .iter()
                .rev()
                .find(|r| r.result == ResultState::Fixed(LineState::Invalid) && !r.di)
            {
                t.set_bus(state, event, *inv);
            }
        }
    }
    t
}

impl MoesiInvalidating {
    /// Creates the protocol.
    #[must_use]
    pub fn new() -> Self {
        MoesiInvalidating {
            inner: TablePolicy::new(invalidating_table()),
        }
    }
}

impl Default for MoesiInvalidating {
    fn default() -> Self {
        MoesiInvalidating::new()
    }
}

delegate_to_table!(MoesiInvalidating);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::action::{BusOp, BusReaction, LocalAction};
    use crate::protocol::{LocalCtx, Protocol, SnoopCtx};
    use crate::signals::MasterSignals;
    use LineState::{Invalid, Modified, Owned, Shareable};

    fn local(state: LineState, event: LocalEvent) -> LocalAction {
        MoesiInvalidating::new().on_local(state, event, &LocalCtx::default())
    }

    fn bus(state: LineState, event: BusEvent) -> BusReaction {
        MoesiInvalidating::new().on_bus(state, event, &SnoopCtx::default())
    }

    #[test]
    fn shared_writes_invalidate_instead_of_broadcasting() {
        for s in [Owned, Shareable] {
            let a = local(s, LocalEvent::Write);
            assert_eq!(a.bus_op, BusOp::AddressOnly);
            assert_eq!(a.signals, MasterSignals::CA_IM);
            assert_eq!(a.result, ResultState::Fixed(Modified));
        }
    }

    #[test]
    fn snooped_broadcast_writes_are_discarded_not_updated() {
        let r = bus(Shareable, BusEvent::CacheBroadcastWrite);
        assert_eq!(r.result, ResultState::Fixed(Invalid));
        assert!(!r.sl && !r.ch);
        let r = bus(Shareable, BusEvent::UncachedBroadcastWrite);
        assert_eq!(r.result, ResultState::Fixed(Invalid));
    }

    #[test]
    fn owners_still_relinquish_per_the_table() {
        let r = bus(Owned, BusEvent::CacheBroadcastWrite);
        assert_eq!(r.result, ResultState::Fixed(Invalid));
    }

    #[test]
    fn everything_else_matches_the_preferred_protocol() {
        use crate::protocols::MoesiPreferred;
        let mut pref = MoesiPreferred::new();
        let mut inv = MoesiInvalidating::new();
        let ctx = SnoopCtx::default();
        for s in LineState::ALL {
            for ev in [
                BusEvent::CacheRead,
                BusEvent::CacheReadInvalidate,
                BusEvent::UncachedRead,
                BusEvent::UncachedWrite,
            ] {
                if table::permitted_bus(s, ev).is_empty() {
                    continue;
                }
                assert_eq!(
                    pref.on_bus(s, ev, &ctx),
                    inv.on_bus(s, ev, &ctx),
                    "({s}, {ev})"
                );
            }
        }
        let lctx = LocalCtx::default();
        for s in LineState::ALL {
            for ev in [LocalEvent::Read, LocalEvent::Pass, LocalEvent::Flush] {
                if table::permitted_local(s, ev, CacheKind::CopyBack).is_empty() {
                    continue;
                }
                assert_eq!(
                    pref.on_local(s, ev, &lctx),
                    inv.on_local(s, ev, &lctx),
                    "({s}, {ev})"
                );
            }
        }
    }

    #[test]
    fn the_table_is_exact_and_in_class() {
        let p = MoesiInvalidating::new();
        assert!(p.table_is_exact());
        assert!(p.policy_table().unwrap().is_class_member());
    }
}
