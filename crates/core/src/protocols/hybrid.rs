//! A hybrid update/invalidate policy — new with the table-driven engine.

use crate::action::{BusReaction, LocalAction, ResultState};
use crate::event::{BusEvent, LocalEvent};
use crate::policy::{DynamicPolicy, PolicyTable, TablePolicy};
use crate::protocol::{CacheKind, LocalCtx, SnoopCtx};
use crate::state::LineState;

use std::collections::HashMap;

/// A per-line hybrid between the update (MOESI preferred) and invalidate
/// stances — the "competitive snooping" idea expressed entirely inside the
/// §3 compatible class.
///
/// The preferred table updates a local copy on every snooped broadcast write,
/// which is ideal for actively shared lines but wastes snoop bandwidth on
/// lines this cache has stopped referencing: each foreign write drags the
/// stale copy along forever. The pure invalidating selection
/// (`MoesiInvalidating`) drops the copy on the *first* foreign write, which
/// penalises genuine producer/consumer sharing.
///
/// This policy switches per line: it keeps a small counter of *consecutive*
/// snooped broadcast writes to each valid, unowned line. Any local reference
/// to the line resets its counter (the processor is still using it — keep
/// updating). Once `threshold` foreign writes go by without a local
/// reference, the line is judged dead here and the next reaction takes the
/// permitted invalidate alternative instead of the update. Owners (M/O) never
/// self-invalidate — they hold the only current copy of the data.
///
/// Both stances are columns of Table 2, so every reaction is a permitted
/// cell and the policy is a member of the compatible class: it can share a
/// bus with any other class member (§3.4). The base table is exactly the
/// preferred table; only the counter hook is stateful.
#[derive(Debug)]
pub struct HybridUpdateInvalidate {
    inner: TablePolicy,
}

/// The counter hook: consecutive foreign broadcast writes per line address.
#[derive(Debug)]
struct SharingCounters {
    threshold: u32,
    writes_since_use: HashMap<u64, u32>,
}

impl DynamicPolicy for SharingCounters {
    fn pick_local(
        &mut self,
        _state: LineState,
        _event: LocalEvent,
        ctx: &LocalCtx,
        _permitted: &[LocalAction],
    ) -> Option<LocalAction> {
        // A local reference proves the line is live here: back to updating.
        if let Some(addr) = ctx.line_addr {
            self.writes_since_use.remove(&addr);
        }
        None
    }

    fn pick_bus(
        &mut self,
        state: LineState,
        event: BusEvent,
        ctx: &SnoopCtx,
        permitted: &[BusReaction],
    ) -> Option<BusReaction> {
        // Only foreign broadcast writes to valid, unowned copies count; an
        // owner must keep its line (it may hold the only current data).
        if !(event.is_broadcast() && state.is_valid() && !state.is_owned()) {
            return None;
        }
        let addr = ctx.line_addr?;
        let count = self.writes_since_use.entry(addr).or_insert(0);
        *count += 1;
        if *count < self.threshold {
            return None;
        }
        self.writes_since_use.remove(&addr);
        permitted
            .iter()
            .rev()
            .find(|r| r.result == ResultState::Fixed(LineState::Invalid) && !r.di)
            .copied()
    }
}

impl HybridUpdateInvalidate {
    /// Creates the policy with the default threshold of 2: tolerate one
    /// foreign write, invalidate on the second consecutive one.
    #[must_use]
    pub fn new() -> Self {
        HybridUpdateInvalidate::with_threshold(2)
    }

    /// Creates the policy invalidating after `threshold` consecutive foreign
    /// broadcast writes with no local reference in between (minimum 1, which
    /// degenerates to the pure invalidating selection for unowned lines).
    #[must_use]
    pub fn with_threshold(threshold: u32) -> Self {
        HybridUpdateInvalidate {
            inner: TablePolicy::with_dynamic(
                PolicyTable::preferred("MOESI-hybrid", CacheKind::CopyBack),
                Box::new(SharingCounters {
                    threshold: threshold.max(1),
                    writes_since_use: HashMap::new(),
                }),
            ),
        }
    }
}

impl Default for HybridUpdateInvalidate {
    fn default() -> Self {
        HybridUpdateInvalidate::new()
    }
}

delegate_to_table!(HybridUpdateInvalidate);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compat;
    use crate::protocol::Protocol;
    use LineState::{Invalid, Modified, Owned, Shareable};

    fn snoop(addr: u64) -> SnoopCtx {
        SnoopCtx {
            line_addr: Some(addr),
            ..SnoopCtx::default()
        }
    }

    fn touch(addr: u64) -> LocalCtx {
        LocalCtx {
            line_addr: Some(addr),
            ..LocalCtx::default()
        }
    }

    #[test]
    fn first_foreign_write_updates_second_invalidates() {
        let mut p = HybridUpdateInvalidate::new();
        let first = p.on_bus(Shareable, BusEvent::CacheBroadcastWrite, &snoop(0x40));
        assert_eq!(first.to_string(), "S,CH,SL");
        let second = p.on_bus(Shareable, BusEvent::CacheBroadcastWrite, &snoop(0x40));
        assert_eq!(second.result, ResultState::Fixed(Invalid));
        assert!(!second.di);
    }

    #[test]
    fn a_local_reference_resets_the_counter() {
        let mut p = HybridUpdateInvalidate::new();
        p.on_bus(Shareable, BusEvent::CacheBroadcastWrite, &snoop(0x40));
        // The processor touches the line: it is live here again.
        p.on_local(Shareable, LocalEvent::Read, &touch(0x40));
        let next = p.on_bus(Shareable, BusEvent::CacheBroadcastWrite, &snoop(0x40));
        assert_eq!(next.to_string(), "S,CH,SL");
    }

    #[test]
    fn lines_are_tracked_independently() {
        let mut p = HybridUpdateInvalidate::new();
        p.on_bus(Shareable, BusEvent::CacheBroadcastWrite, &snoop(0x40));
        let other = p.on_bus(Shareable, BusEvent::CacheBroadcastWrite, &snoop(0x80));
        assert_eq!(other.to_string(), "S,CH,SL");
        let second = p.on_bus(Shareable, BusEvent::CacheBroadcastWrite, &snoop(0x40));
        assert_eq!(second.result, ResultState::Fixed(Invalid));
    }

    #[test]
    fn owners_never_self_invalidate() {
        // The defined owner/broadcast cells of Table 2; (M, col 8) is `—`.
        let cells = [
            (Modified, BusEvent::UncachedBroadcastWrite),
            (Owned, BusEvent::CacheBroadcastWrite),
            (Owned, BusEvent::UncachedBroadcastWrite),
        ];
        let mut p = HybridUpdateInvalidate::new();
        for _ in 0..10 {
            for (s, ev) in cells {
                let r = p.on_bus(s, ev, &snoop(0x40));
                for possible in r.result.possible() {
                    assert!(possible.is_valid(), "({s}, {ev}): {r}");
                }
            }
        }
    }

    #[test]
    fn threshold_one_is_the_pure_invalidating_stance() {
        let mut p = HybridUpdateInvalidate::with_threshold(1);
        let r = p.on_bus(Shareable, BusEvent::UncachedBroadcastWrite, &snoop(0x40));
        assert_eq!(r.result, ResultState::Fixed(Invalid));
    }

    #[test]
    fn without_line_identity_it_behaves_as_preferred() {
        // Abstract queries (no line address) can never accumulate a counter.
        let mut p = HybridUpdateInvalidate::new();
        for _ in 0..10 {
            let r = p.on_bus(
                Shareable,
                BusEvent::CacheBroadcastWrite,
                &SnoopCtx::default(),
            );
            assert_eq!(r.to_string(), "S,CH,SL");
        }
    }

    #[test]
    fn hybrid_is_a_class_member() {
        let report = compat::check_protocol(&mut HybridUpdateInvalidate::new());
        assert!(report.is_class_member(), "{report}");
        let p = HybridUpdateInvalidate::new();
        assert!(!p.table_is_exact());
        assert!(p.policy_table().unwrap().is_class_member());
    }

    #[test]
    fn non_broadcast_modifications_still_invalidate_via_the_table() {
        // CacheReadInvalidate is not a broadcast: the preferred cell already
        // kills the copy; the counter plays no part.
        let mut p = HybridUpdateInvalidate::new();
        let r = p.on_bus(Shareable, BusEvent::CacheReadInvalidate, &snoop(0x40));
        assert_eq!(r.result, ResultState::Fixed(Invalid));
    }
}
