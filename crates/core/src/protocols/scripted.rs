//! A protocol that replays a pre-chosen script of actions.
//!
//! The exhaustive explorer (`crates/verify`) records, for every step of a
//! counterexample, exactly which permitted Table 1/2 entry each module chose.
//! To re-execute such a schedule on the *real* simulator, each module is
//! driven by a [`Scripted`] policy: `on_local`/`on_bus` pop the next scripted
//! choice instead of consulting a table, falling back to the preferred entry
//! if the script runs dry (and recording the underflow, so a replayer can
//! detect a schedule/machine mismatch).

use crate::action::{BusReaction, LocalAction};
use crate::event::{BusEvent, LocalEvent};
use crate::policy::{DynamicPolicy, PolicyTable, TablePolicy};
use crate::protocol::{CacheKind, LocalCtx, SnoopCtx};
use crate::state::LineState;

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// The queues a [`Scripted`] protocol consumes, shared with its
/// [`ScriptHandle`] so a replayer can refill them between steps.
#[derive(Debug, Default)]
struct Queues {
    local: VecDeque<LocalAction>,
    bus: VecDeque<BusReaction>,
    underflows: usize,
}

/// A writer-side handle onto a [`Scripted`] protocol's queues.
///
/// The protocol itself is boxed away inside a `CacheController`; the handle
/// stays with the replayer and lets it push the next step's choices.
#[derive(Clone, Debug)]
pub struct ScriptHandle {
    queues: Arc<Mutex<Queues>>,
}

impl ScriptHandle {
    /// Queues a local-event choice (consumed by the next `on_local`).
    pub fn push_local(&self, action: LocalAction) {
        self.queues.lock().unwrap().local.push_back(action);
    }

    /// Queues a snoop choice (consumed by the next `on_bus`).
    pub fn push_bus(&self, reaction: BusReaction) {
        self.queues.lock().unwrap().bus.push_back(reaction);
    }

    /// Drops any unconsumed choices (call between steps for strict replay).
    pub fn clear(&self) {
        let mut q = self.queues.lock().unwrap();
        q.local.clear();
        q.bus.clear();
    }

    /// Unconsumed (local, bus) choices still queued.
    #[must_use]
    pub fn pending(&self) -> (usize, usize) {
        let q = self.queues.lock().unwrap();
        (q.local.len(), q.bus.len())
    }

    /// How many times the protocol was consulted with an empty queue and had
    /// to fall back to the preferred table entry.
    #[must_use]
    pub fn underflows(&self) -> usize {
        self.queues.lock().unwrap().underflows
    }
}

/// The queue-popping selector: scripted choices first, preferred-table cells
/// (the static base) on underflow.
#[derive(Debug)]
struct ScriptHook {
    kind: CacheKind,
    queues: Arc<Mutex<Queues>>,
}

impl DynamicPolicy for ScriptHook {
    fn pick_local(
        &mut self,
        _state: LineState,
        _event: LocalEvent,
        _ctx: &LocalCtx,
        _permitted: &[LocalAction],
    ) -> Option<LocalAction> {
        let mut q = self.queues.lock().unwrap();
        if let Some(action) = q.local.pop_front() {
            return Some(action);
        }
        q.underflows += 1;
        None
    }

    fn pick_bus(
        &mut self,
        _state: LineState,
        _event: BusEvent,
        _ctx: &SnoopCtx,
        _permitted: &[BusReaction],
    ) -> Option<BusReaction> {
        if self.kind == CacheKind::NonCaching {
            return Some(BusReaction::IGNORE);
        }
        let mut q = self.queues.lock().unwrap();
        if let Some(reaction) = q.bus.pop_front() {
            return Some(reaction);
        }
        q.underflows += 1;
        None
    }
}

/// A protocol whose choices are scripted externally via a [`ScriptHandle`].
///
/// # Examples
///
/// ```
/// use moesi::protocols::Scripted;
/// use moesi::{table, CacheKind, LineState, LocalCtx, LocalEvent, Protocol};
///
/// let (mut p, handle) = Scripted::new(CacheKind::CopyBack);
/// let alt = table::permitted_local(
///     LineState::Invalid, LocalEvent::Read, CacheKind::CopyBack)[1];
/// handle.push_local(alt);
/// let chosen = p.on_local(LineState::Invalid, LocalEvent::Read, &LocalCtx::default());
/// assert_eq!(chosen, alt);
/// assert_eq!(handle.underflows(), 0);
/// ```
#[derive(Debug)]
pub struct Scripted {
    inner: TablePolicy,
}

impl Scripted {
    /// Creates a scripted protocol of the given kind and its feeding handle.
    ///
    /// The base table is the preferred table with BS allowed — scripts may
    /// contain BS push reactions when replaying adapted-protocol schedules.
    #[must_use]
    pub fn new(kind: CacheKind) -> (Self, ScriptHandle) {
        let queues = Arc::new(Mutex::new(Queues::default()));
        let handle = ScriptHandle {
            queues: Arc::clone(&queues),
        };
        let hook = ScriptHook { kind, queues };
        (
            Scripted {
                inner: TablePolicy::with_dynamic(
                    PolicyTable::preferred("scripted", kind).with_bs(),
                    Box::new(hook),
                ),
            },
            handle,
        )
    }
}

delegate_to_table!(Scripted);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Protocol;
    use crate::table;

    #[test]
    fn pops_in_fifo_order_then_falls_back() {
        let (mut p, h) = Scripted::new(CacheKind::CopyBack);
        let permitted =
            table::permitted_local(LineState::Invalid, LocalEvent::Read, CacheKind::CopyBack);
        h.push_local(permitted[1]);
        h.push_local(permitted[0]);
        let ctx = LocalCtx::default();
        assert_eq!(
            p.on_local(LineState::Invalid, LocalEvent::Read, &ctx),
            permitted[1]
        );
        assert_eq!(
            p.on_local(LineState::Invalid, LocalEvent::Read, &ctx),
            permitted[0]
        );
        // Queue empty: preferred entry, underflow recorded.
        assert_eq!(
            p.on_local(LineState::Invalid, LocalEvent::Read, &ctx),
            permitted[0]
        );
        assert_eq!(h.underflows(), 1);
    }

    #[test]
    fn bus_queue_is_independent_of_local_queue() {
        let (mut p, h) = Scripted::new(CacheKind::CopyBack);
        let reactions = table::permitted_bus(LineState::Shareable, BusEvent::CacheRead);
        h.push_bus(reactions[reactions.len() - 1]);
        let got = p.on_bus(
            LineState::Shareable,
            BusEvent::CacheRead,
            &SnoopCtx::default(),
        );
        assert_eq!(got, reactions[reactions.len() - 1]);
        assert_eq!(h.pending(), (0, 0));
    }

    #[test]
    fn clear_empties_both_queues() {
        let (_p, h) = Scripted::new(CacheKind::CopyBack);
        h.push_local(LocalAction::silent(LineState::Modified));
        h.push_bus(BusReaction::IGNORE);
        assert_eq!(h.pending(), (1, 1));
        h.clear();
        assert_eq!(h.pending(), (0, 0));
    }

    #[test]
    fn requires_bs_for_adapted_replays() {
        let (p, _h) = Scripted::new(CacheKind::CopyBack);
        assert!(p.requires_bs());
        assert!(!p.table_is_exact());
    }
}
