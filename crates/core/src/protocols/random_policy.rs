//! The §3.4 "extreme case": random selection from the permitted sets.

use crate::action::{BusReaction, LocalAction};
use crate::event::{BusEvent, LocalEvent};
use crate::policy::{DynamicPolicy, PolicyTable, TablePolicy};
use crate::protocol::{CacheKind, LocalCtx, SnoopCtx};
use crate::state::LineState;

use crate::rng::SmallRng;

/// A protocol that picks a permitted action uniformly at random every time.
///
/// §3.4: "As an extreme case, it would introduce no errors if a board were to
/// select an action at each instant from the available set using a random
/// number generator or a selection algorithm such as round robin." This type
/// exists to *test* that claim: a system mixing `RandomPolicy` caches with
/// every other class member must still satisfy the consistency oracle.
///
/// Implemented as a [`DynamicPolicy`] hook over the preferred table: the hook
/// answers every cell with a non-empty permitted set (so the static cells are
/// never consulted), and the table supplies only the name, kind, and the
/// `IllegalCell` error for `—` cells.
///
/// # Examples
///
/// ```
/// use moesi::protocols::RandomPolicy;
/// use moesi::{CacheKind, LineState, LocalCtx, LocalEvent, Protocol, table};
///
/// let mut p = RandomPolicy::new(CacheKind::CopyBack, 42);
/// let a = p.on_local(LineState::Shareable, LocalEvent::Write, &LocalCtx::default());
/// let permitted = table::permitted_local(LineState::Shareable, LocalEvent::Write, CacheKind::CopyBack);
/// assert!(permitted.contains(&a));
/// ```
#[derive(Debug)]
pub struct RandomPolicy {
    inner: TablePolicy,
}

/// The uniform selector. Holds the RNG and the client kind (the kind decides
/// whether bus events are snooped at all).
#[derive(Debug)]
struct UniformHook {
    kind: CacheKind,
    rng: SmallRng,
}

impl DynamicPolicy for UniformHook {
    fn pick_local(
        &mut self,
        _state: LineState,
        _event: LocalEvent,
        _ctx: &LocalCtx,
        permitted: &[LocalAction],
    ) -> Option<LocalAction> {
        if permitted.is_empty() {
            return None;
        }
        Some(permitted[self.rng.gen_range(0..permitted.len())])
    }

    fn pick_bus(
        &mut self,
        _state: LineState,
        _event: BusEvent,
        _ctx: &SnoopCtx,
        permitted: &[BusReaction],
    ) -> Option<BusReaction> {
        if self.kind == CacheKind::NonCaching {
            return Some(BusReaction::IGNORE);
        }
        if permitted.is_empty() {
            return None;
        }
        Some(permitted[self.rng.gen_range(0..permitted.len())])
    }
}

impl RandomPolicy {
    /// Creates a random policy for the given client kind, seeded for
    /// reproducibility.
    #[must_use]
    pub fn new(kind: CacheKind, seed: u64) -> Self {
        RandomPolicy {
            inner: TablePolicy::with_dynamic(
                PolicyTable::preferred("random", kind),
                Box::new(UniformHook {
                    kind,
                    rng: SmallRng::seed_from_u64(seed),
                }),
            ),
        }
    }
}

delegate_to_table!(RandomPolicy);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::Protocol;
    use crate::table;

    #[test]
    fn choices_are_always_permitted() {
        let mut p = RandomPolicy::new(CacheKind::CopyBack, 7);
        for _ in 0..200 {
            for state in LineState::ALL {
                for event in LocalEvent::ALL {
                    let permitted = table::permitted_local(state, event, CacheKind::CopyBack);
                    if permitted.is_empty() {
                        continue;
                    }
                    let a = p.on_local(state, event, &LocalCtx::default());
                    assert!(permitted.contains(&a), "({state}, {event}): {a}");
                }
                for event in BusEvent::ALL {
                    let permitted = table::permitted_bus(state, event);
                    if permitted.is_empty() {
                        continue;
                    }
                    let r = p.on_bus(state, event, &SnoopCtx::default());
                    assert!(permitted.contains(&r), "({state}, {event}): {r}");
                }
            }
        }
    }

    #[test]
    fn same_seed_same_sequence() {
        let mut a = RandomPolicy::new(CacheKind::CopyBack, 99);
        let mut b = RandomPolicy::new(CacheKind::CopyBack, 99);
        for _ in 0..50 {
            assert_eq!(
                a.on_local(
                    LineState::Shareable,
                    LocalEvent::Write,
                    &LocalCtx::default()
                ),
                b.on_local(
                    LineState::Shareable,
                    LocalEvent::Write,
                    &LocalCtx::default()
                )
            );
        }
    }

    #[test]
    fn eventually_explores_every_alternative() {
        let mut p = RandomPolicy::new(CacheKind::CopyBack, 3);
        let permitted =
            table::permitted_local(LineState::Shareable, LocalEvent::Write, CacheKind::CopyBack);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 {
            seen.insert(p.on_local(
                LineState::Shareable,
                LocalEvent::Write,
                &LocalCtx::default(),
            ));
        }
        assert_eq!(seen.len(), permitted.len());
    }

    #[test]
    fn non_caching_random_never_reacts() {
        let mut p = RandomPolicy::new(CacheKind::NonCaching, 5);
        for ev in BusEvent::ALL {
            assert_eq!(
                p.on_bus(LineState::Invalid, ev, &SnoopCtx::default()),
                BusReaction::IGNORE
            );
        }
    }

    #[test]
    fn the_base_table_is_preferred_but_not_exact() {
        let p = RandomPolicy::new(CacheKind::CopyBack, 1);
        assert!(!p.table_is_exact());
        assert!(p.policy_table().unwrap().is_class_member());
    }
}
