//! Tables 1 and 2 of the paper: the complete class of compatible protocols.
//!
//! For every `(state, event)` cell these functions return the **set of
//! permitted actions**, preferred entry first (the paper: "Where a choice is
//! shown, the first entry is preferred"). The sets include the alternatives
//! the table notes add:
//!
//! * note 9 — any `CH:O/M` result may be replaced by `O`, and `M` may weaken
//!   to `O` at any time;
//! * note 10 — any `CH:S/E` result may be replaced by `S`, and `E` may weaken
//!   to `S` at any time;
//! * note 11 — any transition to (or remaining in) `E` or `S` on a *bus*
//!   event may be changed to `I` (without asserting CH);
//! * note 12 — the state `E` may be replaced by `M` (at the cost of a later
//!   write-back).
//!
//! Two don't-care conventions from the tables are resolved here once and for
//! all: `BC?` on line pushes is resolved to *not* asserting BC (broadcast
//! transfers cost an extra 25 ns on the Futurebus, §2.2, and no third party
//! needs the pushed data), and `CH?` cells appear in the permitted set both
//! with and without CH, un-asserted first.

use crate::action::{BusOp, BusReaction, LocalAction, ResultState};
use crate::event::{BusEvent, LocalEvent};
use crate::protocol::CacheKind;
use crate::signals::MasterSignals;
use crate::state::LineState;

use BusEvent as BE;
use LineState::{Exclusive as E, Invalid as I, Modified as M, Owned as O, Shareable as S};
use LocalEvent as LE;

/// The permitted local actions for `(state, event)` for a client of the given
/// kind — Table 1, preferred entry first.
///
/// An empty vector marks a `—` cell: the combination is not legal (an error
/// condition), e.g. `Pass` from `Invalid`, or any valid-state event for a
/// non-caching processor.
///
/// # Examples
///
/// ```
/// use moesi::{table, CacheKind, LineState, LocalEvent};
///
/// let actions = table::permitted_local(LineState::Owned, LocalEvent::Write, CacheKind::CopyBack);
/// // Preferred: broadcast the change. Alternative: invalidate other copies.
/// assert_eq!(actions[0].to_string(), "CH:O/M,CA,IM,BC,W");
/// assert!(actions.iter().any(|a| a.to_string() == "M,CA,IM,A"));
/// ```
#[must_use]
pub fn permitted_local(state: LineState, event: LocalEvent, kind: CacheKind) -> Vec<LocalAction> {
    match kind {
        CacheKind::CopyBack => permitted_local_copy_back(state, event),
        CacheKind::WriteThrough => permitted_local_write_through(state, event),
        CacheKind::NonCaching => permitted_local_non_caching(state, event),
    }
}

/// The preferred local action (the first permitted entry), or `None` for `—`
/// cells.
#[must_use]
pub fn preferred_local(
    state: LineState,
    event: LocalEvent,
    kind: CacheKind,
) -> Option<LocalAction> {
    permitted_local(state, event, kind).into_iter().next()
}

fn bcast_write(result: ResultState) -> LocalAction {
    LocalAction::new(result, MasterSignals::CA_IM_BC, BusOp::Write)
}

fn invalidate(result: LineState) -> LocalAction {
    LocalAction::new(result, MasterSignals::CA_IM, BusOp::AddressOnly)
}

fn push(result: ResultState, retain: bool) -> LocalAction {
    let signals = if retain {
        MasterSignals::CA
    } else {
        MasterSignals::NONE
    };
    LocalAction::new(result, signals, BusOp::Write)
}

fn permitted_local_copy_back(state: LineState, event: LocalEvent) -> Vec<LocalAction> {
    match (state, event) {
        // Row M: the sole, dirty copy — reads and writes are free.
        (M, LE::Read) | (M, LE::Write) => vec![LocalAction::silent(M)],
        // `E,CA,BC?,W` — push and keep the copy, now clean and exclusive.
        // Note 10 allows keeping it as S, note 12 as M (pointless but legal).
        (M, LE::Pass) => vec![
            push(E.into(), true),
            push(S.into(), true),
            push(M.into(), true),
        ],
        // `I,BC?,W` — push and discard.
        (M, LE::Flush) | (O, LE::Flush) => vec![push(I.into(), false)],

        (O, LE::Read) => vec![LocalAction::silent(O)],
        // `CH:O/M,CA,IM,BC,W` (broadcast the change) or `M,CA,IM` (invalidate
        // other copies, address-only). Note 9 admits the plain-O broadcast.
        (O, LE::Write) => vec![
            bcast_write(ResultState::CH_O_M),
            invalidate(M),
            bcast_write(O.into()),
        ],
        // `CH:S/E,CA,BC?,W` — push, keep the copy, drop ownership.
        (O, LE::Pass) => vec![push(ResultState::CH_S_E, true), push(S.into(), true)],

        (E, LE::Read) => vec![LocalAction::silent(E)],
        // The silent upgrade that justifies the E state; note 9 allows O with
        // an (inefficient) broadcast instead, but the table lists only M.
        (E, LE::Write) => vec![LocalAction::silent(M)],
        (E, LE::Pass) => vec![],
        (E, LE::Flush) | (S, LE::Flush) => vec![LocalAction::silent(I)],

        (S, LE::Read) => vec![LocalAction::silent(S)],
        (S, LE::Write) => vec![
            bcast_write(ResultState::CH_O_M),
            invalidate(M),
            bcast_write(O.into()),
        ],
        (S, LE::Pass) => vec![],

        // `CH:S/E,CA,R`; note 10 admits plain S, note 12 admits M (a protocol
        // without an E state that still claims ownership would be unsafe —
        // memory stays the owner — so the M substitution applies only to the
        // E half and yields CH:S/M, which no published protocol uses; we list
        // the S weakening only).
        (I, LE::Read) => vec![
            LocalAction::new(ResultState::CH_S_E, MasterSignals::CA, BusOp::Read),
            LocalAction::new(S, MasterSignals::CA, BusOp::Read),
        ],
        // `M,CA,IM,R` (read and invalidate in one transaction) or two
        // transactions.
        (I, LE::Write) => vec![
            LocalAction::new(M, MasterSignals::CA_IM, BusOp::Read),
            LocalAction::read_then_write(),
        ],
        (I, LE::Pass) | (I, LE::Flush) => vec![],
    }
}

fn permitted_local_write_through(state: LineState, event: LocalEvent) -> Vec<LocalAction> {
    match (state, event) {
        // V ≡ S. Reads hit silently.
        (S, LE::Read) => vec![LocalAction::silent(S)],
        // `S,IM,BC,W` or `S,IM,W`: write through, with or without broadcast;
        // no CA — the cache is not claiming to retain ownership semantics,
        // only its V copy.
        (S, LE::Write) => vec![
            LocalAction::new(S, MasterSignals::IM_BC, BusOp::Write),
            LocalAction::new(S, MasterSignals::IM, BusOp::Write),
        ],
        // Replacement of a clean V copy is silent.
        (S, LE::Flush) => vec![LocalAction::silent(I)],
        // `S,CA,R`: a normal read asserting CA (§3.3 item 7).
        (I, LE::Read) => vec![LocalAction::new(S, MasterSignals::CA, BusOp::Read)],
        // `I,IM,BC,W` / `I,IM,W` (no allocate) or read-then-write (allocate).
        (I, LE::Write) => vec![
            LocalAction::new(I, MasterSignals::IM_BC, BusOp::Write),
            LocalAction::new(I, MasterSignals::IM, BusOp::Write),
            LocalAction::read_then_write(),
        ],
        _ => vec![],
    }
}

fn permitted_local_non_caching(state: LineState, event: LocalEvent) -> Vec<LocalAction> {
    match (state, event) {
        // `I,R` — read without asserting CA.
        (I, LE::Read) => vec![LocalAction::new(I, MasterSignals::NONE, BusOp::Read)],
        // `I,IM,BC,W` or `I,IM,W`.
        (I, LE::Write) => vec![
            LocalAction::new(I, MasterSignals::IM_BC, BusOp::Write),
            LocalAction::new(I, MasterSignals::IM, BusOp::Write),
        ],
        _ => vec![],
    }
}

/// The permitted reactions to a snooped bus event for a line in `state` —
/// Table 2, preferred entry first.
///
/// An empty vector marks an error-condition (`—`) cell: observing a cache
/// master's broadcast write while holding the line in an exclusive state.
///
/// # Examples
///
/// ```
/// use moesi::{table, BusEvent, LineState};
///
/// // A Modified holder must intervene on a read miss and downgrade to Owned.
/// let r = table::permitted_bus(LineState::Modified, BusEvent::CacheRead);
/// assert_eq!(r.len(), 1);
/// assert_eq!(r[0].to_string(), "O,CH,DI");
/// ```
#[must_use]
pub fn permitted_bus(state: LineState, event: BusEvent) -> Vec<BusReaction> {
    match (state, event) {
        // ---- Row M -------------------------------------------------------
        // The requester will retain a copy: exclusiveness is lost, ownership
        // must be kept (memory is stale), so `O,CH,DI` is the only option.
        (M, BE::CacheRead) => vec![BusReaction::hit(O).with_di()],
        // Write miss elsewhere: supply the data, then invalidate.
        (M, BE::CacheReadInvalidate) => vec![BusReaction::quiet(I).with_di()],
        // Uncached read: intervene, stay M (CH?); note 9 allows O.
        (M, BE::UncachedRead) => vec![
            BusReaction::quiet(M).with_di(),
            BusReaction::hit(M).with_di(),
            BusReaction::quiet(O).with_di(),
        ],
        // `—`: a broadcast write by another cache master is impossible while
        // this cache holds the only copy.
        (M, BE::CacheBroadcastWrite) => vec![],
        // Capture the uncached write (memory is preempted), stay M (CH?).
        (M, BE::UncachedWrite) => vec![
            BusReaction::quiet(M).with_di(),
            BusReaction::hit(M).with_di(),
            BusReaction::quiet(O).with_di(),
        ],
        // Connect to the broadcast and update the local copy, stay M (CH?).
        // The paper marks this cell "must update itself", so no I variant.
        (M, BE::UncachedBroadcastWrite) => vec![
            BusReaction::quiet(M).with_sl(),
            BusReaction::hit(M).with_sl(),
            BusReaction::quiet(O).with_sl(),
        ],

        // ---- Row O -------------------------------------------------------
        (O, BE::CacheRead) => vec![BusReaction::hit(O).with_di()],
        (O, BE::CacheReadInvalidate) => vec![BusReaction::quiet(I).with_di()],
        // `CH:O/M,DI`: the owner listens — if no other cache claims a copy it
        // regains exclusivity. Note 9 allows staying O.
        (O, BE::UncachedRead) => vec![
            BusReaction::quiet(ResultState::CH_O_M).with_di(),
            BusReaction::quiet(O).with_di(),
        ],
        // Another cache broadcasts a write: relinquish ownership and either
        // update (`S,SL,CH`) or invalidate.
        (O, BE::CacheBroadcastWrite) => vec![BusReaction::hit(S).with_sl(), BusReaction::IGNORE],
        // Capture the uncached write, stay owner (CH?).
        (O, BE::UncachedWrite) => vec![
            BusReaction::quiet(O).with_di(),
            BusReaction::hit(O).with_di(),
        ],
        // Update from the broadcast, stay owner.
        (O, BE::UncachedBroadcastWrite) => vec![BusReaction::hit(O).with_sl()],

        // ---- Row E -------------------------------------------------------
        // Exclusiveness is lost; note 11 allows invalidating instead.
        (E, BE::CacheRead) => vec![BusReaction::hit(S), BusReaction::IGNORE],
        (E, BE::CacheReadInvalidate) => vec![BusReaction::IGNORE],
        // A non-caching master retains nothing, so E survives (CH?);
        // note 10 allows S, note 11 allows I.
        (E, BE::UncachedRead) => vec![
            BusReaction::quiet(E),
            BusReaction::hit(E),
            BusReaction::hit(S),
            BusReaction::IGNORE,
        ],
        // `—`: impossible while this is the only cached copy.
        (E, BE::CacheBroadcastWrite) => vec![],
        // Not capable of capturing the write from E: must invalidate.
        (E, BE::UncachedWrite) => vec![BusReaction::IGNORE],
        // `E,SL,CH? or I`: update (exclusiveness survives — the writer
        // retains nothing) or invalidate; note 10 allows S.
        (E, BE::UncachedBroadcastWrite) => vec![
            BusReaction::quiet(E).with_sl(),
            BusReaction::hit(E).with_sl(),
            BusReaction::hit(S).with_sl(),
            BusReaction::IGNORE,
        ],

        // ---- Row S -------------------------------------------------------
        (S, BE::CacheRead) => vec![BusReaction::hit(S), BusReaction::IGNORE],
        (S, BE::CacheReadInvalidate) => vec![BusReaction::IGNORE],
        (S, BE::UncachedRead) => vec![BusReaction::hit(S), BusReaction::IGNORE],
        (S, BE::CacheBroadcastWrite) => vec![BusReaction::hit(S).with_sl(), BusReaction::IGNORE],
        (S, BE::UncachedWrite) => vec![BusReaction::IGNORE],
        (S, BE::UncachedBroadcastWrite) => vec![BusReaction::hit(S).with_sl(), BusReaction::IGNORE],

        // ---- Row I -------------------------------------------------------
        (I, _) => vec![BusReaction::IGNORE],
    }
}

/// The preferred reaction (the first permitted entry), or `None` for error
/// cells.
#[must_use]
pub fn preferred_bus(state: LineState, event: BusEvent) -> Option<BusReaction> {
    permitted_bus(state, event).into_iter().next()
}

/// Iterates every Table 1 cell for one cache kind: `(state, event,
/// permitted actions)`, error cells included (with an empty action set).
///
/// This is the enumeration surface the exhaustive model checker
/// (`crates/verify`) walks: §3.4 compatibility means *any* element of each
/// returned set may be chosen at any instant.
pub fn local_cells(
    kind: CacheKind,
) -> impl Iterator<Item = (LineState, LocalEvent, Vec<LocalAction>)> {
    LineState::ALL.into_iter().flat_map(move |state| {
        LocalEvent::ALL
            .into_iter()
            .map(move |event| (state, event, permitted_local(state, event, kind)))
    })
}

/// Iterates every Table 2 cell: `(state, event, permitted reactions)`,
/// error cells included (with an empty reaction set).
pub fn bus_cells() -> impl Iterator<Item = (LineState, BusEvent, Vec<BusReaction>)> {
    LineState::ALL.into_iter().flat_map(|state| {
        BusEvent::ALL
            .into_iter()
            .map(move |event| (state, event, permitted_bus(state, event)))
    })
}

/// Renders Table 1 (local events) for one cache kind in the paper's layout.
#[must_use]
pub fn render_table1(kind: CacheKind) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "MOESI Protocol, {kind} client: result state and bus signals (Table 1)\n"
    ));
    out.push_str(&format!(
        "{:<6} {:<28} {:<28} {:<20} {:<12}\n",
        "State", "Read(1)", "Write(2)", "Pass(3)", "Flush(4)"
    ));
    for state in LineState::ALL {
        let mut row = format!("{:<6} ", state.letter());
        for (event, width) in [
            (LE::Read, 28),
            (LE::Write, 28),
            (LE::Pass, 20),
            (LE::Flush, 12),
        ] {
            let actions = permitted_local(state, event, kind);
            let cell = if actions.is_empty() {
                "-".to_string()
            } else {
                actions
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(" or ")
            };
            row.push_str(&format!("{cell:<width$} ", width = width));
        }
        out.push_str(row.trim_end());
        out.push('\n');
    }
    out
}

/// Renders Table 2 (bus events) in the paper's layout, preferred entries with
/// alternatives joined by `or`.
#[must_use]
pub fn render_table2() -> String {
    let mut out = String::new();
    out.push_str("MOESI Protocol: reaction to bus events (Table 2)\n");
    out.push_str(&format!("{:<6}", "State"));
    for ev in BusEvent::ALL {
        out.push_str(&format!(
            " {:<22}",
            format!("{}({})", ev.signals(), ev.column())
        ));
    }
    out.push('\n');
    for state in LineState::ALL {
        out.push_str(&format!("{:<6}", state.letter()));
        for ev in BusEvent::ALL {
            let reactions = permitted_bus(state, ev);
            let cell = if reactions.is_empty() {
                "-".to_string()
            } else {
                // Show the preferred entry plus the first genuine alternative,
                // as the paper does.
                let mut parts: Vec<String> =
                    reactions.iter().take(2).map(ToString::to_string).collect();
                parts.dedup();
                parts.join(" or ")
            };
            out.push_str(&format!(" {cell:<22}"));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_preferred_entries_match_paper() {
        let k = CacheKind::CopyBack;
        let pref = |s, e| preferred_local(s, e, k).unwrap().to_string();
        assert_eq!(pref(M, LE::Read), "M");
        assert_eq!(pref(M, LE::Write), "M");
        assert_eq!(pref(M, LE::Pass), "E,CA,W");
        assert_eq!(pref(M, LE::Flush), "I,W");
        assert_eq!(pref(O, LE::Read), "O");
        assert_eq!(pref(O, LE::Write), "CH:O/M,CA,IM,BC,W");
        assert_eq!(pref(O, LE::Pass), "CH:S/E,CA,W");
        assert_eq!(pref(O, LE::Flush), "I,W");
        assert_eq!(pref(E, LE::Read), "E");
        assert_eq!(pref(E, LE::Write), "M");
        assert_eq!(pref(E, LE::Flush), "I");
        assert_eq!(pref(S, LE::Read), "S");
        assert_eq!(pref(S, LE::Write), "CH:O/M,CA,IM,BC,W");
        assert_eq!(pref(S, LE::Flush), "I");
        assert_eq!(pref(I, LE::Read), "CH:S/E,CA,R");
        assert_eq!(pref(I, LE::Write), "M,CA,IM,R");
    }

    #[test]
    fn table1_error_cells() {
        let k = CacheKind::CopyBack;
        for (s, e) in [(E, LE::Pass), (S, LE::Pass), (I, LE::Pass), (I, LE::Flush)] {
            assert!(permitted_local(s, e, k).is_empty(), "({s},{e}) should be -");
        }
    }

    #[test]
    fn table1_write_through_rows_match_paper() {
        let k = CacheKind::WriteThrough;
        let pref = |s, e| preferred_local(s, e, k).unwrap().to_string();
        assert_eq!(pref(S, LE::Read), "S");
        assert_eq!(pref(S, LE::Write), "S,IM,BC,W");
        assert_eq!(pref(I, LE::Read), "S,CA,R");
        assert_eq!(pref(I, LE::Write), "I,IM,BC,W");
        // Non-broadcast write-through is the listed alternative.
        let alts = permitted_local(S, LE::Write, k);
        assert_eq!(alts[1].to_string(), "S,IM,W");
        // Write-allocate = read then write.
        assert!(permitted_local(I, LE::Write, k)
            .iter()
            .any(|a| a.bus_op == BusOp::ReadThenWrite));
        // A write-through cache can never be in an owned or exclusive state.
        for s in [M, O, E] {
            for e in LocalEvent::ALL {
                assert!(permitted_local(s, e, k).is_empty());
            }
        }
    }

    #[test]
    fn table1_non_caching_rows_match_paper() {
        let k = CacheKind::NonCaching;
        let read = permitted_local(I, LE::Read, k);
        assert_eq!(read.len(), 1);
        assert_eq!(read[0].to_string(), "I,R");
        assert!(!read[0].signals.ca, "a non-caching read must not assert CA");
        let writes = permitted_local(I, LE::Write, k);
        assert_eq!(writes[0].to_string(), "I,IM,BC,W");
        assert_eq!(writes[1].to_string(), "I,IM,W");
        for s in [M, O, E, S] {
            for e in LocalEvent::ALL {
                assert!(permitted_local(s, e, k).is_empty());
            }
        }
    }

    #[test]
    fn table2_preferred_entries_match_paper() {
        let pref = |s, e| preferred_bus(s, e).unwrap().to_string();
        assert_eq!(pref(M, BE::CacheRead), "O,CH,DI");
        assert_eq!(pref(M, BE::CacheReadInvalidate), "I,DI");
        assert_eq!(pref(M, BE::UncachedRead), "M,DI");
        assert_eq!(pref(M, BE::UncachedWrite), "M,DI");
        assert_eq!(pref(M, BE::UncachedBroadcastWrite), "M,SL");
        assert_eq!(pref(O, BE::CacheRead), "O,CH,DI");
        assert_eq!(pref(O, BE::CacheReadInvalidate), "I,DI");
        assert_eq!(pref(O, BE::UncachedRead), "CH:O/M,DI");
        assert_eq!(pref(O, BE::CacheBroadcastWrite), "S,CH,SL");
        assert_eq!(pref(O, BE::UncachedWrite), "O,DI");
        assert_eq!(pref(O, BE::UncachedBroadcastWrite), "O,CH,SL");
        assert_eq!(pref(E, BE::CacheRead), "S,CH");
        assert_eq!(pref(E, BE::CacheReadInvalidate), "I");
        assert_eq!(pref(E, BE::UncachedRead), "E");
        assert_eq!(pref(E, BE::UncachedWrite), "I");
        assert_eq!(pref(E, BE::UncachedBroadcastWrite), "E,SL");
        assert_eq!(pref(S, BE::CacheRead), "S,CH");
        assert_eq!(pref(S, BE::CacheBroadcastWrite), "S,CH,SL");
        assert_eq!(pref(S, BE::UncachedWrite), "I");
        for ev in BusEvent::ALL {
            assert_eq!(pref(I, ev), "I");
        }
    }

    #[test]
    fn table2_error_cells() {
        assert!(permitted_bus(M, BE::CacheBroadcastWrite).is_empty());
        assert!(permitted_bus(E, BE::CacheBroadcastWrite).is_empty());
    }

    #[test]
    fn owners_always_intervene_on_reads_and_uncached_writes() {
        // An owner may never silently let memory answer: every permitted
        // reaction from M or O on a read or non-broadcast write asserts DI.
        for s in [M, O] {
            for ev in [
                BE::CacheRead,
                BE::CacheReadInvalidate,
                BE::UncachedRead,
                BE::UncachedWrite,
            ] {
                for r in permitted_bus(s, ev) {
                    assert!(r.di, "({s}, {ev}): {r} must assert DI");
                }
            }
        }
    }

    #[test]
    fn non_owners_never_intervene() {
        for s in [E, S, I] {
            for ev in BusEvent::ALL {
                for r in permitted_bus(s, ev) {
                    assert!(!r.di, "({s}, {ev}): {r} must not assert DI");
                }
            }
        }
    }

    #[test]
    fn retained_copies_assert_ch_when_someone_listens() {
        // Whenever a reaction keeps a valid unowned copy on an event whose
        // master resolves CH (cols 5 and 8), CH must be asserted — otherwise
        // the master could wrongly enter an exclusive state.
        for s in LineState::VALID {
            for ev in [BE::CacheRead, BE::CacheBroadcastWrite] {
                for r in permitted_bus(s, ev) {
                    for resolved in r.result.possible() {
                        if resolved.is_valid() {
                            assert!(r.ch, "({s}, {ev}): {r} retains a copy without CH");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn invalidating_reactions_never_assert_ch() {
        // Note 11: "changed to I, not CH".
        for s in LineState::ALL {
            for ev in BusEvent::ALL {
                for r in permitted_bus(s, ev) {
                    if r.result == ResultState::Fixed(I) && !r.di {
                        assert!(!r.ch, "({s}, {ev}): {r} invalidates but asserts CH");
                    }
                }
            }
        }
    }

    #[test]
    fn ownership_never_materializes_from_thin_air() {
        // A non-owning state can never react its way into ownership.
        for s in [E, S, I] {
            for ev in BusEvent::ALL {
                for r in permitted_bus(s, ev) {
                    for resolved in r.result.possible() {
                        assert!(!resolved.is_owned(), "({s}, {ev}): {r} gains ownership");
                    }
                }
            }
        }
    }

    #[test]
    fn owners_relinquish_on_cache_broadcast_write() {
        // Column 8: the writing cache assumes (or keeps) responsibility, so a
        // snooping owner must end unowned.
        for r in permitted_bus(O, BE::CacheBroadcastWrite) {
            for resolved in r.result.possible() {
                assert!(!resolved.is_owned());
            }
        }
    }

    #[test]
    fn exclusive_results_only_when_no_other_copy_can_remain() {
        // After a snooped CacheRead or CacheReadInvalidate the requester holds
        // a copy, so no reaction may keep an exclusive state.
        for s in LineState::ALL {
            for ev in [BE::CacheRead, BE::CacheReadInvalidate] {
                for r in permitted_bus(s, ev) {
                    for resolved in r.result.possible() {
                        assert!(
                            !resolved.is_exclusive(),
                            "({s}, {ev}): {r} stays exclusive next to the requester's copy"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn modify_events_without_broadcast_invalidate_unowned_copies() {
        // Cols 6 and 9: data cannot be updated (no BC), so unowned holders
        // must discard.
        for s in [E, S] {
            for ev in [BE::CacheReadInvalidate, BE::UncachedWrite] {
                for r in permitted_bus(s, ev) {
                    assert_eq!(r.result, ResultState::Fixed(I), "({s}, {ev}): {r}");
                }
            }
        }
    }

    #[test]
    fn invalid_lines_ignore_everything() {
        for ev in BusEvent::ALL {
            assert_eq!(permitted_bus(I, ev), vec![BusReaction::IGNORE]);
        }
    }

    #[test]
    fn local_write_from_non_exclusive_states_notifies_the_bus() {
        // §3.1: "any attempt by the cache client to locally modify S or O data
        // requires that a message be broadcast to other caches".
        for kind in [CacheKind::CopyBack, CacheKind::WriteThrough] {
            for s in [O, S] {
                for a in permitted_local(s, LE::Write, kind) {
                    assert!(a.bus_op.uses_bus(), "({s}, Write, {kind}): {a} is silent");
                    assert!(a.signals.im, "({s}, Write, {kind}): {a} lacks IM");
                }
            }
        }
    }

    #[test]
    fn local_write_from_exclusive_states_is_silent() {
        // §3.1: M and E holders "need not warn any other caches".
        for s in [M, E] {
            for a in permitted_local(s, LE::Write, CacheKind::CopyBack) {
                assert!(!a.bus_op.uses_bus());
            }
        }
    }

    #[test]
    fn dirty_pushes_always_write_back() {
        for s in [M, O] {
            for e in [LE::Pass, LE::Flush] {
                for a in permitted_local(s, e, CacheKind::CopyBack) {
                    assert_eq!(a.bus_op, BusOp::Write, "({s}, {e}): {a}");
                }
            }
        }
        // Clean discards never touch the bus.
        for s in [E, S] {
            for a in permitted_local(s, LE::Flush, CacheKind::CopyBack) {
                assert!(!a.bus_op.uses_bus());
            }
        }
    }

    #[test]
    fn pass_retains_and_flush_discards() {
        for kind in CacheKind::ALL {
            for s in LineState::ALL {
                for a in permitted_local(s, LE::Pass, kind) {
                    for r in a.result.possible() {
                        assert!(r.is_valid(), "Pass must keep the copy: ({s}) {a}");
                    }
                    assert!(a.signals.ca, "Pass retains, so CA: ({s}) {a}");
                }
                for a in permitted_local(s, LE::Flush, kind) {
                    assert_eq!(a.result, ResultState::Fixed(I), "Flush discards: ({s}) {a}");
                }
            }
        }
    }

    #[test]
    fn all_results_stay_within_the_kind_reachable_states() {
        for kind in CacheKind::ALL {
            for s in LineState::ALL {
                for e in LocalEvent::ALL {
                    for a in permitted_local(s, e, kind) {
                        if a.bus_op == BusOp::ReadThenWrite {
                            continue; // resolved by re-consultation
                        }
                        for r in a.result.possible() {
                            assert!(
                                kind.reachable_states().contains(&r),
                                "{kind}: ({s},{e}) -> {r} unreachable"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn render_table1_contains_all_rows() {
        let t = render_table1(CacheKind::CopyBack);
        for s in LineState::ALL {
            assert!(t.contains(&format!("\n{}", s.letter())) || t.starts_with(s.letter()));
        }
        assert!(t.contains("CH:S/E,CA,R"));
        assert!(t.contains("Read>Write"));
    }

    #[test]
    fn render_table2_contains_columns_and_cells() {
        let t = render_table2();
        for ev in BusEvent::ALL {
            assert!(t.contains(&format!("({})", ev.column())));
        }
        assert!(t.contains("O,CH,DI"));
        assert!(t.contains("CH:O/M,DI"));
    }
}
