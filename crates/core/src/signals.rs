//! The six Futurebus consistency signal lines (plus BS) of §3.2.
//!
//! Three lines are driven by the transaction master ([`MasterSignals`]:
//! CA, IM, BC) and four are driven by snooping slaves or third parties
//! ([`ResponseSignals`]: CH, DI, SL, BS). All are open-collector wired-OR
//! lines on the physical bus; at this layer we only model their logical
//! values.

use std::fmt;

/// The three master-driven consistency signals asserted during the broadcast
/// address cycle (§3.2.1).
///
/// * `CA` — **cache master**: "I am a copy-back cache and will retain a copy
///   of the referenced data at the end of this transaction, or I am a
///   write-through cache and have just read this data."
/// * `IM` — **intent to modify**: "in this transaction I will modify the
///   referenced data."
/// * `BC` — **broadcast**: "if I do modify the data, I will place the
///   modifications on the bus so that you and/or the memory can update."
///
/// # Examples
///
/// ```
/// use moesi::MasterSignals;
///
/// // A copy-back cache's read miss: CA only.
/// let read = MasterSignals::CA;
/// assert!(read.ca && !read.im && !read.bc);
///
/// // A broadcast write by a cache master: CA, IM, BC.
/// let bcast = MasterSignals::CA_IM_BC;
/// assert_eq!(bcast.to_string(), "CA,IM,BC");
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct MasterSignals {
    /// Cache-master line.
    pub ca: bool,
    /// Intent-to-modify line.
    pub im: bool,
    /// Broadcast line.
    pub bc: bool,
}

impl MasterSignals {
    /// No master signal asserted (read by a processor without a cache).
    pub const NONE: MasterSignals = MasterSignals::new(false, false, false);
    /// `CA` only: read by a cache master (Table 2 column 5).
    pub const CA: MasterSignals = MasterSignals::new(true, false, false);
    /// `CA,IM`: read-for-modify or address-only invalidate (column 6).
    pub const CA_IM: MasterSignals = MasterSignals::new(true, true, false);
    /// `CA,IM,BC`: broadcast write by a cache master (column 8).
    pub const CA_IM_BC: MasterSignals = MasterSignals::new(true, true, true);
    /// `IM`: write by a non-caching processor or write past a write-through
    /// cache (column 9).
    pub const IM: MasterSignals = MasterSignals::new(false, true, false);
    /// `IM,BC`: broadcast write by a non-cache processor or past a
    /// write-through cache (column 10).
    pub const IM_BC: MasterSignals = MasterSignals::new(false, true, true);

    /// Builds a signal set from its three lines.
    #[must_use]
    pub const fn new(ca: bool, im: bool, bc: bool) -> Self {
        MasterSignals { ca, im, bc }
    }

    /// All signal combinations that can legally appear on the bus, in
    /// Table 2 column order (5, 6, 7, 8, 9, 10).
    pub const LEGAL: [MasterSignals; 6] = [
        MasterSignals::CA,
        MasterSignals::CA_IM,
        MasterSignals::NONE,
        MasterSignals::CA_IM_BC,
        MasterSignals::IM,
        MasterSignals::IM_BC,
    ];

    /// `BC` without `IM` is meaningless: broadcast promises to publish a
    /// modification, so it accompanies an intent to modify.
    #[must_use]
    pub const fn is_legal(self) -> bool {
        self.im || !self.bc
    }

    /// Returns these signals with `ca` asserted.
    #[must_use]
    pub const fn with_ca(mut self) -> Self {
        self.ca = true;
        self
    }

    /// Returns these signals with `im` asserted.
    #[must_use]
    pub const fn with_im(mut self) -> Self {
        self.im = true;
        self
    }

    /// Returns these signals with `bc` asserted.
    #[must_use]
    pub const fn with_bc(mut self) -> Self {
        self.bc = true;
        self
    }
}

impl fmt::Display for MasterSignals {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts = Vec::with_capacity(3);
        if self.ca {
            parts.push("CA");
        }
        if self.im {
            parts.push("IM");
        }
        if self.bc {
            parts.push("BC");
        }
        if parts.is_empty() {
            f.write_str("-")
        } else {
            f.write_str(&parts.join(","))
        }
    }
}

/// The slave/third-party response signals asserted during the broadcast
/// address handshake (§3.2.2).
///
/// * `CH` — **cache hit**: "I have a copy of the referenced data, which I
///   will retain at the end of this transaction."
/// * `DI` — **data intervention**: the asserting unit owns the line and
///   preempts memory's response.
/// * `SL` — **select**: a third-party cache (or memory) connects to a
///   broadcast transfer to update its copy.
/// * `BS` — **busy**: aborts the transaction; used only by the adapted
///   Write-Once, Illinois and Firefly protocols, which must update memory
///   before a dirty line can change hands.
///
/// Response signals from several modules combine by wired-OR, which
/// [`ResponseSignals::or`] models.
///
/// # Examples
///
/// ```
/// use moesi::ResponseSignals;
///
/// let owner = ResponseSignals { ch: true, di: true, ..ResponseSignals::NONE };
/// let sharer = ResponseSignals { ch: true, ..ResponseSignals::NONE };
/// let bus = owner.or(sharer);
/// assert!(bus.ch && bus.di && !bus.sl && !bus.bs);
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct ResponseSignals {
    /// Cache-hit line.
    pub ch: bool,
    /// Data-intervention line.
    pub di: bool,
    /// Select (connect on transfer) line.
    pub sl: bool,
    /// Busy (abort) line.
    pub bs: bool,
}

impl ResponseSignals {
    /// No response signal asserted.
    pub const NONE: ResponseSignals = ResponseSignals {
        ch: false,
        di: false,
        sl: false,
        bs: false,
    };

    /// `CH` only — the common "I hold a copy and keep it" reply.
    pub const CH: ResponseSignals = ResponseSignals {
        ch: true,
        ..ResponseSignals::NONE
    };

    /// Wired-OR combination of two modules' responses: a line is low (asserted)
    /// if any driver pulls it low.
    #[must_use]
    pub const fn or(self, other: ResponseSignals) -> ResponseSignals {
        ResponseSignals {
            ch: self.ch || other.ch,
            di: self.di || other.di,
            sl: self.sl || other.sl,
            bs: self.bs || other.bs,
        }
    }

    /// True when no line is asserted.
    #[must_use]
    pub const fn is_none(self) -> bool {
        !self.ch && !self.di && !self.sl && !self.bs
    }
}

/// One of the three wired-OR consistency response lines (CH, DI, SL) that a
/// third party can observe — and that a fault can glitch — individually.
///
/// BS is deliberately excluded: it participates in the abort handshake, not
/// the settle-window race, so abort faults are modelled separately (as abort
/// storms) rather than as line glitches.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ConsistencyLine {
    /// The cache-hit line.
    Ch,
    /// The data-intervention line.
    Di,
    /// The select (connect on transfer) line.
    Sl,
}

impl ConsistencyLine {
    /// All three glitchable lines, in CH/DI/SL order.
    pub const ALL: [ConsistencyLine; 3] = [
        ConsistencyLine::Ch,
        ConsistencyLine::Di,
        ConsistencyLine::Sl,
    ];
}

impl fmt::Display for ConsistencyLine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ConsistencyLine::Ch => "CH",
            ConsistencyLine::Di => "DI",
            ConsistencyLine::Sl => "SL",
        })
    }
}

impl ResponseSignals {
    /// Reads the value of one consistency line.
    #[must_use]
    pub const fn line(self, line: ConsistencyLine) -> bool {
        match line {
            ConsistencyLine::Ch => self.ch,
            ConsistencyLine::Di => self.di,
            ConsistencyLine::Sl => self.sl,
        }
    }

    /// Returns these signals with one consistency line forced to `value`.
    #[must_use]
    pub const fn with_line(mut self, line: ConsistencyLine, value: bool) -> Self {
        match line {
            ConsistencyLine::Ch => self.ch = value,
            ConsistencyLine::Di => self.di = value,
            ConsistencyLine::Sl => self.sl = value,
        }
        self
    }
}

impl fmt::Display for ResponseSignals {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts = Vec::with_capacity(4);
        if self.ch {
            parts.push("CH");
        }
        if self.di {
            parts.push("DI");
        }
        if self.sl {
            parts.push("SL");
        }
        if self.bs {
            parts.push("BS");
        }
        if parts.is_empty() {
            f.write_str("-")
        } else {
            f.write_str(&parts.join(","))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legal_combinations_are_exactly_the_six_columns() {
        let mut legal = 0;
        for ca in [false, true] {
            for im in [false, true] {
                for bc in [false, true] {
                    let s = MasterSignals::new(ca, im, bc);
                    if s.is_legal() {
                        legal += 1;
                        assert!(MasterSignals::LEGAL.contains(&s), "{s} missing from LEGAL");
                    } else {
                        assert!(!MasterSignals::LEGAL.contains(&s));
                    }
                }
            }
        }
        assert_eq!(legal, 6);
    }

    #[test]
    fn bc_without_im_is_illegal() {
        assert!(!MasterSignals::new(true, false, true).is_legal());
        assert!(!MasterSignals::new(false, false, true).is_legal());
    }

    #[test]
    fn builder_helpers() {
        let s = MasterSignals::NONE.with_ca().with_im().with_bc();
        assert_eq!(s, MasterSignals::CA_IM_BC);
    }

    #[test]
    fn master_display() {
        assert_eq!(MasterSignals::NONE.to_string(), "-");
        assert_eq!(MasterSignals::CA.to_string(), "CA");
        assert_eq!(MasterSignals::IM_BC.to_string(), "IM,BC");
    }

    #[test]
    fn response_wired_or() {
        let a = ResponseSignals {
            ch: true,
            ..ResponseSignals::NONE
        };
        let b = ResponseSignals {
            sl: true,
            bs: true,
            ..ResponseSignals::NONE
        };
        let c = a.or(b);
        assert!(c.ch && c.sl && c.bs && !c.di);
        assert_eq!(
            ResponseSignals::NONE.or(ResponseSignals::NONE),
            ResponseSignals::NONE
        );
    }

    #[test]
    fn response_or_is_commutative_and_idempotent() {
        let combos = [
            ResponseSignals::NONE,
            ResponseSignals::CH,
            ResponseSignals {
                di: true,
                ..ResponseSignals::NONE
            },
            ResponseSignals {
                sl: true,
                bs: true,
                ..ResponseSignals::NONE
            },
        ];
        for a in combos {
            assert_eq!(a.or(a), a);
            for b in combos {
                assert_eq!(a.or(b), b.or(a));
            }
        }
    }

    #[test]
    fn line_get_and_set_round_trip() {
        for line in ConsistencyLine::ALL {
            let set = ResponseSignals::NONE.with_line(line, true);
            assert!(set.line(line), "{line} should read back asserted");
            for other in ConsistencyLine::ALL {
                if other != line {
                    assert!(!set.line(other), "{other} must stay clear");
                }
            }
            assert_eq!(set.with_line(line, false), ResponseSignals::NONE);
            assert!(!set.bs, "BS is never touched by line helpers");
        }
        assert_eq!(ConsistencyLine::Ch.to_string(), "CH");
        assert_eq!(ConsistencyLine::Sl.to_string(), "SL");
    }

    #[test]
    fn response_display_and_is_none() {
        assert_eq!(ResponseSignals::NONE.to_string(), "-");
        assert!(ResponseSignals::NONE.is_none());
        let all = ResponseSignals {
            ch: true,
            di: true,
            sl: true,
            bs: true,
        };
        assert_eq!(all.to_string(), "CH,DI,SL,BS");
        assert!(!all.is_none());
    }
}
