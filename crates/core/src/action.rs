//! Actions and reactions: the contents of the cells of Tables 1–7.
//!
//! A table cell for a *local* event is a [`LocalAction`]: the bus operation to
//! issue (if any), the master signals to drive, and the result state — which
//! may be conditional on whether any other cache asserted `CH` during the
//! transaction (written `CH:O/M` or `CH:S/E` in the paper).
//!
//! A table cell for a *bus* event is a [`BusReaction`]: the result state
//! (again possibly `CH`-conditional), the response lines to assert, and — for
//! the adapted Write-Once/Illinois/Firefly protocols — an optional
//! [`BusyPush`] that aborts the transaction with `BS` and pushes the dirty
//! line to memory before the transaction restarts.

use crate::signals::MasterSignals;
use crate::state::LineState;
use std::fmt;

/// The bus operation part of a [`LocalAction`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BusOp {
    /// No bus transaction: the event is satisfied locally.
    None,
    /// Issue a bus read (`R` in the tables); the line is filled from memory or
    /// an intervening owner.
    Read,
    /// Issue a bus write (`W`): a write-through, broadcast update, or
    /// line push.
    Write,
    /// Issue an address-only transaction (no data phase) — the "address only
    /// invalidate signal" of table note 6, written e.g. `M,CA,IM` with no
    /// `R`/`W` action.
    AddressOnly,
    /// `Read>Write` in the tables: two transactions, a read followed by a
    /// write. The controller re-consults the protocol for the write after the
    /// read completes.
    ReadThenWrite,
}

impl BusOp {
    /// Whether this action puts at least one transaction on the bus.
    #[must_use]
    pub fn uses_bus(self) -> bool {
        self != BusOp::None
    }
}

impl fmt::Display for BusOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BusOp::None => "",
            BusOp::Read => "R",
            BusOp::Write => "W",
            BusOp::AddressOnly => "A",
            BusOp::ReadThenWrite => "Read>Write",
        };
        f.write_str(s)
    }
}

/// A result state that may depend on the `CH` (cache hit) line observed from
/// *other* caches during the transaction.
///
/// `CH: O/M` means "if CH then O else M"; `CH: S/E` means "if CH then S else
/// E" (table notes). [`ResultState::resolve`] applies the observation.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ResultState {
    /// The result state is unconditional.
    Fixed(LineState),
    /// If any other cache asserted CH the result is `if_ch`, otherwise
    /// `if_not`.
    OnCh {
        /// Result when some other cache retains a copy.
        if_ch: LineState,
        /// Result when no other cache retains a copy.
        if_not: LineState,
    },
}

impl ResultState {
    /// `CH: O/M` — owned if someone else keeps a copy, else modified.
    pub const CH_O_M: ResultState = ResultState::OnCh {
        if_ch: LineState::Owned,
        if_not: LineState::Modified,
    };

    /// `CH: S/E` — shareable if someone else keeps a copy, else exclusive.
    pub const CH_S_E: ResultState = ResultState::OnCh {
        if_ch: LineState::Shareable,
        if_not: LineState::Exclusive,
    };

    /// Resolves the result given whether any other cache asserted CH.
    #[must_use]
    pub fn resolve(self, ch_observed: bool) -> LineState {
        match self {
            ResultState::Fixed(s) => s,
            ResultState::OnCh { if_ch, if_not } => {
                if ch_observed {
                    if_ch
                } else {
                    if_not
                }
            }
        }
    }

    /// The set of states this result can resolve to.
    #[must_use]
    pub fn possible(self) -> Vec<LineState> {
        match self {
            ResultState::Fixed(s) => vec![s],
            ResultState::OnCh { if_ch, if_not } => {
                if if_ch == if_not {
                    vec![if_ch]
                } else {
                    vec![if_ch, if_not]
                }
            }
        }
    }

    /// Whether every state `self` can resolve to is a permitted weakening of a
    /// state `other` can resolve to under the same CH observation.
    ///
    /// This implements table notes 9 and 10: `CH:O/M` may be replaced by `O`,
    /// and `CH:S/E` by `S`.
    #[must_use]
    pub fn is_weakening_of(self, other: ResultState) -> bool {
        [false, true]
            .into_iter()
            .all(|ch| self.resolve(ch).is_weakening_of(other.resolve(ch)))
    }
}

impl From<LineState> for ResultState {
    fn from(s: LineState) -> Self {
        ResultState::Fixed(s)
    }
}

impl fmt::Display for ResultState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResultState::Fixed(s) => write!(f, "{s}"),
            ResultState::OnCh { if_ch, if_not } => write!(f, "CH:{if_ch}/{if_not}"),
        }
    }
}

/// One permitted response to a local event: a cell entry of Table 1.
///
/// # Examples
///
/// ```
/// use moesi::{BusOp, LocalAction, LineState, MasterSignals, ResultState};
///
/// // The preferred copy-back read-miss action: `CH:S/E, CA, R`.
/// let a = LocalAction::new(ResultState::CH_S_E, MasterSignals::CA, BusOp::Read);
/// assert_eq!(a.to_string(), "CH:S/E,CA,R");
/// assert_eq!(a.result.resolve(true), LineState::Shareable);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct LocalAction {
    /// The state the line enters when the action completes.
    pub result: ResultState,
    /// The master signals driven if a bus transaction is issued.
    pub signals: MasterSignals,
    /// The bus operation, if any.
    pub bus_op: BusOp,
}

impl LocalAction {
    /// Creates an action from its three parts.
    #[must_use]
    pub fn new(result: impl Into<ResultState>, signals: MasterSignals, bus_op: BusOp) -> Self {
        LocalAction {
            result: result.into(),
            signals,
            bus_op,
        }
    }

    /// A purely local action: no bus transaction, unconditional result.
    #[must_use]
    pub fn silent(result: LineState) -> Self {
        LocalAction::new(result, MasterSignals::NONE, BusOp::None)
    }

    /// The `Read>Write` two-transaction entry. The recorded result state is
    /// advisory; the controller re-consults the protocol for the write half.
    #[must_use]
    pub fn read_then_write() -> Self {
        LocalAction::new(
            ResultState::Fixed(LineState::Modified),
            MasterSignals::CA,
            BusOp::ReadThenWrite,
        )
    }
}

impl fmt::Display for LocalAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.bus_op == BusOp::ReadThenWrite {
            return f.write_str("Read>Write");
        }
        write!(f, "{}", self.result)?;
        let sig = self.signals.to_string();
        if sig != "-" {
            write!(f, ",{sig}")?;
        }
        if self.bus_op.uses_bus() {
            write!(f, ",{}", self.bus_op)?;
        }
        Ok(())
    }
}

/// The `BS;state,signals,W` entries of Tables 5–7: abort the observed
/// transaction, push the dirty line to memory with a bus write, enter
/// `result`, then let the aborted transaction restart.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BusyPush {
    /// The state the pushing cache enters after the write-back.
    pub result: LineState,
    /// Master signals the push write drives (e.g. `CA` in `BS;S,CA,W`).
    pub signals: MasterSignals,
}

impl fmt::Display for BusyPush {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BS;{},{},W", self.result, self.signals)
    }
}

/// One permitted reaction to a snooped bus event: a cell entry of Table 2.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BusReaction {
    /// The state the line enters. `OnCh` results (e.g. the O-state holder's
    /// `CH:O/M` on an uncached read, column 7) are resolved against CH
    /// asserted by *other* caches.
    pub result: ResultState,
    /// Assert the CH (cache hit) line. A `CH?` ("don't care") cell is modelled
    /// as not asserting.
    pub ch: bool,
    /// Assert DI (data intervention): supply the data on a read, or capture it
    /// on a write, preempting memory.
    pub di: bool,
    /// Assert SL (select): connect to a broadcast transfer and update the
    /// local copy.
    pub sl: bool,
    /// Abort the transaction with BS and push the line first (adapted
    /// protocols only). When set, `di`/`sl` are not driven on this pass; the
    /// snooper reacts normally when the transaction restarts.
    pub busy: Option<BusyPush>,
}

impl BusReaction {
    /// The ubiquitous "not involved" reaction: stay (or become) Invalid,
    /// assert nothing.
    pub const IGNORE: BusReaction = BusReaction {
        result: ResultState::Fixed(LineState::Invalid),
        ch: false,
        di: false,
        sl: false,
        busy: None,
    };

    /// A reaction that only changes state, asserting no lines.
    #[must_use]
    pub fn quiet(result: impl Into<ResultState>) -> Self {
        BusReaction {
            result: result.into(),
            ch: false,
            di: false,
            sl: false,
            busy: None,
        }
    }

    /// A reaction that changes state and asserts CH.
    #[must_use]
    pub fn hit(result: impl Into<ResultState>) -> Self {
        BusReaction {
            ch: true,
            ..BusReaction::quiet(result)
        }
    }

    /// Returns this reaction with DI asserted.
    #[must_use]
    pub fn with_di(mut self) -> Self {
        self.di = true;
        self
    }

    /// Returns this reaction with SL asserted.
    #[must_use]
    pub fn with_sl(mut self) -> Self {
        self.sl = true;
        self
    }

    /// A `BS` abort-and-push reaction (Tables 5–7).
    #[must_use]
    pub fn busy_push(result: LineState, signals: MasterSignals) -> Self {
        BusReaction {
            result: ResultState::Fixed(result),
            ch: false,
            di: false,
            sl: false,
            busy: Some(BusyPush { result, signals }),
        }
    }
}

impl fmt::Display for BusReaction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(push) = self.busy {
            return write!(f, "{push}");
        }
        write!(f, "{}", self.result)?;
        if self.ch {
            f.write_str(",CH")?;
        }
        if self.di {
            f.write_str(",DI")?;
        }
        if self.sl {
            f.write_str(",SL")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn result_state_resolution() {
        assert_eq!(ResultState::CH_O_M.resolve(true), LineState::Owned);
        assert_eq!(ResultState::CH_O_M.resolve(false), LineState::Modified);
        assert_eq!(ResultState::CH_S_E.resolve(true), LineState::Shareable);
        assert_eq!(ResultState::CH_S_E.resolve(false), LineState::Exclusive);
        let f = ResultState::Fixed(LineState::Owned);
        assert_eq!(f.resolve(true), LineState::Owned);
        assert_eq!(f.resolve(false), LineState::Owned);
    }

    #[test]
    fn result_state_possible_sets() {
        assert_eq!(
            ResultState::CH_S_E.possible(),
            vec![LineState::Shareable, LineState::Exclusive]
        );
        assert_eq!(
            ResultState::Fixed(LineState::Invalid).possible(),
            vec![LineState::Invalid]
        );
        let degenerate = ResultState::OnCh {
            if_ch: LineState::Shareable,
            if_not: LineState::Shareable,
        };
        assert_eq!(degenerate.possible(), vec![LineState::Shareable]);
    }

    #[test]
    fn note_9_and_10_weakenings() {
        // Note 9: any CH:O/M may be replaced by O.
        assert!(ResultState::Fixed(LineState::Owned).is_weakening_of(ResultState::CH_O_M));
        // Note 10: any CH:S/E may be replaced by S.
        assert!(ResultState::Fixed(LineState::Shareable).is_weakening_of(ResultState::CH_S_E));
        // But not by M or E (that would *strengthen*).
        assert!(!ResultState::Fixed(LineState::Modified).is_weakening_of(ResultState::CH_O_M));
        assert!(!ResultState::Fixed(LineState::Exclusive).is_weakening_of(ResultState::CH_S_E));
        // Reflexive.
        assert!(ResultState::CH_O_M.is_weakening_of(ResultState::CH_O_M));
    }

    #[test]
    fn local_action_display_matches_paper_notation() {
        let read_miss = LocalAction::new(ResultState::CH_S_E, MasterSignals::CA, BusOp::Read);
        assert_eq!(read_miss.to_string(), "CH:S/E,CA,R");

        let bcast_write =
            LocalAction::new(ResultState::CH_O_M, MasterSignals::CA_IM_BC, BusOp::Write);
        assert_eq!(bcast_write.to_string(), "CH:O/M,CA,IM,BC,W");

        let silent = LocalAction::silent(LineState::Modified);
        assert_eq!(silent.to_string(), "M");

        let inval = LocalAction::new(
            LineState::Modified,
            MasterSignals::CA_IM,
            BusOp::AddressOnly,
        );
        assert_eq!(inval.to_string(), "M,CA,IM,A");

        assert_eq!(LocalAction::read_then_write().to_string(), "Read>Write");
    }

    #[test]
    fn bus_reaction_display_matches_paper_notation() {
        let m_col5 = BusReaction::hit(LineState::Owned).with_di();
        assert_eq!(m_col5.to_string(), "O,CH,DI");

        let s_col8 = BusReaction::hit(LineState::Shareable).with_sl();
        assert_eq!(s_col8.to_string(), "S,CH,SL");

        assert_eq!(BusReaction::IGNORE.to_string(), "I");

        let push = BusReaction::busy_push(LineState::Shareable, MasterSignals::CA);
        assert_eq!(push.to_string(), "BS;S,CA,W");
    }

    #[test]
    fn bus_op_uses_bus() {
        assert!(!BusOp::None.uses_bus());
        for op in [
            BusOp::Read,
            BusOp::Write,
            BusOp::AddressOnly,
            BusOp::ReadThenWrite,
        ] {
            assert!(op.uses_bus());
        }
    }
}
